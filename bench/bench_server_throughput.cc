// End-to-end serving throughput: the full network stack — framed
// protocol, admission gate, worker pool, cursor RPCs — driven by the
// closed-loop load driver over loopback, at 1..8 client connections.
// The in-process counterpart is bench_throughput (QueryService straight
// off the batch API); the delta between the two is the serving layer's
// overhead. Expected shape: throughput scales with connections until
// the worker pool saturates, with zero sheds at these offered loads.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include <benchmark/benchmark.h>

#include "index/index_builder.h"
#include "server/load_driver.h"
#include "server/server.h"
#include "service/query_service.h"
#include "storage/document_store.h"
#include "workload/bookrev_generator.h"

namespace quickview::bench {
namespace {

/// One server for the whole binary: the demo corpus behind a
/// QueryService behind a Server on an ephemeral loopback port.
struct ServerFixture {
  std::shared_ptr<xml::Database> db;
  std::unique_ptr<index::DatabaseIndexes> indexes;
  std::unique_ptr<storage::DocumentStore> store;
  std::unique_ptr<service::QueryService> service;
  std::unique_ptr<server::Server> server;
};

ServerFixture& GetServerFixture() {
  static auto* fixture = [] {
    auto f = new ServerFixture();
    f->db = workload::GenerateBookRevDatabase(workload::BookRevOptions{});
    f->indexes = index::BuildDatabaseIndexes(*f->db);
    f->store = std::make_unique<storage::DocumentStore>(*f->db);
    f->service = std::make_unique<service::QueryService>(
        f->db.get(), f->indexes.get(), f->store.get());
    Status registered =
        f->service->RegisterView("default", workload::BookRevView());
    if (!registered.ok()) {
      std::fprintf(stderr, "FATAL RegisterView: %s\n",
                   registered.ToString().c_str());
      std::abort();
    }
    f->server = std::make_unique<server::Server>(f->service.get(),
                                                 server::ServerOptions{});
    Status started = f->server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "FATAL Start: %s\n", started.ToString().c_str());
      std::abort();
    }
    return f;
  }();
  return *fixture;
}

void BM_ServerThroughput(benchmark::State& state) {
  ServerFixture& fixture = GetServerFixture();
  server::LoadOptions options;
  options.port = fixture.server->port();
  options.connections = static_cast<int>(state.range(0));
  options.requests_per_connection = 32;
  int64_t requests = 0;
  for (auto _ : state) {
    auto report = server::RunLoadDriver(options);
    if (!report.ok()) {
      std::fprintf(stderr, "FATAL RunLoadDriver: %s\n",
                   report.status().ToString().c_str());
      std::abort();
    }
    if (report->ok != report->attempted) {
      std::fprintf(stderr,
                   "FATAL load driver errors: %llu of %llu requests failed\n",
                   static_cast<unsigned long long>(report->attempted -
                                                   report->ok),
                   static_cast<unsigned long long>(report->attempted));
      std::abort();
    }
    requests += static_cast<int64_t>(report->attempted);
    state.counters["p99_us"] = benchmark::Counter(
        static_cast<double>(report->latency->ValueAtQuantile(0.99)));
  }
  state.SetItemsProcessed(requests);
}
BENCHMARK(BM_ServerThroughput)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->ArgName("connections");

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
