// QueryService throughput on the bookrev workload: queries/sec for a
// mixed batch at 1..16 worker threads, with a cold PDT cache (every plan
// rebuilds its PDTs) vs a warm one (every plan hits). The paper evaluates
// one query at a time; this is the serving-scale counterpart the ROADMAP
// targets — expected shape: near-linear thread scaling up to the core
// count, and a warm cache that removes the whole PDT-generation module
// from the critical path.
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "service/query_service.h"
#include "workload/bookrev_generator.h"

namespace quickview::bench {
namespace {

/// A corpus large enough that PDT generation is the dominant per-query
/// cost (the component the cache removes), as in the paper's data-heavy
/// configurations.
struct BookrevFixture {
  std::shared_ptr<xml::Database> db;
  std::unique_ptr<index::DatabaseIndexes> indexes;
  std::unique_ptr<storage::DocumentStore> store;
};

BookrevFixture& GetBookrevFixture() {
  static auto* fixture = [] {
    auto f = new BookrevFixture();
    workload::BookRevOptions opts;
    opts.num_books = 600;
    opts.max_reviews_per_book = 5;
    f->db = workload::GenerateBookRevDatabase(opts);
    f->indexes = index::BuildDatabaseIndexes(*f->db);
    f->store = std::make_unique<storage::DocumentStore>(*f->db);
    return f;
  }();
  return *fixture;
}

/// A batch of `batch_size` queries with pairwise-distinct plan
/// signatures (every ordered non-empty subset of the planted terms is a
/// distinct signature), so a cleared cache misses on EVERY query of the
/// batch and a warmed cache hits on every one — the two endpoints the
/// cold/warm comparison wants.
std::vector<service::BatchQuery> MakeBatch(size_t batch_size) {
  static const std::vector<std::vector<std::string>>* kSets = [] {
    const std::vector<std::string> terms{"xml", "search", "web", "database"};
    auto* sets = new std::vector<std::vector<std::string>>();
    // All ordered arrangements of size 1..4 of the four planted terms:
    // 4 + 12 + 24 + 24 = 64 distinct keyword lists.
    for (size_t a = 0; a < terms.size(); ++a) {
      sets->push_back({terms[a]});
      for (size_t b = 0; b < terms.size(); ++b) {
        if (b == a) continue;
        sets->push_back({terms[a], terms[b]});
        for (size_t c = 0; c < terms.size(); ++c) {
          if (c == a || c == b) continue;
          sets->push_back({terms[a], terms[b], terms[c]});
          for (size_t d = 0; d < terms.size(); ++d) {
            if (d == a || d == b || d == c) continue;
            sets->push_back({terms[a], terms[b], terms[c], terms[d]});
          }
        }
      }
    }
    return sets;
  }();
  std::vector<service::BatchQuery> batch;
  batch.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    service::BatchQuery query;
    query.view = "bookrev";
    query.keywords = (*kSets)[i % kSets->size()];
    // Disjunctive semantics so even rare term combinations return
    // results to rank and materialize.
    query.options.conjunctive = false;
    batch.push_back(std::move(query));
  }
  return batch;
}

std::unique_ptr<service::QueryService> MakeService(int threads) {
  BookrevFixture& fixture = GetBookrevFixture();
  service::QueryServiceOptions options;
  options.threads = threads;
  auto query_service = std::make_unique<service::QueryService>(
      fixture.db.get(), fixture.indexes.get(), fixture.store.get(), options);
  Status registered =
      query_service->RegisterView("bookrev", workload::BookRevView());
  if (!registered.ok()) {
    fprintf(stderr, "FATAL RegisterView: %s\n",
            registered.ToString().c_str());
    abort();
  }
  return query_service;
}

void CheckBatch(
    const std::vector<Result<engine::SearchResponse>>& responses) {
  for (const auto& response : responses) {
    DieOnError(response, "SearchBatch");
  }
}

constexpr size_t kBatchSize = 64;

void BM_ThroughputCold(benchmark::State& state) {
  auto query_service = MakeService(static_cast<int>(state.range(0)));
  std::vector<service::BatchQuery> batch = MakeBatch(kBatchSize);
  for (auto _ : state) {
    query_service->ClearCache();
    CheckBatch(query_service->SearchBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatchSize));
  auto stats = query_service->stats();
  state.counters["hit_rate"] = benchmark::Counter(
      stats.cache.hits + stats.cache.misses == 0
          ? 0.0
          : static_cast<double>(stats.cache.hits) /
                static_cast<double>(stats.cache.hits + stats.cache.misses));
}
BENCHMARK(BM_ThroughputCold)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->ArgName("threads");

void BM_ThroughputWarm(benchmark::State& state) {
  auto query_service = MakeService(static_cast<int>(state.range(0)));
  std::vector<service::BatchQuery> batch = MakeBatch(kBatchSize);
  CheckBatch(query_service->SearchBatch(batch));  // warm every signature
  // Snapshot after the warm-up pass so hit_rate covers only the timed
  // iterations (the warm-up's misses are not part of the measurement).
  auto warmed = query_service->stats();
  for (auto _ : state) {
    CheckBatch(query_service->SearchBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatchSize));
  auto stats = query_service->stats();
  uint64_t hits = stats.cache.hits - warmed.cache.hits;
  uint64_t misses = stats.cache.misses - warmed.cache.misses;
  state.counters["hit_rate"] = benchmark::Counter(
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses));
}
BENCHMARK(BM_ThroughputWarm)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->ArgName("threads");

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
