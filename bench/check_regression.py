#!/usr/bin/env python3
"""Benchmark-regression gate for CI.

Compares one or more Google Benchmark JSON result files against the
checked-in baseline (bench/baseline.json) and fails when any benchmark
present in both is slower than baseline by more than the threshold.

Usage:
  check_regression.py --baseline bench/baseline.json \
      --current bt.json bf.json [--threshold 0.25] [--merged-out BENCH_PR.json]

Notes:
  - The comparison metric is real_time for */real_time benchmarks (wall
    clock is what multithreaded throughput runs measure) and cpu_time
    otherwise; time units are normalized.
  - Benchmarks new in the PR (absent from the baseline) pass with a
    note; refresh the baseline by committing the uploaded BENCH_PR.json
    as bench/baseline.json.
  - The baseline is machine-dependent. It must have been generated on
    the same runner class as CI; after a runner upgrade, re-seed it.
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    with open(path) as fh:
        data = json.load(fh)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        metric = "real_time" if name.endswith("/real_time") else "cpu_time"
        unit = _UNIT_NS[bench.get("time_unit", "ns")]
        out[name] = {
            "metric": metric,
            "time_ns": bench[metric] * unit,
            "raw": bench,
        }
    return data, out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True, nargs="+")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum tolerated slowdown (0.25 = +25%%)")
    parser.add_argument("--merged-out",
                        help="write the merged current results here")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not fail when baseline benchmarks were "
                             "not run (renames/removals need a baseline "
                             "refresh in the same PR)")
    args = parser.parse_args()

    _, baseline = load_benchmarks(args.baseline)

    merged = None
    current = {}
    for path in args.current:
        data, benches = load_benchmarks(path)
        current.update(benches)
        if merged is None:
            merged = data
        else:
            merged.setdefault("benchmarks", []).extend(
                data.get("benchmarks", []))
    if args.merged_out:
        with open(args.merged_out, "w") as fh:
            json.dump(merged, fh, indent=2)

    failures = []
    rows = []
    for name in sorted(current):
        if name not in baseline:
            rows.append((name, None, current[name]["time_ns"], "NEW"))
            continue
        base_ns = baseline[name]["time_ns"]
        cur_ns = current[name]["time_ns"]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        verdict = "OK"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            failures.append((name, ratio))
        rows.append((name, base_ns, cur_ns, verdict))

    missing = sorted(set(baseline) - set(current))

    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'benchmark'.ljust(width)}  {'base':>12}  {'current':>12}  "
          f"{'ratio':>7}  verdict")
    for name, base_ns, cur_ns, verdict in rows:
        base = f"{base_ns / 1e6:.2f}ms" if base_ns is not None else "-"
        ratio = (f"{cur_ns / base_ns:7.2f}"
                 if base_ns else f"{'-':>7}")
        print(f"{name.ljust(width)}  {base:>12}  {cur_ns / 1e6:>10.2f}ms  "
              f"{ratio}  {verdict}")
    for name in missing:
        print(f"{name.ljust(width)}  (in baseline but not run)")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}:")
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x baseline")
        return 1
    if missing and not args.allow_missing:
        # A rename or removal must not silently drop regression coverage:
        # refresh bench/baseline.json in the same PR (or pass
        # --allow-missing deliberately).
        print(f"\nFAIL: {len(missing)} baseline benchmark(s) were not "
              f"run: {', '.join(missing)}")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%} "
          f"({len(rows)} checked, {len(missing)} missing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
