// Figure 16: Efficient run time across keyword selectivity tiers
// (Low = frequent terms / long inverted lists, Medium, High = rare).
// Expected shape: mild increase as selectivity decreases (longer lists
// cost more I/O during PDT generation).
#include "bench/bench_common.h"

namespace quickview::bench {
namespace {

void BM_Selectivity(benchmark::State& state) {
  workload::InexOptions opts;
  Fixture& fixture = GetFixture(opts);
  std::string view = workload::BuildInexView(workload::ViewSpec{});
  auto tier = static_cast<workload::KeywordTier>(state.range(0));
  auto keywords = workload::KeywordsForTier(tier);
  engine::SearchResponse last;
  for (auto _ : state) {
    last = DieOnError(ExecuteView(*fixture.efficient,
                          view, keywords, engine::SearchOptions{}),
                      "efficient");
  }
  ReportTimings(state, last);
  state.SetLabel(state.range(0) == 0   ? "low(frequent)"
                 : state.range(0) == 1 ? "medium"
                                       : "high(rare)");
}
BENCHMARK(BM_Selectivity)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
