// Paged retrieval through the cursor API: the cost of "show me the first
// 10" against a query matching ~1000 view results, cold (PDT build on
// the critical path) vs warm (cached PDTs; open + first page only), and
// the drain-everything upper bound. The page benchmarks materialize 10
// hits regardless of match count — store fetches stay proportional to
// the page, not to the result set, which is the lazy-materialization
// guarantee the cursor API exists for.
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "engine/result_cursor.h"
#include "service/query_service.h"
#include "workload/bookrev_generator.h"

namespace quickview::bench {
namespace {

struct PagedFixture {
  std::shared_ptr<xml::Database> db;
  std::unique_ptr<index::DatabaseIndexes> indexes;
  std::unique_ptr<storage::DocumentStore> store;
};

PagedFixture& GetPagedFixture() {
  static auto* fixture = [] {
    auto f = new PagedFixture();
    // Large enough that the disjunctive four-term query below matches
    // on the order of 1000 view results.
    workload::BookRevOptions opts;
    opts.num_books = 1800;
    opts.max_reviews_per_book = 4;
    f->db = workload::GenerateBookRevDatabase(opts);
    f->indexes = index::BuildDatabaseIndexes(*f->db);
    f->store = std::make_unique<storage::DocumentStore>(*f->db);
    return f;
  }();
  return *fixture;
}

std::unique_ptr<service::QueryService> MakeService() {
  PagedFixture& fixture = GetPagedFixture();
  service::QueryServiceOptions options;
  options.threads = 1;  // cursors run on the calling thread
  auto query_service = std::make_unique<service::QueryService>(
      fixture.db.get(), fixture.indexes.get(), fixture.store.get(), options);
  Status registered =
      query_service->RegisterView("bookrev", workload::BookRevView());
  if (!registered.ok()) {
    fprintf(stderr, "FATAL RegisterView: %s\n",
            registered.ToString().c_str());
    abort();
  }
  return query_service;
}

service::BatchQuery MakeQuery() {
  service::BatchQuery query;
  query.view = "bookrev";
  query.keywords = {"xml", "search", "web", "database"};
  query.options.conjunctive = false;
  query.options.top_k = 1u << 20;  // the cursor streams every match
  return query;
}

constexpr size_t kPage = 10;

void ReportStats(benchmark::State& state,
                 const engine::SearchStats& stats) {
  state.counters["matches"] = benchmark::Counter(
      static_cast<double>(stats.matching_results));
  state.counters["store_fetches"] = benchmark::Counter(
      static_cast<double>(stats.store_fetches));
}

/// Cold: every iteration pays plan + PDT build + open + one page.
void BM_PagedFirst10Cold(benchmark::State& state) {
  auto query_service = MakeService();
  service::BatchQuery query = MakeQuery();
  engine::SearchStats last;
  for (auto _ : state) {
    query_service->ClearCache();
    auto cursor = DieOnError(query_service->OpenSearch(query), "OpenSearch");
    auto page = DieOnError(cursor->FetchNext(kPage), "FetchNext");
    benchmark::DoNotOptimize(page);
    last = cursor->stats().search;
  }
  ReportStats(state, last);
}
BENCHMARK(BM_PagedFirst10Cold)->Unit(benchmark::kMillisecond);

/// Warm: cached PDTs; an iteration is open (evaluate + score + heap) +
/// one materialized page of 10.
void BM_PagedFirst10Warm(benchmark::State& state) {
  auto query_service = MakeService();
  service::BatchQuery query = MakeQuery();
  DieOnError(query_service->SearchOne(query), "warmup");
  engine::SearchStats last;
  for (auto _ : state) {
    auto cursor = DieOnError(query_service->OpenSearch(query), "OpenSearch");
    auto page = DieOnError(cursor->FetchNext(kPage), "FetchNext");
    benchmark::DoNotOptimize(page);
    last = cursor->stats().search;
  }
  ReportStats(state, last);
}
BENCHMARK(BM_PagedFirst10Warm)->Unit(benchmark::kMillisecond);

/// Warm drain: what a batch caller pays to materialize every match —
/// the upper bound the paged path avoids.
void BM_PagedDrainAllWarm(benchmark::State& state) {
  auto query_service = MakeService();
  service::BatchQuery query = MakeQuery();
  DieOnError(query_service->SearchOne(query), "warmup");
  engine::SearchStats last;
  for (auto _ : state) {
    auto cursor = DieOnError(query_service->OpenSearch(query), "OpenSearch");
    auto everything =
        DieOnError(cursor->FetchNext(cursor->pending()), "FetchNext");
    benchmark::DoNotOptimize(everything);
    last = cursor->stats().search;
  }
  ReportStats(state, last);
}
BENCHMARK(BM_PagedDrainAllWarm)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
