// Figure 15: Efficient run time while varying the number of keywords
// (1..5). Expected shape: slight growth — more inverted lists are read
// while generating PDTs, everything else is unchanged.
#include "bench/bench_common.h"

namespace quickview::bench {
namespace {

void BM_Keywords(benchmark::State& state) {
  workload::InexOptions opts;  // default size
  Fixture& fixture = GetFixture(opts);
  std::string view = workload::BuildInexView(workload::ViewSpec{});
  auto keywords =
      workload::DefaultKeywords(static_cast<int>(state.range(0)));
  engine::SearchOptions options;
  options.conjunctive = false;  // keep the match set stable across counts
  engine::SearchResponse last;
  for (auto _ : state) {
    last = DieOnError(ExecuteView(*fixture.efficient, view, keywords, options),
                      "efficient");
  }
  ReportTimings(state, last);
}
BENCHMARK(BM_Keywords)->DenseRange(1, 5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
