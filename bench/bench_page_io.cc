// Page I/O through the packed storage engine: what "show me the first
// 10" costs against a cold buffer pool over a .qvpack database, versus
// the drain-everything upper bound, versus fully in-memory execution —
// at several buffer-pool budgets. The point the numbers make: with lazy
// materialization the first page touches a small, bounded set of
// node-record pages, while a drain pages in base data proportional to
// the ~1000-match result set; the frame budget moves the hit/miss mix
// but not the answer bytes. "Cold" means a fresh pool per iteration (OS
// page cache effects are not controlled here — the counters, not the
// milliseconds, carry the I/O story on a warm filesystem).
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "engine/result_cursor.h"
#include "pagestore/pack.h"
#include "pagestore/packed_db.h"
#include "workload/bookrev_generator.h"

namespace quickview::bench {
namespace {

struct PageIoFixture {
  std::shared_ptr<xml::Database> db;
  std::unique_ptr<index::DatabaseIndexes> indexes;
  std::unique_ptr<storage::DocumentStore> mem_store;
  std::string pack_path;
};

PageIoFixture& GetPageIoFixture() {
  static auto* fixture = [] {
    auto f = new PageIoFixture();
    // Same corpus as bench_paged_retrieval: the disjunctive four-term
    // query matches on the order of 1000 view results.
    workload::BookRevOptions opts;
    opts.num_books = 1800;
    opts.max_reviews_per_book = 4;
    f->db = workload::GenerateBookRevDatabase(opts);
    f->indexes = index::BuildDatabaseIndexes(*f->db);
    f->mem_store = std::make_unique<storage::DocumentStore>(*f->db);
    f->pack_path = (std::filesystem::temp_directory_path() /
                    "quickview_bench_page_io.qvpack")
                       .string();
    Status packed =
        pagestore::PackDatabase(*f->db, *f->indexes, f->pack_path);
    if (!packed.ok()) {
      fprintf(stderr, "FATAL PackDatabase: %s\n",
              packed.ToString().c_str());
      abort();
    }
    return f;
  }();
  return *fixture;
}

engine::SearchOptions MakeOptions() {
  engine::SearchOptions options;
  options.conjunctive = false;
  options.top_k = 1u << 20;  // the cursor streams every match
  return options;
}

std::string MakeQueryText() {
  return engine::ComposeKeywordQuery(
      workload::BookRevView(), {"xml", "search", "web", "database"},
      /*conjunctive=*/false);
}

constexpr size_t kPage = 10;

void ReportPageIo(benchmark::State& state, const engine::SearchStats& stats,
                  const pagestore::BufferPoolStats& pool) {
  state.counters["matches"] =
      benchmark::Counter(static_cast<double>(stats.matching_results));
  state.counters["store_pages_read"] =
      benchmark::Counter(static_cast<double>(stats.pages_read));
  state.counters["store_buffer_hits"] =
      benchmark::Counter(static_cast<double>(stats.buffer_hits));
  state.counters["pool_misses"] =
      benchmark::Counter(static_cast<double>(pool.misses));
  state.counters["pool_evictions"] =
      benchmark::Counter(static_cast<double>(pool.evictions));
}

/// Cold packed run: open the db (empty pool), plan, build PDTs from
/// index pages, open a cursor and fetch either one page or everything.
void RunPackedCold(benchmark::State& state, size_t fetch_all) {
  PageIoFixture& fixture = GetPageIoFixture();
  const std::string query = MakeQueryText();
  const engine::SearchOptions options = MakeOptions();
  pagestore::BufferPoolOptions pool;
  pool.frames = static_cast<size_t>(state.range(0));
  engine::SearchStats last;
  pagestore::BufferPoolStats last_pool;
  for (auto _ : state) {
    auto packed =
        DieOnError(pagestore::PackedDb::Open(fixture.pack_path, pool),
                   "PackedDb::Open");
    storage::DocumentStore store(packed);
    engine::ViewSearchEngine engine(nullptr, packed.get(), &store);
    auto plan = DieOnError(engine.PlanQuery(query), "PlanQuery");
    auto prepared = DieOnError(engine.BuildPdts(std::move(plan)),
                               "BuildPdts");
    auto cursor = DieOnError(engine.Open(prepared, options), "Open");
    auto hits = DieOnError(
        cursor->FetchNext(fetch_all ? cursor->pending() : kPage),
        "FetchNext");
    benchmark::DoNotOptimize(hits);
    last = cursor->stats().search;
    last_pool = packed->pool().stats();
  }
  ReportPageIo(state, last, last_pool);
}

void BM_PageIoFirst10Cold(benchmark::State& state) {
  RunPackedCold(state, /*fetch_all=*/0);
}
BENCHMARK(BM_PageIoFirst10Cold)
    ->Arg(16)
    ->Arg(128)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_PageIoDrainAllCold(benchmark::State& state) {
  RunPackedCold(state, /*fetch_all=*/1);
}
BENCHMARK(BM_PageIoDrainAllCold)
    ->Arg(128)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// The in-memory reference: identical pipeline, zero page I/O.
void BM_PageIoInMemoryFirst10(benchmark::State& state) {
  PageIoFixture& fixture = GetPageIoFixture();
  const std::string query = MakeQueryText();
  const engine::SearchOptions options = MakeOptions();
  engine::ViewSearchEngine engine(fixture.db.get(), fixture.indexes.get(),
                                  fixture.mem_store.get());
  engine::SearchStats last;
  for (auto _ : state) {
    auto plan = DieOnError(engine.PlanQuery(query), "PlanQuery");
    auto prepared = DieOnError(engine.BuildPdts(std::move(plan)),
                               "BuildPdts");
    auto cursor = DieOnError(engine.Open(prepared, options), "Open");
    auto hits = DieOnError(cursor->FetchNext(kPage), "FetchNext");
    benchmark::DoNotOptimize(hits);
    last = cursor->stats().search;
  }
  state.counters["matches"] =
      benchmark::Counter(static_cast<double>(last.matching_results));
  state.counters["store_pages_read"] =
      benchmark::Counter(static_cast<double>(last.pages_read));
}
BENCHMARK(BM_PageIoInMemoryFirst10)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
