// Figure 19: Efficient run time while varying the FLWOR nesting level of
// the view (1..4). Expected shape: roughly linear growth, with the
// evaluator's share growing fastest.
#include "bench/bench_common.h"

namespace quickview::bench {
namespace {

void BM_Nesting(benchmark::State& state) {
  workload::InexOptions opts;
  Fixture& fixture = GetFixture(opts);
  workload::ViewSpec spec;
  spec.nesting_level = static_cast<int>(state.range(0));
  std::string view = workload::BuildInexView(spec);
  auto keywords = workload::KeywordsForTier(workload::KeywordTier::kMedium);
  engine::SearchResponse last;
  for (auto _ : state) {
    last = DieOnError(ExecuteView(*fixture.efficient,
                          view, keywords, engine::SearchOptions{}),
                      "efficient");
  }
  ReportTimings(state, last);
}
BENCHMARK(BM_Nesting)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
