// Durable-ingest benchmark for the write-ahead log: documents/sec
// through LiveDatabase's durable commit path (WAL append + fdatasync +
// in-memory apply), grouped vs per-record fsync, at 1..8 writer
// threads. The counters expose the group-commit bargain directly:
//   docs_per_sec       acknowledged durable commits per wall second
//   fsyncs_per_commit  fdatasync calls / committed records — the
//                      group-commit win; 1.0 in per-record mode, well
//                      below 1.0 once N>=4 writers share batches
//   avg_group_size     records per commit batch
#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "pagestore/wal.h"
#include "storage/live_database.h"

namespace quickview::bench {
namespace {

std::string IngestDoc(int thread, int generation) {
  return "<doc><title>xml search entry " + std::to_string(thread) + "-" +
         std::to_string(generation) +
         "</title><body>durable ingest payload</body></doc>";
}

/// range(0): 1 = group commit (concurrent writers share one fdatasync),
/// 0 = per-record fsync (one sync per commit, the naive configuration).
void BM_WalIngest(benchmark::State& state) {
  static storage::LiveDatabase* live = nullptr;
  static std::string wal_path;
  if (state.thread_index() == 0) {
    wal_path = "bench_wal_ingest.wal";
    std::remove(wal_path.c_str());
    live = new storage::LiveDatabase();
    pagestore::WalOptions options;
    options.group_commit = state.range(0) == 1;
    Status opened = live->OpenWal(wal_path, options);
    if (!opened.ok()) {
      fprintf(stderr, "FATAL OpenWal: %s\n", opened.ToString().c_str());
      abort();
    }
  }
  int generation = 0;
  for (auto _ : state) {
    Status committed = live->CommitInsert(
        "t" + std::to_string(state.thread_index()) + "-" +
            std::to_string(generation) + ".xml",
        IngestDoc(state.thread_index(), generation));
    if (!committed.ok()) {
      fprintf(stderr, "FATAL commit: %s\n", committed.ToString().c_str());
      abort();
    }
    ++generation;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["docs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  if (state.thread_index() == 0) {
    const double appends =
        static_cast<double>(live->wal()->appended_records());
    const double syncs = static_cast<double>(live->wal()->sync_calls());
    const double batches =
        static_cast<double>(live->wal()->commit_batches());
    state.counters["fsyncs_per_commit"] =
        benchmark::Counter(appends == 0 ? 0.0 : syncs / appends);
    state.counters["avg_group_size"] =
        benchmark::Counter(batches == 0 ? 0.0 : appends / batches);
    delete live;
    live = nullptr;
    std::remove(wal_path.c_str());
  }
}
BENCHMARK(BM_WalIngest)
    ->ArgName("grouped")
    ->Arg(0)->Arg(1)
    ->Threads(1)->Threads(4)->Threads(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
