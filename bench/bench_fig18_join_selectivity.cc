// Figure 18: Efficient run time while varying join selectivity
// (1X, 0.5X, 0.2X, 0.1X — the fraction of articles joined to a given
// author). Expected shape: slight growth as selectivity decreases.
#include "bench/bench_common.h"

namespace quickview::bench {
namespace {

constexpr double kSelectivities[] = {1.0, 0.5, 0.2, 0.1};

void BM_JoinSelectivity(benchmark::State& state) {
  workload::InexOptions opts;
  opts.join_selectivity = kSelectivities[state.range(0)];
  Fixture& fixture = GetFixture(opts);
  std::string view = workload::BuildInexView(workload::ViewSpec{});
  auto keywords = workload::KeywordsForTier(workload::KeywordTier::kMedium);
  engine::SearchResponse last;
  for (auto _ : state) {
    last = DieOnError(ExecuteView(*fixture.efficient,
                          view, keywords, engine::SearchOptions{}),
                      "efficient");
  }
  ReportTimings(state, last);
  state.SetLabel(std::to_string(kSelectivities[state.range(0)]) + "X");
}
BENCHMARK(BM_JoinSelectivity)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
