// Ablation (DESIGN.md §4): pruned-tree construction via path-index merge
// (our PDT module) vs tag-stream structural joins with base-data value
// access (the GTP way). This isolates the paper's §6 claim that the two
// GTP costs — structural joins for hierarchy and base-data access for
// values — are what the path index eliminates.
#include "bench/bench_common.h"

#include "pdt/generate_pdt.h"
#include "qpt/generate_qpt.h"
#include "xquery/parser.h"

namespace quickview::bench {
namespace {

std::vector<qpt::Qpt> QptsForDefaultView() {
  auto query = DieOnError(
      xquery::ParseQuery(workload::BuildInexView(workload::ViewSpec{})),
      "parse");
  return DieOnError(qpt::GenerateQpts(&query), "qpt");
}

void BM_PathIndexPdt(benchmark::State& state) {
  workload::InexOptions opts;
  opts.target_bytes = kBytesPerScaleUnit * static_cast<uint64_t>(
                                                state.range(0));
  Fixture& fixture = GetFixture(opts);
  std::vector<qpt::Qpt> qpts = QptsForDefaultView();
  auto keywords = workload::KeywordsForTier(workload::KeywordTier::kMedium);
  for (auto _ : state) {
    for (const qpt::Qpt& q : qpts) {
      auto pdt = DieOnError(
          pdt::GeneratePdt(q, *fixture.indexes->Get(q.source_doc), keywords,
                           nullptr),
          "pdt");
      benchmark::DoNotOptimize(pdt);
    }
  }
}
BENCHMARK(BM_PathIndexPdt)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

// The same pruned trees built the GTP/Timber way: tag streams +
// structural joins, with join values and byte lengths fetched from base
// document storage.
void BM_StructuralJoinBuild(benchmark::State& state) {
  workload::InexOptions opts;
  opts.target_bytes = kBytesPerScaleUnit * static_cast<uint64_t>(
                                                state.range(0));
  Fixture& fixture = GetFixture(opts);
  std::vector<qpt::Qpt> qpts = QptsForDefaultView();
  auto keywords = workload::KeywordsForTier(workload::KeywordTier::kMedium);
  uint64_t fetches_before = fixture.store->stats().fetch_calls;
  for (auto _ : state) {
    for (const qpt::Qpt& q : qpts) {
      auto doc = DieOnError(
          baseline::BuildGtpPrunedDocument(
              q, *fixture.indexes->Get(q.source_doc), fixture.store.get(),
              keywords),
          "gtp build");
      benchmark::DoNotOptimize(doc);
    }
  }
  state.counters["store_fetches_per_iter"] = benchmark::Counter(
      static_cast<double>(fixture.store->stats().fetch_calls -
                          fetches_before) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_StructuralJoinBuild)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
