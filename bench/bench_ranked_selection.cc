// Extension bench (paper §7): for monotone selection views, skipping view
// evaluation and scoring straight from PDT statistics vs running the full
// Fig 3 pipeline. Quantifies the "avoid producing pruned view elements"
// head-room the conclusion describes.
#include "bench/bench_common.h"

#include "engine/ranked_selection.h"

namespace quickview::bench {
namespace {

std::string SelectionView() {
  return "for $a in fn:doc(inex.xml)/books//article[./year > 1995] "
         "return $a";
}

void BM_FullPipelineSelection(benchmark::State& state) {
  workload::InexOptions opts;
  opts.target_bytes = kBytesPerScaleUnit * static_cast<uint64_t>(
                                                state.range(0));
  Fixture& fixture = GetFixture(opts);
  auto keywords = workload::KeywordsForTier(workload::KeywordTier::kMedium);
  engine::SearchResponse last;
  for (auto _ : state) {
    last = DieOnError(ExecuteView(*fixture.efficient,
                          SelectionView(), keywords, engine::SearchOptions{}),
                      "full");
  }
  ReportTimings(state, last);
}
BENCHMARK(BM_FullPipelineSelection)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

void BM_RankedSelection(benchmark::State& state) {
  workload::InexOptions opts;
  opts.target_bytes = kBytesPerScaleUnit * static_cast<uint64_t>(
                                                state.range(0));
  Fixture& fixture = GetFixture(opts);
  auto keywords = workload::KeywordsForTier(workload::KeywordTier::kMedium);
  engine::SearchResponse last;
  for (auto _ : state) {
    last = DieOnError(
        engine::RankedSelectionSearch(*fixture.db, *fixture.indexes,
                                      fixture.store.get(), SelectionView(),
                                      keywords, engine::SearchOptions{}),
        "ranked");
  }
  ReportTimings(state, last);
}
BENCHMARK(BM_RankedSelection)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
