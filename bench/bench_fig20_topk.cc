// Figure 20: Efficient run time while varying K (# of results returned).
// Expected shape: flat — materializing a few more results is negligible
// because only the top-K touch base data.
#include "bench/bench_common.h"

namespace quickview::bench {
namespace {

void BM_TopK(benchmark::State& state) {
  workload::InexOptions opts;
  Fixture& fixture = GetFixture(opts);
  std::string view = workload::BuildInexView(workload::ViewSpec{});
  auto keywords = workload::KeywordsForTier(workload::KeywordTier::kMedium);
  engine::SearchOptions options;
  options.top_k = static_cast<size_t>(state.range(0));
  engine::SearchResponse last;
  for (auto _ : state) {
    last = DieOnError(ExecuteView(*fixture.efficient, view, keywords, options),
                      "efficient");
  }
  ReportTimings(state, last);
  state.counters["store_fetches"] =
      benchmark::Counter(static_cast<double>(last.stats.store_fetches));
}
BENCHMARK(BM_TopK)->Arg(1)->Arg(10)->Arg(20)->Arg(30)->Arg(40)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
