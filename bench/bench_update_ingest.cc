// Live-ingest benchmarks for the update write path:
//   BM_InsertThroughput         documents/sec through LiveDatabase
//                               (parse + incremental index maintenance +
//                               COW store snapshot), at several document
//                               sizes, steady-state (a bounded window of
//                               documents is kept live via removals);
//   BM_ReplaceThroughput        same-name replacement — the posting-
//                               removal + re-insert RMW path;
//   BM_QueryLatencyDuringIngest per-query latency through a live
//                               QueryService while a background mutator
//                               sustains document ingest. `unrelated`
//                               mutates documents the view never reads
//                               (cached PDTs stay warm); `replacing`
//                               rewrites reviews.xml on every insert, so
//                               every mutation invalidates the view's
//                               PDTs (cold-path upper bound).
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/sync.h"
#include "service/query_service.h"
#include "storage/live_database.h"
#include "workload/bookrev_generator.h"
#include "xml/serializer.h"

namespace quickview::bench {
namespace {

/// A synthetic ingest document: `books` book elements with planted terms.
std::string IngestDocXml(int generation, int books) {
  std::string out = "<books>";
  for (int i = 0; i < books; ++i) {
    out += "<book><isbn>isbn-" + std::to_string(generation) + "-" +
           std::to_string(i) +
           "</isbn><title>xml search in practice</title><publisher>Morgan "
           "Kaufmann</publisher><year>2001</year></book>";
  }
  out += "</books>";
  return out;
}

void BM_InsertThroughput(benchmark::State& state) {
  const int books_per_doc = static_cast<int>(state.range(0));
  // Every iteration inserts a FRESH name (the bulk-build path — reusing
  // a name would silently measure the replacement RMW path instead, see
  // BM_ReplaceThroughput) and removes the name that fell out of a
  // bounded window, so the corpus stays at `kWindow` documents:
  // steady-state insert+remove, not an ever-growing snapshot.
  constexpr int kWindow = 64;
  storage::LiveDatabase live;
  int generation = 0;
  for (auto _ : state) {
    // Direct LiveDatabase use: the bench is the writer, so it takes the
    // corpus writer lock itself (exactly what QueryService does per
    // mutation; uncontended here).
    qv::WriterLock lock(live.mu());
    Status inserted = live.InsertDocument(
        "ingest" + std::to_string(generation) + ".xml",
        IngestDocXml(generation, books_per_doc));
    if (!inserted.ok()) {
      fprintf(stderr, "FATAL insert: %s\n", inserted.ToString().c_str());
      abort();
    }
    if (generation >= kWindow) {
      Status removed = live.RemoveDocument(
          "ingest" + std::to_string(generation - kWindow) + ".xml");
      if (!removed.ok()) {
        fprintf(stderr, "FATAL remove: %s\n", removed.ToString().c_str());
        abort();
      }
    }
    ++generation;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["docs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InsertThroughput)
    ->Arg(1)->Arg(16)->Arg(128)
    ->Unit(benchmark::kMicrosecond)
    ->ArgName("books_per_doc");

void BM_ReplaceThroughput(benchmark::State& state) {
  const int books_per_doc = static_cast<int>(state.range(0));
  storage::LiveDatabase live;
  {
    qv::WriterLock lock(live.mu());
    Status seeded =
        live.InsertDocument("hot.xml", IngestDocXml(0, books_per_doc));
    if (!seeded.ok()) abort();
  }
  int generation = 1;
  for (auto _ : state) {
    qv::WriterLock lock(live.mu());
    Status replaced = live.InsertDocument(
        "hot.xml", IngestDocXml(generation++, books_per_doc));
    if (!replaced.ok()) {
      fprintf(stderr, "FATAL replace: %s\n", replaced.ToString().c_str());
      abort();
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["docs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReplaceThroughput)
    ->Arg(16)->Arg(128)
    ->Unit(benchmark::kMicrosecond)
    ->ArgName("books_per_doc");

/// range(0) == 0: mutator writes documents the view never reads.
/// range(0) == 1: mutator replaces reviews.xml (view-invalidating).
void BM_QueryLatencyDuringIngest(benchmark::State& state) {
  const bool replacing = state.range(0) == 1;
  workload::BookRevOptions opts;
  opts.num_books = 120;
  opts.max_reviews_per_book = 4;
  storage::LiveDatabase live(workload::GenerateBookRevDatabase(opts));
  service::QueryServiceOptions options;
  options.threads = 2;
  service::QueryService service(&live, options);
  Status registered =
      service.RegisterView("bookrev", workload::BookRevView());
  if (!registered.ok()) abort();
  service::BatchQuery query{"bookrev", {"xml", "search"},
                            engine::SearchOptions{}};

  std::string reviews_text;
  if (replacing) {
    qv::ReaderLock lock(live.mu());
    reviews_text =
        xml::Serialize(*live.database()->GetDocument("reviews.xml"));
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ingested{0};
  std::thread mutator([&] {
    int generation = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Status mutated =
          replacing
              ? service.InsertDocument("reviews.xml", reviews_text)
              : service.InsertDocument(
                    "ingest" + std::to_string(generation % 32) + ".xml",
                    IngestDocXml(generation, 8));
      if (!mutated.ok()) abort();
      ++generation;
      ingested.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (auto _ : state) {
    DieOnError(service.SearchOne(query), "SearchOne");
  }
  stop.store(true, std::memory_order_relaxed);
  mutator.join();

  state.SetItemsProcessed(state.iterations());
  auto stats = service.stats();
  state.counters["ingested_docs"] =
      benchmark::Counter(static_cast<double>(ingested.load()));
  state.counters["cache_hit_rate"] = benchmark::Counter(
      stats.cache.hits + stats.cache.misses == 0
          ? 0.0
          : static_cast<double>(stats.cache.hits) /
                static_cast<double>(stats.cache.hits + stats.cache.misses));
}
BENCHMARK(BM_QueryLatencyDuringIngest)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->ArgName("replacing");

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
