// Shared benchmark scaffolding: cached INEX fixtures (database + indices +
// engines) keyed by generator options, so parameter sweeps don't rebuild
// the corpus per measurement. Each bench binary reproduces one table or
// figure of the paper's §5; counters expose the per-module breakdown the
// paper plots (PDT / Evaluator / Post-processing).
#ifndef QUICKVIEW_BENCH_BENCH_COMMON_H_
#define QUICKVIEW_BENCH_BENCH_COMMON_H_

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <benchmark/benchmark.h>

#include "baseline/gtp_termjoin.h"
#include "baseline/naive_engine.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "storage/document_store.h"
#include "workload/inex_generator.h"
#include "workload/view_factory.h"

namespace quickview::bench {

/// Data-size scale factor 1 maps to this many bytes of inex.xml. The
/// paper's x-axis is 100..500 MB; the reproduction target is the *shape*
/// (ratios and scaling), so the default keeps full sweeps CI-friendly.
inline constexpr uint64_t kBytesPerScaleUnit = 2 * 1024 * 1024;

struct Fixture {
  std::shared_ptr<xml::Database> db;
  std::unique_ptr<index::DatabaseIndexes> indexes;
  std::unique_ptr<storage::DocumentStore> store;
  std::unique_ptr<engine::ViewSearchEngine> efficient;
  std::unique_ptr<baseline::NaiveEngine> naive;
  std::unique_ptr<baseline::GtpTermJoinEngine> gtp;
};

/// Builds (or returns the cached) fixture for the generator options.
inline Fixture& GetFixture(const workload::InexOptions& opts) {
  using Key = std::tuple<uint64_t, uint64_t, int, int, int>;
  static auto* cache = new std::map<Key, std::unique_ptr<Fixture>>();
  Key key{opts.target_bytes, opts.seed, opts.element_size_factor,
          static_cast<int>(opts.join_selectivity * 1000), opts.num_authors};
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto fixture = std::make_unique<Fixture>();
    fixture->db = workload::GenerateInexDatabase(opts);
    fixture->indexes = index::BuildDatabaseIndexes(*fixture->db);
    fixture->store =
        std::make_unique<storage::DocumentStore>(*fixture->db);
    fixture->efficient = std::make_unique<engine::ViewSearchEngine>(
        fixture->db.get(), fixture->indexes.get(), fixture->store.get());
    fixture->naive =
        std::make_unique<baseline::NaiveEngine>(fixture->db.get());
    fixture->gtp = std::make_unique<baseline::GtpTermJoinEngine>(
        fixture->db.get(), fixture->indexes.get(), fixture->store.get());
    it = cache->emplace(key, std::move(fixture)).first;
  }
  return *it->second;
}

/// View + keywords through the unified entry point (the benches measure
/// the same pipeline the old SearchView wrapper delegated to).
inline Result<engine::SearchResponse> ExecuteView(
    const engine::ViewSearchEngine& engine, const std::string& view,
    const std::vector<std::string>& keywords,
    const engine::SearchOptions& options) {
  engine::SearchRequest request;
  request.view = view;
  request.keywords = keywords;
  request.options = options;
  return engine.Execute(request);
}

/// Attaches the paper's Fig 14 module breakdown to a benchmark state
/// (values from the last search of the run — each is already per-call).
inline void ReportTimings(benchmark::State& state,
                          const engine::SearchResponse& response) {
  state.counters["pdt_ms"] = benchmark::Counter(response.timings.pdt_ms);
  state.counters["eval_ms"] = benchmark::Counter(response.timings.eval_ms);
  state.counters["post_ms"] = benchmark::Counter(response.timings.post_ms);
  state.counters["results"] = benchmark::Counter(
      static_cast<double>(response.stats.matching_results));
}

/// Crashes loudly on setup/search errors — a benchmark that silently
/// measures a failed search is worse than one that aborts.
template <typename ResultT>
inline auto DieOnError(ResultT result, const char* what) {
  if (!result.ok()) {
    fprintf(stderr, "FATAL %s: %s\n", what, result.status().ToString().c_str());
    abort();
  }
  return std::move(result).value();
}

}  // namespace quickview::bench

#endif  // QUICKVIEW_BENCH_BENCH_COMMON_H_
