// Sharded query execution scaling: the same ~1000-match disjunctive
// query over the same corpus partitioned 1/2/4/8 ways, measuring what
// the coordinator pays cold (per-shard PDT build + evaluation on the
// critical path) and warm (cached per-shard PreparedQueries; open is
// evaluation + scoring + merge only), for a first page of 10 and for a
// full drain. First-10 counters must show the merge frontier's laziness
// surviving sharding: store fetches proportional to the page at every
// shard count, never to the match count.
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "engine/result_cursor.h"
#include "storage/shard_set.h"
#include "workload/bookrev_generator.h"

namespace quickview::bench {
namespace {

struct ShardScalingFixture {
  std::shared_ptr<xml::Database> db;
  // One pre-partitioned shard set and thread pool per measured count.
  std::map<int, storage::ShardSet> shard_sets;
  std::unique_ptr<ThreadPool> pool;
};

constexpr int kShardCounts[] = {1, 2, 4, 8};

ShardScalingFixture& GetShardScalingFixture() {
  static auto* fixture = [] {
    auto f = new ShardScalingFixture();
    workload::BookRevOptions opts;
    opts.num_books = 1800;
    opts.max_reviews_per_book = 4;
    f->db = workload::GenerateBookRevDatabase(opts);
    for (int shards : kShardCounts) {
      storage::ShardingSpec spec;
      spec.shards = shards;
      spec.colocate_tag = "isbn";
      auto set = storage::ShardSet::Partition(*f->db, spec);
      if (!set.ok()) {
        fprintf(stderr, "FATAL Partition(%d): %s\n", shards,
                set.status().ToString().c_str());
        abort();
      }
      f->shard_sets.emplace(shards, std::move(*set));
    }
    f->pool = std::make_unique<ThreadPool>(4);
    return f;
  }();
  return *fixture;
}

std::vector<engine::ShardContext> ContextsFor(int shards) {
  const storage::ShardSet& set =
      GetShardScalingFixture().shard_sets.at(shards);
  std::vector<engine::ShardContext> contexts;
  for (size_t i = 0; i < set.size(); ++i) {
    const storage::Shard& shard = set.shard(i);
    contexts.push_back(engine::ShardContext{
        shard.database.get(), shard.index_source(), shard.store.get()});
  }
  return contexts;
}

engine::SearchRequest MakeRequest() {
  engine::SearchRequest request;
  request.view = workload::BookRevView();
  request.keywords = {"xml", "search", "web", "database"};
  request.options.conjunctive = false;
  request.options.top_k = 1u << 20;  // stream every match
  return request;
}

constexpr size_t kPage = 10;

void ReportShardCounters(benchmark::State& state,
                         const engine::EngineStats& stats) {
  state.counters["matches"] = benchmark::Counter(
      static_cast<double>(stats.search.matching_results));
  state.counters["store_fetches"] = benchmark::Counter(
      static_cast<double>(stats.search.store_fetches));
  state.counters["pdt_ms"] = benchmark::Counter(stats.timings.pdt_ms);
  state.counters["eval_ms"] = benchmark::Counter(stats.timings.eval_ms);
}

/// Cold: plan + per-shard PDT build + evaluation + merge every
/// iteration, then one page (or the full drain).
void RunCold(benchmark::State& state, bool drain) {
  ShardScalingFixture& fixture = GetShardScalingFixture();
  const int shards = static_cast<int>(state.range(0));
  engine::ViewSearchEngine engine(ContextsFor(shards), fixture.pool.get());
  const engine::SearchRequest request = MakeRequest();
  engine::EngineStats last;
  for (auto _ : state) {
    auto cursor = DieOnError(engine.Open(request), "Open");
    auto hits = DieOnError(
        cursor->FetchNext(drain ? cursor->pending() : kPage), "FetchNext");
    benchmark::DoNotOptimize(hits);
    last = cursor->stats();
  }
  ReportShardCounters(state, last);
}

/// Warm: per-shard PreparedQueries built once outside the loop (the
/// service cache's steady state); an iteration pays evaluation +
/// scoring + merge + materialization only.
void RunWarm(benchmark::State& state, bool drain) {
  ShardScalingFixture& fixture = GetShardScalingFixture();
  const int shards = static_cast<int>(state.range(0));
  engine::ViewSearchEngine engine(ContextsFor(shards), fixture.pool.get());
  const engine::SearchRequest request = MakeRequest();

  std::vector<std::shared_ptr<const engine::PreparedQuery>> prepared;
  for (int s = 0; s < shards; ++s) {
    auto plan = DieOnError(
        engine.PlanQuery(engine::ComposeKeywordQuery(
            request.view, request.keywords, request.options.conjunctive)),
        "PlanQuery");
    prepared.push_back(
        DieOnError(engine.BuildPdts(std::move(plan), s), "BuildPdts"));
  }

  engine::EngineStats last;
  for (auto _ : state) {
    auto cursor = DieOnError(engine.Open(request, prepared), "Open");
    auto hits = DieOnError(
        cursor->FetchNext(drain ? cursor->pending() : kPage), "FetchNext");
    benchmark::DoNotOptimize(hits);
    last = cursor->stats();
  }
  ReportShardCounters(state, last);
}

void BM_ShardFirst10Cold(benchmark::State& state) {
  RunCold(state, /*drain=*/false);
}
BENCHMARK(BM_ShardFirst10Cold)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ShardFirst10Warm(benchmark::State& state) {
  RunWarm(state, /*drain=*/false);
}
BENCHMARK(BM_ShardFirst10Warm)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ShardDrainAllCold(benchmark::State& state) {
  RunCold(state, /*drain=*/true);
}
BENCHMARK(BM_ShardDrainAllCold)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ShardDrainAllWarm(benchmark::State& state) {
  RunWarm(state, /*drain=*/true);
}
BENCHMARK(BM_ShardDrainAllWarm)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
