// §5.2.3 "Other results": PDT size vs base data size. The paper reports
// ~2 MB of PDTs for 500 MB of data (a 250x reduction); the shape to
// verify is that PDTs stay a small, slowly-growing fraction of the data.
#include "bench/bench_common.h"

#include "xml/serializer.h"

namespace quickview::bench {
namespace {

void BM_PdtSize(benchmark::State& state) {
  workload::InexOptions opts;
  opts.target_bytes = kBytesPerScaleUnit * static_cast<uint64_t>(
                                                state.range(0));
  Fixture& fixture = GetFixture(opts);
  std::string view = workload::BuildInexView(workload::ViewSpec{});
  auto keywords = workload::KeywordsForTier(workload::KeywordTier::kMedium);
  engine::SearchResponse last;
  for (auto _ : state) {
    last = DieOnError(ExecuteView(*fixture.efficient,
                          view, keywords, engine::SearchOptions{}),
                      "efficient");
  }
  const xml::Document* base = fixture.db->GetDocument("inex.xml");
  double base_bytes =
      static_cast<double>(xml::SubtreeByteLength(*base, base->root()));
  state.counters["base_bytes"] = benchmark::Counter(base_bytes);
  state.counters["pdt_bytes"] =
      benchmark::Counter(static_cast<double>(last.stats.pdt.pdt_bytes));
  state.counters["reduction_x"] = benchmark::Counter(
      base_bytes / static_cast<double>(last.stats.pdt.pdt_bytes));
}
BENCHMARK(BM_PdtSize)->DenseRange(1, 5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
