// Figure 14: per-module cost breakdown (PDT generation / Evaluator /
// Post-processing) of the Efficient engine while varying data size.
// Expected shape: all modules scale gracefully; the evaluator dominates
// as data grows; post-processing is negligible.
#include "bench/bench_common.h"

namespace quickview::bench {
namespace {

void BM_Modules(benchmark::State& state) {
  workload::InexOptions opts;
  opts.target_bytes = kBytesPerScaleUnit * static_cast<uint64_t>(
                                                state.range(0));
  Fixture& fixture = GetFixture(opts);
  std::string view = workload::BuildInexView(workload::ViewSpec{});
  auto keywords = workload::KeywordsForTier(workload::KeywordTier::kMedium);
  engine::SearchResponse last;
  for (auto _ : state) {
    last = DieOnError(ExecuteView(*fixture.efficient,
                          view, keywords, engine::SearchOptions{}),
                      "efficient");
  }
  ReportTimings(state, last);
  state.counters["qpt_ms"] = benchmark::Counter(
      last.timings.qpt_ms, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Modules)->DenseRange(1, 5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
