// Microbenchmarks for the index substrates: B+-tree point ops, path-index
// probes (the unit of PrepareLists cost) and inverted-list scans.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "index/btree.h"

namespace quickview::bench {
namespace {

void BM_BTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    index::BTree tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      tree.Insert("key" + std::to_string(i), "value");
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BTreeGet(benchmark::State& state) {
  index::BTree tree;
  for (int i = 0; i < state.range(0); ++i) {
    tree.Insert("key" + std::to_string(i), "value");
  }
  int i = 0;
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Get("key" + std::to_string(i++ % state.range(0)), &value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeGet)->Arg(1000)->Arg(100000);

void BM_PathIndexProbe(benchmark::State& state) {
  workload::InexOptions opts;
  Fixture& fixture = GetFixture(opts);
  const index::PathIndex& index =
      fixture.indexes->Get("inex.xml")->path_index;
  index::PathPattern pattern{index::PathStep{false, "books"},
                             index::PathStep{true, "article"},
                             index::PathStep{false, "year"}};
  for (auto _ : state) {
    auto entries = index.LookUpIdValue(pattern);
    benchmark::DoNotOptimize(entries);
  }
}
BENCHMARK(BM_PathIndexProbe)->Unit(benchmark::kMicrosecond);

void BM_InvertedListScan(benchmark::State& state) {
  workload::InexOptions opts;
  Fixture& fixture = GetFixture(opts);
  const index::InvertedIndex& index =
      fixture.indexes->Get("inex.xml")->inverted_index;
  // "ieee" is the low-selectivity (long-list) term.
  for (auto _ : state) {
    auto postings = index.Lookup("ieee");
    benchmark::DoNotOptimize(postings);
  }
}
BENCHMARK(BM_InvertedListScan)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
