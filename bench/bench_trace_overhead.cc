// Tracing overhead: the same warm sharded search with request.trace
// null (the default search path) versus attached-and-serialized (what
// the server pays for a kFlagTrace request or under --trace-all). The
// obs::Trace contract is "near-zero cost when off, cheap when on": the
// traced variant pays span creation, monotonic clock reads, counter
// attribution, and the full text serialization, and must still land
// within a few percent of the untraced search.
//
// The benchmark pair reports both sides for bench/baseline.json; with
// QV_BENCH_ASSERT_OVERHEAD=1 the binary then measures the two variants
// interleaved (to cancel frequency/cache drift) and fails if the traced
// p50 exceeds the untraced p50 by more than 3%.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "engine/result_cursor.h"
#include "obs/trace.h"
#include "storage/shard_set.h"
#include "workload/bookrev_generator.h"

namespace quickview::bench {
namespace {

constexpr int kShards = 2;
constexpr size_t kPage = 10;

struct TraceOverheadFixture {
  std::shared_ptr<xml::Database> db;
  std::unique_ptr<storage::ShardSet> shard_set;
  std::unique_ptr<ThreadPool> pool;
};

TraceOverheadFixture& GetTraceOverheadFixture() {
  static auto* fixture = [] {
    auto f = new TraceOverheadFixture();
    workload::BookRevOptions opts;
    opts.num_books = 900;
    opts.max_reviews_per_book = 4;
    f->db = workload::GenerateBookRevDatabase(opts);
    storage::ShardingSpec spec;
    spec.shards = kShards;
    spec.colocate_tag = "isbn";
    auto set = storage::ShardSet::Partition(*f->db, spec);
    if (!set.ok()) {
      fprintf(stderr, "FATAL Partition: %s\n",
              set.status().ToString().c_str());
      abort();
    }
    f->shard_set =
        std::make_unique<storage::ShardSet>(std::move(*set));
    f->pool = std::make_unique<ThreadPool>(kShards);
    return f;
  }();
  return *fixture;
}

std::vector<engine::ShardContext> Contexts() {
  const storage::ShardSet& set = *GetTraceOverheadFixture().shard_set;
  std::vector<engine::ShardContext> contexts;
  for (size_t i = 0; i < set.size(); ++i) {
    const storage::Shard& shard = set.shard(i);
    contexts.push_back(engine::ShardContext{
        shard.database.get(), shard.index_source(), shard.store.get()});
  }
  return contexts;
}

engine::SearchRequest MakeRequest() {
  engine::SearchRequest request;
  request.view = workload::BookRevView();
  request.keywords = {"xml", "search"};
  request.options.conjunctive = false;
  request.options.top_k = kPage;
  return request;
}

/// Warm prepared queries, shared by both variants: an iteration pays
/// evaluation + merge + first-page materialization, the server's cache
/// steady state — the path whose latency tracing must not move.
std::vector<std::shared_ptr<const engine::PreparedQuery>> Prepare(
    engine::ViewSearchEngine& engine, const engine::SearchRequest& request) {
  std::vector<std::shared_ptr<const engine::PreparedQuery>> prepared;
  for (int s = 0; s < kShards; ++s) {
    auto plan = DieOnError(
        engine.PlanQuery(engine::ComposeKeywordQuery(
            request.view, request.keywords, request.options.conjunctive)),
        "PlanQuery");
    prepared.push_back(
        DieOnError(engine.BuildPdts(std::move(plan), s), "BuildPdts"));
  }
  return prepared;
}

/// One warm search; with tracing, also serializes the span tree (the
/// server does both for every traced request). Returns the serialized
/// size so the bench can report it.
size_t RunOnce(
    engine::ViewSearchEngine& engine,
    const std::vector<std::shared_ptr<const engine::PreparedQuery>>& prepared,
    bool traced, uint64_t trace_id) {
  engine::SearchRequest request = MakeRequest();
  if (traced) request.trace = std::make_shared<obs::Trace>(trace_id);
  auto cursor = DieOnError(engine.Open(request, prepared), "Open");
  auto hits = DieOnError(cursor->FetchNext(kPage), "FetchNext");
  benchmark::DoNotOptimize(hits);
  if (!traced) return 0;
  std::string tree = request.trace->Serialize();
  benchmark::DoNotOptimize(tree);
  return tree.size();
}

void RunVariant(benchmark::State& state, bool traced) {
  engine::ViewSearchEngine engine(Contexts(),
                                  GetTraceOverheadFixture().pool.get());
  const auto prepared = Prepare(engine, MakeRequest());
  uint64_t trace_id = 0;
  size_t trace_bytes = 0;
  for (auto _ : state) {
    trace_bytes = RunOnce(engine, prepared, traced, ++trace_id);
  }
  if (traced) {
    state.counters["trace_bytes"] =
        benchmark::Counter(static_cast<double>(trace_bytes));
  }
}

void BM_SearchUntraced(benchmark::State& state) {
  RunVariant(state, /*traced=*/false);
}
BENCHMARK(BM_SearchUntraced)->Unit(benchmark::kMillisecond);

void BM_SearchTraced(benchmark::State& state) {
  RunVariant(state, /*traced=*/true);
}
BENCHMARK(BM_SearchTraced)->Unit(benchmark::kMillisecond);

uint64_t PercentileUs(std::vector<uint64_t>& samples, double q) {
  std::sort(samples.begin(), samples.end());
  const size_t rank = std::min(
      samples.size() - 1, static_cast<size_t>(q * samples.size()));
  return samples[rank];
}

/// Interleaved A/B measurement: alternating the variants inside one loop
/// makes both sides see the same thermal / frequency / cache conditions,
/// so the p50 delta isolates the tracing cost itself.
int AssertOverhead() {
  engine::ViewSearchEngine engine(Contexts(),
                                  GetTraceOverheadFixture().pool.get());
  const auto prepared = Prepare(engine, MakeRequest());

  constexpr int kWarmup = 20;
  constexpr int kSamples = 300;
  for (int i = 0; i < kWarmup; ++i) {
    RunOnce(engine, prepared, /*traced=*/(i % 2) != 0, i + 1);
  }

  std::vector<uint64_t> untraced_us, traced_us;
  untraced_us.reserve(kSamples);
  traced_us.reserve(kSamples);
  for (int i = 0; i < 2 * kSamples; ++i) {
    const bool traced = (i % 2) != 0;
    const auto start = std::chrono::steady_clock::now();
    RunOnce(engine, prepared, traced, i + 1);
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    (traced ? traced_us : untraced_us)
        .push_back(static_cast<uint64_t>(elapsed.count()));
  }

  const uint64_t untraced_p50 = PercentileUs(untraced_us, 0.50);
  const uint64_t traced_p50 = PercentileUs(traced_us, 0.50);
  const double delta =
      untraced_p50 == 0
          ? 0.0
          : (static_cast<double>(traced_p50) - static_cast<double>(untraced_p50)) /
                static_cast<double>(untraced_p50);
  std::printf(
      "trace overhead: untraced p50 %lluus, traced p50 %lluus, delta %+.2f%% "
      "(budget +3%%)\n",
      static_cast<unsigned long long>(untraced_p50),
      static_cast<unsigned long long>(traced_p50), delta * 100.0);
  if (delta > 0.03) {
    std::fprintf(stderr,
                 "FAIL: tracing moved warm-search p50 by more than 3%%\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace quickview::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const char* gate = std::getenv("QV_BENCH_ASSERT_OVERHEAD");
  if (gate != nullptr && gate[0] == '1') {
    return quickview::bench::AssertOverhead();
  }
  return 0;
}
