// Figure 17: Efficient run time while varying the number of value joins
// in the view (0..4). Expected shape: cost grows with joins; the largest
// jump is 0 -> 1 (a second PDT plus value-join evaluation replaces a
// cheap selection).
#include "bench/bench_common.h"

namespace quickview::bench {
namespace {

void BM_Joins(benchmark::State& state) {
  workload::InexOptions opts;
  Fixture& fixture = GetFixture(opts);
  workload::ViewSpec spec;
  spec.num_joins = static_cast<int>(state.range(0));
  std::string view = workload::BuildInexView(spec);
  auto keywords = workload::KeywordsForTier(workload::KeywordTier::kMedium);
  engine::SearchResponse last;
  for (auto _ : state) {
    last = DieOnError(ExecuteView(*fixture.efficient,
                          view, keywords, engine::SearchOptions{}),
                      "efficient");
  }
  ReportTimings(state, last);
}
BENCHMARK(BM_Joins)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
