// §5.2.3 "Other results": varying the average size of a view element
// (1X..5X body text per article). Expected shape: efficient and scalable
// growth — PDT sizes stay small because content is summarized, not
// materialized.
#include "bench/bench_common.h"

namespace quickview::bench {
namespace {

void BM_ElementSize(benchmark::State& state) {
  workload::InexOptions opts;
  opts.element_size_factor = static_cast<int>(state.range(0));
  Fixture& fixture = GetFixture(opts);
  std::string view = workload::BuildInexView(workload::ViewSpec{});
  auto keywords = workload::KeywordsForTier(workload::KeywordTier::kMedium);
  engine::SearchResponse last;
  for (auto _ : state) {
    last = DieOnError(ExecuteView(*fixture.efficient,
                          view, keywords, engine::SearchOptions{}),
                      "efficient");
  }
  ReportTimings(state, last);
  state.counters["pdt_bytes"] =
      benchmark::Counter(static_cast<double>(last.stats.pdt.pdt_bytes));
}
BENCHMARK(BM_ElementSize)->DenseRange(1, 5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
