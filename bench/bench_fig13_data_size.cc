// Figure 13: run time of all four approaches while varying the data size
// (paper x-axis 100..500 MB; here scale units of kBytesPerScaleUnit).
// Expected shape: Efficient is ~an order of magnitude below Baseline, GTP
// and Proj, and all grow roughly linearly with data size.
#include "bench/bench_common.h"

#include "baseline/projection.h"
#include "qpt/generate_qpt.h"
#include "xquery/parser.h"

namespace quickview::bench {
namespace {

workload::InexOptions OptsForScale(int64_t scale) {
  workload::InexOptions opts;
  opts.target_bytes = kBytesPerScaleUnit * static_cast<uint64_t>(scale);
  return opts;
}

const std::vector<std::string>& Keywords() {
  static const auto* kw = new std::vector<std::string>(
      workload::KeywordsForTier(workload::KeywordTier::kMedium));
  return *kw;
}

std::string DefaultView() {
  return workload::BuildInexView(workload::ViewSpec{});
}

void BM_Efficient(benchmark::State& state) {
  Fixture& fixture = GetFixture(OptsForScale(state.range(0)));
  engine::SearchResponse last;
  for (auto _ : state) {
    last = DieOnError(ExecuteView(*fixture.efficient,
                          DefaultView(), Keywords(), engine::SearchOptions{}),
                      "efficient");
  }
  ReportTimings(state, last);
  // The paper's core access-volume claim: Efficient touches only index
  // entries plus top-k materialization, never the full view/base data.
  state.counters["bytes_touched"] = benchmark::Counter(
      static_cast<double>(last.stats.pdt.pdt_bytes + last.stats.store_bytes));
  state.counters["view_bytes"] =
      benchmark::Counter(static_cast<double>(last.stats.view_bytes));
}
BENCHMARK(BM_Efficient)->DenseRange(1, 5)->Unit(benchmark::kMillisecond);

void BM_Baseline(benchmark::State& state) {
  Fixture& fixture = GetFixture(OptsForScale(state.range(0)));
  engine::SearchResponse last;
  for (auto _ : state) {
    last = DieOnError(fixture.naive->SearchView(DefaultView(), Keywords(),
                                                engine::SearchOptions{}),
                      "baseline");
  }
  ReportTimings(state, last);
  // Baseline materializes and tokenizes the entire view.
  state.counters["bytes_touched"] =
      benchmark::Counter(static_cast<double>(last.stats.view_bytes));
}
BENCHMARK(BM_Baseline)->DenseRange(1, 5)->Unit(benchmark::kMillisecond);

void BM_Gtp(benchmark::State& state) {
  Fixture& fixture = GetFixture(OptsForScale(state.range(0)));
  engine::SearchResponse last;
  for (auto _ : state) {
    last = DieOnError(fixture.gtp->SearchView(DefaultView(), Keywords(),
                                              engine::SearchOptions{}),
                      "gtp");
  }
  ReportTimings(state, last);
  // GTP's signature cost: per-candidate random base-data accesses for
  // join values and statistics.
  state.counters["store_fetches"] =
      benchmark::Counter(static_cast<double>(last.stats.store_fetches));
  state.counters["bytes_touched"] =
      benchmark::Counter(static_cast<double>(last.stats.store_bytes));
}
BENCHMARK(BM_Gtp)->DenseRange(1, 5)->Unit(benchmark::kMillisecond);

// Proj measures only projected-document generation (paper: "its runtime
// merely characterizes the cost of generating projected documents").
void BM_Proj(benchmark::State& state) {
  Fixture& fixture = GetFixture(OptsForScale(state.range(0)));
  auto query = DieOnError(xquery::ParseQuery(DefaultView()), "parse");
  auto qpts = DieOnError(qpt::GenerateQpts(&query), "qpt");
  baseline::ProjectionStats stats;
  for (auto _ : state) {
    for (const qpt::Qpt& q : qpts) {
      auto paths = baseline::ProjectionPathsFromQpt(q);
      const xml::Document* doc = fixture.db->GetDocument(q.source_doc);
      auto projected = baseline::ProjectDocument(*doc, paths, &stats);
      benchmark::DoNotOptimize(projected);
    }
  }
  // Proj's signature cost: a full scan of every base element.
  state.counters["elements_scanned"] =
      benchmark::Counter(static_cast<double>(stats.elements_scanned));
}
BENCHMARK(BM_Proj)->DenseRange(1, 5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
