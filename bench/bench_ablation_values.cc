// Ablation (DESIGN.md §4): selective value materialization. The paper's
// PrepareLists retrieves values only for 'v'-annotated nodes ("combining
// retrieval of IDs and values", §4.2.1). This bench compares the default
// probe plan against an all-values plan (every node probed with values),
// quantifying what selective materialization saves.
#include "bench/bench_common.h"

#include "pdt/prepare_lists.h"
#include "qpt/generate_qpt.h"
#include "xquery/parser.h"

namespace quickview::bench {
namespace {

qpt::Qpt ArticleQpt() {
  auto query = DieOnError(
      xquery::ParseQuery(workload::BuildInexView(workload::ViewSpec{})),
      "parse");
  auto qpts = DieOnError(qpt::GenerateQpts(&query), "qpt");
  for (qpt::Qpt& q : qpts) {
    if (q.source_doc == "inex.xml") return std::move(q);
  }
  abort();
}

void BM_SelectiveValues(benchmark::State& state) {
  workload::InexOptions opts;
  opts.target_bytes = kBytesPerScaleUnit * 2;
  Fixture& fixture = GetFixture(opts);
  qpt::Qpt qpt = ArticleQpt();
  auto keywords = workload::KeywordsForTier(workload::KeywordTier::kMedium);
  for (auto _ : state) {
    auto lists = DieOnError(
        pdt::PrepareLists(qpt, *fixture.indexes->Get("inex.xml"), keywords),
        "prepare");
    benchmark::DoNotOptimize(lists);
  }
}
BENCHMARK(BM_SelectiveValues)->Unit(benchmark::kMillisecond);

void BM_AllValues(benchmark::State& state) {
  workload::InexOptions opts;
  opts.target_bytes = kBytesPerScaleUnit * 2;
  Fixture& fixture = GetFixture(opts);
  qpt::Qpt qpt = ArticleQpt();
  // Force value retrieval everywhere: the "no selective materialization"
  // configuration.
  for (size_t i = 1; i < qpt.nodes.size(); ++i) qpt.nodes[i].v_ann = true;
  auto keywords = workload::KeywordsForTier(workload::KeywordTier::kMedium);
  for (auto _ : state) {
    auto lists = DieOnError(
        pdt::PrepareLists(qpt, *fixture.indexes->Get("inex.xml"), keywords),
        "prepare");
    benchmark::DoNotOptimize(lists);
  }
}
BENCHMARK(BM_AllValues)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quickview::bench

BENCHMARK_MAIN();
