// Document storage (paper Fig 3, bottom right). The Scoring &
// Materialization module fetches full element subtrees from here for the
// top-k results only; access statistics let benchmarks verify that the
// Efficient path touches base data solely during final materialization.
#ifndef QUICKVIEW_STORAGE_DOCUMENT_STORE_H_
#define QUICKVIEW_STORAGE_DOCUMENT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "xml/dom.h"

namespace quickview::storage {

/// Stores the base documents of a Database and serves subtree fetches by
/// (document root component, Dewey id).
class DocumentStore {
 public:
  struct Stats {
    uint64_t fetch_calls = 0;
    uint64_t bytes_fetched = 0;
  };

  /// Registers every document of `database`. The store keeps shared
  /// ownership; the database may outlive or predecease the store.
  explicit DocumentStore(const xml::Database& database);

  /// Copies the stored subtree identified by (`root_component`, `id`) into
  /// `target` as a child of `target_parent` (or as the root when `target`
  /// is empty and `target_parent` is kInvalidNode). Counts fetch stats.
  Status CopySubtree(uint32_t root_component, const xml::DeweyId& id,
                     xml::Document* target, xml::NodeIndex target_parent);

  /// Returns the atomic text value of the element, or NotFound.
  Status GetValue(uint32_t root_component, const xml::DeweyId& id,
                  std::string* out);

  /// Serialized byte length of the element's subtree (a base-data access;
  /// used by baselines that cannot get lengths from indices).
  Status GetSubtreeLength(uint32_t root_component, const xml::DeweyId& id,
                          uint64_t* out);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  const xml::Document* Resolve(uint32_t root_component) const;

  std::map<uint32_t, std::shared_ptr<const xml::Document>> docs_;
  Stats stats_;
};

}  // namespace quickview::storage

#endif  // QUICKVIEW_STORAGE_DOCUMENT_STORE_H_
