// Document storage (paper Fig 3, bottom right). The Scoring &
// Materialization module fetches full element subtrees from here for the
// top-k results only; access statistics let benchmarks verify that the
// Efficient path touches base data solely during final materialization.
//
// Two backings, one fetch API (the PageSource split of the storage
// engine): an in-memory Database, or a packed .qvpack database whose
// node-record pages are read on demand through a buffer pool — in that
// mode each fetch also reports the pages it pulled and the buffer hits
// it scored.
//
// Thread safety: the store is immutable after construction; every fetch
// method is const and safe to call concurrently. The global access
// counters are relaxed atomics; callers that need per-query accounting
// (meaningless to derive from deltas of a shared counter under
// concurrency) pass a local `Stats* accounting` that each fetch also
// accumulates into. There is deliberately no mutex here — and so
// nothing for common/sync.h's QV_GUARDED_BY vocabulary to annotate: the
// only shared mutable state is those atomics. Publication of a NEW
// store (live mode replaces the snapshot wholesale) is what needs a
// lock, and that lock lives in LiveDatabase (see live_database.h),
// where the snapshot pointer is annotated against it.
#ifndef QUICKVIEW_STORAGE_DOCUMENT_STORE_H_
#define QUICKVIEW_STORAGE_DOCUMENT_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "xml/dom.h"

namespace quickview::pagestore {
class PackedDb;
}  // namespace quickview::pagestore

namespace quickview::storage {

/// Stores the base documents of a Database and serves subtree fetches by
/// (document root component, Dewey id).
class DocumentStore {
 public:
  /// A snapshot of (or a local accumulator for) access counters.
  struct Stats {  // lint:allow(adhoc-stats) snapshot view over the store's counters
    uint64_t fetch_calls = 0;
    uint64_t bytes_fetched = 0;
    /// Disk-backed stores only (always zero for in-memory backing).
    uint64_t pages_read = 0;
    uint64_t buffer_hits = 0;
  };

  /// Registers every document of `database`. The store keeps shared
  /// ownership; the database may outlive or predecease the store.
  explicit DocumentStore(const xml::Database& database);

  /// Serves fetches from a packed on-disk database: only the node-record
  /// (and locator) pages a fetch actually needs are read, through the
  /// database's shared buffer pool.
  explicit DocumentStore(std::shared_ptr<const pagestore::PackedDb> packed);

  ~DocumentStore();
  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;

  /// Copies the stored subtree identified by (`root_component`, `id`) into
  /// `target` as a child of `target_parent` (or as the root when `target`
  /// is empty and `target_parent` is kInvalidNode). Counts fetch stats.
  Status CopySubtree(uint32_t root_component, const xml::DeweyId& id,
                     xml::Document* target, xml::NodeIndex target_parent,
                     Stats* accounting = nullptr) const;

  /// Returns the atomic text value of the element, or NotFound.
  Status GetValue(uint32_t root_component, const xml::DeweyId& id,
                  std::string* out, Stats* accounting = nullptr) const;

  /// Serialized byte length of the element's subtree (a base-data access;
  /// used by baselines that cannot get lengths from indices).
  Status GetSubtreeLength(uint32_t root_component, const xml::DeweyId& id,
                          uint64_t* out, Stats* accounting = nullptr) const;

  Stats stats() const {
    return Stats{fetch_calls_.load(std::memory_order_relaxed),
                 bytes_fetched_.load(std::memory_order_relaxed),
                 pages_read_.load(std::memory_order_relaxed),
                 buffer_hits_.load(std::memory_order_relaxed)};
  }
  void ResetStats() {
    fetch_calls_.store(0, std::memory_order_relaxed);
    bytes_fetched_.store(0, std::memory_order_relaxed);
    pages_read_.store(0, std::memory_order_relaxed);
    buffer_hits_.store(0, std::memory_order_relaxed);
  }

  /// True when fetches read .qvpack pages instead of in-memory nodes.
  bool paged() const { return packed_ != nullptr; }

 private:
  const xml::Document* Resolve(uint32_t root_component) const;

  void CountFetch(uint64_t bytes, uint64_t pages, uint64_t hits,
                  Stats* accounting) const {
    fetch_calls_.fetch_add(1, std::memory_order_relaxed);
    bytes_fetched_.fetch_add(bytes, std::memory_order_relaxed);
    if (pages != 0) pages_read_.fetch_add(pages, std::memory_order_relaxed);
    if (hits != 0) buffer_hits_.fetch_add(hits, std::memory_order_relaxed);
    if (accounting != nullptr) {
      ++accounting->fetch_calls;
      accounting->bytes_fetched += bytes;
      accounting->pages_read += pages;
      accounting->buffer_hits += hits;
    }
  }

  std::map<uint32_t, std::shared_ptr<const xml::Document>> docs_;
  std::shared_ptr<const pagestore::PackedDb> packed_;  // null = in-memory
  mutable std::atomic<uint64_t> fetch_calls_{0};
  mutable std::atomic<uint64_t> bytes_fetched_{0};
  mutable std::atomic<uint64_t> pages_read_{0};
  mutable std::atomic<uint64_t> buffer_hits_{0};
};

}  // namespace quickview::storage

#endif  // QUICKVIEW_STORAGE_DOCUMENT_STORE_H_
