#include "storage/live_database.h"

#include <utility>

#include "xml/parser.h"

namespace quickview::storage {

LiveDatabase::LiveDatabase()
    : db_(std::make_shared<xml::Database>()),
      indexes_(std::make_unique<index::DatabaseIndexes>()),
      store_(std::make_shared<const DocumentStore>(*db_)) {}

LiveDatabase::LiveDatabase(std::shared_ptr<xml::Database> initial)
    : db_(std::move(initial)),
      indexes_(index::BuildDatabaseIndexes(*db_)),
      store_(std::make_shared<const DocumentStore>(*db_)) {
  documents_.Set(static_cast<int64_t>(db_->documents().size()));
}

Status LiveDatabase::InsertDocument(const std::string& name,
                                    const std::string& xml_text) {
  std::shared_ptr<xml::Document> old_doc = db_->GetDocumentShared(name);
  // Replacements keep their root Dewey component so the document's "path
  // ordinal" stays stable across versions; new names get a fresh one. The
  // parse happens before any state changes: a bad document leaves the
  // corpus, the indexes and the published snapshot untouched.
  uint32_t root_component = old_doc != nullptr ? old_doc->root_component()
                                               : db_->NextRootComponent();
  QUICKVIEW_ASSIGN_OR_RETURN(std::shared_ptr<xml::Document> doc,
                             xml::ParseXml(xml_text, root_component));

  if (old_doc != nullptr) {
    // In-place incremental maintenance: remove the old version's postings
    // and path entries from the live B+-trees, insert the new version's.
    index::DocumentIndexes* doc_indexes = indexes_->GetMutable(name);
    doc_indexes->RemoveDocument(*old_doc);
    doc_indexes->AddDocument(*doc);
    db_->RemoveDocument(name);
  } else {
    indexes_->Put(name, index::BuildDocumentIndexes(*doc));
  }
  db_->AddDocument(name, std::move(doc));
  store_ = std::make_shared<const DocumentStore>(*db_);
  inserts_.Increment();
  documents_.Set(static_cast<int64_t>(db_->documents().size()));
  return Status::OK();
}

Status LiveDatabase::RemoveDocument(const std::string& name) {
  if (!db_->RemoveDocument(name)) {
    return Status::NotFound("no document named '" + name + "'");
  }
  indexes_->Remove(name);
  store_ = std::make_shared<const DocumentStore>(*db_);
  removes_.Increment();
  documents_.Set(static_cast<int64_t>(db_->documents().size()));
  return Status::OK();
}

Status LiveDatabase::RegisterMetrics(obs::MetricsRegistry* registry,
                                     obs::LabelSet labels) const {
  QV_RETURN_IF_ERROR(registry->RegisterCounter("qv_livedb_inserts_total",
                                               labels, &inserts_));
  QV_RETURN_IF_ERROR(registry->RegisterCounter("qv_livedb_removes_total",
                                               labels, &removes_));
  return registry->RegisterGauge("qv_livedb_documents", labels, &documents_);
}

std::vector<std::string> LiveDatabase::document_names() const {
  std::vector<std::string> out;
  out.reserve(db_->documents().size());
  for (const auto& [name, doc] : db_->documents()) out.push_back(name);
  return out;
}

}  // namespace quickview::storage
