#include "storage/live_database.h"

#include <utility>

#include "pagestore/delta_log.h"
#include "xml/parser.h"

namespace quickview::storage {

LiveDatabase::LiveDatabase()
    : db_(std::make_shared<xml::Database>()),
      indexes_(std::make_unique<index::DatabaseIndexes>()),
      store_(std::make_shared<const DocumentStore>(*db_)) {}

LiveDatabase::LiveDatabase(std::shared_ptr<xml::Database> initial)
    : db_(std::move(initial)),
      indexes_(index::BuildDatabaseIndexes(*db_)),
      store_(std::make_shared<const DocumentStore>(*db_)) {
  documents_.Set(static_cast<int64_t>(db_->documents().size()));
}

Status LiveDatabase::InsertDocument(const std::string& name,
                                    const std::string& xml_text) {
  std::shared_ptr<xml::Document> old_doc = db_->GetDocumentShared(name);
  // Replacements keep their root Dewey component so the document's "path
  // ordinal" stays stable across versions; new names get a fresh one. The
  // parse happens before any state changes: a bad document leaves the
  // corpus, the indexes and the published snapshot untouched.
  uint32_t root_component = old_doc != nullptr ? old_doc->root_component()
                                               : db_->NextRootComponent();
  QUICKVIEW_ASSIGN_OR_RETURN(std::shared_ptr<xml::Document> doc,
                             xml::ParseXml(xml_text, root_component));

  if (old_doc != nullptr) {
    // In-place incremental maintenance: remove the old version's postings
    // and path entries from the live B+-trees, insert the new version's.
    index::DocumentIndexes* doc_indexes = indexes_->GetMutable(name);
    doc_indexes->RemoveDocument(*old_doc);
    doc_indexes->AddDocument(*doc);
    db_->RemoveDocument(name);
  } else {
    indexes_->Put(name, index::BuildDocumentIndexes(*doc));
  }
  db_->AddDocument(name, std::move(doc));
  store_ = std::make_shared<const DocumentStore>(*db_);
  inserts_.Increment();
  documents_.Set(static_cast<int64_t>(db_->documents().size()));
  return Status::OK();
}

Status LiveDatabase::RemoveDocument(const std::string& name) {
  if (!db_->RemoveDocument(name)) {
    return Status::NotFound("no document named '" + name + "'");
  }
  indexes_->Remove(name);
  store_ = std::make_shared<const DocumentStore>(*db_);
  removes_.Increment();
  documents_.Set(static_cast<int64_t>(db_->documents().size()));
  return Status::OK();
}

Status LiveDatabase::OpenWal(const std::string& path,
                             const pagestore::WalOptions& options) {
  if (wal_ != nullptr) {
    return Status::InvalidArgument("a WAL is already attached at " +
                                   wal_->path());
  }
  QUICKVIEW_ASSIGN_OR_RETURN(std::unique_ptr<pagestore::Wal> wal,
                             pagestore::Wal::Open(path, options));
  // Replay the committed history into the corpus before accepting new
  // traffic. A tombstone for an absent name is a no-op (see
  // CommitRemove's race note), anything else that fails to apply is a
  // real error — the log would not match the corpus it claims to
  // describe.
  qv::WriterLock lock(mu_);
  for (const std::string& payload : wal->replay().payloads) {
    QUICKVIEW_ASSIGN_OR_RETURN(pagestore::DeltaRecord record,
                               pagestore::DecodeDeltaPayload(payload));
    if (record.tombstone) {
      Status removed = RemoveDocument(record.name);
      if (!removed.ok() && removed.code() != StatusCode::kNotFound) {
        return removed;
      }
    } else {
      QUICKVIEW_RETURN_IF_ERROR(InsertDocument(record.name, record.xml));
    }
  }
  wal_ = std::move(wal);
  return Status::OK();
}

Status LiveDatabase::CommitInsert(const std::string& name,
                                  const std::string& xml_text,
                                  const std::function<void()>& post_apply) {
  if (wal_ == nullptr) {
    qv::WriterLock lock(mu_);
    QUICKVIEW_RETURN_IF_ERROR(InsertDocument(name, xml_text));
    if (post_apply) post_apply();
    return Status::OK();
  }
  if (name.empty()) {
    return Status::InvalidArgument("document name must not be empty");
  }
  // Validate before logging (and before joining a commit group): a
  // record that cannot replay would poison recovery, and rejecting it
  // here keeps the failure out of the WAL entirely.
  QUICKVIEW_RETURN_IF_ERROR(xml::ParseXml(xml_text));
  pagestore::DeltaRecord record;
  record.name = name;
  record.xml = xml_text;
  // The apply callback runs on the commit-group leader's thread, after
  // the record is durable, in sequence order — so WAL order and apply
  // order agree and replay reproduces exactly this corpus.
  QUICKVIEW_ASSIGN_OR_RETURN(
      uint64_t seq,
      wal_->Append(pagestore::EncodeDeltaPayload(record), [&]() {
        qv::WriterLock lock(mu_);
        Status applied = InsertDocument(name, xml_text);
        if (applied.ok() && post_apply) post_apply();
        return applied;
      }));
  (void)seq;
  return Status::OK();
}

Status LiveDatabase::CommitRemove(const std::string& name,
                                  const std::function<void()>& post_apply) {
  if (wal_ == nullptr) {
    qv::WriterLock lock(mu_);
    Status removed = RemoveDocument(name);
    if (removed.ok() && post_apply) post_apply();
    return removed;
  }
  {
    // Pre-check so a remove of an absent name fails without logging a
    // tombstone. Two racing removers may both pass and both log; the
    // loser's apply returns NotFound (its tombstone replays as a no-op).
    qv::ReaderLock lock(mu_);
    if (db_->GetDocumentShared(name) == nullptr) {
      return Status::NotFound("no document named '" + name + "'");
    }
  }
  pagestore::DeltaRecord record;
  record.tombstone = true;
  record.name = name;
  QUICKVIEW_ASSIGN_OR_RETURN(
      uint64_t seq,
      wal_->Append(pagestore::EncodeDeltaPayload(record), [&]() {
        qv::WriterLock lock(mu_);
        Status removed = RemoveDocument(name);
        if (removed.ok() && post_apply) post_apply();
        return removed;
      }));
  (void)seq;
  return Status::OK();
}

Status LiveDatabase::RegisterMetrics(obs::MetricsRegistry* registry,
                                     obs::LabelSet labels) const {
  QV_RETURN_IF_ERROR(registry->RegisterCounter("qv_livedb_inserts_total",
                                               labels, &inserts_));
  QV_RETURN_IF_ERROR(registry->RegisterCounter("qv_livedb_removes_total",
                                               labels, &removes_));
  QV_RETURN_IF_ERROR(
      registry->RegisterGauge("qv_livedb_documents", labels, &documents_));
  if (wal_ != nullptr) {
    return wal_->RegisterMetrics(registry, std::move(labels));
  }
  return Status::OK();
}

std::vector<std::string> LiveDatabase::document_names() const {
  std::vector<std::string> out;
  out.reserve(db_->documents().size());
  for (const auto& [name, doc] : db_->documents()) out.push_back(name);
  return out;
}

}  // namespace quickview::storage
