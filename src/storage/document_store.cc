#include "storage/document_store.h"

#include <utility>

#include "pagestore/packed_db.h"
#include "xml/serializer.h"

namespace quickview::storage {

using xml::Document;
using xml::NodeIndex;

DocumentStore::DocumentStore(const xml::Database& database) {
  for (const auto& [name, doc] : database.documents()) {
    docs_[doc->root_component()] = doc;
  }
}

DocumentStore::DocumentStore(
    std::shared_ptr<const pagestore::PackedDb> packed)
    : packed_(std::move(packed)) {}

DocumentStore::~DocumentStore() = default;

const Document* DocumentStore::Resolve(uint32_t root_component) const {
  auto it = docs_.find(root_component);
  return it == docs_.end() ? nullptr : it->second.get();
}

Status DocumentStore::CopySubtree(uint32_t root_component,
                                  const xml::DeweyId& id,
                                  xml::Document* target,
                                  xml::NodeIndex target_parent,
                                  Stats* accounting) const {
  if (packed_ != nullptr) {
    pagestore::PageAccounting pages;
    uint64_t bytes = 0;
    QV_RETURN_IF_ERROR(packed_->CopySubtree(root_component, id, target,
                                            target_parent, &bytes, &pages));
    CountFetch(bytes, pages.pages_read, pages.buffer_hits, accounting);
    return Status::OK();
  }
  const Document* doc = Resolve(root_component);
  if (doc == nullptr) {
    return Status::NotFound("no document with root component " +
                            std::to_string(root_component));
  }
  NodeIndex source = doc->FindByDewey(id);
  if (source == xml::kInvalidNode) {
    return Status::NotFound("no element " + id.ToString());
  }
  xml::CopySubtreeInto(*doc, source, target, target_parent);
  CountFetch(xml::SubtreeByteLength(*doc, source), 0, 0, accounting);
  return Status::OK();
}

Status DocumentStore::GetValue(uint32_t root_component,
                               const xml::DeweyId& id, std::string* out,
                               Stats* accounting) const {
  if (packed_ != nullptr) {
    pagestore::PageAccounting pages;
    QV_RETURN_IF_ERROR(packed_->GetValue(root_component, id, out, &pages));
    CountFetch(out->size(), pages.pages_read, pages.buffer_hits, accounting);
    return Status::OK();
  }
  const Document* doc = Resolve(root_component);
  if (doc == nullptr) {
    return Status::NotFound("no document with root component " +
                            std::to_string(root_component));
  }
  NodeIndex source = doc->FindByDewey(id);
  if (source == xml::kInvalidNode) {
    return Status::NotFound("no element " + id.ToString());
  }
  *out = doc->node(source).text;
  CountFetch(out->size(), 0, 0, accounting);
  return Status::OK();
}

Status DocumentStore::GetSubtreeLength(uint32_t root_component,
                                       const xml::DeweyId& id,
                                       uint64_t* out,
                                       Stats* accounting) const {
  if (packed_ != nullptr) {
    pagestore::PageAccounting pages;
    QV_RETURN_IF_ERROR(
        packed_->GetSubtreeLength(root_component, id, out, &pages));
    CountFetch(*out, pages.pages_read, pages.buffer_hits, accounting);
    return Status::OK();
  }
  const Document* doc = Resolve(root_component);
  if (doc == nullptr) {
    return Status::NotFound("no document with root component " +
                            std::to_string(root_component));
  }
  NodeIndex source = doc->FindByDewey(id);
  if (source == xml::kInvalidNode) {
    return Status::NotFound("no element " + id.ToString());
  }
  *out = xml::SubtreeByteLength(*doc, source);
  CountFetch(*out, 0, 0, accounting);
  return Status::OK();
}

}  // namespace quickview::storage
