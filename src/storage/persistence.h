// On-disk persistence for databases and their indices. A quickview
// database directory holds one file per document plus a manifest; indices
// can either be rebuilt at load or serialized alongside (the paper's
// setting: ~1 GB of path + inverted list indices persisted next to the
// 500 MB collection).
//
// Layout of <dir>:
//   manifest.qv           one line per document: <root_component> <name>
//   doc_<root>.xml        serialized document
//   idx_<root>.paths      path index rows (optional, written by SaveIndexes)
//   idx_<root>.terms      inverted index postings (optional)
#ifndef QUICKVIEW_STORAGE_PERSISTENCE_H_
#define QUICKVIEW_STORAGE_PERSISTENCE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "index/index_builder.h"
#include "xml/dom.h"

namespace quickview::storage {

/// Writes every document of `database` under `dir` (created if needed).
Status SaveDatabase(const xml::Database& database, const std::string& dir);

/// Loads a database previously written by SaveDatabase.
Result<std::shared_ptr<xml::Database>> LoadDatabase(const std::string& dir);

/// Serializes the already-built indices next to the documents.
Status SaveIndexes(const xml::Database& database,
                   const index::DatabaseIndexes& indexes,
                   const std::string& dir);

/// Loads indices written by SaveIndexes; returns NotFound if absent
/// (callers then rebuild with BuildDatabaseIndexes).
Result<std::unique_ptr<index::DatabaseIndexes>> LoadIndexes(
    const xml::Database& database, const std::string& dir);

}  // namespace quickview::storage

#endif  // QUICKVIEW_STORAGE_PERSISTENCE_H_
