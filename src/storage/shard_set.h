// ShardSet: an ordered partition of one logical corpus into N
// self-contained shards — each with its own Database (or packed file),
// its own indexes and its own DocumentStore — the unit the sharded
// ViewSearchEngine executes over.
//
// Partition scheme (ordered + contiguous, the property the engine's
// byte-identity guarantee rests on):
//   - The ANCHOR document (lowest root component) has its top-level
//     children split into N contiguous ranges: shard s gets children
//     [s*m/N, (s+1)*m/N). Concatenating the shards in order reproduces
//     the original child sequence exactly.
//   - With a `colocate_tag` (a join-key element tag, e.g. "isbn"), each
//     anchor child's key value is mapped to its shard; later documents'
//     top-level children are routed to the shard of their matching key,
//     so value joins (reviews following their book) stay shard-local.
//     Children with no or unknown key fall back to their document's own
//     contiguous split.
//   - Every shard keeps EVERY document name with its original root
//     component (possibly as a root-only empty document), so views
//     referencing any corpus document evaluate on every shard.
// Views whose outer sequence follows a partitioned document's child
// order (all shipped workloads) therefore produce, per shard, exactly
// the global result subsequence falling in that shard's ranges — in
// order. Cross-document joins must be covered by colocate_tag; a view
// joining on a non-colocated key would lose cross-shard pairs.
#ifndef QUICKVIEW_STORAGE_SHARD_SET_H_
#define QUICKVIEW_STORAGE_SHARD_SET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/index_builder.h"
#include "index/index_view.h"
#include "pagestore/buffer_pool.h"
#include "pagestore/packed_db.h"
#include "storage/document_store.h"
#include "xml/dom.h"

namespace quickview::storage {

struct ShardingSpec {
  int shards = 1;  // must be >= 1
  /// Join-key element tag for co-location (see file comment). Empty:
  /// every document splits contiguously on its own.
  std::string colocate_tag;
};

/// Splits `database` into spec.shards databases per the scheme above.
/// Returned databases are in shard order; every input document name
/// appears in every output database.
Result<std::vector<std::unique_ptr<xml::Database>>> PartitionDatabase(
    const xml::Database& database, const ShardingSpec& spec);

/// One shard, fully wired: exactly one of `database` (in-memory mode) or
/// `packed` (paged mode) is set, plus the matching index source and a
/// DocumentStore over it.
struct Shard {
  std::unique_ptr<xml::Database> database;
  std::shared_ptr<const pagestore::PackedDb> packed;
  std::unique_ptr<index::DatabaseIndexes> indexes;  // in-memory mode only
  std::unique_ptr<DocumentStore> store;

  const index::IndexSource* index_source() const {
    if (indexes != nullptr) return indexes.get();
    return packed.get();
  }
};

class ShardSet {
 public:
  /// In-memory mode: partitions `database`, builds per-shard indexes and
  /// stores. The input database is only read.
  static Result<ShardSet> Partition(const xml::Database& database,
                                    const ShardingSpec& spec);

  /// Paged mode: opens the `.qvset` manifest written by
  /// pagestore::PackShardedDb and every shard pack it lists. The frame
  /// budget `total_frames` is divided evenly across the shards' buffer
  /// pools (minimum 8 frames each), so a sharded corpus competes for the
  /// same residency an unsharded one would get.
  static Result<ShardSet> OpenPacked(const std::string& qvset_path,
                                     size_t total_frames = 256);

  size_t size() const { return shards_.size(); }
  const Shard& shard(size_t i) const { return shards_[i]; }
  bool paged() const {
    return !shards_.empty() && shards_[0].packed != nullptr;
  }

 private:
  std::vector<Shard> shards_;
};

}  // namespace quickview::storage

#endif  // QUICKVIEW_STORAGE_SHARD_SET_H_
