#include "storage/shard_set.h"

#include <algorithm>
#include <map>
#include <utility>

#include "pagestore/shard_pack.h"

namespace quickview::storage {

namespace {

/// Text value of the first subtree node (pre-order) tagged
/// `colocate_tag`, or empty when absent — the join key that routes a
/// top-level element to its shard.
std::string ColocateValue(const xml::Document& doc, xml::NodeIndex start,
                          const std::string& colocate_tag) {
  for (xml::NodeIndex i : doc.SubtreeNodes(start)) {
    if (doc.node(i).tag == colocate_tag) return doc.node(i).text;
  }
  return std::string();
}

/// Contiguous range assignment: child j of m goes to the shard s with
/// j in [s*m/N, (s+1)*m/N). Concatenating shards 0..N-1 reproduces the
/// original child order.
std::vector<size_t> ContiguousAssignment(size_t m, size_t shards) {
  std::vector<size_t> shard_of(m, 0);
  for (size_t s = 0; s < shards; ++s) {
    size_t begin = s * m / shards;
    size_t end = (s + 1) * m / shards;
    for (size_t j = begin; j < end; ++j) shard_of[j] = s;
  }
  return shard_of;
}

}  // namespace

Result<std::vector<std::unique_ptr<xml::Database>>> PartitionDatabase(
    const xml::Database& database, const ShardingSpec& spec) {
  if (spec.shards < 1) {
    return Status::InvalidArgument("shard count must be at least 1, got " +
                                   std::to_string(spec.shards));
  }
  const size_t shards = static_cast<size_t>(spec.shards);

  // Documents in root-component order: the lowest one is the anchor
  // whose contiguous split seeds the co-location map.
  std::map<uint32_t, std::pair<std::string, const xml::Document*>> by_root;
  for (const auto& [name, doc] : database.documents()) {
    by_root.emplace(doc->root_component(), std::make_pair(name, doc.get()));
  }

  std::vector<std::unique_ptr<xml::Database>> out;
  out.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    out.push_back(std::make_unique<xml::Database>());
  }

  std::map<std::string, size_t> route;  // colocate value -> shard
  bool anchor = true;
  for (const auto& [root_component, named] : by_root) {
    const std::string& name = named.first;
    const xml::Document& doc = *named.second;

    // Every shard carries every document name (root-only when no child
    // lands there), so views referencing any document still evaluate.
    std::vector<std::shared_ptr<xml::Document>> pieces;
    pieces.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      auto piece = std::make_shared<xml::Document>(root_component);
      if (doc.has_root()) piece->CreateRoot(doc.node(doc.root()).tag);
      pieces.push_back(std::move(piece));
    }

    if (doc.has_root()) {
      const std::vector<xml::NodeIndex>& children =
          doc.node(doc.root()).children;
      const size_t m = children.size();
      std::vector<size_t> shard_of = ContiguousAssignment(m, shards);
      if (!spec.colocate_tag.empty()) {
        if (anchor) {
          // The anchor's contiguous split defines where each key lives.
          for (size_t j = 0; j < m; ++j) {
            std::string key =
                ColocateValue(doc, children[j], spec.colocate_tag);
            if (!key.empty()) route.emplace(std::move(key), shard_of[j]);
          }
        } else {
          // Followers go to their key's shard; keyless or unknown-key
          // children keep their own contiguous slot.
          for (size_t j = 0; j < m; ++j) {
            std::string key =
                ColocateValue(doc, children[j], spec.colocate_tag);
            auto it = route.find(key);
            if (it != route.end()) shard_of[j] = it->second;
          }
        }
      }
      for (size_t j = 0; j < m; ++j) {
        xml::Document* piece = pieces[shard_of[j]].get();
        xml::CopySubtreeInto(doc, children[j], piece, piece->root());
      }
    }

    for (size_t s = 0; s < shards; ++s) {
      out[s]->AddDocument(name, std::move(pieces[s]));
    }
    anchor = false;
  }
  return out;
}

Result<ShardSet> ShardSet::Partition(const xml::Database& database,
                                     const ShardingSpec& spec) {
  QUICKVIEW_ASSIGN_OR_RETURN(
      std::vector<std::unique_ptr<xml::Database>> databases,
      PartitionDatabase(database, spec));
  ShardSet set;
  set.shards_.reserve(databases.size());
  for (std::unique_ptr<xml::Database>& db : databases) {
    Shard shard;
    shard.database = std::move(db);
    shard.indexes = index::BuildDatabaseIndexes(*shard.database);
    shard.store = std::make_unique<DocumentStore>(*shard.database);
    set.shards_.push_back(std::move(shard));
  }
  return set;
}

Result<ShardSet> ShardSet::OpenPacked(const std::string& qvset_path,
                                      size_t total_frames) {
  QUICKVIEW_ASSIGN_OR_RETURN(pagestore::ShardManifest manifest,
                             pagestore::ReadShardManifest(qvset_path));
  // Resolve pack files relative to the manifest's directory.
  std::string dir;
  size_t slash = qvset_path.find_last_of('/');
  if (slash != std::string::npos) dir = qvset_path.substr(0, slash + 1);

  pagestore::BufferPoolOptions pool;
  pool.frames = std::max<size_t>(
      8, total_frames / static_cast<size_t>(manifest.shards));

  ShardSet set;
  set.shards_.reserve(manifest.pack_files.size());
  for (const std::string& file : manifest.pack_files) {
    QUICKVIEW_ASSIGN_OR_RETURN(
        std::shared_ptr<pagestore::PackedDb> packed,
        pagestore::PackedDb::Open(dir + file, pool));
    Shard shard;
    shard.packed = std::move(packed);
    shard.store = std::make_unique<DocumentStore>(shard.packed);
    set.shards_.push_back(std::move(shard));
  }
  return set;
}

}  // namespace quickview::storage
