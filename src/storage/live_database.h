// LiveDatabase: the mutable face of an in-memory corpus — documents, their
// per-document path/inverted indices, and a copy-on-write DocumentStore
// snapshot chain. Queries over a static corpus never needed a write path;
// a service ingesting and deleting documents while queries run does, and
// it must maintain the indexes incrementally instead of rebuilding them.
//
//   InsertDocument(name, xml)  parse -> assign the document's root Dewey
//                              component (reused on replacement, fresh
//                              otherwise — the "path ordinal" every id in
//                              the document starts with) -> per-document
//                              index maintenance (posting removal + re-add
//                              in place for replacements, a fresh bulk
//                              build for new names) -> publish a new store
//                              snapshot.
//   RemoveDocument(name)       drop the document, its indices and its
//                              store entry.
//
// Snapshot isolation: every mutation publishes a NEW DocumentStore that
// shares the unchanged documents by shared_ptr; readers that captured the
// previous snapshot (open cursors) keep materializing from the exact
// corpus state they were opened against, including removed documents. A
// failed mutation (bad XML, unknown name) changes nothing — readers can
// never observe a half-applied update.
//
// Thread safety: the database OWNS its reader-writer lock but callers
// drive it — mutations and multi-call read sequences must span one
// critical section (a query must see the corpus entirely before or
// entirely after an update, and QueryService bumps view data epochs
// under the same exclusive hold as the mutation they tag). The lock
// discipline is compiler-enforced: every accessor is QV_REQUIRES(mu())
// and clang's thread-safety analysis rejects call sites that don't hold
// it — take a qv::ReaderLock/WriterLock on mu() first. Snapshots
// returned by store() are immutable and safe to use lock-free after
// capture.
#ifndef QUICKVIEW_STORAGE_LIVE_DATABASE_H_
#define QUICKVIEW_STORAGE_LIVE_DATABASE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "index/index_builder.h"
#include "obs/metrics.h"
#include "pagestore/wal.h"
#include "storage/document_store.h"
#include "xml/dom.h"

namespace quickview::storage {

class LiveDatabase {
 public:
  /// Starts empty (documents arrive through InsertDocument).
  LiveDatabase();

  /// Adopts an existing corpus: shares its documents, builds their
  /// indices, publishes the first store snapshot.
  explicit LiveDatabase(std::shared_ptr<xml::Database> initial);

  LiveDatabase(const LiveDatabase&) = delete;
  LiveDatabase& operator=(const LiveDatabase&) = delete;

  /// The corpus lock. Readers hold it shared across every database()/
  /// indexes()/store() sequence that must see one corpus state; writers
  /// hold it exclusively across InsertDocument/RemoveDocument (plus any
  /// bookkeeping that must publish atomically with the mutation, e.g.
  /// QueryService's view data epochs).
  qv::SharedMutex& mu() const QV_RETURN_CAPABILITY(mu_) { return mu_; }

  /// Parses `xml_text` and registers it under `name`. An existing name is
  /// replaced in place: its root Dewey component is kept, its old postings
  /// and path entries are removed from the live B+-trees and the new
  /// document's are inserted. A new name gets the smallest unused root
  /// component and a bulk-built index. ParseError on bad input (state
  /// untouched).
  Status InsertDocument(const std::string& name, const std::string& xml_text)
      QV_REQUIRES(mu_);

  /// Unregisters `name`, dropping its indices and store entry. NotFound
  /// if absent. Store snapshots captured earlier keep the document alive.
  Status RemoveDocument(const std::string& name) QV_REQUIRES(mu_);

  /// Attaches a write-ahead log at `path` and replays its committed
  /// records into the corpus (a torn tail is truncated — see
  /// pagestore/wal.h). Call once, before the database is shared with
  /// other threads; afterwards CommitInsert/CommitRemove are the durable
  /// mutation entry points. InvalidArgument if a WAL is already attached.
  Status OpenWal(const std::string& path,
                 const pagestore::WalOptions& options = {}) QV_EXCLUDES(mu_);

  /// The attached WAL (nullptr when none) — replay info, instruments.
  const pagestore::Wal* wal() const { return wal_.get(); }

  /// Durable insert/replace: the record is group-committed to the WAL
  /// (fdatasync) and only then applied under the exclusive lock, so an
  /// acknowledged mutation can always be replayed. `post_apply` (when
  /// provided) runs after a successful apply, under the same exclusive
  /// hold — bookkeeping that must publish atomically with the mutation
  /// (QueryService's view data epochs) goes there. Without an attached
  /// WAL these degrade to the plain in-memory mutation under the lock.
  Status CommitInsert(const std::string& name, const std::string& xml_text,
                      const std::function<void()>& post_apply = nullptr)
      QV_EXCLUDES(mu_);

  /// Durable remove. NotFound (nothing logged) if `name` is absent at
  /// the pre-check; under a concurrent-remover race the tombstone may
  /// still commit and the loser gets NotFound — replay treats a
  /// tombstone for an absent name as a no-op, so recovery is unaffected.
  Status CommitRemove(const std::string& name,
                      const std::function<void()>& post_apply = nullptr)
      QV_EXCLUDES(mu_);

  /// Current corpus / index surface. Pointers are valid only while the
  /// shared lock is held (a mutation may replace per-document indexes in
  /// place).
  const xml::Database* database() const QV_REQUIRES_SHARED(mu_) {
    return db_.get();
  }
  const index::DatabaseIndexes* indexes() const QV_REQUIRES_SHARED(mu_) {
    return indexes_.get();
  }

  /// Current immutable store snapshot. Capture under the shared lock;
  /// safe to fetch from lock-free afterwards (open cursors pin it).
  std::shared_ptr<const DocumentStore> store() const QV_REQUIRES_SHARED(mu_) {
    return store_;
  }

  std::vector<std::string> document_names() const QV_REQUIRES_SHARED(mu_);

  /// Registers the database's instruments (qv_livedb_*) under `labels`.
  /// Safe without the corpus lock: the instruments are atomics
  /// maintained by the mutation path. The database must outlive the
  /// registry reads.
  Status RegisterMetrics(obs::MetricsRegistry* registry,
                         obs::LabelSet labels = {}) const;

 private:
  mutable qv::SharedMutex mu_;
  // Set once by OpenWal before the database is shared; the Wal itself is
  // internally synchronized (its group-commit mutex), so the pointer
  // needs no lock after attachment.
  std::unique_ptr<pagestore::Wal> wal_;
  std::shared_ptr<xml::Database> db_ QV_GUARDED_BY(mu_);
  std::unique_ptr<index::DatabaseIndexes> indexes_ QV_GUARDED_BY(mu_);
  std::shared_ptr<const DocumentStore> store_ QV_GUARDED_BY(mu_);
  // Registry-native instruments, maintained under the exclusive lock
  // but readable lock-free (exposition never blocks on a mutation).
  obs::Counter inserts_;   // successful InsertDocument calls
  obs::Counter removes_;   // successful RemoveDocument calls
  obs::Gauge documents_;   // current corpus size
};

}  // namespace quickview::storage

#endif  // QUICKVIEW_STORAGE_LIVE_DATABASE_H_
