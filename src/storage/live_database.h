// LiveDatabase: the mutable face of an in-memory corpus — documents, their
// per-document path/inverted indices, and a copy-on-write DocumentStore
// snapshot chain. Queries over a static corpus never needed a write path;
// a service ingesting and deleting documents while queries run does, and
// it must maintain the indexes incrementally instead of rebuilding them.
//
//   InsertDocument(name, xml)  parse -> assign the document's root Dewey
//                              component (reused on replacement, fresh
//                              otherwise — the "path ordinal" every id in
//                              the document starts with) -> per-document
//                              index maintenance (posting removal + re-add
//                              in place for replacements, a fresh bulk
//                              build for new names) -> publish a new store
//                              snapshot.
//   RemoveDocument(name)       drop the document, its indices and its
//                              store entry.
//
// Snapshot isolation: every mutation publishes a NEW DocumentStore that
// shares the unchanged documents by shared_ptr; readers that captured the
// previous snapshot (open cursors) keep materializing from the exact
// corpus state they were opened against, including removed documents. A
// failed mutation (bad XML, unknown name) changes nothing — readers can
// never observe a half-applied update.
//
// Thread safety: externally synchronized. Writers must be exclusive
// against readers of database()/indexes()/store(); QueryService wraps a
// LiveDatabase in its writer lock. Snapshots returned by store() are
// immutable and safe to use lock-free after capture.
#ifndef QUICKVIEW_STORAGE_LIVE_DATABASE_H_
#define QUICKVIEW_STORAGE_LIVE_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/index_builder.h"
#include "storage/document_store.h"
#include "xml/dom.h"

namespace quickview::storage {

class LiveDatabase {
 public:
  /// Starts empty (documents arrive through InsertDocument).
  LiveDatabase();

  /// Adopts an existing corpus: shares its documents, builds their
  /// indices, publishes the first store snapshot.
  explicit LiveDatabase(std::shared_ptr<xml::Database> initial);

  LiveDatabase(const LiveDatabase&) = delete;
  LiveDatabase& operator=(const LiveDatabase&) = delete;

  /// Parses `xml_text` and registers it under `name`. An existing name is
  /// replaced in place: its root Dewey component is kept, its old postings
  /// and path entries are removed from the live B+-trees and the new
  /// document's are inserted. A new name gets the smallest unused root
  /// component and a bulk-built index. ParseError on bad input (state
  /// untouched).
  Status InsertDocument(const std::string& name, const std::string& xml_text);

  /// Unregisters `name`, dropping its indices and store entry. NotFound
  /// if absent. Store snapshots captured earlier keep the document alive.
  Status RemoveDocument(const std::string& name);

  /// Current corpus / index surface. Valid only under the external reader
  /// lock (a mutation may replace per-document indexes in place).
  const xml::Database* database() const { return db_.get(); }
  const index::DatabaseIndexes* indexes() const { return indexes_.get(); }

  /// Current immutable store snapshot. Capture under the reader lock;
  /// safe to fetch from lock-free afterwards (open cursors pin it).
  std::shared_ptr<const DocumentStore> store() const { return store_; }

  std::vector<std::string> document_names() const;

 private:
  std::shared_ptr<xml::Database> db_;
  std::unique_ptr<index::DatabaseIndexes> indexes_;
  std::shared_ptr<const DocumentStore> store_;
};

}  // namespace quickview::storage

#endif  // QUICKVIEW_STORAGE_LIVE_DATABASE_H_
