#include "storage/persistence.h"

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

#include "xml/parser.h"
#include "xml/serializer.h"

namespace quickview::storage {

namespace {

std::string DocPath(const std::string& dir, uint32_t root) {
  return dir + "/doc_" + std::to_string(root) + ".xml";
}
std::string PathsPath(const std::string& dir, uint32_t root) {
  return dir + "/idx_" + std::to_string(root) + ".paths";
}
std::string TermsPath(const std::string& dir, uint32_t root) {
  return dir + "/idx_" + std::to_string(root) + ".terms";
}

// Length-prefixed binary primitives (values may contain any byte).
void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4] = {static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                 static_cast<char>(v >> 8), static_cast<char>(v)};
  out.write(buf, 4);
}

bool ReadU32(std::istream& in, uint32_t* v) {
  unsigned char buf[4];
  if (!in.read(reinterpret_cast<char*>(buf), 4)) return false;
  *v = (static_cast<uint32_t>(buf[0]) << 24) |
       (static_cast<uint32_t>(buf[1]) << 16) |
       (static_cast<uint32_t>(buf[2]) << 8) | buf[3];
  return true;
}

void WriteU64(std::ostream& out, uint64_t v) {
  WriteU32(out, static_cast<uint32_t>(v >> 32));
  WriteU32(out, static_cast<uint32_t>(v & 0xffffffffu));
}

bool ReadU64(std::istream& in, uint64_t* v) {
  uint32_t hi = 0;
  uint32_t lo = 0;
  if (!ReadU32(in, &hi) || !ReadU32(in, &lo)) return false;
  *v = (static_cast<uint64_t>(hi) << 32) | lo;
  return true;
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& in, std::string* s) {
  uint32_t size = 0;
  if (!ReadU32(in, &size)) return false;
  s->resize(size);
  return static_cast<bool>(in.read(s->data(), size));
}

Status EnsureDir(const std::string& dir) {
  struct stat st;
  if (stat(dir.c_str(), &st) == 0) {
    if ((st.st_mode & S_IFDIR) != 0) return Status::OK();
    return Status::InvalidArgument(dir + " exists and is not a directory");
  }
  if (mkdir(dir.c_str(), 0755) != 0) {
    return Status::Internal("cannot create directory " + dir);
  }
  return Status::OK();
}

}  // namespace

Status SaveDatabase(const xml::Database& database, const std::string& dir) {
  QV_RETURN_IF_ERROR(EnsureDir(dir));
  std::ofstream manifest(dir + "/manifest.qv", std::ios::trunc);
  if (!manifest) return Status::Internal("cannot write manifest in " + dir);
  for (const auto& [name, doc] : database.documents()) {
    manifest << doc->root_component() << " " << name << "\n";
    std::ofstream out(DocPath(dir, doc->root_component()),
                      std::ios::trunc | std::ios::binary);
    if (!out) return Status::Internal("cannot write document " + name);
    out << xml::Serialize(*doc);
  }
  return Status::OK();
}

namespace {

/// Strict digits-only u32 parse for manifest root components. stoul-style
/// parsing is no good here: it throws on junk (crashing the loader on a
/// corrupted manifest) and silently accepts trailing garbage.
bool ParseRootComponent(std::string_view text, uint32_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > 0xffffffffu) return false;
  }
  *out = static_cast<uint32_t>(value);
  return true;
}

}  // namespace

Result<std::shared_ptr<xml::Database>> LoadDatabase(const std::string& dir) {
  std::ifstream manifest(dir + "/manifest.qv");
  if (!manifest) return Status::NotFound("no manifest in " + dir);
  auto db = std::make_shared<xml::Database>();
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    size_t space = line.find(' ');
    if (space == std::string::npos) {
      return Status::InvalidArgument("malformed manifest line in " + dir +
                                     ": \"" + line + "\"");
    }
    uint32_t root = 0;
    if (!ParseRootComponent(std::string_view(line).substr(0, space), &root)) {
      return Status::InvalidArgument(
          "malformed manifest line in " + dir +
          " (root component is not a number): \"" + line + "\"");
    }
    std::string name = line.substr(space + 1);
    if (name.empty()) {
      return Status::InvalidArgument("malformed manifest line in " + dir +
                                     " (empty document name): \"" + line +
                                     "\"");
    }
    if (db->GetDocumentByRoot(root) != nullptr ||
        db->GetDocument(name) != nullptr) {
      return Status::InvalidArgument(
          "manifest in " + dir +
          " lists the same document twice: \"" + line + "\"");
    }
    std::ifstream in(DocPath(dir, root), std::ios::binary);
    if (!in) {
      return Status::NotFound("missing document file " +
                              DocPath(dir, root) + " for " + name);
    }
    std::ostringstream content;
    content << in.rdbuf();
    QV_ASSIGN_OR_RETURN(std::shared_ptr<xml::Document> doc,
                        xml::ParseXml(content.str(), root));
    db->AddDocument(name, std::move(doc));
  }
  return db;
}

Status SaveIndexes(const xml::Database& database,
                   const index::DatabaseIndexes& indexes,
                   const std::string& dir) {
  QV_RETURN_IF_ERROR(EnsureDir(dir));
  for (const auto& [name, doc] : database.documents()) {
    const index::DocumentIndexes* doc_indexes = indexes.Get(name);
    if (doc_indexes == nullptr) {
      return Status::NotFound("no indexes for " + name);
    }
    uint32_t root = doc->root_component();
    std::ofstream paths(PathsPath(dir, root),
                        std::ios::trunc | std::ios::binary);
    if (!paths) return Status::Internal("cannot write path index file");
    doc_indexes->path_index.ForEachRow(
        [&paths](const std::string& path, const std::string& value,
                 const std::vector<index::PathEntry>& entries) {
          WriteString(paths, path);
          WriteString(paths, value);
          WriteU32(paths, static_cast<uint32_t>(entries.size()));
          for (const index::PathEntry& entry : entries) {
            WriteString(paths, entry.id.Encode());
            WriteU64(paths, entry.byte_length);
          }
        });
    std::ofstream terms(TermsPath(dir, root),
                        std::ios::trunc | std::ios::binary);
    if (!terms) return Status::Internal("cannot write inverted index file");
    doc_indexes->inverted_index.ForEachPosting(
        [&terms](const std::string& term, const xml::DeweyId& id,
                 uint32_t tf) {
          WriteString(terms, term);
          WriteString(terms, id.Encode());
          WriteU32(terms, tf);
        });
  }
  return Status::OK();
}

Result<std::unique_ptr<index::DatabaseIndexes>> LoadIndexes(
    const xml::Database& database, const std::string& dir) {
  auto out = std::make_unique<index::DatabaseIndexes>();
  for (const auto& [name, doc] : database.documents()) {
    uint32_t root = doc->root_component();
    std::ifstream paths(PathsPath(dir, root), std::ios::binary);
    std::ifstream terms(TermsPath(dir, root), std::ios::binary);
    if (!paths || !terms) {
      return Status::NotFound("no serialized indexes for " + name);
    }
    auto doc_indexes = std::make_unique<index::DocumentIndexes>();
    std::string path;
    while (ReadString(paths, &path)) {
      std::string value;
      uint32_t count = 0;
      if (!ReadString(paths, &value) || !ReadU32(paths, &count)) {
        return Status::ParseError("truncated path index for " + name);
      }
      for (uint32_t i = 0; i < count; ++i) {
        std::string id_bytes;
        uint64_t byte_length = 0;
        if (!ReadString(paths, &id_bytes) || !ReadU64(paths, &byte_length)) {
          return Status::ParseError("truncated path row for " + name);
        }
        doc_indexes->path_index.AddEntry(path, value,
                                         xml::DeweyId::Decode(id_bytes),
                                         byte_length);
      }
    }
    doc_indexes->path_index.Finalize();
    std::string term;
    while (ReadString(terms, &term)) {
      std::string id_bytes;
      uint32_t tf = 0;
      if (!ReadString(terms, &id_bytes) || !ReadU32(terms, &tf)) {
        return Status::ParseError("truncated inverted index for " + name);
      }
      doc_indexes->inverted_index.Add(term, xml::DeweyId::Decode(id_bytes),
                                      tf);
    }
    out->Put(name, std::move(doc_indexes));
  }
  return out;
}

}  // namespace quickview::storage
