// Hand-written lexer for the Appendix A XQuery subset. Supports a raw-text
// mode used while parsing element-constructor content.
#ifndef QUICKVIEW_XQUERY_LEXER_H_
#define QUICKVIEW_XQUERY_LEXER_H_

#include <deque>
#include <string>
#include <string_view>

namespace quickview::xquery {

enum class TokenKind {
  kEnd,
  kIdent,     // for, let, book, fn:doc, books.xml, ...
  kVariable,  // $name (text excludes '$')
  kString,    // 'abc' / "abc" (text is unquoted)
  kNumber,    // 42, 19.5
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kSlash,
  kSlashSlash,
  kComma,
  kDot,
  kAssign,  // :=
  kEq,
  kLt,
  kGt,
  kAmp,
  kPipe,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0;
  size_t offset = 0;  // byte offset in the input, for error messages
};

/// Returns a printable name for error messages.
std::string TokenKindName(TokenKind kind);

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Token `ahead` positions past the next unconsumed token.
  const Token& Peek(size_t ahead = 0);

  /// Consumes and returns the next token.
  Token Next();

  /// Raw-mode scan used inside element constructors: returns the text from
  /// just after the last consumed token up to (not including) the next '{'
  /// or '<'. Discards any lookahead.
  std::string ReadRawContent();

  /// Offset just after the last consumed token.
  size_t consumed_offset() const { return consumed_end_; }

 private:
  Token Lex();

  std::string_view input_;
  size_t pos_ = 0;
  size_t consumed_end_ = 0;
  std::deque<Token> lookahead_;
};

}  // namespace quickview::xquery

#endif  // QUICKVIEW_XQUERY_LEXER_H_
