// Abstract syntax for the XQuery subset of paper Appendix A: path
// expressions with child/descendant axes and leaf-value predicates, nested
// FLWOR expressions, element constructors, sequences, conditionals and
// non-recursive user functions. Views are expressions of this grammar.
#ifndef QUICKVIEW_XQUERY_AST_H_
#define QUICKVIEW_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace quickview::xquery {

enum class ExprKind {
  kDoc,           // fn:doc(name)
  kVar,           // $x
  kContext,       // .
  kPath,          // source steps... [pred]...
  kLiteral,       // 'abc' or 42
  kComparison,    // PathExpr Comp (Literal | PathExpr)
  kFlwor,         // (for|let)+ where? return
  kElementCtor,   // <tag> {...} </tag>
  kSequence,      // e1, e2
  kIf,            // if e then e else e
  kFunctionCall,  // f(e, ...)
};

enum class CompOp { kEq, kLt, kGt };

/// Base of all expressions. Plain data; ownership via unique_ptr.
struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind;
};

using ExprPtr = std::unique_ptr<Expr>;

struct DocExpr : Expr {
  explicit DocExpr(std::string n) : Expr(ExprKind::kDoc), name(std::move(n)) {}
  std::string name;  // document name as used in Database
};

struct VarExpr : Expr {
  explicit VarExpr(std::string n) : Expr(ExprKind::kVar), name(std::move(n)) {}
  std::string name;  // without the '$'
};

struct ContextExpr : Expr {
  ContextExpr() : Expr(ExprKind::kContext) {}
};

/// One location step with its predicates: /tag[p1][p2] or //tag[p].
struct PathStepAst {
  bool descendant = false;  // '//' vs '/'
  std::string tag;
  std::vector<ExprPtr> predicates;
};

struct PathExpr : Expr {
  PathExpr() : Expr(ExprKind::kPath) {}
  ExprPtr source;                   // Doc, Var or Context
  std::vector<PathStepAst> steps;   // possibly empty
  std::vector<ExprPtr> predicates;  // on the source itself: $x[PredExpr]
};

struct LiteralExpr : Expr {
  explicit LiteralExpr(std::string s)
      : Expr(ExprKind::kLiteral), text(std::move(s)) {}
  LiteralExpr(double n, std::string s)
      : Expr(ExprKind::kLiteral), text(std::move(s)), is_number(true),
        number(n) {}
  std::string text;
  bool is_number = false;
  double number = 0;
};

struct ComparisonExpr : Expr {
  ComparisonExpr() : Expr(ExprKind::kComparison) {}
  ExprPtr left;
  ExprPtr right;
  CompOp op = CompOp::kEq;
};

struct FlworClause {
  bool is_let = false;
  std::string var;  // without '$'
  ExprPtr expr;
};

struct FlworExpr : Expr {
  FlworExpr() : Expr(ExprKind::kFlwor) {}
  std::vector<FlworClause> clauses;
  ExprPtr where;  // may be null
  ExprPtr ret;
};

/// <tag> content </tag>. Content items are expressions; literal text
/// inside the constructor becomes LiteralExpr children.
struct ElementCtorExpr : Expr {
  explicit ElementCtorExpr(std::string t)
      : Expr(ExprKind::kElementCtor), tag(std::move(t)) {}
  std::string tag;
  std::vector<ExprPtr> children;
};

struct SequenceExpr : Expr {
  SequenceExpr() : Expr(ExprKind::kSequence) {}
  std::vector<ExprPtr> items;
};

struct IfExpr : Expr {
  IfExpr() : Expr(ExprKind::kIf) {}
  ExprPtr cond;
  ExprPtr then_branch;
  ExprPtr else_branch;
};

struct FunctionCallExpr : Expr {
  explicit FunctionCallExpr(std::string n)
      : Expr(ExprKind::kFunctionCall), name(std::move(n)) {}
  std::string name;
  std::vector<ExprPtr> args;
};

struct FunctionDecl {
  std::string name;
  std::vector<std::string> params;  // without '$'
  ExprPtr body;
};

/// A parsed query module: user function declarations plus the main
/// (view-defining) expression.
struct Query {
  std::vector<FunctionDecl> functions;
  ExprPtr body;

  const FunctionDecl* FindFunction(const std::string& name) const;
};

/// A ranked keyword query over a view, as written in paper Fig 2:
///   let $view := <view expr>
///   for $v in $view where $v ftcontains('k1' & 'k2') return $v
struct KeywordQuery {
  Query view;
  std::vector<std::string> keywords;
  bool conjunctive = true;  // '&' between keywords; '|' is disjunctive
};

/// Pretty-printer used in error messages and tests.
std::string ExprToString(const Expr& expr);

}  // namespace quickview::xquery

#endif  // QUICKVIEW_XQUERY_AST_H_
