// XQuery-subset evaluator (the "traditional evaluator" of paper Fig 3).
// Evaluates a view expression against a Database — or, via document
// overrides, against PDTs — producing a sequence of (possibly constructed)
// elements. The evaluator is deliberately unaware of PDTs: pruned nodes
// carry their NodeStats payload through element construction, which is the
// paper's "no changes to the XML query evaluator" property.
#ifndef QUICKVIEW_XQUERY_EVALUATOR_H_
#define QUICKVIEW_XQUERY_EVALUATOR_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"
#include "xquery/ast.h"

namespace quickview::xquery {

/// A node within some document (base, PDT, or the evaluator's result
/// arena). `index == kInvalidNode` denotes the *document node* itself
/// (what fn:doc() returns), whose only child is the root element.
struct NodeHandle {
  const xml::Document* doc = nullptr;
  xml::NodeIndex index = xml::kInvalidNode;

  bool is_document_node() const { return index == xml::kInvalidNode; }
  /// Resolves the document node to the root element.
  xml::NodeIndex effective_index() const {
    return is_document_node() ? doc->root() : index;
  }
  const xml::Node& node() const { return doc->node(effective_index()); }
  bool operator==(const NodeHandle&) const = default;
};

/// An XQuery item: node, string, number or boolean.
using Item = std::variant<NodeHandle, std::string, double, bool>;
using Sequence = std::vector<Item>;

/// Immutable variable environment with structural sharing, so FLWOR
/// iteration does not copy bindings.
class Environment {
 public:
  Environment() = default;

  Environment Bind(const std::string& name, Sequence value) const;
  Environment WithContext(Item context) const;

  /// nullptr when unbound.
  const Sequence* Lookup(const std::string& name) const;
  const std::optional<Item>& context() const { return context_; }

 private:
  struct Binding {
    std::string name;
    Sequence value;
    std::shared_ptr<const Binding> next;
  };
  std::shared_ptr<const Binding> head_;
  std::optional<Item> context_;
};

/// Effective boolean value: false for the empty sequence and a lone false
/// boolean; true otherwise.
bool EffectiveBoolean(const Sequence& seq);

/// Atomic value of an item: an element's directly-contained text (the
/// paper restricts predicates to leaf values), or the literal itself.
std::string AtomicValue(const Item& item);

class Evaluator {
 public:
  /// Result-arena Dewey root component; far above any base document's.
  static constexpr uint32_t kResultRootComponent = 1u << 30;

  explicit Evaluator(const xml::Database* database);

  /// Substitutes `doc` for fn:doc(name) — how the rewritten query "goes
  /// over PDTs instead of the base data" (§3.1).
  void OverrideDocument(const std::string& name, const xml::Document* doc);

  /// Evaluates the query body (with its function declarations in scope).
  Result<Sequence> Evaluate(const Query& query);
  Result<Sequence> Evaluate(const Query& query, const Environment& env);

  /// Arena holding elements constructed during evaluation. Valid until the
  /// evaluator is destroyed; shared ownership is available for callers
  /// that outlive it.
  const xml::Document& result_doc() const { return *result_doc_; }
  std::shared_ptr<xml::Document> result_doc_shared() const {
    return result_doc_;
  }

 private:
  Result<Sequence> Eval(const Expr& expr, const Environment& env);
  Result<Sequence> EvalPath(const PathExpr& path, const Environment& env);
  Result<Sequence> EvalFlwor(const FlworExpr& flwor, size_t clause_index,
                             const Environment& env, Sequence* out);
  Result<Sequence> EvalCtor(const ElementCtorExpr& ctor,
                            const Environment& env);
  Result<Sequence> EvalComparison(const ComparisonExpr& cmp,
                                  const Environment& env);
  Result<Sequence> EvalFunctionCall(const FunctionCallExpr& call,
                                    const Environment& env);

  /// Applies one location step to every node of `input`, deduplicated and
  /// in document order.
  Sequence ApplyStep(const Sequence& input, const PathStepAst& step);

  /// Keeps the items for which every predicate's effective boolean value
  /// is true (predicates see the item as the context '.').
  Result<Sequence> FilterByPredicates(Sequence input,
                                      const std::vector<ExprPtr>& predicates,
                                      const Environment& env);

  /// Deep-copies a subtree (preserving NodeStats) into the result arena.
  void CopyIntoArena(const xml::Document& src, xml::NodeIndex src_index,
                     xml::NodeIndex dst_parent);

  /// True iff the expression reads nothing from the environment (no
  /// variables, no context item, no function calls) — its value is
  /// loop-invariant. Memoized per expression node.
  bool IsEnvironmentFree(const Expr& expr);

  /// True iff a predicate expression only reads its own context chain
  /// (no variables/functions), so it doesn't break invariance of the
  /// enclosing path.
  static bool IsPredicateSelfContained(const Expr& expr);

  const xml::Database* database_;
  std::map<std::string, const xml::Document*> overrides_;
  std::shared_ptr<xml::Document> result_doc_;
  const Query* query_ = nullptr;  // for function resolution
  int call_depth_ = 0;            // guards against recursive functions
  // Loop-invariant path hoisting (a standard XQuery-engine optimization):
  // environment-free path expressions evaluate once per query, not once
  // per FLWOR iteration.
  std::map<const Expr*, Sequence> invariant_cache_;
  std::map<const Expr*, bool> env_free_;

  // Hash-join fast path: for `for $x in <invariant> where $x/p = <outer>`
  // the inner sequence is indexed once by the join key instead of being
  // scanned per outer binding (the value-join evaluation the paper's
  // engine provides).
  struct JoinIndex {
    Sequence items;
    std::unordered_multimap<std::string, size_t> by_key;
  };
  Result<Sequence> EvalHashJoin(const FlworExpr& flwor, size_t clause_index,
                                const Expr& probe_expr,
                                const Environment& env, Sequence* out);
  /// nullptr when the clause/where shape doesn't admit a hash join.
  const Expr* HashJoinProbeExpr(const FlworExpr& flwor, size_t clause_index);
  Result<JoinIndex*> GetJoinIndex(const FlworClause& clause,
                                  const Expr& key_path,
                                  const Environment& env);
  std::map<const FlworClause*, JoinIndex> join_indexes_;
};

}  // namespace quickview::xquery

#endif  // QUICKVIEW_XQUERY_EVALUATOR_H_
