#include "xquery/lexer.h"

#include <cctype>

namespace quickview::xquery {

std::string TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kVariable:
      return "variable";
    case TokenKind::kString:
      return "string literal";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kSlashSlash:
      return "'//'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kAssign:
      return "':='";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kAmp:
      return "'&'";
    case TokenKind::kPipe:
      return "'|'";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

// Identifiers cover tag names, keywords, fn:doc, and bare document names
// such as books.xml. A '.' is included only when followed by an
// identifier character (so a lone '.' remains the context item).
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == ':';
}

}  // namespace

// Length in bytes of the token's source spelling.
static size_t TokenLength(const Token& token) {
  switch (token.kind) {
    case TokenKind::kEnd:
      return token.text.size();
    case TokenKind::kIdent:
      return token.text.size();
    case TokenKind::kVariable:
      return token.text.size() + 1;
    case TokenKind::kString:
      return token.text.size() + 2;
    case TokenKind::kNumber:
      return token.text.size();
    case TokenKind::kSlashSlash:
    case TokenKind::kAssign:
      return 2;
    default:
      return 1;
  }
}

const Token& Lexer::Peek(size_t ahead) {
  while (lookahead_.size() <= ahead) lookahead_.push_back(Lex());
  return lookahead_[ahead];
}

Token Lexer::Next() {
  if (lookahead_.empty()) lookahead_.push_back(Lex());
  Token token = lookahead_.front();
  lookahead_.pop_front();
  consumed_end_ = token.offset + TokenLength(token);
  return token;
}

std::string Lexer::ReadRawContent() {
  lookahead_.clear();
  pos_ = consumed_end_;
  size_t start = pos_;
  while (pos_ < input_.size() && input_[pos_] != '{' && input_[pos_] != '<') {
    ++pos_;
  }
  consumed_end_ = pos_;
  return std::string(input_.substr(start, pos_ - start));
}

Token Lexer::Lex() {
  while (pos_ < input_.size() &&
         std::isspace(static_cast<unsigned char>(input_[pos_]))) {
    ++pos_;
  }
  Token token;
  token.offset = pos_;
  if (pos_ >= input_.size()) {
    token.kind = TokenKind::kEnd;
    return token;
  }
  char c = input_[pos_];
  if (IsIdentStart(c)) {
    size_t start = pos_;
    while (pos_ < input_.size()) {
      char ic = input_[pos_];
      if (IsIdentChar(ic)) {
        ++pos_;
      } else if (ic == '.' && pos_ + 1 < input_.size() &&
                 IsIdentChar(input_[pos_ + 1])) {
        pos_ += 2;
      } else {
        break;
      }
    }
    token.kind = TokenKind::kIdent;
    token.text = std::string(input_.substr(start, pos_ - start));
    return token;
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.')) {
      ++pos_;
    }
    token.kind = TokenKind::kNumber;
    token.text = std::string(input_.substr(start, pos_ - start));
    token.number = std::stod(token.text);
    return token;
  }
  if (c == '$') {
    ++pos_;
    size_t start = pos_;
    while (pos_ < input_.size() && IsIdentChar(input_[pos_])) ++pos_;
    token.kind = TokenKind::kVariable;
    token.text = std::string(input_.substr(start, pos_ - start));
    return token;
  }
  if (c == '\'' || c == '"') {
    char quote = c;
    ++pos_;
    size_t start = pos_;
    while (pos_ < input_.size() && input_[pos_] != quote) ++pos_;
    token.kind = TokenKind::kString;
    token.text = std::string(input_.substr(start, pos_ - start));
    if (pos_ < input_.size()) ++pos_;  // closing quote
    return token;
  }
  ++pos_;
  switch (c) {
    case '(':
      token.kind = TokenKind::kLParen;
      return token;
    case ')':
      token.kind = TokenKind::kRParen;
      return token;
    case '[':
      token.kind = TokenKind::kLBracket;
      return token;
    case ']':
      token.kind = TokenKind::kRBracket;
      return token;
    case '{':
      token.kind = TokenKind::kLBrace;
      return token;
    case '}':
      token.kind = TokenKind::kRBrace;
      return token;
    case ',':
      token.kind = TokenKind::kComma;
      return token;
    case '.':
      token.kind = TokenKind::kDot;
      return token;
    case '=':
      token.kind = TokenKind::kEq;
      return token;
    case '<':
      token.kind = TokenKind::kLt;
      return token;
    case '>':
      token.kind = TokenKind::kGt;
      return token;
    case '&':
      token.kind = TokenKind::kAmp;
      return token;
    case '|':
      token.kind = TokenKind::kPipe;
      return token;
    case '/':
      if (pos_ < input_.size() && input_[pos_] == '/') {
        ++pos_;
        token.kind = TokenKind::kSlashSlash;
      } else {
        token.kind = TokenKind::kSlash;
      }
      return token;
    case ':':
      if (pos_ < input_.size() && input_[pos_] == '=') {
        ++pos_;
        token.kind = TokenKind::kAssign;
        return token;
      }
      break;
    default:
      break;
  }
  token.kind = TokenKind::kEnd;
  token.text = std::string(1, c);
  return token;
}

}  // namespace quickview::xquery
