// Recursive-descent parser for the Appendix A grammar. Two entry points:
// ParseQuery for a view definition (function declarations + expression),
// and ParseKeywordQuery for the full "let $view := ... for $v in $view
// where $v ftcontains('k1' & 'k2') return $v" form of paper Fig 2.
#ifndef QUICKVIEW_XQUERY_PARSER_H_
#define QUICKVIEW_XQUERY_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xquery/ast.h"

namespace quickview::xquery {

/// Parses optional `declare function` declarations followed by the main
/// expression.
Result<Query> ParseQuery(std::string_view input);

/// Parses a ranked keyword query over a view (Fig 2 shape). Keywords are
/// lowercased; '&' yields conjunctive semantics, '|' disjunctive.
Result<KeywordQuery> ParseKeywordQuery(std::string_view input);

}  // namespace quickview::xquery

#endif  // QUICKVIEW_XQUERY_PARSER_H_
