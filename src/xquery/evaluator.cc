#include "xquery/evaluator.h"

#include <algorithm>
#include <cstdint>

#include "common/strings.h"

namespace quickview::xquery {

Environment Environment::Bind(const std::string& name, Sequence value) const {
  Environment out = *this;
  auto binding = std::make_shared<Binding>();
  binding->name = name;
  binding->value = std::move(value);
  binding->next = head_;
  out.head_ = std::move(binding);
  return out;
}

Environment Environment::WithContext(Item context) const {
  Environment out = *this;
  out.context_ = std::move(context);
  return out;
}

const Sequence* Environment::Lookup(const std::string& name) const {
  for (const Binding* b = head_.get(); b != nullptr; b = b->next.get()) {
    if (b->name == name) return &b->value;
  }
  return nullptr;
}

bool EffectiveBoolean(const Sequence& seq) {
  if (seq.empty()) return false;
  if (seq.size() == 1) {
    if (const bool* b = std::get_if<bool>(&seq[0])) return *b;
  }
  return true;
}

std::string AtomicValue(const Item& item) {
  if (const NodeHandle* h = std::get_if<NodeHandle>(&item)) {
    return h->node().text;
  }
  if (const std::string* s = std::get_if<std::string>(&item)) return *s;
  if (const double* d = std::get_if<double>(&item)) return FormatDouble(*d);
  return std::get<bool>(item) ? "true" : "false";
}

Evaluator::Evaluator(const xml::Database* database)
    : database_(database),
      result_doc_(std::make_shared<xml::Document>(kResultRootComponent)) {
  result_doc_->CreateRoot("qv:results");
}

void Evaluator::OverrideDocument(const std::string& name,
                                 const xml::Document* doc) {
  overrides_[name] = doc;
}

Result<Sequence> Evaluator::Evaluate(const Query& query) {
  return Evaluate(query, Environment());
}

Result<Sequence> Evaluator::Evaluate(const Query& query,
                                     const Environment& env) {
  query_ = &query;
  return Eval(*query.body, env);
}

Result<Sequence> Evaluator::Eval(const Expr& expr, const Environment& env) {
  switch (expr.kind) {
    case ExprKind::kDoc: {
      const auto& doc_expr = static_cast<const DocExpr&>(expr);
      const xml::Document* doc = nullptr;
      auto it = overrides_.find(doc_expr.name);
      if (it != overrides_.end()) {
        doc = it->second;
      } else if (database_ != nullptr) {
        doc = database_->GetDocument(doc_expr.name);
      }
      if (doc == nullptr) {
        return Status::EvalError("unknown document '" + doc_expr.name + "'");
      }
      if (!doc->has_root()) return Sequence{};
      // The document node: its only child is the root element.
      return Sequence{Item(NodeHandle{doc, xml::kInvalidNode})};
    }
    case ExprKind::kVar: {
      const auto& var = static_cast<const VarExpr&>(expr);
      const Sequence* bound = env.Lookup(var.name);
      if (bound == nullptr) {
        return Status::EvalError("unbound variable $" + var.name);
      }
      return *bound;
    }
    case ExprKind::kContext: {
      if (!env.context().has_value()) {
        return Status::EvalError("no context item for '.'");
      }
      return Sequence{*env.context()};
    }
    case ExprKind::kPath: {
      const auto& path = static_cast<const PathExpr&>(expr);
      if (IsEnvironmentFree(expr)) {
        auto it = invariant_cache_.find(&expr);
        if (it != invariant_cache_.end()) return it->second;
        QV_ASSIGN_OR_RETURN(Sequence value, EvalPath(path, env));
        invariant_cache_[&expr] = value;
        return value;
      }
      return EvalPath(path, env);
    }
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(expr);
      if (lit.is_number) return Sequence{Item(lit.number)};
      return Sequence{Item(lit.text)};
    }
    case ExprKind::kComparison:
      return EvalComparison(static_cast<const ComparisonExpr&>(expr), env);
    case ExprKind::kFlwor: {
      Sequence out;
      QV_RETURN_IF_ERROR(
          EvalFlwor(static_cast<const FlworExpr&>(expr), 0, env, &out)
              .status());
      return out;
    }
    case ExprKind::kElementCtor:
      return EvalCtor(static_cast<const ElementCtorExpr&>(expr), env);
    case ExprKind::kSequence: {
      const auto& seq_expr = static_cast<const SequenceExpr&>(expr);
      Sequence out;
      for (const ExprPtr& item : seq_expr.items) {
        QV_ASSIGN_OR_RETURN(Sequence part, Eval(*item, env));
        out.insert(out.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
      }
      return out;
    }
    case ExprKind::kIf: {
      const auto& if_expr = static_cast<const IfExpr&>(expr);
      QV_ASSIGN_OR_RETURN(Sequence cond, Eval(*if_expr.cond, env));
      return Eval(EffectiveBoolean(cond) ? *if_expr.then_branch
                                         : *if_expr.else_branch,
                  env);
    }
    case ExprKind::kFunctionCall:
      return EvalFunctionCall(static_cast<const FunctionCallExpr&>(expr), env);
  }
  return Status::Internal("unhandled expression kind");
}

namespace {

// Document order across possibly-different documents: group by document
// identity (root component is unique per Database), then Dewey order.
bool NodeLess(const NodeHandle& a, const NodeHandle& b) {
  if (a.doc != b.doc) {
    if (a.doc->root_component() != b.doc->root_component()) {
      return a.doc->root_component() < b.doc->root_component();
    }
    return a.doc < b.doc;
  }
  return a.node().id < b.node().id;
}

void SortUniqueNodes(std::vector<NodeHandle>* nodes) {
  std::sort(nodes->begin(), nodes->end(), NodeLess);
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

void CollectDescendants(const xml::Document& doc, xml::NodeIndex start,
                        const std::string& tag,
                        std::vector<NodeHandle>* out) {
  for (xml::NodeIndex child : doc.node(start).children) {
    if (doc.node(child).tag == tag) out->push_back(NodeHandle{&doc, child});
    CollectDescendants(doc, child, tag, out);
  }
}

}  // namespace

Sequence Evaluator::ApplyStep(const Sequence& input, const PathStepAst& step) {
  std::vector<NodeHandle> nodes;
  for (const Item& item : input) {
    const NodeHandle* handle = std::get_if<NodeHandle>(&item);
    if (handle == nullptr) continue;  // atomic values have no children
    if (handle->is_document_node()) {
      // Children of the document node: just the root element. Descendants:
      // the root element and everything below it.
      xml::NodeIndex root = handle->doc->root();
      if (handle->doc->node(root).tag == step.tag) {
        nodes.push_back(NodeHandle{handle->doc, root});
      }
      if (step.descendant) {
        CollectDescendants(*handle->doc, root, step.tag, &nodes);
      }
      continue;
    }
    if (step.descendant) {
      CollectDescendants(*handle->doc, handle->index, step.tag, &nodes);
    } else {
      for (xml::NodeIndex child : handle->node().children) {
        if (handle->doc->node(child).tag == step.tag) {
          nodes.push_back(NodeHandle{handle->doc, child});
        }
      }
    }
  }
  // A single input node yields matches in document order with no
  // duplicates (DFS pre-order); only multi-node inputs can interleave.
  if (input.size() > 1) SortUniqueNodes(&nodes);
  Sequence out;
  out.reserve(nodes.size());
  for (const NodeHandle& handle : nodes) out.push_back(Item(handle));
  return out;
}

Result<Sequence> Evaluator::FilterByPredicates(
    Sequence input, const std::vector<ExprPtr>& predicates,
    const Environment& env) {
  if (predicates.empty()) return input;
  Sequence filtered;
  for (Item& item : input) {
    bool keep = true;
    for (const ExprPtr& pred : predicates) {
      QV_ASSIGN_OR_RETURN(Sequence pred_value,
                          Eval(*pred, env.WithContext(item)));
      if (!EffectiveBoolean(pred_value)) {
        keep = false;
        break;
      }
    }
    if (keep) filtered.push_back(std::move(item));
  }
  return filtered;
}

Result<Sequence> Evaluator::EvalPath(const PathExpr& path,
                                     const Environment& env) {
  QV_ASSIGN_OR_RETURN(Sequence current, Eval(*path.source, env));
  QV_ASSIGN_OR_RETURN(current, FilterByPredicates(std::move(current),
                                                  path.predicates, env));
  for (const PathStepAst& step : path.steps) {
    current = ApplyStep(current, step);
    if (current.empty()) break;
    QV_ASSIGN_OR_RETURN(current, FilterByPredicates(std::move(current),
                                                    step.predicates, env));
  }
  return current;
}

namespace {

/// Canonical atomization for hash-join keys, consistent with
/// CompareAtomic's equality: numeric values share one spelling.
std::string NormalizeJoinKey(const Item& item) {
  std::string value = AtomicValue(item);
  double number = 0;
  if (ParseDouble(value, &number)) return FormatDouble(number);
  return value;
}

/// True iff the expression mentions $name.
bool MentionsVar(const Expr& expr, const std::string& name) {
  switch (expr.kind) {
    case ExprKind::kVar:
      return static_cast<const VarExpr&>(expr).name == name;
    case ExprKind::kDoc:
    case ExprKind::kContext:
    case ExprKind::kLiteral:
      return false;
    case ExprKind::kPath: {
      const auto& path = static_cast<const PathExpr&>(expr);
      if (MentionsVar(*path.source, name)) return true;
      for (const ExprPtr& pred : path.predicates) {
        if (MentionsVar(*pred, name)) return true;
      }
      for (const PathStepAst& step : path.steps) {
        for (const ExprPtr& pred : step.predicates) {
          if (MentionsVar(*pred, name)) return true;
        }
      }
      return false;
    }
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(expr);
      return MentionsVar(*cmp.left, name) || MentionsVar(*cmp.right, name);
    }
    case ExprKind::kFlwor: {
      const auto& flwor = static_cast<const FlworExpr&>(expr);
      for (const FlworClause& clause : flwor.clauses) {
        if (MentionsVar(*clause.expr, name)) return true;
        if (clause.var == name) return false;  // shadowed below this point
      }
      if (flwor.where != nullptr && MentionsVar(*flwor.where, name)) {
        return true;
      }
      return MentionsVar(*flwor.ret, name);
    }
    case ExprKind::kElementCtor: {
      const auto& ctor = static_cast<const ElementCtorExpr&>(expr);
      for (const ExprPtr& child : ctor.children) {
        if (MentionsVar(*child, name)) return true;
      }
      return false;
    }
    case ExprKind::kSequence: {
      const auto& seq = static_cast<const SequenceExpr&>(expr);
      for (const ExprPtr& item : seq.items) {
        if (MentionsVar(*item, name)) return true;
      }
      return false;
    }
    case ExprKind::kIf: {
      const auto& cond = static_cast<const IfExpr&>(expr);
      return MentionsVar(*cond.cond, name) ||
             MentionsVar(*cond.then_branch, name) ||
             MentionsVar(*cond.else_branch, name);
    }
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      for (const ExprPtr& arg : call.args) {
        if (MentionsVar(*arg, name)) return true;
      }
      return false;
    }
  }
  return true;  // unknown: be conservative
}

/// A bare predicate-free path rooted at $var: the hashable join side.
const PathExpr* AsVarKeyPath(const Expr& expr, const std::string& var) {
  if (expr.kind != ExprKind::kPath) return nullptr;
  const auto& path = static_cast<const PathExpr&>(expr);
  if (path.source->kind != ExprKind::kVar ||
      static_cast<const VarExpr&>(*path.source).name != var) {
    return nullptr;
  }
  if (!path.predicates.empty()) return nullptr;
  for (const PathStepAst& step : path.steps) {
    if (!step.predicates.empty()) return nullptr;
  }
  return &path;
}

}  // namespace

const Expr* Evaluator::HashJoinProbeExpr(const FlworExpr& flwor,
                                         size_t clause_index) {
  if (clause_index + 1 != flwor.clauses.size()) return nullptr;
  if (flwor.where == nullptr ||
      flwor.where->kind != ExprKind::kComparison) {
    return nullptr;
  }
  const FlworClause& clause = flwor.clauses[clause_index];
  if (clause.is_let || !IsEnvironmentFree(*clause.expr)) return nullptr;
  const auto& cmp = static_cast<const ComparisonExpr&>(*flwor.where);
  if (cmp.op != CompOp::kEq) return nullptr;
  // One side keys the bound variable; the other must not mention it.
  if (AsVarKeyPath(*cmp.left, clause.var) != nullptr &&
      !MentionsVar(*cmp.right, clause.var)) {
    return cmp.right.get();
  }
  if (AsVarKeyPath(*cmp.right, clause.var) != nullptr &&
      !MentionsVar(*cmp.left, clause.var)) {
    return cmp.left.get();
  }
  return nullptr;
}

Result<Evaluator::JoinIndex*> Evaluator::GetJoinIndex(
    const FlworClause& clause, const Expr& key_path,
    const Environment& env) {
  auto it = join_indexes_.find(&clause);
  if (it != join_indexes_.end()) return &it->second;
  JoinIndex index;
  QV_ASSIGN_OR_RETURN(index.items, Eval(*clause.expr, env));
  const auto& path = static_cast<const PathExpr&>(key_path);
  for (size_t i = 0; i < index.items.size(); ++i) {
    // Key values of item i: the path steps applied to the item.
    Sequence keys{index.items[i]};
    for (const PathStepAst& step : path.steps) {
      keys = ApplyStep(keys, step);
      if (keys.empty()) break;
    }
    for (const Item& key : keys) {
      index.by_key.emplace(NormalizeJoinKey(key), i);
    }
  }
  return &join_indexes_.emplace(&clause, std::move(index)).first->second;
}

Result<Sequence> Evaluator::EvalHashJoin(const FlworExpr& flwor,
                                         size_t clause_index,
                                         const Expr& probe_expr,
                                         const Environment& env,
                                         Sequence* out) {
  const FlworClause& clause = flwor.clauses[clause_index];
  const auto& cmp = static_cast<const ComparisonExpr&>(*flwor.where);
  const Expr& key_side =
      &probe_expr == cmp.right.get() ? *cmp.left : *cmp.right;
  QV_ASSIGN_OR_RETURN(JoinIndex * index,
                      GetJoinIndex(clause, key_side, env));
  QV_ASSIGN_OR_RETURN(Sequence probe_values, Eval(probe_expr, env));
  // Matching inner items, in sequence order, each at most once (the
  // where clause is a boolean filter under existential semantics).
  std::vector<size_t> matches;
  for (const Item& probe : probe_values) {
    auto [lo, hi] = index->by_key.equal_range(NormalizeJoinKey(probe));
    for (auto match = lo; match != hi; ++match) {
      matches.push_back(match->second);
    }
  }
  std::sort(matches.begin(), matches.end());
  matches.erase(std::unique(matches.begin(), matches.end()), matches.end());
  for (size_t i : matches) {
    Environment bound_env =
        env.Bind(clause.var, Sequence{index->items[i]});
    QV_ASSIGN_OR_RETURN(Sequence value, Eval(*flwor.ret, bound_env));
    out->insert(out->end(), std::make_move_iterator(value.begin()),
                std::make_move_iterator(value.end()));
  }
  return Sequence{};
}

Result<Sequence> Evaluator::EvalFlwor(const FlworExpr& flwor,
                                      size_t clause_index,
                                      const Environment& env, Sequence* out) {
  if (clause_index == flwor.clauses.size()) {
    if (flwor.where != nullptr) {
      QV_ASSIGN_OR_RETURN(Sequence cond, Eval(*flwor.where, env));
      if (!EffectiveBoolean(cond)) return Sequence{};
    }
    QV_ASSIGN_OR_RETURN(Sequence value, Eval(*flwor.ret, env));
    out->insert(out->end(), std::make_move_iterator(value.begin()),
                std::make_move_iterator(value.end()));
    return Sequence{};
  }
  const FlworClause& clause = flwor.clauses[clause_index];
  if (const Expr* probe = HashJoinProbeExpr(flwor, clause_index)) {
    return EvalHashJoin(flwor, clause_index, *probe, env, out);
  }
  QV_ASSIGN_OR_RETURN(Sequence bound, Eval(*clause.expr, env));
  if (clause.is_let) {
    return EvalFlwor(flwor, clause_index + 1,
                     env.Bind(clause.var, std::move(bound)), out);
  }
  for (Item& item : bound) {
    QV_RETURN_IF_ERROR(
        EvalFlwor(flwor, clause_index + 1,
                  env.Bind(clause.var, Sequence{std::move(item)}), out)
            .status());
  }
  return Sequence{};
}

void Evaluator::CopyIntoArena(const xml::Document& src,
                              xml::NodeIndex src_index,
                              xml::NodeIndex dst_parent) {
  // `src` may be the arena itself (nested constructors): AddChild can
  // reallocate node storage, so never hold node references across it.
  xml::NodeIndex copied =
      result_doc_->AddChild(dst_parent, src.node(src_index).tag);
  result_doc_->node(copied).text = src.node(src_index).text;
  result_doc_->node(copied).stats = src.node(src_index).stats;
  const std::vector<xml::NodeIndex> children = src.node(src_index).children;
  for (xml::NodeIndex child : children) {
    CopyIntoArena(src, child, copied);
  }
}

Result<Sequence> Evaluator::EvalCtor(const ElementCtorExpr& ctor,
                                     const Environment& env) {
  xml::NodeIndex self =
      result_doc_->AddChild(result_doc_->root(), ctor.tag);
  for (const ExprPtr& child_expr : ctor.children) {
    QV_ASSIGN_OR_RETURN(Sequence value, Eval(*child_expr, env));
    for (const Item& item : value) {
      if (const NodeHandle* handle = std::get_if<NodeHandle>(&item)) {
        CopyIntoArena(*handle->doc, handle->effective_index(), self);
      } else {
        // Atomic values join the element's text, space-separated.
        xml::Node& node = result_doc_->node(self);
        if (!node.text.empty()) node.text.push_back(' ');
        node.text.append(AtomicValue(item));
      }
    }
  }
  return Sequence{Item(NodeHandle{result_doc_.get(), self})};
}

namespace {

// XPath-style general comparison over atomized values: numeric when both
// sides parse as numbers, string otherwise.
bool CompareAtomic(const std::string& left, const std::string& right,
                   CompOp op) {
  double ln = 0;
  double rn = 0;
  if (ParseDouble(left, &ln) && ParseDouble(right, &rn)) {
    switch (op) {
      case CompOp::kEq:
        return ln == rn;
      case CompOp::kLt:
        return ln < rn;
      case CompOp::kGt:
        return ln > rn;
    }
  }
  switch (op) {
    case CompOp::kEq:
      return left == right;
    case CompOp::kLt:
      return left < right;
    case CompOp::kGt:
      return left > right;
  }
  return false;
}

}  // namespace

Result<Sequence> Evaluator::EvalComparison(const ComparisonExpr& cmp,
                                           const Environment& env) {
  QV_ASSIGN_OR_RETURN(Sequence left, Eval(*cmp.left, env));
  QV_ASSIGN_OR_RETURN(Sequence right, Eval(*cmp.right, env));
  // Existential semantics: true if any pair compares true.
  for (const Item& l : left) {
    std::string lv = AtomicValue(l);
    for (const Item& r : right) {
      if (CompareAtomic(lv, AtomicValue(r), cmp.op)) {
        return Sequence{Item(true)};
      }
    }
  }
  return Sequence{Item(false)};
}

bool Evaluator::IsEnvironmentFree(const Expr& expr) {
  auto it = env_free_.find(&expr);
  if (it != env_free_.end()) return it->second;
  bool free = true;
  switch (expr.kind) {
    case ExprKind::kDoc:
    case ExprKind::kLiteral:
      break;
    case ExprKind::kVar:
    case ExprKind::kContext:
    case ExprKind::kFunctionCall:  // conservative: body may use params
      free = false;
      break;
    case ExprKind::kPath: {
      const auto& path = static_cast<const PathExpr&>(expr);
      free = IsEnvironmentFree(*path.source);
      // Step predicates see the step's element as '.', which is not an
      // outer-environment read: a lone leading ContextExpr inside a
      // predicate is still invariant. Conservatively require predicates
      // to reference nothing but their own context chain.
      for (const ExprPtr& pred : path.predicates) {
        free = free && IsPredicateSelfContained(*pred);
      }
      for (const PathStepAst& step : path.steps) {
        for (const ExprPtr& pred : step.predicates) {
          free = free && IsPredicateSelfContained(*pred);
        }
      }
      break;
    }
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(expr);
      free = IsEnvironmentFree(*cmp.left) && IsEnvironmentFree(*cmp.right);
      break;
    }
    case ExprKind::kFlwor:
    case ExprKind::kElementCtor:
      // Constructors allocate fresh nodes: never cache (identity matters).
      free = false;
      break;
    case ExprKind::kSequence: {
      const auto& seq = static_cast<const SequenceExpr&>(expr);
      for (const ExprPtr& item : seq.items) {
        free = free && IsEnvironmentFree(*item);
      }
      break;
    }
    case ExprKind::kIf: {
      const auto& cond = static_cast<const IfExpr&>(expr);
      free = IsEnvironmentFree(*cond.cond) &&
             IsEnvironmentFree(*cond.then_branch) &&
             IsEnvironmentFree(*cond.else_branch);
      break;
    }
  }
  env_free_[&expr] = free;
  return free;
}

bool Evaluator::IsPredicateSelfContained(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kDoc:
    case ExprKind::kLiteral:
    case ExprKind::kContext:  // the predicate's own context item
      return true;
    case ExprKind::kVar:
    case ExprKind::kFlwor:
    case ExprKind::kElementCtor:
    case ExprKind::kFunctionCall:
      return false;
    case ExprKind::kPath: {
      const auto& path = static_cast<const PathExpr&>(expr);
      if (!IsPredicateSelfContained(*path.source)) return false;
      for (const ExprPtr& pred : path.predicates) {
        if (!IsPredicateSelfContained(*pred)) return false;
      }
      for (const PathStepAst& step : path.steps) {
        for (const ExprPtr& pred : step.predicates) {
          if (!IsPredicateSelfContained(*pred)) return false;
        }
      }
      return true;
    }
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(expr);
      return IsPredicateSelfContained(*cmp.left) &&
             IsPredicateSelfContained(*cmp.right);
    }
    case ExprKind::kSequence: {
      const auto& seq = static_cast<const SequenceExpr&>(expr);
      for (const ExprPtr& item : seq.items) {
        if (!IsPredicateSelfContained(*item)) return false;
      }
      return true;
    }
    case ExprKind::kIf: {
      const auto& cond = static_cast<const IfExpr&>(expr);
      return IsPredicateSelfContained(*cond.cond) &&
             IsPredicateSelfContained(*cond.then_branch) &&
             IsPredicateSelfContained(*cond.else_branch);
    }
  }
  return false;
}

Result<Sequence> Evaluator::EvalFunctionCall(const FunctionCallExpr& call,
                                             const Environment& env) {
  if (query_ == nullptr) {
    return Status::EvalError("function call outside a query: " + call.name);
  }
  const FunctionDecl* decl = query_->FindFunction(call.name);
  if (decl == nullptr) {
    return Status::EvalError("unknown function " + call.name);
  }
  if (decl->params.size() != call.args.size()) {
    return Status::EvalError("function " + call.name + " expects " +
                             std::to_string(decl->params.size()) +
                             " arguments");
  }
  if (++call_depth_ > 64) {
    --call_depth_;
    return Status::EvalError("function call depth exceeded (recursion?)");
  }
  Environment body_env = env;
  for (size_t i = 0; i < call.args.size(); ++i) {
    QV_ASSIGN_OR_RETURN(Sequence arg, Eval(*call.args[i], env));
    body_env = body_env.Bind(decl->params[i], std::move(arg));
  }
  Result<Sequence> out = Eval(*decl->body, body_env);
  --call_depth_;
  return out;
}

}  // namespace quickview::xquery
