#include "xquery/ast.h"

#include "common/strings.h"

namespace quickview::xquery {

const FunctionDecl* Query::FindFunction(const std::string& name) const {
  for (const FunctionDecl& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

namespace {

void Print(const Expr& expr, std::string* out) {
  switch (expr.kind) {
    case ExprKind::kDoc:
      *out += "fn:doc(" + static_cast<const DocExpr&>(expr).name + ")";
      break;
    case ExprKind::kVar:
      *out += "$" + static_cast<const VarExpr&>(expr).name;
      break;
    case ExprKind::kContext:
      *out += ".";
      break;
    case ExprKind::kPath: {
      const auto& path = static_cast<const PathExpr&>(expr);
      Print(*path.source, out);
      for (const ExprPtr& pred : path.predicates) {
        *out += "[";
        Print(*pred, out);
        *out += "]";
      }
      for (const PathStepAst& step : path.steps) {
        *out += step.descendant ? "//" : "/";
        *out += step.tag;
        for (const ExprPtr& pred : step.predicates) {
          *out += "[";
          Print(*pred, out);
          *out += "]";
        }
      }
      break;
    }
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(expr);
      if (lit.is_number) {
        *out += FormatDouble(lit.number);
      } else {
        *out += "'" + lit.text + "'";
      }
      break;
    }
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(expr);
      Print(*cmp.left, out);
      *out += cmp.op == CompOp::kEq ? " = " : cmp.op == CompOp::kLt ? " < "
                                                                    : " > ";
      Print(*cmp.right, out);
      break;
    }
    case ExprKind::kFlwor: {
      const auto& flwor = static_cast<const FlworExpr&>(expr);
      for (const FlworClause& clause : flwor.clauses) {
        *out += clause.is_let ? "let $" : "for $";
        *out += clause.var;
        *out += clause.is_let ? " := " : " in ";
        Print(*clause.expr, out);
        *out += " ";
      }
      if (flwor.where != nullptr) {
        *out += "where ";
        Print(*flwor.where, out);
        *out += " ";
      }
      *out += "return ";
      Print(*flwor.ret, out);
      break;
    }
    case ExprKind::kElementCtor: {
      const auto& ctor = static_cast<const ElementCtorExpr&>(expr);
      *out += "<" + ctor.tag + ">";
      for (const ExprPtr& child : ctor.children) {
        *out += "{";
        Print(*child, out);
        *out += "}";
      }
      *out += "</" + ctor.tag + ">";
      break;
    }
    case ExprKind::kSequence: {
      const auto& seq = static_cast<const SequenceExpr&>(expr);
      *out += "(";
      for (size_t i = 0; i < seq.items.size(); ++i) {
        if (i > 0) *out += ", ";
        Print(*seq.items[i], out);
      }
      *out += ")";
      break;
    }
    case ExprKind::kIf: {
      const auto& cond = static_cast<const IfExpr&>(expr);
      *out += "if ";
      Print(*cond.cond, out);
      *out += " then ";
      Print(*cond.then_branch, out);
      *out += " else ";
      Print(*cond.else_branch, out);
      break;
    }
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      *out += call.name + "(";
      for (size_t i = 0; i < call.args.size(); ++i) {
        if (i > 0) *out += ", ";
        Print(*call.args[i], out);
      }
      *out += ")";
      break;
    }
  }
}

}  // namespace

std::string ExprToString(const Expr& expr) {
  std::string out;
  Print(expr, &out);
  return out;
}

}  // namespace quickview::xquery
