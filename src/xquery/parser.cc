#include "xquery/parser.h"

#include <cctype>

#include "common/strings.h"
#include "xml/tokenizer.h"
#include "xquery/lexer.h"

namespace quickview::xquery {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : lexer_(input) {}

  Result<Query> ParseQueryModule() {
    Query query;
    QV_RETURN_IF_ERROR(ParseFunctionDecls(&query));
    QV_ASSIGN_OR_RETURN(query.body, ParseExprList());
    QV_RETURN_IF_ERROR(ExpectEnd());
    return query;
  }

  Result<KeywordQuery> ParseKeywordQueryModule() {
    KeywordQuery out;
    QV_RETURN_IF_ERROR(ParseFunctionDecls(&out.view));

    // let $view := <view expression>
    if (!(PeekIs(TokenKind::kIdent, "let"))) {
      return Error("keyword query must start with 'let $view := ...'");
    }
    lexer_.Next();
    QV_ASSIGN_OR_RETURN(Token view_var, Expect(TokenKind::kVariable));
    QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kAssign));
    QV_ASSIGN_OR_RETURN(out.view.body, ParseSingle());

    // for $v in $view where $v ftcontains(...) return $v
    QV_RETURN_IF_ERROR(ExpectIdent("for"));
    QV_ASSIGN_OR_RETURN(Token loop_var, Expect(TokenKind::kVariable));
    QV_RETURN_IF_ERROR(ExpectIdent("in"));
    QV_ASSIGN_OR_RETURN(Token bound_var, Expect(TokenKind::kVariable));
    if (bound_var.text != view_var.text) {
      return Error("keyword query must iterate over $" + view_var.text);
    }
    QV_RETURN_IF_ERROR(ExpectIdent("where"));
    QV_ASSIGN_OR_RETURN(Token pred_var, Expect(TokenKind::kVariable));
    if (pred_var.text != loop_var.text) {
      return Error("ftcontains must apply to $" + loop_var.text);
    }
    QV_RETURN_IF_ERROR(ExpectIdent("ftcontains"));
    QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kLParen));
    bool saw_amp = false;
    bool saw_pipe = false;
    // ftcontains() with no keywords is a trivially-true filter.
    while (!PeekIs(TokenKind::kRParen)) {
      QV_ASSIGN_OR_RETURN(Token kw, Expect(TokenKind::kString));
      // A quoted phrase may hold several terms; flatten via the tokenizer
      // so 'XML Search' behaves as two keywords.
      for (std::string& term : xml::Tokenize(kw.text)) {
        out.keywords.push_back(std::move(term));
      }
      if (PeekIs(TokenKind::kAmp)) {
        lexer_.Next();
        saw_amp = true;
        continue;
      }
      if (PeekIs(TokenKind::kPipe)) {
        lexer_.Next();
        saw_pipe = true;
        continue;
      }
      break;
    }
    if (saw_amp && saw_pipe) {
      return Error("mixing '&' and '|' in ftcontains is not supported");
    }
    out.conjunctive = !saw_pipe;
    QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen));
    QV_RETURN_IF_ERROR(ExpectIdent("return"));
    QV_ASSIGN_OR_RETURN(Token ret_var, Expect(TokenKind::kVariable));
    if (ret_var.text != loop_var.text) {
      return Error("keyword query must return $" + loop_var.text);
    }
    QV_RETURN_IF_ERROR(ExpectEnd());
    return out;
  }

 private:
  bool PeekIs(TokenKind kind) { return lexer_.Peek().kind == kind; }
  bool PeekIs(TokenKind kind, std::string_view text) {
    const Token& t = lexer_.Peek();
    return t.kind == kind && t.text == text;
  }

  Status Error(const std::string& message) {
    return Status::ParseError(message + " (at byte " +
                              std::to_string(lexer_.Peek().offset) + ")");
  }

  Result<Token> Expect(TokenKind kind) {
    if (!PeekIs(kind)) {
      return Error("expected " + TokenKindName(kind) + ", found " +
                   TokenKindName(lexer_.Peek().kind));
    }
    return lexer_.Next();
  }

  Status ExpectKind(TokenKind kind) { return Expect(kind).status(); }

  Status ExpectIdent(std::string_view text) {
    if (!PeekIs(TokenKind::kIdent, text)) {
      return Error("expected '" + std::string(text) + "'");
    }
    lexer_.Next();
    return Status::OK();
  }

  Status ExpectEnd() {
    if (!PeekIs(TokenKind::kEnd) || !lexer_.Peek().text.empty()) {
      return Error("unexpected trailing input");
    }
    return Status::OK();
  }

  Status ParseFunctionDecls(Query* query) {
    while (PeekIs(TokenKind::kIdent, "declare")) {
      lexer_.Next();
      QV_RETURN_IF_ERROR(ExpectIdent("function"));
      FunctionDecl decl;
      QV_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent));
      decl.name = name.text;
      QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kLParen));
      if (!PeekIs(TokenKind::kRParen)) {
        while (true) {
          QV_ASSIGN_OR_RETURN(Token param, Expect(TokenKind::kVariable));
          decl.params.push_back(param.text);
          if (!PeekIs(TokenKind::kComma)) break;
          lexer_.Next();
        }
      }
      QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen));
      QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kLBrace));
      QV_ASSIGN_OR_RETURN(decl.body, ParseExprList());
      QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kRBrace));
      if (query->FindFunction(decl.name) != nullptr) {
        return Error("duplicate function '" + decl.name + "'");
      }
      query->functions.push_back(std::move(decl));
    }
    return Status::OK();
  }

  /// Expr (',' Expr)* — folds multiple items into a SequenceExpr.
  Result<ExprPtr> ParseExprList() {
    QV_ASSIGN_OR_RETURN(ExprPtr first, ParseSingle());
    if (!PeekIs(TokenKind::kComma)) return first;
    auto seq = std::make_unique<SequenceExpr>();
    seq->items.push_back(std::move(first));
    while (PeekIs(TokenKind::kComma)) {
      lexer_.Next();
      QV_ASSIGN_OR_RETURN(ExprPtr next, ParseSingle());
      seq->items.push_back(std::move(next));
    }
    return ExprPtr(std::move(seq));
  }

  Result<ExprPtr> ParseSingle() {
    const Token& t = lexer_.Peek();
    if (t.kind == TokenKind::kIdent && (t.text == "for" || t.text == "let")) {
      return ParseFlwor();
    }
    if (t.kind == TokenKind::kIdent && t.text == "if") return ParseIf();
    if (t.kind == TokenKind::kLt) return ParseElementCtor();
    return ParseComparison();
  }

  Result<ExprPtr> ParseFlwor() {
    auto flwor = std::make_unique<FlworExpr>();
    while (PeekIs(TokenKind::kIdent, "for") || PeekIs(TokenKind::kIdent, "let")) {
      FlworClause clause;
      clause.is_let = lexer_.Next().text == "let";
      QV_ASSIGN_OR_RETURN(Token var, Expect(TokenKind::kVariable));
      clause.var = var.text;
      if (clause.is_let) {
        // Accept both ':=' (XQuery) and 'in' (the paper's grammar writes
        // LetClause with 'in').
        if (PeekIs(TokenKind::kAssign)) {
          lexer_.Next();
        } else {
          QV_RETURN_IF_ERROR(ExpectIdent("in"));
        }
      } else {
        QV_RETURN_IF_ERROR(ExpectIdent("in"));
      }
      // Usually a path expression, but let-clauses may bind constructed
      // content (e.g. let $view := <r>...</r>).
      QV_ASSIGN_OR_RETURN(clause.expr, ParseSingle());
      flwor->clauses.push_back(std::move(clause));
    }
    if (flwor->clauses.empty()) return Error("expected for/let clause");
    if (PeekIs(TokenKind::kIdent, "where")) {
      lexer_.Next();
      QV_ASSIGN_OR_RETURN(flwor->where, ParseComparison());
    }
    QV_RETURN_IF_ERROR(ExpectIdent("return"));
    QV_ASSIGN_OR_RETURN(flwor->ret, ParseSingle());
    return ExprPtr(std::move(flwor));
  }

  Result<ExprPtr> ParseIf() {
    QV_RETURN_IF_ERROR(ExpectIdent("if"));
    auto out = std::make_unique<IfExpr>();
    QV_ASSIGN_OR_RETURN(out->cond, ParseSingle());
    QV_RETURN_IF_ERROR(ExpectIdent("then"));
    QV_ASSIGN_OR_RETURN(out->then_branch, ParseSingle());
    QV_RETURN_IF_ERROR(ExpectIdent("else"));
    QV_ASSIGN_OR_RETURN(out->else_branch, ParseSingle());
    return ExprPtr(std::move(out));
  }

  Result<ExprPtr> ParseElementCtor() {
    QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kLt));
    QV_ASSIGN_OR_RETURN(Token tag, Expect(TokenKind::kIdent));
    QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kGt));
    auto ctor = std::make_unique<ElementCtorExpr>(tag.text);
    while (true) {
      std::string raw = lexer_.ReadRawContent();
      std::string trimmed = TrimCtorText(raw);
      if (!trimmed.empty()) {
        ctor->children.push_back(std::make_unique<LiteralExpr>(trimmed));
      }
      const Token& next = lexer_.Peek();
      if (next.kind == TokenKind::kLBrace) {
        lexer_.Next();
        QV_ASSIGN_OR_RETURN(ExprPtr child, ParseExprList());
        QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kRBrace));
        ctor->children.push_back(std::move(child));
        continue;
      }
      if (next.kind == TokenKind::kLt) {
        if (lexer_.Peek(1).kind == TokenKind::kSlash) {
          lexer_.Next();  // '<'
          lexer_.Next();  // '/'
          QV_ASSIGN_OR_RETURN(Token end_tag, Expect(TokenKind::kIdent));
          if (end_tag.text != ctor->tag) {
            return Error("mismatched constructor end tag </" + end_tag.text +
                         ">");
          }
          QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kGt));
          return ExprPtr(std::move(ctor));
        }
        QV_ASSIGN_OR_RETURN(ExprPtr child, ParseElementCtor());
        ctor->children.push_back(std::move(child));
        continue;
      }
      return Error("unterminated element constructor <" + ctor->tag + ">");
    }
  }

  /// Trims whitespace and drops separator-only runs (Fig 2 writes commas
  /// between constructor children).
  static std::string TrimCtorText(const std::string& raw) {
    size_t begin = 0;
    size_t end = raw.size();
    auto skippable = [](char c) {
      return std::isspace(static_cast<unsigned char>(c)) || c == ',';
    };
    while (begin < end && skippable(raw[begin])) ++begin;
    while (end > begin && skippable(raw[end - 1])) --end;
    return raw.substr(begin, end - begin);
  }

  Result<ExprPtr> ParseComparison() {
    QV_ASSIGN_OR_RETURN(ExprPtr left, ParsePathOrPrimary());
    const Token& t = lexer_.Peek();
    CompOp op;
    if (t.kind == TokenKind::kEq) {
      op = CompOp::kEq;
    } else if (t.kind == TokenKind::kLt) {
      // '<' here could open an element constructor in a return clause;
      // comparisons never have a constructor on the right, and a '<'
      // followed by IDENT '>' is ambiguous — the grammar resolves it in
      // favor of comparison only after a path expression, which is the
      // only left operand the grammar allows.
      op = CompOp::kLt;
    } else if (t.kind == TokenKind::kGt) {
      op = CompOp::kGt;
    } else {
      return left;
    }
    lexer_.Next();
    auto cmp = std::make_unique<ComparisonExpr>();
    cmp->left = std::move(left);
    cmp->op = op;
    QV_ASSIGN_OR_RETURN(cmp->right, ParsePathOrPrimary());
    return ExprPtr(std::move(cmp));
  }

  static bool IsReservedWord(const std::string& word) {
    static const char* const kReserved[] = {
        "for",    "let",  "where",   "return",   "if",        "then",
        "else",   "in",   "declare", "function", "ftcontains"};
    for (const char* r : kReserved) {
      if (word == r) return true;
    }
    return false;
  }

  /// Parses `[PredExpr]*` into `out`.
  Status ParsePredicates(std::vector<ExprPtr>* out) {
    while (PeekIs(TokenKind::kLBracket)) {
      lexer_.Next();
      QV_ASSIGN_OR_RETURN(ExprPtr pred, ParseComparison());
      QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kRBracket));
      out->push_back(std::move(pred));
    }
    return Status::OK();
  }

  Result<ExprPtr> ParsePathOrPrimary() {
    // A bare tag (inside predicates: book[year > 1995]) abbreviates a
    // context-relative child step, ./tag.
    ExprPtr source;
    bool bare_tag_path =
        PeekIs(TokenKind::kIdent) && !IsReservedWord(lexer_.Peek().text) &&
        lexer_.Peek().text != "fn:doc" &&
        lexer_.Peek(1).kind != TokenKind::kLParen;
    if (bare_tag_path) {
      source = std::make_unique<ContextExpr>();
    } else {
      QV_ASSIGN_OR_RETURN(source, ParsePrimary());
      if (source->kind == ExprKind::kLiteral) return source;
      bool continues = PeekIs(TokenKind::kSlash) ||
                       PeekIs(TokenKind::kSlashSlash) ||
                       PeekIs(TokenKind::kLBracket);
      if (!continues) return source;
      if (source->kind != ExprKind::kDoc && source->kind != ExprKind::kVar &&
          source->kind != ExprKind::kContext) {
        return source;  // parenthesized subexpression etc.
      }
    }
    auto path = std::make_unique<PathExpr>();
    path->source = std::move(source);
    QV_RETURN_IF_ERROR(ParsePredicates(&path->predicates));
    if (bare_tag_path) {
      PathStepAst step;
      QV_ASSIGN_OR_RETURN(Token tag, Expect(TokenKind::kIdent));
      step.tag = tag.text;
      QV_RETURN_IF_ERROR(ParsePredicates(&step.predicates));
      path->steps.push_back(std::move(step));
    }
    while (PeekIs(TokenKind::kSlash) || PeekIs(TokenKind::kSlashSlash)) {
      PathStepAst step;
      step.descendant = lexer_.Next().kind == TokenKind::kSlashSlash;
      QV_ASSIGN_OR_RETURN(Token tag, Expect(TokenKind::kIdent));
      step.tag = tag.text;
      QV_RETURN_IF_ERROR(ParsePredicates(&step.predicates));
      path->steps.push_back(std::move(step));
    }
    // Collapse a bare source with no steps/predicates back to the source.
    if (path->steps.empty() && path->predicates.empty()) {
      return std::move(path->source);
    }
    return ExprPtr(std::move(path));
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = lexer_.Peek();
    switch (t.kind) {
      case TokenKind::kVariable: {
        Token var = lexer_.Next();
        return ExprPtr(std::make_unique<VarExpr>(var.text));
      }
      case TokenKind::kDot:
        lexer_.Next();
        return ExprPtr(std::make_unique<ContextExpr>());
      case TokenKind::kString: {
        Token lit = lexer_.Next();
        return ExprPtr(std::make_unique<LiteralExpr>(lit.text));
      }
      case TokenKind::kNumber: {
        Token lit = lexer_.Next();
        return ExprPtr(std::make_unique<LiteralExpr>(lit.number, lit.text));
      }
      case TokenKind::kLParen: {
        lexer_.Next();
        if (PeekIs(TokenKind::kRParen)) {  // empty sequence ()
          lexer_.Next();
          return ExprPtr(std::make_unique<SequenceExpr>());
        }
        QV_ASSIGN_OR_RETURN(ExprPtr inner, ParseExprList());
        QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen));
        return inner;
      }
      case TokenKind::kIdent: {
        if (t.text == "fn:doc") {
          lexer_.Next();
          QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kLParen));
          const Token& name = lexer_.Peek();
          if (name.kind != TokenKind::kIdent &&
              name.kind != TokenKind::kString) {
            return Error("expected document name in fn:doc()");
          }
          std::string doc_name = lexer_.Next().text;
          QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen));
          return ExprPtr(std::make_unique<DocExpr>(std::move(doc_name)));
        }
        if (lexer_.Peek(1).kind == TokenKind::kLParen) {
          Token name = lexer_.Next();
          lexer_.Next();  // '('
          auto call = std::make_unique<FunctionCallExpr>(name.text);
          if (!PeekIs(TokenKind::kRParen)) {
            while (true) {
              QV_ASSIGN_OR_RETURN(ExprPtr arg, ParseComparison());
              call->args.push_back(std::move(arg));
              if (!PeekIs(TokenKind::kComma)) break;
              lexer_.Next();
            }
          }
          QV_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen));
          return ExprPtr(std::move(call));
        }
        return Error("unexpected identifier '" + t.text + "'");
      }
      default:
        return Error("unexpected token " + TokenKindName(t.kind));
    }
  }

  Lexer lexer_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view input) {
  return Parser(input).ParseQueryModule();
}

Result<KeywordQuery> ParseKeywordQuery(std::string_view input) {
  return Parser(input).ParseKeywordQueryModule();
}

}  // namespace quickview::xquery
