// The Candidate Tree (paper §4.2.2, Appendix E): the working set of the
// single-merge-pass PDT generation algorithm. Every CT node corresponds to
// a Dewey id prefix seen in the path lists and carries one CtQEntry per
// QPT node the prefix matches (CTQNodeSet — a set, because repeating tag
// names let one id match several QPT nodes). Each entry tracks
//   - DM (DescendantMap): which mandatory child edges have a candidate
//     child/descendant element, bit per mandatory edge;
//   - PL (ParentList): the ancestor entries matching the parent QPT node
//     under the edge's axis;
//   - InPdt: whether the id has been confirmed into the result PDT.
// Nodes whose descendant constraints hold but whose ancestor constraints
// are still open are parked in their tree parent's PdtCache and re-judged
// as ancestors are resolved bottom-up.
//
// A CandidateTree is per-query scratch state: it is created inside one
// GeneratePdt call and never shared. Accessors that only inspect the
// tree are const so read-side code cannot grow mutation paths.
#ifndef QUICKVIEW_PDT_CANDIDATE_TREE_H_
#define QUICKVIEW_PDT_CANDIDATE_TREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "qpt/qpt.h"
#include "xml/dewey_id.h"

namespace quickview::pdt {

class CtNode;

/// One (CT node, QPT node) association.
struct CtQEntry {
  int qnode = -1;
  bool in_pdt = false;
  /// True once this entry's candidacy has been propagated to its parents.
  bool notified = false;
  /// Bit i set = mandatory child i (in Qpt::MandatoryChildren order) has a
  /// candidate child/descendant element.
  uint64_t dm = 0;
  /// (ancestor CT node, index into its qentries) pairs matching the parent
  /// QPT node under the incoming edge's axis. Empty iff the parent is the
  /// virtual document root.
  std::vector<std::pair<CtNode*, int>> parent_list;
};

/// A descendant id whose descendant constraints hold but whose ancestor
/// constraints are still undecided; parked in an ancestor's PdtCache.
struct PdtCacheEntry {
  xml::DeweyId id;
  std::string tag;
  std::optional<std::string> value;
  uint64_t byte_length = 0;
  bool content = false;  // some matched QPT node is 'c'-annotated
  /// True iff some matched QPT node's parent is the virtual root (then the
  /// ancestor constraint is vacuous).
  bool root_parent = false;
  std::vector<std::pair<CtNode*, int>> parent_list;
};

class CtNode {
 public:
  xml::DeweyId id;
  CtNode* parent = nullptr;
  /// Children keyed by full Dewey id (depths without QPT matches are
  /// pruned from the CT, so a child may be more than one level deeper).
  std::map<xml::DeweyId, std::unique_ptr<CtNode>> children;
  std::vector<CtQEntry> qentries;
  std::vector<PdtCacheEntry> pdt_cache;

  // Payload from a direct list entry (leaf probe), if any.
  std::optional<std::string> value;
  uint64_t byte_length = 0;
  bool has_payload = false;
  bool emitted = false;
  /// Path lists this node's id was directly retrieved from.
  std::vector<int> source_lists;

  /// Entry for `qnode`, or nullptr.
  CtQEntry* FindEntry(int qnode);
  const CtQEntry* FindEntry(int qnode) const;
  int FindEntryIndex(int qnode) const;
};

/// The tree plus per-list membership counters (for the "at most two ids of
/// each list in the CT" pull rule of Fig 9 line 10).
class CandidateTree {
 public:
  explicit CandidateTree(const qpt::Qpt* qpt) : qpt_(qpt) {
    root_ = std::make_unique<CtNode>();
    // Hot-path caches: mandatory children and the all-bits-set DM mask per
    // QPT node (IsCandidate runs once per entry per main-loop round).
    mandatory_children_.reserve(qpt->nodes.size());
    full_mask_.reserve(qpt->nodes.size());
    for (size_t n = 0; n < qpt->nodes.size(); ++n) {
      mandatory_children_.push_back(
          qpt->MandatoryChildren(static_cast<int>(n)));
      size_t count = mandatory_children_.back().size();
      full_mask_.push_back(count >= 64 ? ~uint64_t{0}
                                       : (uint64_t{1} << count) - 1);
    }
  }

  CtNode* root() { return root_.get(); }
  const CtNode* root() const { return root_.get(); }
  bool HasNodes() const { return !root_->children.empty(); }

  /// Inserts `id` (and its QPT-matching prefixes) into the tree.
  /// `depth_qnodes[d-1]` lists the QPT nodes a prefix of depth d matches;
  /// `list_index` is the path list the id came from; value/byte_length
  /// attach to the full-depth node. Performs DM propagation (AddCTNode of
  /// Fig 26, incl. lines 15-17).
  void AddId(const xml::DeweyId& id,
             const std::vector<std::vector<int>>& depth_qnodes,
             int list_index, const std::optional<std::string>& value,
             uint64_t byte_length);

  /// Number of ids from path list `list_index` currently in the tree.
  int ListCount(int list_index) const;
  void DecrementListCounts(const CtNode& node);

  /// True iff every mandatory child bit of the entry is set.
  bool IsCandidate(const CtQEntry& entry) const;

  /// Nodes on the left-most path, top-down (root excluded).
  std::vector<CtNode*> LeftMostPath();

  size_t peak_nodes = 0;  // high-water mark, reported by benchmarks
  size_t live_nodes = 0;

 private:
  /// Marks the entry candidate-visible to its parents (sets their DM bits)
  /// and cascades.
  void NotifyCandidate(CtNode* node, int entry_index);

  const qpt::Qpt* qpt_;
  std::unique_ptr<CtNode> root_;
  std::map<int, int> list_counts_;
  std::vector<std::vector<int>> mandatory_children_;  // by QPT node
  std::vector<uint64_t> full_mask_;                   // by QPT node
};

}  // namespace quickview::pdt

#endif  // QUICKVIEW_PDT_CANDIDATE_TREE_H_
