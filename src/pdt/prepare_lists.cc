#include "pdt/prepare_lists.h"

#include <algorithm>

#include "common/strings.h"

namespace quickview::pdt {

void InvList::BuildPrefix() {
  tf_prefix.assign(postings.size() + 1, 0);
  for (size_t i = 0; i < postings.size(); ++i) {
    tf_prefix[i + 1] = tf_prefix[i] + postings[i].tf;
  }
}

uint64_t InvList::SubtreeTf(const xml::DeweyId& id) const {
  // Postings with `id` as a prefix form a contiguous range: [first posting
  // >= id, first posting >= successor(id)), where the successor increments
  // the last component.
  auto lo = std::lower_bound(
      postings.begin(), postings.end(), id,
      [](const index::Posting& p, const xml::DeweyId& key) {
        return p.id < key;
      });
  std::vector<uint32_t> succ_components = id.components();
  if (succ_components.empty()) return tf_prefix.back();
  ++succ_components.back();
  xml::DeweyId successor(std::move(succ_components));
  auto hi = std::lower_bound(
      postings.begin(), postings.end(), successor,
      [](const index::Posting& p, const xml::DeweyId& key) {
        return p.id < key;
      });
  return tf_prefix[hi - postings.begin()] - tf_prefix[lo - postings.begin()];
}

std::vector<std::vector<int>> MapDepthsToQptNodes(const qpt::Qpt& qpt,
                                                  int leaf,
                                                  const std::string& path) {
  // Chain of QPT nodes from below the virtual root down to `leaf`.
  std::vector<int> chain;
  for (int n = leaf; n > 0; n = qpt.nodes[n].parent) chain.push_back(n);
  std::reverse(chain.begin(), chain.end());
  const size_t k = chain.size();

  std::vector<std::string_view> segments =
      SplitString(std::string_view(path).substr(1), '/');
  const size_t m = segments.size();

  // forward[j][d]: chain[0..j) embeds into segments[0..d) with chain[j-1]
  // at depth d (1-based). j, d in [0, k] x [0, m].
  auto matches = [&](size_t j, size_t d) {
    return segments[d - 1] == qpt.nodes[chain[j - 1]].tag;
  };
  std::vector<std::vector<char>> forward(k + 1,
                                         std::vector<char>(m + 1, false));
  forward[0][0] = true;
  for (size_t j = 1; j <= k; ++j) {
    bool descendant = qpt.nodes[chain[j - 1]].parent_descendant;
    for (size_t d = j; d <= m; ++d) {
      if (!matches(j, d)) continue;
      if (descendant) {
        for (size_t prev = j - 1; prev < d; ++prev) {
          if (forward[j - 1][prev]) {
            forward[j][d] = true;
            break;
          }
        }
      } else {
        forward[j][d] = forward[j - 1][d - 1];
      }
    }
  }

  // backward[j][d]: with chain[j-1] placed at depth d, the remaining chain
  // can finish exactly at depth m.
  std::vector<std::vector<char>> backward(k + 1,
                                          std::vector<char>(m + 1, false));
  if (k <= m) backward[k][m] = matches(k, m);
  for (size_t j = k - 1; j >= 1 && j < k; --j) {
    bool next_descendant = qpt.nodes[chain[j]].parent_descendant;
    for (size_t d = j; d <= m; ++d) {
      if (!matches(j, d)) continue;
      if (next_descendant) {
        for (size_t next = d + 1; next <= m; ++next) {
          if (backward[j + 1][next]) {
            backward[j][d] = true;
            break;
          }
        }
      } else {
        if (d + 1 <= m) backward[j][d] = backward[j + 1][d + 1];
      }
    }
  }

  std::vector<std::vector<int>> out(m);
  for (size_t d = 1; d <= m; ++d) {
    for (size_t j = 1; j <= k; ++j) {
      if (forward[j][d] && backward[j][d]) {
        out[d - 1].push_back(chain[j - 1]);
      }
    }
  }
  return out;
}

namespace {

/// An entry passes when its value satisfies every predicate on the node.
bool PassesPredicates(const qpt::QptNode& node,
                      const index::PathEntry& entry) {
  if (node.preds.empty()) return true;
  const std::string& value = entry.value.has_value() ? *entry.value : "";
  for (const qpt::QptPredicate& pred : node.preds) {
    if (!pred.Matches(value)) return false;
  }
  return true;
}

}  // namespace

Result<PreparedLists> PrepareLists(const qpt::Qpt& qpt,
                                   const index::DocumentIndexView& indexes,
                                   const std::vector<std::string>& keywords) {
  PreparedLists out;

  for (int n = 1; n < static_cast<int>(qpt.nodes.size()); ++n) {
    const qpt::QptNode& node = qpt.nodes[n];
    bool probe = !qpt.HasMandatoryChild(n) || node.v_ann || node.c_ann;
    if (!probe) continue;
    // Values ride along when the node needs them for evaluation or has
    // predicates to check ("combining retrieval of IDs and values").
    bool with_values = node.v_ann || !node.preds.empty();

    PathList list;
    list.qpt_node = n;
    index::PathPattern pattern = qpt.PatternFor(n);
    QUICKVIEW_ASSIGN_OR_RETURN(
        std::vector<index::PathRows> rows,
        indexes.paths->LookUpPerPath(pattern, with_values));
    ++out.index_probes;

    for (index::PathRows& row : rows) {
      int ordinal = static_cast<int>(list.depth_qnodes.size());
      list.depth_qnodes.push_back(MapDepthsToQptNodes(qpt, n, row.path));
      for (index::PathEntry& entry : row.entries) {
        if (!PassesPredicates(node, entry)) continue;
        ListEntry le;
        le.id = std::move(entry.id);
        le.byte_length = entry.byte_length;
        if (node.v_ann) le.value = std::move(entry.value);
        le.path_ordinal = ordinal;
        list.entries.push_back(std::move(le));
      }
    }
    // Merge per-path lists into one Dewey-ordered list.
    std::sort(list.entries.begin(), list.entries.end(),
              [](const ListEntry& a, const ListEntry& b) {
                return a.id < b.id;
              });
    out.path_lists.push_back(std::move(list));
  }

  for (const std::string& keyword : keywords) {
    InvList inv;
    inv.term = keyword;
    QUICKVIEW_ASSIGN_OR_RETURN(inv.postings, indexes.terms->Lookup(keyword));
    inv.BuildPrefix();
    out.inv_lists.push_back(std::move(inv));
  }
  return out;
}

}  // namespace quickview::pdt
