// GeneratePdt (paper §4.2.2, Figs 9-11, generalized in Appendix E): builds
// the Pruned Document Tree for one QPT with a single merge pass over the
// Dewey-ordered lists from PrepareLists, never touching base documents.
// The PDT contains exactly the elements satisfying the ancestor,
// descendant and predicate constraints of the QPT (Definitions 1-3), with
// selectively materialized values on 'v' nodes and subtree term
// frequencies + byte lengths on 'c' nodes.
#ifndef QUICKVIEW_PDT_GENERATE_PDT_H_
#define QUICKVIEW_PDT_GENERATE_PDT_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/index_builder.h"
#include "pdt/prepare_lists.h"
#include "qpt/qpt.h"
#include "xml/dom.h"

namespace quickview::pdt {

/// A confirmed pruned-tree element: what PDT generation (and the GTP
/// baseline) emit before document assembly.
struct PdtElement {
  std::string tag;
  std::optional<std::string> value;  // 'v' nodes: selectively materialized
  uint64_t byte_length = 0;
  bool content = false;  // 'c' nodes: carry tf/byte-length NodeStats
};

/// Assembles emitted elements (keyed by Dewey id, i.e. document order)
/// into a Document, synthesizing placeholder ancestors for depths the QPT
/// does not mention (only reachable via '//' steps, so their tags are
/// never inspected). 'c' elements get NodeStats with per-keyword subtree
/// term frequencies computed from `inv_lists`.
std::shared_ptr<xml::Document> AssemblePdtDocument(
    const std::map<xml::DeweyId, PdtElement>& elements,
    const std::vector<InvList>& inv_lists);

struct PdtBuildStats {  // lint:allow(adhoc-stats) per-build result record returned to the caller
  uint64_t ids_processed = 0;    // ids consumed from path lists
  uint64_t nodes_emitted = 0;    // PDT nodes written
  uint64_t peak_ct_nodes = 0;    // candidate-tree high-water mark
  uint64_t index_probes = 0;     // from PrepareLists
  uint64_t pdt_bytes = 0;        // serialized size of the PDT
};

/// Builds the PDT for `qpt` from already-prepared lists.
Result<std::shared_ptr<xml::Document>> GeneratePdtFromLists(
    const qpt::Qpt& qpt, PreparedLists lists, PdtBuildStats* stats);

/// Convenience: PrepareLists + GeneratePdtFromLists (the GeneratePDT of
/// Fig 9). `keywords` must be lowercased. The view form is the canonical
/// one — it runs identically over in-memory and disk-resident indices.
Result<std::shared_ptr<xml::Document>> GeneratePdt(
    const qpt::Qpt& qpt, const index::DocumentIndexView& indexes,
    const std::vector<std::string>& keywords, PdtBuildStats* stats = nullptr);

inline Result<std::shared_ptr<xml::Document>> GeneratePdt(
    const qpt::Qpt& qpt, const index::DocumentIndexes& indexes,
    const std::vector<std::string>& keywords, PdtBuildStats* stats = nullptr) {
  return GeneratePdt(qpt, indexes.View(), keywords, stats);
}

}  // namespace quickview::pdt

#endif  // QUICKVIEW_PDT_GENERATE_PDT_H_
