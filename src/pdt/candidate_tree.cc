#include "pdt/candidate_tree.h"

#include <algorithm>
#include <cassert>

namespace quickview::pdt {

CtQEntry* CtNode::FindEntry(int qnode) {
  for (CtQEntry& entry : qentries) {
    if (entry.qnode == qnode) return &entry;
  }
  return nullptr;
}

const CtQEntry* CtNode::FindEntry(int qnode) const {
  for (const CtQEntry& entry : qentries) {
    if (entry.qnode == qnode) return &entry;
  }
  return nullptr;
}

int CtNode::FindEntryIndex(int qnode) const {
  for (size_t i = 0; i < qentries.size(); ++i) {
    if (qentries[i].qnode == qnode) return static_cast<int>(i);
  }
  return -1;
}

bool CandidateTree::IsCandidate(const CtQEntry& entry) const {
  uint64_t all = full_mask_[entry.qnode];
  return (entry.dm & all) == all;
}

void CandidateTree::NotifyCandidate(CtNode* node, int entry_index) {
  CtQEntry& entry = node->qentries[entry_index];
  if (entry.notified) return;
  entry.notified = true;
  int qnode = entry.qnode;
  int parent_qnode = qpt_->nodes[qnode].parent;
  if (parent_qnode < 0) return;
  for (auto& [ancestor, ancestor_entry_index] : entry.parent_list) {
    CtQEntry& ancestor_entry = ancestor->qentries[ancestor_entry_index];
    // Locate this child edge's bit position among the parent's mandatory
    // children; optional edges carry no DM bit.
    if (!qpt_->nodes[qnode].parent_mandatory) continue;
    const std::vector<int>& mandatory = mandatory_children_[parent_qnode];
    auto it = std::find(mandatory.begin(), mandatory.end(), qnode);
    if (it == mandatory.end()) continue;
    uint64_t bit = uint64_t{1} << (it - mandatory.begin());
    if ((ancestor_entry.dm & bit) != 0) continue;
    ancestor_entry.dm |= bit;
    if (IsCandidate(ancestor_entry)) {
      NotifyCandidate(ancestor, ancestor_entry_index);
    }
  }
}

void CandidateTree::AddId(const xml::DeweyId& id,
                          const std::vector<std::vector<int>>& depth_qnodes,
                          int list_index,
                          const std::optional<std::string>& value,
                          uint64_t byte_length) {
  // Walk the prefixes top-down, creating CT nodes only at depths that
  // match some QPT node (other depths are pruned; Dewey ids preserve the
  // structural relationships). Existing nodes at a prefix are always
  // passed through, even when this id's data path maps no QPT node there.
  CtNode* current = root_.get();
  // Ancestor (node, entry index) pairs seen so far on this id's path,
  // used to build the parent lists of new entries.
  std::vector<std::pair<CtNode*, int>> ancestry;
  std::vector<std::pair<CtNode*, int>> new_entries;  // for notification

  for (size_t depth = 1; depth <= id.depth(); ++depth) {
    const std::vector<int>& qnodes = depth_qnodes[depth - 1];
    xml::DeweyId prefix = id.Prefix(depth);
    CtNode* node = nullptr;
    auto it = current->children.find(prefix);
    if (it != current->children.end()) {
      node = it->second.get();
    } else if (!qnodes.empty()) {
      auto created = std::make_unique<CtNode>();
      created->id = prefix;
      created->parent = current;
      node = created.get();
      // Containment invariant: any existing sibling that is really a
      // descendant of the new prefix moves under the new node.
      for (auto child_it = current->children.begin();
           child_it != current->children.end();) {
        if (prefix.IsAncestorOf(child_it->first)) {
          child_it->second->parent = node;
          node->children.emplace(child_it->first,
                                 std::move(child_it->second));
          child_it = current->children.erase(child_it);
        } else {
          ++child_it;
        }
      }
      current->children.emplace(prefix, std::move(created));
      ++live_nodes;
      peak_nodes = std::max(peak_nodes, live_nodes);
    }
    if (node == nullptr) continue;  // pruned depth
    current = node;
    // Merge QPT-node entries for this depth.
    for (int qnode : qnodes) {
      if (node->FindEntry(qnode) != nullptr) continue;
      CtQEntry entry;
      entry.qnode = qnode;
      int parent_qnode = qpt_->nodes[qnode].parent;
      if (parent_qnode > 0) {
        bool descendant_axis = qpt_->nodes[qnode].parent_descendant;
        for (auto& [anc, anc_index] : ancestry) {
          if (anc->qentries[anc_index].qnode != parent_qnode) continue;
          bool ok = descendant_axis ? anc->id.IsAncestorOf(prefix)
                                    : anc->id.IsParentOf(prefix);
          if (ok) entry.parent_list.emplace_back(anc, anc_index);
        }
      }
      node->qentries.push_back(std::move(entry));
      new_entries.emplace_back(node,
                               static_cast<int>(node->qentries.size() - 1));
    }
    // This prefix's entries are ancestry for deeper prefixes.
    for (size_t i = 0; i < node->qentries.size(); ++i) {
      ancestry.emplace_back(node, static_cast<int>(i));
    }
  }

  // Attach the payload to the full-depth node.
  if (current->id == id) {
    if (value.has_value()) current->value = value;
    if (byte_length > 0) current->byte_length = byte_length;
    current->has_payload = true;
    if (std::find(current->source_lists.begin(), current->source_lists.end(),
                  list_index) == current->source_lists.end()) {
      current->source_lists.push_back(list_index);
      ++list_counts_[list_index];
    }
  }

  // DM propagation for entries that are candidates on arrival, and for
  // entries whose candidacy was already established (AddCTNode lines
  // 15-17 of Fig 26).
  for (auto& [node, entry_index] : new_entries) {
    if (IsCandidate(node->qentries[entry_index])) {
      NotifyCandidate(node, entry_index);
    }
  }
}

int CandidateTree::ListCount(int list_index) const {
  auto it = list_counts_.find(list_index);
  return it == list_counts_.end() ? 0 : it->second;
}

void CandidateTree::DecrementListCounts(const CtNode& node) {
  for (int list : node.source_lists) {
    auto it = list_counts_.find(list);
    if (it != list_counts_.end() && it->second > 0) --it->second;
  }
}

std::vector<CtNode*> CandidateTree::LeftMostPath() {
  std::vector<CtNode*> out;
  CtNode* node = root_.get();
  while (!node->children.empty()) {
    node = node->children.begin()->second.get();
    out.push_back(node);
  }
  return out;
}

}  // namespace quickview::pdt
