// PrepareLists (paper §4.2.1, Fig 7): issues a fixed number of index
// probes — proportional to the query size, never the data — and returns
// the Dewey-ordered id lists (with selectively-materialized values and
// byte lengths) plus the inverted lists for the query keywords. This is
// the only input GeneratePdt consumes; base documents are never touched.
//
// Probe set: QPT nodes with no mandatory child edges (all leaves included)
// as in Fig 7 lines 5-13, plus 'v'-annotated nodes (values; Fig 7 line
// 15), plus 'c'-annotated interior nodes (quickview extension: their
// subtree byte lengths must come from the index for scoring).
#ifndef QUICKVIEW_PDT_PREPARE_LISTS_H_
#define QUICKVIEW_PDT_PREPARE_LISTS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/index_builder.h"
#include "index/index_view.h"
#include "qpt/qpt.h"
#include "xml/dewey_id.h"

namespace quickview::pdt {

/// One id from a path list, tagged with the data path that produced it.
struct ListEntry {
  xml::DeweyId id;
  uint64_t byte_length = 0;
  std::optional<std::string> value;
  int path_ordinal = 0;  // index into PathList::depth_qnodes
};

/// The Dewey-ordered id list for one probed QPT node.
struct PathList {
  int qpt_node = -1;
  /// depth_qnodes[path_ordinal][depth - 1] = QPT nodes that an id prefix
  /// of that depth corresponds to, for ids retrieved from that data path
  /// (all pattern-into-path embeddings; handles repeating tags, App. E).
  std::vector<std::vector<std::vector<int>>> depth_qnodes;
  std::vector<ListEntry> entries;
};

/// The postings for one keyword, with prefix sums so a 'c' node's subtree
/// term frequency is a single range sum over the Dewey-ordered list.
struct InvList {
  std::string term;
  std::vector<index::Posting> postings;
  std::vector<uint64_t> tf_prefix;  // size postings.size() + 1

  void BuildPrefix();
  /// Sum of tf over postings whose id is `id` or a descendant of it.
  uint64_t SubtreeTf(const xml::DeweyId& id) const;
};

struct PreparedLists {
  std::vector<PathList> path_lists;
  std::vector<InvList> inv_lists;  // one per query keyword, in order
  uint64_t index_probes = 0;       // number of path-index pattern probes
};

/// Computes, for a QPT leaf-to-root pattern embedded into the full data
/// path `path` (ids of which sit at depth == segment count), the QPT nodes
/// matching each prefix depth. Exposed for testing.
std::vector<std::vector<int>> MapDepthsToQptNodes(const qpt::Qpt& qpt,
                                                  int leaf,
                                                  const std::string& path);

/// Runs the probes of Fig 7 against the document's index views — the
/// in-memory B+-trees or disk-resident pages, whichever backs the view.
Result<PreparedLists> PrepareLists(const qpt::Qpt& qpt,
                                   const index::DocumentIndexView& indexes,
                                   const std::vector<std::string>& keywords);

/// Convenience overload over concrete in-memory indices.
inline Result<PreparedLists> PrepareLists(
    const qpt::Qpt& qpt, const index::DocumentIndexes& indexes,
    const std::vector<std::string>& keywords) {
  return PrepareLists(qpt, indexes.View(), keywords);
}

}  // namespace quickview::pdt

#endif  // QUICKVIEW_PDT_PREPARE_LISTS_H_
