#include "pdt/generate_pdt.h"

#include <algorithm>
#include <map>

#include "pdt/candidate_tree.h"
#include "xml/serializer.h"

namespace quickview::pdt {

std::shared_ptr<xml::Document> AssemblePdtDocument(
    const std::map<xml::DeweyId, PdtElement>& elements,
    const std::vector<InvList>& inv_lists) {
  uint32_t root_component = 1;
  if (!elements.empty()) {
    root_component = elements.begin()->first.component(0);
  }
  auto doc = std::make_shared<xml::Document>(root_component);
  // Stack of (id, node) along the current root-to-leaf path.
  std::vector<std::pair<xml::DeweyId, xml::NodeIndex>> stack;
  for (auto& [id, entry] : elements) {
    while (!stack.empty() && !stack.back().first.IsAncestorOf(id)) {
      stack.pop_back();
    }
    // Ancestors absent from the element set become structural
    // placeholders (iterated in sorted order, any present ancestor is
    // already on the stack).
    size_t base_depth = stack.empty() ? 0 : stack.back().first.depth();
    for (size_t depth = base_depth + 1; depth < id.depth(); ++depth) {
      xml::DeweyId prefix = id.Prefix(depth);
      xml::NodeIndex placeholder =
          stack.empty()
              ? doc->CreateRoot("qv:gap")
              : doc->AddChildWithId(stack.back().second, "qv:gap", prefix);
      stack.emplace_back(std::move(prefix), placeholder);
    }
    xml::NodeIndex node =
        stack.empty()
            ? doc->CreateRoot(entry.tag)
            : doc->AddChildWithId(stack.back().second, entry.tag, id);
    if (entry.value.has_value()) doc->node(node).text = *entry.value;
    if (entry.content) {
      xml::NodeStats stats;
      stats.byte_length = entry.byte_length;
      stats.content_pruned = true;
      stats.source_doc = id.component(0);
      stats.source_id = id;
      stats.term_tf.reserve(inv_lists.size());
      for (const InvList& inv : inv_lists) {
        stats.term_tf.push_back(static_cast<uint32_t>(inv.SubtreeTf(id)));
      }
      doc->node(node).stats = std::move(stats);
    }
    stack.emplace_back(id, node);
  }
  return doc;
}

namespace {

class PdtGenerator {
 public:
  PdtGenerator(const qpt::Qpt& qpt, PreparedLists lists, PdtBuildStats* stats)
      : qpt_(qpt), lists_(std::move(lists)), ct_(&qpt), stats_(stats) {}

  Result<std::shared_ptr<xml::Document>> Run() {
    cursors_.assign(lists_.path_lists.size(), 0);
    list_for_qnode_.assign(qpt_.nodes.size(), -1);
    for (size_t i = 0; i < lists_.path_lists.size(); ++i) {
      list_for_qnode_[lists_.path_lists[i].qpt_node] = static_cast<int>(i);
    }

    // Initialize the CT with the minimum id of every list (Fig 9 lines
    // 4-6).
    for (size_t i = 0; i < lists_.path_lists.size(); ++i) {
      Pull(static_cast<int>(i));
    }

    // Main loop (Fig 9 lines 7-15 / Fig 25 lines 8-19).
    while (ct_.HasNodes()) {
      // Step 1: for every QPT node on the left-most path that has a list,
      // retrieve the next minimum id, keeping at most two ids per list in
      // the CT (Fig 9 line 10) — EXCEPT that a list with any pending id
      // inside the current bottom node's subtree keeps pulling
      // regardless: removing the bottom is only sound once no future id
      // can still be one of its descendants, and the in-CT ids of such a
      // list are necessarily all on the left-most path, so the two-id
      // cap alone would starve exactly these pulls. Repeat until
      // quiescent (each pull may deepen or reshape the left-most path).
      bool pulled = true;
      while (pulled) {
        pulled = false;
        std::vector<CtNode*> lmp = ct_.LeftMostPath();
        const xml::DeweyId bottom_id = lmp.back()->id;
        for (CtNode* node : lmp) {
          // Snapshot the qnode ids: Pull() may add entries to this very
          // node, reallocating `qentries` and invalidating any reference
          // held across the call. (CtNode objects themselves are stable —
          // they are owned by unique_ptr — only the vector moves.)
          qnode_snapshot_.clear();
          for (const CtQEntry& entry : node->qentries) {
            qnode_snapshot_.push_back(entry.qnode);
          }
          for (int qnode : qnode_snapshot_) {
            int list = list_for_qnode_[qnode];
            if (list < 0) continue;
            if (PeekNext(list) == nullptr) continue;
            if (ct_.ListCount(list) < 2 ||
                ListHasPendingDescendant(list, bottom_id)) {
              Pull(list);
              pulled = true;
            }
          }
          if (pulled) break;  // the left-most path may have changed
        }
      }
      // Step 2: create PDT nodes top-down along the left-most path.
      std::vector<CtNode*> lmp = ct_.LeftMostPath();
      for (CtNode* node : lmp) ProcessTopDown(node);
      // Step 3: remove the bottom node (always childless by construction
      // of the left-most path), flushing its pdt cache upward.
      RemoveBottom(lmp.back());
    }
    // Entries that reached the CT root's cache with a vacuous ancestor
    // constraint are final PDT nodes.
    FlushRootCache();

    std::shared_ptr<xml::Document> doc =
        AssemblePdtDocument(output_, lists_.inv_lists);
    if (stats_ != nullptr) {
      stats_->peak_ct_nodes = ct_.peak_nodes;
      stats_->nodes_emitted = output_.size();
      stats_->index_probes = lists_.index_probes;
      if (doc->has_root()) {
        stats_->pdt_bytes = xml::SubtreeByteLength(*doc, doc->root());
      }
    }
    return doc;
  }

 private:
  /// Next unconsumed id of the list, or nullptr when exhausted.
  const xml::DeweyId* PeekNext(int list) const {
    const PathList& pl = lists_.path_lists[list];
    if (cursors_[list] >= pl.entries.size()) return nullptr;
    return &pl.entries[cursors_[list]].id;
  }

  /// True iff some not-yet-pulled id of the list is `bottom` or one of
  /// its descendants (contiguous range in the Dewey-ordered list).
  bool ListHasPendingDescendant(int list, const xml::DeweyId& bottom) const {
    const PathList& pl = lists_.path_lists[list];
    auto it = std::lower_bound(
        pl.entries.begin() + static_cast<ptrdiff_t>(cursors_[list]),
        pl.entries.end(), bottom,
        [](const ListEntry& e, const xml::DeweyId& key) {
          return e.id < key;
        });
    return it != pl.entries.end() && bottom.IsPrefixOf(it->id);
  }

  void Pull(int list) {
    PathList& pl = lists_.path_lists[list];
    if (cursors_[list] >= pl.entries.size()) return;
    const ListEntry& entry = pl.entries[cursors_[list]++];
    ct_.AddId(entry.id, pl.depth_qnodes[entry.path_ordinal], list,
              entry.value, entry.byte_length);
    if (stats_ != nullptr) ++stats_->ids_processed;
  }

  /// Fig 27 lines 2-14: confirm entries whose ancestor + descendant
  /// constraints hold; park descendant-satisfied entries in the tree
  /// parent's pdt cache otherwise.
  void ProcessTopDown(CtNode* node) {
    for (CtQEntry& entry : node->qentries) {
      if (entry.in_pdt || !ct_.IsCandidate(entry)) continue;
      bool root_parent = qpt_.nodes[entry.qnode].parent == 0;
      bool ancestors_ok = root_parent;
      if (!ancestors_ok) {
        for (auto& [anc, idx] : entry.parent_list) {
          if (anc->qentries[idx].in_pdt) {
            ancestors_ok = true;
            break;
          }
        }
      }
      if (ancestors_ok) {
        entry.in_pdt = true;
        Emit(node, entry.qnode);
      } else {
        CacheCandidate(node, entry);
      }
    }
  }

  void Emit(CtNode* node, int qnode) {
    PdtElement& out = output_[node->id];
    if (out.tag.empty()) out.tag = qpt_.nodes[qnode].tag;
    if (node->value.has_value() && qpt_.nodes[qnode].v_ann) {
      out.value = node->value;
    }
    if (node->byte_length > 0) out.byte_length = node->byte_length;
    out.content = out.content || qpt_.nodes[qnode].c_ann;
    node->emitted = true;
  }

  void EmitCache(const PdtCacheEntry& x) {
    PdtElement& out = output_[x.id];
    if (out.tag.empty()) out.tag = x.tag;
    if (x.value.has_value()) out.value = x.value;
    if (x.byte_length > 0) out.byte_length = x.byte_length;
    out.content = out.content || x.content;
  }

  void CacheCandidate(CtNode* node, const CtQEntry& entry) {
    CtNode* parent = node->parent;
    const qpt::QptNode& qnode = qpt_.nodes[entry.qnode];
    for (PdtCacheEntry& existing : parent->pdt_cache) {
      if (existing.id == node->id) {
        // Merge another QPT-node view of the same id.
        for (auto& p : entry.parent_list) {
          if (std::find(existing.parent_list.begin(),
                        existing.parent_list.end(),
                        p) == existing.parent_list.end()) {
            existing.parent_list.push_back(p);
          }
        }
        existing.content = existing.content || qnode.c_ann;
        if (qnode.v_ann && node->value.has_value()) {
          existing.value = node->value;
        }
        return;
      }
    }
    PdtCacheEntry x;
    x.id = node->id;
    x.tag = qnode.tag;
    if (qnode.v_ann) x.value = node->value;
    x.byte_length = node->byte_length;
    x.content = qnode.c_ann;
    x.root_parent = false;  // root-parent entries are confirmed directly
    x.parent_list = entry.parent_list;
    parent->pdt_cache.push_back(std::move(x));
  }

  /// Fig 27 lines 19-34: flush the bottom node's pdt cache (emit, drop, or
  /// propagate with rewritten parent lists), then unlink the node.
  void RemoveBottom(CtNode* bottom) {
    CtNode* parent = bottom->parent;
    for (PdtCacheEntry& x : bottom->pdt_cache) {
      bool ancestors_ok = x.root_parent;
      if (!ancestors_ok) {
        for (auto& [anc, idx] : x.parent_list) {
          if (anc->qentries[idx].in_pdt) {
            ancestors_ok = true;
            break;
          }
        }
      }
      if (ancestors_ok) {
        EmitCache(x);
        continue;
      }
      // Rewrite references to the node being removed: a candidate parent
      // entry is replaced by its own parents (the constraint transfers one
      // level up); a non-candidate parent entry is dead — its descendant
      // map can no longer change — and is simply dropped (Fig 27 line 26).
      std::vector<std::pair<CtNode*, int>> rewritten;
      for (auto& ref : x.parent_list) {
        if (ref.first != bottom) {
          rewritten.push_back(ref);
          continue;
        }
        CtQEntry& q = bottom->qentries[ref.second];
        if (!ct_.IsCandidate(q)) continue;  // dead parent
        if (qpt_.nodes[q.qnode].parent == 0) x.root_parent = true;
        for (auto& up : q.parent_list) {
          if (std::find(rewritten.begin(), rewritten.end(), up) ==
              rewritten.end()) {
            rewritten.push_back(up);
          }
        }
      }
      x.parent_list = std::move(rewritten);
      if (x.parent_list.empty() && !x.root_parent) continue;  // dead
      // Propagate to the parent's cache (merge by id).
      bool merged = false;
      for (PdtCacheEntry& existing : parent->pdt_cache) {
        if (existing.id == x.id) {
          for (auto& p : x.parent_list) {
            if (std::find(existing.parent_list.begin(),
                          existing.parent_list.end(),
                          p) == existing.parent_list.end()) {
              existing.parent_list.push_back(p);
            }
          }
          existing.content = existing.content || x.content;
          existing.root_parent = existing.root_parent || x.root_parent;
          if (x.value.has_value()) existing.value = x.value;
          merged = true;
          break;
        }
      }
      if (!merged) parent->pdt_cache.push_back(std::move(x));
    }
    ct_.DecrementListCounts(*bottom);
    --ct_.live_nodes;
    parent->children.erase(bottom->id);
  }

  void FlushRootCache() {
    for (PdtCacheEntry& x : ct_.root()->pdt_cache) {
      bool ancestors_ok = x.root_parent;
      // Any remaining parent refs point at removed entries' survivors —
      // by the flush discipline, only in_pdt parents can remain reachable.
      if (ancestors_ok) EmitCache(x);
    }
    ct_.root()->pdt_cache.clear();
  }

  const qpt::Qpt& qpt_;
  PreparedLists lists_;
  CandidateTree ct_;
  PdtBuildStats* stats_;
  std::vector<size_t> cursors_;
  std::vector<int> list_for_qnode_;
  /// Scratch buffer for the pull loop's per-node qnode snapshot (member to
  /// avoid reallocating once per node per round).
  std::vector<int> qnode_snapshot_;
  std::map<xml::DeweyId, PdtElement> output_;
};

}  // namespace

Result<std::shared_ptr<xml::Document>> GeneratePdtFromLists(
    const qpt::Qpt& qpt, PreparedLists lists, PdtBuildStats* stats) {
  return PdtGenerator(qpt, std::move(lists), stats).Run();
}

Result<std::shared_ptr<xml::Document>> GeneratePdt(
    const qpt::Qpt& qpt, const index::DocumentIndexView& indexes,
    const std::vector<std::string>& keywords, PdtBuildStats* stats) {
  QV_ASSIGN_OR_RETURN(PreparedLists lists,
                      PrepareLists(qpt, indexes, keywords));
  return GeneratePdtFromLists(qpt, std::move(lists), stats);
}

}  // namespace quickview::pdt
