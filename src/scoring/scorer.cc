#include "scoring/scorer.h"

#include <algorithm>
#include <cmath>

#include "xml/tokenizer.h"

namespace quickview::scoring {

namespace {

uint64_t EscapedLength(const std::string& text) {
  uint64_t length = 0;
  for (char c : text) {
    switch (c) {
      case '&':
        length += 5;
        break;
      case '<':
      case '>':
        length += 4;
        break;
      case '"':
      case '\'':
        length += 6;
        break;
      default:
        length += 1;
    }
  }
  return length;
}

void Walk(const xml::Document& doc, xml::NodeIndex index,
          const std::vector<std::string>& keywords, std::vector<uint64_t>* tf,
          uint64_t* byte_length) {
  const xml::Node& node = doc.node(index);
  if (node.stats.has_value() && node.stats->content_pruned) {
    // Summarized subtree: statistics were computed from indices during PDT
    // generation; the node's children (if any) duplicate summarized
    // content and must not be counted again.
    for (size_t k = 0; k < keywords.size(); ++k) {
      (*tf)[k] += k < node.stats->term_tf.size() ? node.stats->term_tf[k] : 0;
    }
    *byte_length += node.stats->byte_length;
    return;
  }
  for (const std::string& term : xml::DirectTerms(node)) {
    for (size_t k = 0; k < keywords.size(); ++k) {
      if (term == keywords[k]) ++(*tf)[k];
    }
  }
  *byte_length += 2 * node.tag.size() + 5;  // <tag></tag>
  if (!node.text.empty()) *byte_length += EscapedLength(node.text);
  for (xml::NodeIndex child : node.children) {
    Walk(doc, child, keywords, tf, byte_length);
  }
}

}  // namespace

void ComputeResultStatistics(const xquery::NodeHandle& result,
                             const std::vector<std::string>& keywords,
                             std::vector<uint64_t>* tf,
                             uint64_t* byte_length) {
  tf->assign(keywords.size(), 0);
  *byte_length = 0;
  Walk(*result.doc, result.effective_index(), keywords, tf, byte_length);
}

Result<CandidateSet> CollectCandidates(
    const xquery::Sequence& view_results,
    const std::vector<std::string>& keywords,
    const CancellationToken* cancel) {
  CandidateSet set;
  set.sequence_size = view_results.size();
  set.candidates.reserve(view_results.size());
  for (size_t i = 0; i < view_results.size(); ++i) {
    if (cancel != nullptr && cancel->Fired()) return cancel->ToStatus();
    const xquery::NodeHandle* handle =
        std::get_if<xquery::NodeHandle>(&view_results[i]);
    if (handle == nullptr) continue;  // atomic items are never results
    ScoredResult r;
    r.result = *handle;
    r.view_position = i;
    ComputeResultStatistics(*handle, keywords, &r.tf, &r.byte_length);
    set.view_bytes += r.byte_length;
    set.candidates.push_back(std::move(r));
  }
  return set;
}

void AccumulateDf(const CandidateSet& set, std::vector<uint64_t>* df) {
  if (!set.candidates.empty() && df->size() < set.candidates[0].tf.size()) {
    df->resize(set.candidates[0].tf.size(), 0);
  }
  for (const ScoredResult& r : set.candidates) {
    for (size_t k = 0; k < r.tf.size(); ++k) {
      if (r.tf[k] > 0) ++(*df)[k];
    }
  }
}

std::vector<double> ComputeIdf(uint64_t total_candidates,
                               const std::vector<uint64_t>& df) {
  const double total = static_cast<double>(total_candidates);
  std::vector<double> idf(df.size(), 0.0);
  for (size_t k = 0; k < df.size(); ++k) {
    idf[k] = df[k] == 0 ? 0.0 : total / static_cast<double>(df[k]);
  }
  return idf;
}

Result<std::vector<ScoredResult>> FilterAndScore(
    std::vector<ScoredResult> candidates, const std::vector<double>& idf,
    bool conjunctive, const CancellationToken* cancel) {
  std::vector<ScoredResult> kept;
  for (ScoredResult& r : candidates) {
    if (cancel != nullptr && cancel->Fired()) return cancel->ToStatus();
    bool matches = conjunctive;
    for (size_t k = 0; k < r.tf.size(); ++k) {
      if (conjunctive) {
        if (r.tf[k] == 0) {
          matches = false;
          break;
        }
      } else if (r.tf[k] > 0) {
        matches = true;
      }
    }
    if (!matches) continue;
    double raw = 0;
    for (size_t k = 0; k < r.tf.size(); ++k) {
      raw += static_cast<double>(r.tf[k]) * idf[k];
    }
    r.score = raw / std::sqrt(static_cast<double>(r.byte_length) + 1.0);
    kept.push_back(std::move(r));
  }
  return kept;
}

ScoringOutcome ScoreCandidates(const xquery::Sequence& view_results,
                               const std::vector<std::string>& keywords,
                               bool conjunctive) {
  // Recomposed from the phased API so the one-shard path and the sharded
  // path run literally the same arithmetic. No cancellation token: the
  // synchronous path cannot fail, so the Results below are always values.
  Result<CandidateSet> collected =
      CollectCandidates(view_results, keywords, /*cancel=*/nullptr);
  CandidateSet set;
  if (collected.ok()) set = std::move(collected).value();

  std::vector<uint64_t> df(keywords.size(), 0);
  AccumulateDf(set, &df);
  const std::vector<double> idf =
      ComputeIdf(static_cast<uint64_t>(set.candidates.size()), df);

  ScoringOutcome outcome;
  outcome.view_bytes = set.view_bytes;
  Result<std::vector<ScoredResult>> kept = FilterAndScore(
      std::move(set.candidates), idf, conjunctive, /*cancel=*/nullptr);
  if (kept.ok()) outcome.ranked = std::move(kept).value();
  return outcome;
}

ScoringOutcome ScoreResults(const xquery::Sequence& view_results,
                            const std::vector<std::string>& keywords,
                            bool conjunctive) {
  ScoringOutcome outcome =
      ScoreCandidates(view_results, keywords, conjunctive);
  std::sort(outcome.ranked.begin(), outcome.ranked.end(),
            [](const ScoredResult& a, const ScoredResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.view_position < b.view_position;
            });
  return outcome;
}

void TakeTopK(std::vector<ScoredResult>* results, size_t k) {
  if (results->size() > k) results->resize(k);
}

}  // namespace quickview::scoring
