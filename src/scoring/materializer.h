// Scoring & Materialization module, materialization half (paper §4.2.2.2):
// "Only after the final top-k results are identified are the contents of
// these results retrieved from the document storage system." Pruned nodes
// in a result tree are replaced by their full subtrees fetched from the
// DocumentStore; everything else is copied as-is.
//
// Thread safety: materialization only reads the store (which is immutable
// after construction) and writes to the caller-owned target document, so
// concurrent queries may materialize against the same store. Per-query
// fetch accounting goes through the optional `fetch_stats` accumulator.
#ifndef QUICKVIEW_SCORING_MATERIALIZER_H_
#define QUICKVIEW_SCORING_MATERIALIZER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/document_store.h"
#include "xquery/evaluator.h"

namespace quickview::scoring {

/// Expands one (possibly pruned) result tree into `target` under
/// `target_parent` (kInvalidNode = as the root), fetching pruned subtrees
/// from `store`. For already-full results this is a plain copy and
/// touches no storage. When `fetch_stats` is non-null, every store fetch
/// is also accumulated into it (per-query accounting).
Status MaterializeResult(const xquery::NodeHandle& result,
                         const storage::DocumentStore* store,
                         xml::Document* target, xml::NodeIndex target_parent,
                         storage::DocumentStore::Stats* fetch_stats = nullptr);

/// Convenience: materializes into a fresh document and serializes it.
Result<std::string> MaterializeToXml(
    const xquery::NodeHandle& result, const storage::DocumentStore* store,
    storage::DocumentStore::Stats* fetch_stats = nullptr);

}  // namespace quickview::scoring

#endif  // QUICKVIEW_SCORING_MATERIALIZER_H_
