// Scoring & Materialization module, materialization half (paper §4.2.2.2):
// "Only after the final top-k results are identified are the contents of
// these results retrieved from the document storage system." Pruned nodes
// in a result tree are replaced by their full subtrees fetched from the
// DocumentStore; everything else is copied as-is.
#ifndef QUICKVIEW_SCORING_MATERIALIZER_H_
#define QUICKVIEW_SCORING_MATERIALIZER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/document_store.h"
#include "xquery/evaluator.h"

namespace quickview::scoring {

/// Expands one (possibly pruned) result tree into `target` under
/// `target_parent` (kInvalidNode = as the root), fetching pruned subtrees
/// from `store`. For already-full results this is a plain copy and
/// touches no storage.
Status MaterializeResult(const xquery::NodeHandle& result,
                         storage::DocumentStore* store, xml::Document* target,
                         xml::NodeIndex target_parent);

/// Convenience: materializes into a fresh document and serializes it.
Result<std::string> MaterializeToXml(const xquery::NodeHandle& result,
                                     storage::DocumentStore* store);

}  // namespace quickview::scoring

#endif  // QUICKVIEW_SCORING_MATERIALIZER_H_
