// Scoring & Materialization module, scoring half (paper §2.2, §4.2.2.2):
// enforces conjunctive/disjunctive keyword semantics and computes
// element-level TF-IDF scores over the view results. The same code scores
// pruned results (statistics read from NodeStats payloads placed by PDT
// generation) and fully materialized results (statistics recomputed from
// content), which is what makes the Efficient and Baseline engines produce
// *identical* scores and rank order (Theorem 4.1).
#ifndef QUICKVIEW_SCORING_SCORER_H_
#define QUICKVIEW_SCORING_SCORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "xquery/evaluator.h"

namespace quickview::scoring {

/// Per-view-result keyword statistics and score.
struct ScoredResult {
  xquery::NodeHandle result;
  size_t view_position = 0;  // position in the view sequence (tie-break)
  std::vector<uint64_t> tf;  // per query keyword
  uint64_t byte_length = 0;
  double score = 0;
};

/// tf(e, k) and len(e) for one result tree. Pruned nodes
/// (NodeStats::content_pruned) contribute their stored subtree statistics
/// and their children are skipped (the children duplicate summarized
/// content); other nodes contribute their direct terms and markup bytes.
void ComputeResultStatistics(const xquery::NodeHandle& result,
                             const std::vector<std::string>& keywords,
                             std::vector<uint64_t>* tf,
                             uint64_t* byte_length);

struct ScoringOutcome {
  /// Keyword-semantics applied. Sorted by ScoreResults; left in view
  /// order by ScoreCandidates (for incremental ranked selection).
  std::vector<ScoredResult> ranked;
  /// Total byte length over ALL view results — the volume a
  /// materialize-first engine has to produce and tokenize.
  uint64_t view_bytes = 0;
};

/// Scores the whole view-result sequence:
///  - keeps results containing every keyword (conjunctive) or at least one
///    (disjunctive);
///  - idf(k) = |V(D)| / |{e in V(D) : contains(e,k)}| over the *entire*
///    view (computed before filtering), exactly as if the view were
///    materialized;
///  - score(e) = sum_k tf(e,k) * idf(k), normalized by sqrt(len(e))
///    (a standard byte-length normalization from the similarity-space
///    family the paper cites [40]).
/// Results are returned sorted by descending score; ties break by view
/// position (the paper breaks ties arbitrarily; we fix an order so the
/// two engines agree exactly).
ScoringOutcome ScoreResults(const xquery::Sequence& view_results,
                            const std::vector<std::string>& keywords,
                            bool conjunctive);

/// ScoreResults without the final sort: scores and filters every view
/// result but leaves `ranked` in view order. Feed the scores into an
/// engine::RankedStream to pop them incrementally — the stream's
/// (score desc, position asc) order reproduces ScoreResults exactly,
/// without paying O(n log n) when only a few results are fetched.
ScoringOutcome ScoreCandidates(const xquery::Sequence& view_results,
                               const std::vector<std::string>& keywords,
                               bool conjunctive);

// ---------------------------------------------------------------------
// Phased scoring — the shard-composable decomposition of ScoreCandidates.
//
// idf must be computed over the ENTIRE view sequence, so a sharded
// engine cannot score shard-locally: each shard collects raw statistics
// (phase 1), the coordinator sums the integer counts and derives idf
// once (phase 2), then each shard's candidates are filtered and scored
// against the global idf (phase 3). Because all cross-shard aggregation
// happens on integers, the derived doubles — and therefore every score —
// are bit-identical to the single-sequence path, which is itself
// recomposed from the same three phases.

/// Phase-1 output: raw per-candidate statistics, no keyword semantics or
/// scores applied yet. `candidates` is in view order with view_position
/// local to the walked sequence (a sharded coordinator re-bases it by
/// the shard's cumulative offset).
struct CandidateSet {
  std::vector<ScoredResult> candidates;
  /// Length of the walked sequence INCLUDING atomic items that never
  /// become candidates — the |V(D)| the stats surface reports.
  size_t sequence_size = 0;
  /// Total byte length over the walked view results (ScoringOutcome
  /// semantics, per shard).
  uint64_t view_bytes = 0;
};

/// Phase 1: walks every view result collecting tf vectors and byte
/// lengths. Polls `cancel` (if non-null) between results and returns
/// its typed status when it fires.
Result<CandidateSet> CollectCandidates(
    const xquery::Sequence& view_results,
    const std::vector<std::string>& keywords,
    const CancellationToken* cancel = nullptr);

/// Phase 2a: folds one candidate set's per-keyword document frequencies
/// into `df` (resized to the tf width on first use).
void AccumulateDf(const CandidateSet& set, std::vector<uint64_t>* df);

/// Phase 2b: idf(k) = total_candidates / df(k), 0 when df(k) == 0 —
/// the exact arithmetic of ScoreCandidates, fed with globally summed
/// integer counts.
std::vector<double> ComputeIdf(uint64_t total_candidates,
                               const std::vector<uint64_t>& df);

/// Phase 3: applies conjunctive/disjunctive keyword semantics and the
/// TF-IDF score against a (possibly global) idf vector. Survivors keep
/// their input order. Polls `cancel` between candidates like phase 1.
Result<std::vector<ScoredResult>> FilterAndScore(
    std::vector<ScoredResult> candidates, const std::vector<double>& idf,
    bool conjunctive, const CancellationToken* cancel = nullptr);

/// Truncates a scored list to the top k (list is already sorted).
void TakeTopK(std::vector<ScoredResult>* results, size_t k);

}  // namespace quickview::scoring

#endif  // QUICKVIEW_SCORING_SCORER_H_
