// Scoring & Materialization module, scoring half (paper §2.2, §4.2.2.2):
// enforces conjunctive/disjunctive keyword semantics and computes
// element-level TF-IDF scores over the view results. The same code scores
// pruned results (statistics read from NodeStats payloads placed by PDT
// generation) and fully materialized results (statistics recomputed from
// content), which is what makes the Efficient and Baseline engines produce
// *identical* scores and rank order (Theorem 4.1).
#ifndef QUICKVIEW_SCORING_SCORER_H_
#define QUICKVIEW_SCORING_SCORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xquery/evaluator.h"

namespace quickview::scoring {

/// Per-view-result keyword statistics and score.
struct ScoredResult {
  xquery::NodeHandle result;
  size_t view_position = 0;  // position in the view sequence (tie-break)
  std::vector<uint64_t> tf;  // per query keyword
  uint64_t byte_length = 0;
  double score = 0;
};

/// tf(e, k) and len(e) for one result tree. Pruned nodes
/// (NodeStats::content_pruned) contribute their stored subtree statistics
/// and their children are skipped (the children duplicate summarized
/// content); other nodes contribute their direct terms and markup bytes.
void ComputeResultStatistics(const xquery::NodeHandle& result,
                             const std::vector<std::string>& keywords,
                             std::vector<uint64_t>* tf,
                             uint64_t* byte_length);

struct ScoringOutcome {
  /// Keyword-semantics applied. Sorted by ScoreResults; left in view
  /// order by ScoreCandidates (for incremental ranked selection).
  std::vector<ScoredResult> ranked;
  /// Total byte length over ALL view results — the volume a
  /// materialize-first engine has to produce and tokenize.
  uint64_t view_bytes = 0;
};

/// Scores the whole view-result sequence:
///  - keeps results containing every keyword (conjunctive) or at least one
///    (disjunctive);
///  - idf(k) = |V(D)| / |{e in V(D) : contains(e,k)}| over the *entire*
///    view (computed before filtering), exactly as if the view were
///    materialized;
///  - score(e) = sum_k tf(e,k) * idf(k), normalized by sqrt(len(e))
///    (a standard byte-length normalization from the similarity-space
///    family the paper cites [40]).
/// Results are returned sorted by descending score; ties break by view
/// position (the paper breaks ties arbitrarily; we fix an order so the
/// two engines agree exactly).
ScoringOutcome ScoreResults(const xquery::Sequence& view_results,
                            const std::vector<std::string>& keywords,
                            bool conjunctive);

/// ScoreResults without the final sort: scores and filters every view
/// result but leaves `ranked` in view order. Feed the scores into an
/// engine::RankedStream to pop them incrementally — the stream's
/// (score desc, position asc) order reproduces ScoreResults exactly,
/// without paying O(n log n) when only a few results are fetched.
ScoringOutcome ScoreCandidates(const xquery::Sequence& view_results,
                               const std::vector<std::string>& keywords,
                               bool conjunctive);

/// Truncates a scored list to the top k (list is already sorted).
void TakeTopK(std::vector<ScoredResult>* results, size_t k);

}  // namespace quickview::scoring

#endif  // QUICKVIEW_SCORING_SCORER_H_
