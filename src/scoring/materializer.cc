#include "scoring/materializer.h"

#include "xml/serializer.h"

namespace quickview::scoring {

Status MaterializeResult(const xquery::NodeHandle& result,
                         const storage::DocumentStore* store,
                         xml::Document* target, xml::NodeIndex target_parent,
                         storage::DocumentStore::Stats* fetch_stats) {
  const xml::Node& node = result.node();
  if (node.stats.has_value() && node.stats->content_pruned) {
    // Fetch the full subtree from base storage; the pruned node's children
    // are structural duplicates of fetched content and are dropped.
    return store->CopySubtree(node.stats->source_doc, node.stats->source_id,
                              target, target_parent, fetch_stats);
  }
  xml::NodeIndex copied = target_parent == xml::kInvalidNode
                              ? target->CreateRoot(node.tag)
                              : target->AddChild(target_parent, node.tag);
  target->node(copied).text = node.text;
  for (xml::NodeIndex child : node.children) {
    QV_RETURN_IF_ERROR(MaterializeResult(xquery::NodeHandle{result.doc, child},
                                         store, target, copied, fetch_stats));
  }
  return Status::OK();
}

Result<std::string> MaterializeToXml(
    const xquery::NodeHandle& result, const storage::DocumentStore* store,
    storage::DocumentStore::Stats* fetch_stats) {
  xml::Document doc(1);
  QV_RETURN_IF_ERROR(
      MaterializeResult(result, store, &doc, xml::kInvalidNode, fetch_stats));
  return xml::Serialize(doc);
}

}  // namespace quickview::scoring
