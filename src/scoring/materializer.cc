#include "scoring/materializer.h"

#include "xml/serializer.h"

namespace quickview::scoring {

Status MaterializeResult(const xquery::NodeHandle& result,
                         storage::DocumentStore* store, xml::Document* target,
                         xml::NodeIndex target_parent) {
  const xml::Node& node = result.node();
  if (node.stats.has_value() && node.stats->content_pruned) {
    // Fetch the full subtree from base storage; the pruned node's children
    // are structural duplicates of fetched content and are dropped.
    return store->CopySubtree(node.stats->source_doc, node.stats->source_id,
                              target, target_parent);
  }
  xml::NodeIndex copied = target_parent == xml::kInvalidNode
                              ? target->CreateRoot(node.tag)
                              : target->AddChild(target_parent, node.tag);
  target->node(copied).text = node.text;
  for (xml::NodeIndex child : node.children) {
    QV_RETURN_IF_ERROR(MaterializeResult(
        xquery::NodeHandle{result.doc, child}, store, target, copied));
  }
  return Status::OK();
}

Result<std::string> MaterializeToXml(const xquery::NodeHandle& result,
                                     storage::DocumentStore* store) {
  xml::Document doc(1);
  QV_RETURN_IF_ERROR(
      MaterializeResult(result, store, &doc, xml::kInvalidNode));
  return xml::Serialize(doc);
}

}  // namespace quickview::scoring
