// A fixed-size thread pool: N workers draining one FIFO task queue. The
// service layer sizes it once at startup (paper-scale serving wants a
// bounded number of executors, not a thread per request) and submits
// closures; Drain() gives batch callers a completion barrier without
// per-task futures.
#ifndef QUICKVIEW_SERVICE_THREAD_POOL_H_
#define QUICKVIEW_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace quickview::service {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(int threads);

  /// Completes queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Safe from any thread,
  /// including from within a task.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle. Tasks
  /// submitted while draining are waited for too.
  void Drain();

  int thread_count() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks / stop
  std::condition_variable idle_cv_;   // Drain waits for quiescence
  std::deque<std::function<void()>> queue_;
  int active_ = 0;  // tasks currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace quickview::service

#endif  // QUICKVIEW_SERVICE_THREAD_POOL_H_
