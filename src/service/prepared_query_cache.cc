#include "service/prepared_query_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace quickview::service {

PreparedQueryCache::PreparedQueryCache(const Options& options) {
  size_t shard_count = std::max<size_t>(1, options.shards);
  if (options.capacity == 0) {
    // Disabled: one empty shard with zero capacity.
    shard_count = 1;
    per_shard_capacity_ = 0;
    per_shard_max_bytes_ = 0;
  } else {
    shard_count = std::min(shard_count, options.capacity);
    per_shard_capacity_ =
        (options.capacity + shard_count - 1) / shard_count;
    per_shard_max_bytes_ =
        options.max_bytes == 0
            ? 0
            : std::max<uint64_t>(1, options.max_bytes / shard_count);
  }
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PreparedQueryCache::Shard& PreparedQueryCache::ShardFor(
    const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const engine::PreparedQuery> PreparedQueryCache::Get(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->prepared;
}

void PreparedQueryCache::Put(
    const std::string& key,
    std::shared_ptr<const engine::PreparedQuery> prepared) {
  if (per_shard_capacity_ == 0 || prepared == nullptr) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Concurrent builders racing on the same key: keep the incumbent
    // (identical by construction), just refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.bytes += prepared->memory_bytes;
  shard.lru.push_front(Entry{key, std::move(prepared)});
  shard.index.emplace(key, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  EvictLocked(&shard);
}

void PreparedQueryCache::EvictLocked(Shard* shard) {
  while (shard->lru.size() > per_shard_capacity_ ||
         (per_shard_max_bytes_ != 0 && shard->bytes > per_shard_max_bytes_ &&
          shard->lru.size() > 1)) {
    const Entry& victim = shard->lru.back();
    shard->bytes -= victim.prepared->memory_bytes;
    shard->index.erase(victim.key);
    shard->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PreparedQueryCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

PreparedQueryCache::Stats PreparedQueryCache::stats() const {
  return Stats{hits_.load(std::memory_order_relaxed),
               misses_.load(std::memory_order_relaxed),
               insertions_.load(std::memory_order_relaxed),
               evictions_.load(std::memory_order_relaxed)};
}

size_t PreparedQueryCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace quickview::service
