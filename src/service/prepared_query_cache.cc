#include "service/prepared_query_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace quickview::service {

PreparedQueryCache::PreparedQueryCache(const Options& options)
    : capacity_(options.capacity), max_bytes_(options.max_bytes) {
  size_t shard_count = std::max<size_t>(1, options.shards);
  if (options.capacity == 0) {
    // Disabled: one empty shard.
    shard_count = 1;
    max_bytes_ = 0;
  } else {
    shard_count = std::min(shard_count, options.capacity);
  }
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PreparedQueryCache::Shard& PreparedQueryCache::ShardFor(
    const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const engine::PreparedQuery> PreparedQueryCache::Get(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  qv::MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.Increment();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.Increment();
  return it->second->prepared;
}

void PreparedQueryCache::Put(
    const std::string& key,
    std::shared_ptr<const engine::PreparedQuery> prepared) {
  if (capacity_ == 0 || prepared == nullptr) return;
  Shard& shard = ShardFor(key);
  qv::MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Concurrent builders racing on the same key: keep the incumbent
    // (identical by construction), just refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  total_bytes_.fetch_add(prepared->memory_bytes, std::memory_order_relaxed);
  total_entries_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.push_front(Entry{key, std::move(prepared)});
  shard.index.emplace(key, shard.lru.begin());
  insertions_.Increment();
  EvictLocked(&shard);
}

void PreparedQueryCache::EvictLocked(Shard* shard) {
  // Budgets are global; the inserting shard pays while the cache as a
  // whole is over one of them — but never with the entry just inserted
  // (the shard's sole survivor): evicting the newest key because OTHER
  // shards hold the overflow would make a hot key whose shard receives
  // no other insertions miss forever. The resulting overshoot is
  // bounded by one entry per shard.
  while (shard->lru.size() > 1 &&
         (total_entries_.load(std::memory_order_relaxed) > capacity_ ||
          (max_bytes_ != 0 &&
           total_bytes_.load(std::memory_order_relaxed) > max_bytes_))) {
    const Entry& victim = shard->lru.back();
    total_bytes_.fetch_sub(victim.prepared->memory_bytes,
                           std::memory_order_relaxed);
    total_entries_.fetch_sub(1, std::memory_order_relaxed);
    shard->index.erase(victim.key);
    shard->lru.pop_back();
    evictions_.Increment();
  }
}

void PreparedQueryCache::Clear() {
  for (auto& shard : shards_) {
    qv::MutexLock lock(shard->mu);
    total_entries_.fetch_sub(shard->lru.size(), std::memory_order_relaxed);
    for (const Entry& entry : shard->lru) {
      total_bytes_.fetch_sub(entry.prepared->memory_bytes,
                             std::memory_order_relaxed);
    }
    shard->lru.clear();
    shard->index.clear();
  }
}

PreparedQueryCache::Stats PreparedQueryCache::stats() const {
  return Stats{hits_.value(), misses_.value(), insertions_.value(),
               evictions_.value()};
}

Status PreparedQueryCache::RegisterMetrics(obs::MetricsRegistry* registry,
                                           obs::LabelSet labels) const {
  QV_RETURN_IF_ERROR(
      registry->RegisterCounter("qv_pdtcache_hits_total", labels, &hits_));
  QV_RETURN_IF_ERROR(
      registry->RegisterCounter("qv_pdtcache_misses_total", labels, &misses_));
  QV_RETURN_IF_ERROR(registry->RegisterCounter("qv_pdtcache_insertions_total",
                                               labels, &insertions_));
  QV_RETURN_IF_ERROR(registry->RegisterCounter("qv_pdtcache_evictions_total",
                                               labels, &evictions_));
  QV_RETURN_IF_ERROR(registry->RegisterCallback(
      "qv_pdtcache_entries", labels,
      obs::MetricsRegistry::InstrumentKind::kGauge, [this]() -> int64_t {
        return static_cast<int64_t>(
            total_entries_.load(std::memory_order_relaxed));
      }));
  return registry->RegisterCallback(
      "qv_pdtcache_bytes", labels,
      obs::MetricsRegistry::InstrumentKind::kGauge, [this]() -> int64_t {
        return static_cast<int64_t>(
            total_bytes_.load(std::memory_order_relaxed));
      });
}

size_t PreparedQueryCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    qv::MutexLock lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace quickview::service
