// Sharded LRU cache of PreparedQuery bundles (QPTs + generated PDTs),
// keyed by (view id, plan signature). PDT generation is the data-
// dependent stage of the pipeline; reusing PDTs across queries is what
// turns the engine from one-shot into a multi-query service (EMBANKS-
// style intermediate-structure reuse). Entries are shared_ptr<const>, so
// an entry evicted while queries still execute against it stays alive
// until the last query drops its reference.
//
// Sharding: keys hash to one of N independently locked shards, so
// concurrent lookups from the service thread pool contend only when they
// collide on a shard, not on one global mutex. Budgets are GLOBAL:
// entry and byte totals are shared atomics, and an insertion evicts from
// its own shard only while the whole cache is over budget — a skewed key
// distribution can therefore fill one shard disproportionately, but can
// never force evictions while the cache as a whole has room. (A fixed
// per-shard quota thrashed exactly that way: any change to the key
// format reshuffles every hash, and a shard that drew more than
// capacity/shards hot keys evicted them on every round robin.)
#ifndef QUICKVIEW_SERVICE_PREPARED_QUERY_CACHE_H_
#define QUICKVIEW_SERVICE_PREPARED_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "engine/view_search_engine.h"
#include "obs/metrics.h"

namespace quickview::service {

class PreparedQueryCache {
 public:
  struct Options {
    /// Maximum total entries across all shards. 0 disables caching
    /// entirely.
    size_t capacity = 128;
    size_t shards = 8;
    /// Optional PDT-memory budget across all shards (0 = entries-only
    /// eviction). While the cache is over either global limit, an
    /// insertion evicts LRU-first from its own shard.
    uint64_t max_bytes = 0;
  };

  struct Stats {  // lint:allow(adhoc-stats) snapshot view; cache registers obs:: instruments
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  explicit PreparedQueryCache(const Options& options);

  /// Returns the cached entry and promotes it to most-recently-used, or
  /// nullptr (counting a miss).
  std::shared_ptr<const engine::PreparedQuery> Get(const std::string& key);

  /// Inserts (or refreshes) `prepared` under `key`, evicting LRU entries
  /// while the shard exceeds its budgets.
  void Put(const std::string& key,
           std::shared_ptr<const engine::PreparedQuery> prepared);

  /// Drops every entry (in-flight queries keep their references alive).
  void Clear();

  /// Thin view over the cache's registry instruments.
  Stats stats() const;
  size_t size() const;

  /// Registers the cache's instruments (qv_pdtcache_*) under `labels`.
  /// The cache must outlive the registry reads.
  Status RegisterMetrics(obs::MetricsRegistry* registry,
                         obs::LabelSet labels = {}) const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const engine::PreparedQuery> prepared;
  };
  struct Shard {
    qv::Mutex mu;
    std::list<Entry> lru QV_GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        QV_GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& key);
  void EvictLocked(Shard* shard) QV_REQUIRES(shard->mu);

  size_t capacity_;     // global entry budget (0 = caching disabled)
  uint64_t max_bytes_;  // global PDT-byte budget (0 = entries-only)
  std::atomic<size_t> total_entries_{0};
  std::atomic<uint64_t> total_bytes_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  // Registry-native counters (relaxed atomics, lock-free reads).
  mutable obs::Counter hits_;
  mutable obs::Counter misses_;
  mutable obs::Counter insertions_;
  mutable obs::Counter evictions_;
};

}  // namespace quickview::service

#endif  // QUICKVIEW_SERVICE_PREPARED_QUERY_CACHE_H_
