#include "service/query_service.h"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>
#include <utility>

#include "qpt/generate_qpt.h"
#include "xquery/parser.h"

namespace quickview::service {

namespace {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

QueryService::QueryService(const xml::Database* database,
                           const index::IndexSource* indexes,
                           const storage::DocumentStore* store,
                           const QueryServiceOptions& options)
    : database_(database),
      indexes_(indexes),
      store_(store),
      cache_(options.cache),
      pool_(ResolveThreads(options.threads)) {}

QueryService::QueryService(storage::LiveDatabase* live,
                           const QueryServiceOptions& options)
    : live_(live),
      cache_(options.cache),
      pool_(ResolveThreads(options.threads)) {}

Status QueryService::RegisterView(const std::string& name,
                                  const std::string& view_text) {
  // Validate eagerly so a bad view fails registration, not every query.
  QUICKVIEW_ASSIGN_OR_RETURN(xquery::Query parsed,
                             xquery::ParseQuery(view_text));
  // Record which fn:doc() names the view reads, so document mutations
  // can invalidate exactly the views they affect. QPT generation mutates
  // its input (doc -> occurrence names) — `parsed` is a throwaway copy.
  std::vector<std::string> source_docs;
  bool docs_known = false;
  if (Result<std::vector<qpt::Qpt>> qpts = qpt::GenerateQpts(&parsed);
      qpts.ok()) {
    docs_known = true;
    for (const qpt::Qpt& q : *qpts) source_docs.push_back(q.source_doc);
  }
  qv::WriterLock lock(views_mu_);
  RegisteredView& view = views_[name];
  ++view.version;
  view.text = view_text;
  view.source_docs = std::move(source_docs);
  view.docs_known = docs_known;
  return Status::OK();
}

Status QueryService::ApplyMutation(Mutation op, const std::string& name,
                                   const std::string& xml_text,
                                   std::atomic<uint64_t>* counter) {
  if (live_ == nullptr) {
    return Status::InvalidArgument(
        "document mutations require a live-mode QueryService (constructed "
        "over a storage::LiveDatabase)");
  }
  qv::WriterLock data_lock(live_->mu());
  Status applied = op == Mutation::kInsert
                       ? live_->InsertDocument(name, xml_text)
                       : live_->RemoveDocument(name);
  QUICKVIEW_RETURN_IF_ERROR(applied);
  counter->fetch_add(1, std::memory_order_relaxed);
  // Bump the data epoch of every view that reads `name` (or whose doc
  // set is unknown): their cache keys change, so stale PDTs can never
  // serve the new corpus state. Other views' entries stay warm.
  qv::WriterLock views_lock(views_mu_);
  for (auto& [view_name, view] : views_) {
    if (!view.docs_known ||
        std::find(view.source_docs.begin(), view.source_docs.end(), name) !=
            view.source_docs.end()) {
      ++view.data_version;
    }
  }
  return Status::OK();
}

Status QueryService::InsertDocument(const std::string& name,
                                    const std::string& xml_text) {
  return ApplyMutation(Mutation::kInsert, name, xml_text, &inserts_);
}

Status QueryService::RemoveDocument(const std::string& name) {
  return ApplyMutation(Mutation::kRemove, name, /*xml_text=*/"", &removes_);
}

Result<std::unique_ptr<engine::ResultCursor>> QueryService::OpenSearch(
    const BatchQuery& query) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  // Boundary validation: a search with no keywords or a zero top_k is a
  // caller bug — reject it with a clear message before any planning.
  QUICKVIEW_RETURN_IF_ERROR(engine::ValidateSearchOptions(query.options));
  if (query.keywords.empty()) {
    return Status::InvalidArgument("query against view '" + query.view +
                                   "' has an empty keyword list");
  }
  // Keywords are spliced into single-quoted XQuery string literals; a
  // quote would break out of the literal and rewrite the query shape
  // (the serve CLI feeds keywords straight from stdin). The grammar has
  // no escape for quotes inside literals, so reject rather than mangle.
  for (const std::string& keyword : query.keywords) {
    if (keyword.find('\'') != std::string::npos) {
      return Status::InvalidArgument("keyword must not contain \"'\": " +
                                     keyword);
    }
  }
  // Live mode: hold the corpus lock shared across planning, PDT build
  // and evaluation, so this query sees the corpus entirely before or
  // after any concurrent mutation, never in between; the snapshot lease
  // keeps lazy materialization valid after the lock drops. Static mode:
  // the surface is immutable construction state, no lock exists.
  if (live_ != nullptr) {
    qv::ReaderLock data_lock(live_->mu());
    std::shared_ptr<const storage::DocumentStore> snapshot = live_->store();
    const storage::DocumentStore* store = snapshot.get();
    return PrepareCursor(query, live_->database(), live_->indexes(), store,
                         std::move(snapshot));
  }
  return PrepareCursor(query, database_, indexes_, store_, /*lease=*/nullptr);
}

Result<std::unique_ptr<engine::ResultCursor>> QueryService::PrepareCursor(
    const BatchQuery& query, const xml::Database* database,
    const index::IndexSource* indexes, const storage::DocumentStore* store,
    std::shared_ptr<const storage::DocumentStore> lease) {
  engine::ViewSearchEngine engine(database, indexes, store);

  // The view (and crucially its data epoch) is read under the SAME
  // corpus-lock hold that captured the surface in OpenSearch — mutations
  // bump the epoch while holding that lock exclusively, so epoch d in
  // the cache key always means "PDTs built from corpus state d". Reading
  // it outside the hold could pair a cached pre-update PreparedQuery
  // with a post-update store snapshot: a torn result no corpus version
  // ever produced. Lock order is live_->mu() -> views_mu_, same as
  // mutations.
  std::string view_text;
  uint64_t view_version = 0;
  uint64_t data_version = 0;
  {
    qv::ReaderLock lock(views_mu_);
    auto it = views_.find(query.view);
    if (it == views_.end()) {
      return Status::NotFound("no view registered as '" + query.view + "'");
    }
    view_text = it->second.text;
    view_version = it->second.version;
    data_version = it->second.data_version;
  }

  // The hit path deliberately re-plans (parse + QPT generation; cost
  // proportional to the query text, never the data) so the cache stays
  // keyed by the canonical plan signature rather than raw input text.
  // If planning ever shows up in warm-path profiles, add a first-level
  // key on (view#version, keywords, connective) in front of this.
  std::string full_query = engine::ComposeKeywordQuery(
      view_text, query.keywords, query.options.conjunctive);
  QUICKVIEW_ASSIGN_OR_RETURN(engine::QueryPlan plan,
                             engine.PlanQuery(full_query));

  // Length-prefix the view name so no name can collide with another
  // name + version suffix; the plan signature is injective on its own.
  // The version pair (registration version '.' data epoch) makes both
  // view replacement and document mutations unreachable-key
  // invalidations: stale entries age out of the LRU, never serve again.
  std::string key = std::to_string(query.view.size());
  key.push_back(':');
  key.append(query.view);
  key.push_back('#');
  key.append(std::to_string(view_version));
  key.push_back('.');
  key.append(std::to_string(data_version));
  key.push_back('\x1f');
  key.append(plan.signature);

  std::shared_ptr<const engine::PreparedQuery> prepared = cache_.Get(key);
  if (prepared == nullptr) {
    QUICKVIEW_ASSIGN_OR_RETURN(prepared, engine.BuildPdts(std::move(plan)));
    cache_.Put(key, prepared);
  }
  // The cursor co-owns `prepared`: eviction (or view replacement) only
  // drops the cache's reference, never the open cursor's; in live mode
  // the store-snapshot lease below completes the cursor's snapshot.
  QUICKVIEW_ASSIGN_OR_RETURN(std::unique_ptr<engine::ResultCursor> cursor,
                             engine.Open(std::move(prepared), query.options));
  if (lease != nullptr) cursor->AddLease(std::move(lease));
  return cursor;
}

Result<engine::SearchResponse> QueryService::SearchOne(
    const BatchQuery& query) {
  QUICKVIEW_ASSIGN_OR_RETURN(std::unique_ptr<engine::ResultCursor> cursor,
                             OpenSearch(query));
  return engine::DrainToResponse(cursor.get());
}

std::vector<Result<engine::SearchResponse>> QueryService::SearchBatch(
    const std::vector<BatchQuery>& queries) {
  std::vector<Result<engine::SearchResponse>> responses(
      queries.size(), Status::Internal("query not executed"));
  if (queries.empty()) return responses;

  // Per-batch completion barrier, so concurrent batches from different
  // client threads don't wait on each other's tasks. (`done` is guarded
  // by `done_mu`; they are locals captured by reference, which the
  // static analysis cannot express — the explicit while-Wait loop below
  // keeps the protocol obvious instead.)
  qv::Mutex done_mu;
  qv::CondVar done_cv;
  size_t done = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    pool_.Submit([this, &queries, &responses, &done_mu, &done_cv, &done, i] {
      // Exceptions (e.g. bad_alloc from a huge PDT build) become this
      // slot's error; the completion count must advance regardless, or
      // the batch barrier below would wait forever.
      try {
        responses[i] = SearchOne(queries[i]);
      } catch (const std::exception& e) {
        responses[i] = Status::Internal(std::string("query threw: ") +
                                        e.what());
      } catch (...) {
        responses[i] = Status::Internal("query threw a non-std exception");
      }
      qv::MutexLock lock(done_mu);
      if (++done == queries.size()) done_cv.NotifyAll();
    });
  }
  qv::MutexLock lock(done_mu);
  while (done != queries.size()) {
    done_cv.Wait(lock);
  }
  return responses;
}

QueryService::Stats QueryService::stats() const {
  Stats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.documents_inserted = inserts_.load(std::memory_order_relaxed);
  out.documents_removed = removes_.load(std::memory_order_relaxed);
  out.cache = cache_.stats();
  if (pool_stats_ != nullptr) out.buffer = pool_stats_->stats();
  return out;
}

}  // namespace quickview::service
