#include "service/query_service.h"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>
#include <utility>

#include "qpt/generate_qpt.h"
#include "xquery/parser.h"

namespace quickview::service {

namespace {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

QueryService::QueryService(const xml::Database* database,
                           const index::IndexSource* indexes,
                           const storage::DocumentStore* store,
                           const QueryServiceOptions& options)
    : database_(database),
      indexes_(indexes),
      store_(store),
      cache_(options.cache),
      pool_(ResolveThreads(options.threads)) {}

QueryService::QueryService(storage::LiveDatabase* live,
                           const QueryServiceOptions& options)
    : live_(live),
      cache_(options.cache),
      pool_(ResolveThreads(options.threads)) {}

QueryService::QueryService(const storage::ShardSet* shards,
                           const QueryServiceOptions& options)
    : shards_(shards),
      shard_epochs_(shards->size()),
      cache_(options.cache),
      pool_(ResolveThreads(options.threads)) {}

void QueryService::InvalidateShard(int shard) {
  if (shard < 0 || shard >= static_cast<int>(shard_epochs_.size())) return;
  shard_epochs_[static_cast<size_t>(shard)].fetch_add(
      1, std::memory_order_relaxed);
}

Status QueryService::RegisterView(const std::string& name,
                                  const std::string& view_text) {
  // Validate eagerly so a bad view fails registration, not every query.
  QUICKVIEW_ASSIGN_OR_RETURN(xquery::Query parsed,
                             xquery::ParseQuery(view_text));
  // Record which fn:doc() names the view reads, so document mutations
  // can invalidate exactly the views they affect. QPT generation mutates
  // its input (doc -> occurrence names) — `parsed` is a throwaway copy.
  std::vector<std::string> source_docs;
  bool docs_known = false;
  if (Result<std::vector<qpt::Qpt>> qpts = qpt::GenerateQpts(&parsed);
      qpts.ok()) {
    docs_known = true;
    for (const qpt::Qpt& q : *qpts) source_docs.push_back(q.source_doc);
  }
  qv::WriterLock lock(views_mu_);
  RegisteredView& view = views_[name];
  ++view.version;
  view.text = view_text;
  view.source_docs = std::move(source_docs);
  view.docs_known = docs_known;
  return Status::OK();
}

Status QueryService::ApplyMutation(Mutation op, const std::string& name,
                                   const std::string& xml_text,
                                   obs::Counter* counter) {
  if (live_ == nullptr) {
    return Status::InvalidArgument(
        "document mutations require a live-mode QueryService (constructed "
        "over a storage::LiveDatabase)");
  }
  // Bump the data epoch of every view that reads `name` (or whose doc
  // set is unknown): their cache keys change, so stale PDTs can never
  // serve the new corpus state. Other views' entries stay warm. The
  // bump runs as the mutation's post_apply hook — under the SAME
  // exclusive live_->mu() hold as the corpus change (torn reads between
  // corpus and epochs stay impossible), with views_mu_ nested inside it
  // per the documented lock order. With a WAL attached the whole
  // mutation rides its group commit: logged durably first, applied (and
  // epoch-bumped) in sequence order by the commit-group leader.
  auto bump_epochs = [this, &name]() {
    qv::WriterLock views_lock(views_mu_);
    for (auto& [view_name, view] : views_) {
      if (!view.docs_known ||
          std::find(view.source_docs.begin(), view.source_docs.end(), name) !=
              view.source_docs.end()) {
        ++view.data_version;
      }
    }
  };
  Status applied = op == Mutation::kInsert
                       ? live_->CommitInsert(name, xml_text, bump_epochs)
                       : live_->CommitRemove(name, bump_epochs);
  QUICKVIEW_RETURN_IF_ERROR(applied);
  counter->Increment();
  return Status::OK();
}

Status QueryService::InsertDocument(const std::string& name,
                                    const std::string& xml_text) {
  return ApplyMutation(Mutation::kInsert, name, xml_text, &inserts_);
}

Status QueryService::RemoveDocument(const std::string& name) {
  return ApplyMutation(Mutation::kRemove, name, /*xml_text=*/"", &removes_);
}

Result<std::unique_ptr<engine::ResultCursor>> QueryService::OpenSearch(
    const BatchQuery& query) {
  queries_.Increment();
  // Boundary validation, hoisted into the ONE implementation every entry
  // point shares (SearchRequest::Validate): empty keyword list, zero
  // top_k and a nonsense shard hint are caller bugs, rejected with a
  // typed InvalidArgument before any planning. At this boundary the
  // request's `view` carries the registered view NAME (the engine
  // boundary re-validates with the view text later, identically).
  engine::SearchRequest boundary;
  boundary.view = query.view;
  boundary.keywords = query.keywords;
  boundary.options = query.options;
  boundary.shard = query.shard;
  boundary.deadline = query.deadline;
  QUICKVIEW_RETURN_IF_ERROR(boundary.Validate());
  // Keywords are spliced into single-quoted XQuery string literals; a
  // quote would break out of the literal and rewrite the query shape
  // (the serve CLI feeds keywords straight from stdin). The grammar has
  // no escape for quotes inside literals, so reject rather than mangle.
  for (const std::string& keyword : query.keywords) {
    if (keyword.find('\'') != std::string::npos) {
      return Status::InvalidArgument("keyword must not contain \"'\": " +
                                     keyword);
    }
  }
  if (shards_ != nullptr) return PrepareShardedCursor(query);
  // Live mode: hold the corpus lock shared across planning, PDT build
  // and evaluation, so this query sees the corpus entirely before or
  // after any concurrent mutation, never in between; the snapshot lease
  // keeps lazy materialization valid after the lock drops. Static mode:
  // the surface is immutable construction state, no lock exists.
  if (live_ != nullptr) {
    qv::ReaderLock data_lock(live_->mu());
    std::shared_ptr<const storage::DocumentStore> snapshot = live_->store();
    const storage::DocumentStore* store = snapshot.get();
    return PrepareCursor(query, live_->database(), live_->indexes(), store,
                         std::move(snapshot));
  }
  return PrepareCursor(query, database_, indexes_, store_, /*lease=*/nullptr);
}

Result<QueryService::ViewSnapshot> QueryService::SnapshotView(
    const std::string& name) {
  qv::ReaderLock lock(views_mu_);
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("no view registered as '" + name + "'");
  }
  ViewSnapshot snapshot;
  snapshot.text = it->second.text;
  snapshot.version = it->second.version;
  snapshot.data_version = it->second.data_version;
  return snapshot;
}

std::string QueryService::BaseCacheKey(const std::string& view_name,
                                       const ViewSnapshot& view,
                                       const std::string& signature) {
  // Length-prefix the view name so no name can collide with another
  // name + version suffix; the plan signature is injective on its own.
  // The version pair (registration version '.' data epoch) makes both
  // view replacement and document mutations unreachable-key
  // invalidations: stale entries age out of the LRU, never serve again.
  std::string key = std::to_string(view_name.size());
  key.push_back(':');
  key.append(view_name);
  key.push_back('#');
  key.append(std::to_string(view.version));
  key.push_back('.');
  key.append(std::to_string(view.data_version));
  key.push_back('\x1f');
  key.append(signature);
  return key;
}

Result<std::unique_ptr<engine::ResultCursor>> QueryService::PrepareCursor(
    const BatchQuery& query, const xml::Database* database,
    const index::IndexSource* indexes, const storage::DocumentStore* store,
    std::shared_ptr<const storage::DocumentStore> lease) {
  engine::ViewSearchEngine engine(database, indexes, store);

  // The view (and crucially its data epoch) is read under the SAME
  // corpus-lock hold that captured the surface in OpenSearch — mutations
  // bump the epoch while holding that lock exclusively, so epoch d in
  // the cache key always means "PDTs built from corpus state d". Reading
  // it outside the hold could pair a cached pre-update PreparedQuery
  // with a post-update store snapshot: a torn result no corpus version
  // ever produced. Lock order is live_->mu() -> views_mu_, same as
  // mutations.
  QUICKVIEW_ASSIGN_OR_RETURN(ViewSnapshot view, SnapshotView(query.view));

  // The hit path deliberately re-plans (parse + QPT generation; cost
  // proportional to the query text, never the data) so the cache stays
  // keyed by the canonical plan signature rather than raw input text.
  // If planning ever shows up in warm-path profiles, add a first-level
  // key on (view#version, keywords, connective) in front of this.
  std::string full_query = engine::ComposeKeywordQuery(
      view.text, query.keywords, query.options.conjunctive);
  QUICKVIEW_ASSIGN_OR_RETURN(engine::QueryPlan plan,
                             engine.PlanQuery(full_query));
  std::string key = BaseCacheKey(query.view, view, plan.signature);

  // Open(request, prepared) — the same entry the sharded path uses — so
  // the request's deadline (and caller token) governs PDT build and
  // evaluation here too; a cache miss rides in as a null slot the engine
  // builds itself, under the token.
  engine::SearchRequest request;
  request.view = view.text;
  request.keywords = query.keywords;
  request.options = query.options;
  request.deadline = query.deadline;
  request.cancel = query.cancel;
  request.trace = query.trace;

  std::shared_ptr<const engine::PreparedQuery> prepared = cache_.Get(key);
  const bool cache_hit = prepared != nullptr;
  // The cursor co-owns the PreparedQuery: eviction (or view replacement)
  // only drops the cache's reference, never the open cursor's; in live
  // mode the store-snapshot lease below completes the cursor's snapshot.
  QUICKVIEW_ASSIGN_OR_RETURN(std::unique_ptr<engine::ResultCursor> cursor,
                             engine.Open(request, {std::move(prepared)}));
  if (!cache_hit) cache_.Put(key, cursor->SharedPrepared(0));
  if (lease != nullptr) cursor->AddLease(std::move(lease));
  return cursor;
}

Result<std::unique_ptr<engine::ResultCursor>>
QueryService::PrepareShardedCursor(const BatchQuery& query) {
  QUICKVIEW_ASSIGN_OR_RETURN(ViewSnapshot view, SnapshotView(query.view));

  std::vector<engine::ShardContext> contexts;
  contexts.reserve(shards_->size());
  for (size_t i = 0; i < shards_->size(); ++i) {
    const storage::Shard& shard = shards_->shard(i);
    contexts.push_back(engine::ShardContext{
        shard.database.get(), shard.index_source(), shard.store.get()});
  }
  engine::ViewSearchEngine engine(std::move(contexts), &pool_);

  engine::SearchRequest request;
  request.view = view.text;
  request.keywords = query.keywords;
  request.options = query.options;
  request.shard = query.shard;
  request.deadline = query.deadline;
  request.cancel = query.cancel;
  request.trace = query.trace;

  // Plan once on the calling thread for the cache key's signature (each
  // shard task re-plans from the same text inside Open, so every cached
  // PreparedQuery stays self-contained).
  std::string full_query = engine::ComposeKeywordQuery(
      view.text, query.keywords, query.options.conjunctive);
  QUICKVIEW_ASSIGN_OR_RETURN(engine::QueryPlan plan,
                             engine.PlanQuery(full_query));
  const std::string base = BaseCacheKey(query.view, view, plan.signature);

  // Executed shards: all of them, or just the hinted one. An
  // out-of-range hint leaves `selected` empty and lets Open return its
  // typed range error.
  std::vector<size_t> selected;
  if (query.shard < 0) {
    for (size_t i = 0; i < shards_->size(); ++i) selected.push_back(i);
  } else if (query.shard < static_cast<int>(shards_->size())) {
    selected.push_back(static_cast<size_t>(query.shard));
  }

  // Per-shard cache keys: the shared prefix plus "/s<i>#<epoch_i>", so
  // one plan warms one entry per shard and InvalidateShard retires
  // exactly one shard's entries. Hits ride into Open; misses stay null
  // and the engine builds them — in parallel with each other.
  std::vector<std::string> keys;
  std::vector<std::shared_ptr<const engine::PreparedQuery>> prepared;
  keys.reserve(selected.size());
  prepared.reserve(selected.size());
  for (size_t shard : selected) {
    std::string key = base;
    key += "/s";
    key += std::to_string(shard);
    key.push_back('#');
    key += std::to_string(
        shard_epochs_[shard].load(std::memory_order_relaxed));
    prepared.push_back(cache_.Get(key));
    keys.push_back(std::move(key));
  }

  QUICKVIEW_ASSIGN_OR_RETURN(std::unique_ptr<engine::ResultCursor> cursor,
                             engine.Open(request, prepared));
  // Backfill the shards the engine had to build, so the next query over
  // them hits. (A concurrent InvalidateShard may have retired a key in
  // the meantime; the Put then lands on an unreachable key and ages out
  // — never serves stale.)
  for (size_t slot = 0; slot < keys.size(); ++slot) {
    if (prepared[slot] == nullptr) {
      cache_.Put(keys[slot], cursor->SharedPrepared(slot));
    }
  }
  return cursor;
}

Result<engine::SearchResponse> QueryService::SearchOne(
    const BatchQuery& query) {
  QUICKVIEW_ASSIGN_OR_RETURN(std::unique_ptr<engine::ResultCursor> cursor,
                             OpenSearch(query));
  Result<engine::SearchResponse> response =
      engine::DrainToResponse(cursor.get());
  // Drained queries feed the service-lifetime stats().engine aggregate.
  if (response.ok()) FoldEngineStats(cursor->stats());
  return response;
}

std::vector<Result<engine::SearchResponse>> QueryService::SearchBatch(
    const std::vector<BatchQuery>& queries) {
  std::vector<Result<engine::SearchResponse>> responses(
      queries.size(), Status::Internal("query not executed"));
  if (queries.empty()) return responses;

  // Per-batch completion barrier, so concurrent batches from different
  // client threads don't wait on each other's tasks. (`done` is guarded
  // by `done_mu`; they are locals captured by reference, which the
  // static analysis cannot express — the explicit while-Wait loop below
  // keeps the protocol obvious instead.)
  qv::Mutex done_mu;
  qv::CondVar done_cv;
  size_t done = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    pool_.Submit([this, &queries, &responses, &done_mu, &done_cv, &done, i] {
      // Exceptions (e.g. bad_alloc from a huge PDT build) become this
      // slot's error; the completion count must advance regardless, or
      // the batch barrier below would wait forever.
      try {
        responses[i] = SearchOne(queries[i]);
      } catch (const std::exception& e) {
        responses[i] = Status::Internal(std::string("query threw: ") +
                                        e.what());
      } catch (...) {
        responses[i] = Status::Internal("query threw a non-std exception");
      }
      qv::MutexLock lock(done_mu);
      if (++done == queries.size()) done_cv.NotifyAll();
    });
  }
  qv::MutexLock lock(done_mu);
  while (done != queries.size()) {
    done_cv.Wait(lock);
  }
  return responses;
}

void QueryService::FoldEngineStats(const engine::EngineStats& stats) {
  qv::MutexLock lock(stats_mu_);
  engine::SearchStats& search = engine_stats_.search;
  search.view_results += stats.search.view_results;
  search.matching_results += stats.search.matching_results;
  search.pdt.ids_processed += stats.search.pdt.ids_processed;
  search.pdt.nodes_emitted += stats.search.pdt.nodes_emitted;
  search.pdt.peak_ct_nodes =
      std::max(search.pdt.peak_ct_nodes, stats.search.pdt.peak_ct_nodes);
  search.pdt.index_probes += stats.search.pdt.index_probes;
  search.pdt.pdt_bytes += stats.search.pdt.pdt_bytes;
  search.store_fetches += stats.search.store_fetches;
  search.store_bytes += stats.search.store_bytes;
  search.pages_read += stats.search.pages_read;
  search.buffer_hits += stats.search.buffer_hits;
  search.view_bytes += stats.search.view_bytes;
  engine_stats_.timings.qpt_ms += stats.timings.qpt_ms;
  engine_stats_.timings.pdt_ms += stats.timings.pdt_ms;
  engine_stats_.timings.eval_ms += stats.timings.eval_ms;
  engine_stats_.timings.post_ms += stats.timings.post_ms;
  for (const engine::ShardStats& s : stats.shards) {
    engine::ShardStats* slot = nullptr;
    for (engine::ShardStats& have : engine_stats_.shards) {
      if (have.shard == s.shard) {
        slot = &have;
        break;
      }
    }
    if (slot == nullptr) {
      engine_stats_.shards.emplace_back();
      slot = &engine_stats_.shards.back();
      slot->shard = s.shard;
    }
    slot->view_results += s.view_results;
    slot->matching_results += s.matching_results;
    slot->store_fetches += s.store_fetches;
    slot->store_bytes += s.store_bytes;
    slot->pages_read += s.pages_read;
    slot->buffer_hits += s.buffer_hits;
    slot->pdt_ms += s.pdt_ms;
    slot->eval_ms += s.eval_ms;
    slot->cancelled = slot->cancelled || s.cancelled;
  }
}

QueryService::Stats QueryService::stats() const {
  Stats out;
  out.queries = queries_.value();
  out.documents_inserted = inserts_.value();
  out.documents_removed = removes_.value();
  out.cache = cache_.stats();
  {
    qv::MutexLock lock(stats_mu_);
    out.engine = engine_stats_;
  }
  // Buffer counters are read live from the pools (not accumulated per
  // query): the attached packed database's pool, or every shard's.
  auto add_pool = [&out](const pagestore::BufferPool& pool) {
    pagestore::BufferPoolStats s = pool.stats();
    out.engine.buffer.hits += s.hits;
    out.engine.buffer.misses += s.misses;
    out.engine.buffer.evictions += s.evictions;
    out.engine.buffer.frames_in_use += s.frames_in_use;
    out.engine.buffer.frame_capacity += pool.frame_budget();
  };
  if (shards_ != nullptr) {
    for (size_t i = 0; i < shards_->size(); ++i) {
      if (shards_->shard(i).packed != nullptr) {
        add_pool(shards_->shard(i).packed->pool());
      }
    }
  } else if (pool_stats_ != nullptr) {
    add_pool(*pool_stats_);
  }
  return out;
}

Status QueryService::RegisterMetrics(obs::MetricsRegistry* registry,
                                     obs::LabelSet labels) const {
  QV_RETURN_IF_ERROR(registry->RegisterCounter("qv_service_queries_total",
                                               labels, &queries_));
  QV_RETURN_IF_ERROR(registry->RegisterCounter(
      "qv_service_document_inserts_total", labels, &inserts_));
  QV_RETURN_IF_ERROR(registry->RegisterCounter(
      "qv_service_document_removes_total", labels, &removes_));
  QV_RETURN_IF_ERROR(cache_.RegisterMetrics(registry, labels));
  QV_RETURN_IF_ERROR(pool_.RegisterMetrics(registry, labels));
  if (live_ != nullptr) {
    QV_RETURN_IF_ERROR(live_->RegisterMetrics(registry, labels));
  }
  // Pools behind a sharded packed corpus register per shard — the label
  // keeps N pools apart under one metric name (and is the worked
  // example of the registry's label-series contract).
  if (shards_ != nullptr) {
    for (size_t i = 0; i < shards_->size(); ++i) {
      if (shards_->shard(i).packed == nullptr) continue;
      obs::LabelSet shard_labels = labels;
      shard_labels.emplace_back("shard", std::to_string(i));
      QV_RETURN_IF_ERROR(shards_->shard(i).packed->pool().RegisterMetrics(
          registry, std::move(shard_labels)));
    }
  } else if (pool_stats_ != nullptr) {
    QV_RETURN_IF_ERROR(pool_stats_->RegisterMetrics(registry, labels));
  }
  return Status::OK();
}

}  // namespace quickview::service
