// QueryService: the multi-query front end over ViewSearchEngine. Views
// are registered once by name; batches of keyword queries against those
// views execute concurrently on a fixed thread pool, sharing one
// PreparedQueryCache so identical plans (same view, same QPT signature,
// same keywords) reuse already-generated PDTs instead of rebuilding them.
//
// The result surface is pull-based: OpenSearch returns a session-handle
// ResultCursor whose FetchNext(n) materializes hits lazily (pagination
// without re-running the pipeline). The cursor pins its PreparedQuery
// via shared_ptr, so cache eviction and view re-registration cannot
// invalidate an open cursor. SearchOne / SearchBatch are thin wrappers
// that drain a cursor into the classic SearchResponse.
//
// Threading model:
//  - the database, indices and document store are immutable after
//    construction and shared by every worker;
//  - per-query state (evaluator, scoring, materialization target) lives
//    on the worker's stack;
//  - cached PreparedQuery bundles are immutable and reference-counted,
//    so eviction never invalidates an executing query.
// Results are deterministic: a batch returns, per query, exactly the
// response a serial ViewSearchEngine::SearchView call would produce
// (timings aside).
#ifndef QUICKVIEW_SERVICE_QUERY_SERVICE_H_
#define QUICKVIEW_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/result_cursor.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "pagestore/buffer_pool.h"
#include "service/prepared_query_cache.h"
#include "service/thread_pool.h"
#include "storage/document_store.h"
#include "xml/dom.h"

namespace quickview::service {

struct QueryServiceOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  int threads = 0;
  PreparedQueryCache::Options cache;
};

/// One keyword query of a batch, against a registered view.
struct BatchQuery {
  std::string view;  // registered view name
  std::vector<std::string> keywords;
  engine::SearchOptions options;
};

class QueryService {
 public:
  struct Stats {
    uint64_t queries = 0;
    PreparedQueryCache::Stats cache;
    /// Buffer-pool counters of the attached packed database (all zero
    /// when the service runs over in-memory structures).
    pagestore::BufferPoolStats buffer;
  };

  /// All three structures must outlive the service and are treated as
  /// immutable (see the threading model above). `indexes` is any
  /// IndexSource — DatabaseIndexes or a pagestore::PackedDb; `database`
  /// may be nullptr in the packed case (base documents live in
  /// node-record pages, reached through the store).
  QueryService(const xml::Database* database,
               const index::IndexSource* indexes,
               const storage::DocumentStore* store,
               const QueryServiceOptions& options = {});

  /// Attaches the buffer pool whose counters stats() should report —
  /// call once, right after construction, when serving a packed db. The
  /// pool must outlive the service.
  void AttachBufferPool(const pagestore::BufferPool* pool) {
    pool_stats_ = pool;
  }

  /// Registers (or replaces) a view under `name`. Replacing a view bumps
  /// its cache-key version, so stale PDTs can never serve the new text.
  /// Not intended to race with in-flight batches against the same name.
  Status RegisterView(const std::string& name, const std::string& view_text);

  /// Opens a cursor over the query's ranked result stream on the calling
  /// thread: plan -> cached (or fresh) PDTs -> evaluate + score. No hit
  /// is materialized until the caller's first FetchNext. The cursor is a
  /// self-contained session handle — it keeps the underlying
  /// PreparedQuery alive, so it stays valid across cache eviction, view
  /// re-registration, and other queries; the service itself (and its
  /// database/index/store) must merely outlive it. The cursor yields at
  /// most query.options.top_k hits.
  Result<std::unique_ptr<engine::ResultCursor>> OpenSearch(
      const BatchQuery& query);

  /// Executes the whole batch on the pool; response i answers query i.
  /// Individual failures are per-slot errors, not batch failures.
  /// Implemented as one drained cursor per query.
  std::vector<Result<engine::SearchResponse>> SearchBatch(
      const std::vector<BatchQuery>& queries);

  /// Executes one query on the calling thread (used by the batch workers;
  /// public so callers can bypass the pool): OpenSearch + drain.
  Result<engine::SearchResponse> SearchOne(const BatchQuery& query);

  /// Drops all cached PDTs (cold-cache measurements, corpus swaps).
  void ClearCache() { cache_.Clear(); }

  Stats stats() const;
  int threads() const { return pool_.thread_count(); }

 private:
  struct RegisteredView {
    std::string text;
    uint64_t version = 0;  // part of the cache key
  };

  engine::ViewSearchEngine engine_;
  const pagestore::BufferPool* pool_stats_ = nullptr;
  mutable std::shared_mutex views_mu_;
  std::map<std::string, RegisteredView> views_;
  PreparedQueryCache cache_;
  std::atomic<uint64_t> queries_{0};
  ThreadPool pool_;  // last: workers must stop before members above die
};

}  // namespace quickview::service

#endif  // QUICKVIEW_SERVICE_QUERY_SERVICE_H_
