// QueryService: the multi-query front end over ViewSearchEngine. Views
// are registered once by name; batches of keyword queries against those
// views execute concurrently on a fixed thread pool, sharing one
// PreparedQueryCache so identical plans (same view, same QPT signature,
// same keywords) reuse already-generated PDTs instead of rebuilding them.
//
// The result surface is pull-based: OpenSearch returns a session-handle
// ResultCursor whose FetchNext(n) materializes hits lazily (pagination
// without re-running the pipeline). The cursor pins its PreparedQuery
// via shared_ptr, so cache eviction and view re-registration cannot
// invalidate an open cursor. SearchOne / SearchBatch are thin wrappers
// that drain a cursor into the classic SearchResponse.
//
// Threading model:
//  - in the static modes (raw database/indexes/store pointers, packed
//    db) those structures are immutable after construction and shared by
//    every worker;
//  - in live mode (constructed over a storage::LiveDatabase) queries
//    plan, build PDTs and evaluate under the shared side of the live
//    database's own reader-writer lock (LiveDatabase::mu()), while
//    InsertDocument/RemoveDocument mutate under the exclusive side, so a
//    query sees the corpus entirely before or entirely after any update
//    — never in between. Each mutation bumps a
//    data epoch on exactly the views that reference the mutated
//    document; the epoch is part of the PreparedQueryCache key, so only
//    those views' cached PDTs are invalidated. Cursors opened before an
//    update pin their PreparedQuery, evaluator arena AND the
//    DocumentStore snapshot they were opened against (ResultCursor
//    leases), so in-flight readers are snapshot-isolated;
//  - per-query state (evaluator, scoring, materialization target) lives
//    on the worker's stack;
//  - cached PreparedQuery bundles are immutable and reference-counted,
//    so eviction never invalidates an executing query.
// Results are deterministic: a batch returns, per query, exactly the
// response a serial ViewSearchEngine::SearchView call would produce
// against the same corpus state (timings aside).
#ifndef QUICKVIEW_SERVICE_QUERY_SERVICE_H_
#define QUICKVIEW_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/sync.h"
#include "engine/result_cursor.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "pagestore/buffer_pool.h"
#include "service/prepared_query_cache.h"
#include "common/thread_pool.h"
#include "storage/document_store.h"
#include "storage/live_database.h"
#include "storage/shard_set.h"
#include "xml/dom.h"

namespace quickview::service {

struct QueryServiceOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  int threads = 0;
  PreparedQueryCache::Options cache;
};

/// One keyword query of a batch, against a registered view.
struct BatchQuery {
  std::string view;  // registered view name
  std::vector<std::string> keywords;
  engine::SearchOptions options;
  /// Shard routing hint, sharded services only: -1 searches every shard,
  /// i >= 0 restricts to shard i (see SearchRequest::shard for the
  /// ranking caveat).
  int shard = -1;
  /// Wall-clock budget measured from OpenSearch, forwarded into
  /// SearchRequest::deadline: expiry unwinds in-flight shard work and the
  /// query fails DeadlineExceeded.
  std::optional<std::chrono::milliseconds> deadline = std::nullopt;
  /// Caller-owned cancellation token, forwarded into
  /// SearchRequest::cancel (the server's per-request handle; see there
  /// for semantics). Left null, the engine makes a private one.
  std::shared_ptr<CancellationToken> cancel = nullptr;
  /// Optional per-request trace, forwarded into SearchRequest::trace
  /// (see there for the span tree the engine records). Null = off.
  std::shared_ptr<obs::Trace> trace = nullptr;
};

class QueryService {
 public:
  struct Stats {  // lint:allow(adhoc-stats) snapshot view; service registers obs:: instruments
    uint64_t queries = 0;
    /// Successful live-mode mutations (zero in the static modes).
    uint64_t documents_inserted = 0;
    uint64_t documents_removed = 0;
    PreparedQueryCache::Stats cache;
    /// The unified engine view (same shape ResultCursor::stats()
    /// returns): search counters, module timings and per-shard counters
    /// accumulated over every DRAINED query (SearchOne / SearchBatch —
    /// cursors handed out by OpenSearch fold in only if drained through
    /// DrainToResponse by SearchOne), plus live buffer-pool counters of
    /// the attached packed database or of every shard's pool (all zero
    /// over in-memory structures).
    engine::EngineStats engine;
  };

  /// Static mode: all three structures must outlive the service and are
  /// treated as immutable (see the threading model above). `indexes` is
  /// any IndexSource — DatabaseIndexes or a pagestore::PackedDb;
  /// `database` may be nullptr in the packed case (base documents live
  /// in node-record pages, reached through the store).
  QueryService(const xml::Database* database,
               const index::IndexSource* indexes,
               const storage::DocumentStore* store,
               const QueryServiceOptions& options = {});

  /// Live mode: queries and document mutations interleave against `live`
  /// (which must outlive the service) under the service's reader-writer
  /// lock. The service is the live database's only synchronization —
  /// don't mutate it directly while the service exists.
  explicit QueryService(storage::LiveDatabase* live,
                        const QueryServiceOptions& options = {});

  /// Sharded static mode: queries fan out over every shard of `shards`
  /// (which must outlive the service and is treated as immutable) on the
  /// service's thread pool, and the merged response is byte-identical to
  /// the unsharded one. PDTs are cached PER SHARD — the cache key gains
  /// a "/s<i>#<epoch>" suffix — so a corpus of N shards warms N entries
  /// per plan and InvalidateShard can drop exactly one shard's entries.
  explicit QueryService(const storage::ShardSet* shards,
                        const QueryServiceOptions& options = {});

  /// Sharded mode only: bumps shard `shard`'s cache epoch, making every
  /// cached PDT of that shard unreachable (the per-shard analog of live
  /// mode's per-view data epochs — stale entries age out of the LRU,
  /// never serve again). No-op on an unsharded service or an
  /// out-of-range shard.
  void InvalidateShard(int shard);

  /// Live mode only: inserts (or replaces) the named document and
  /// invalidates cached PDTs of exactly the views that reference it.
  /// In-flight cursors keep their snapshot. InvalidArgument on a
  /// static-mode service.
  Status InsertDocument(const std::string& name, const std::string& xml_text)
      QV_EXCLUDES(views_mu_);

  /// Live mode only: removes the named document. Queries against views
  /// referencing it then fail per-slot with NotFound until it returns.
  Status RemoveDocument(const std::string& name) QV_EXCLUDES(views_mu_);

  /// Attaches the buffer pool whose counters stats() should report —
  /// call once, right after construction, when serving a packed db. The
  /// pool must outlive the service.
  void AttachBufferPool(const pagestore::BufferPool* pool) {
    pool_stats_ = pool;
  }

  /// Registers (or replaces) a view under `name`. Replacing a view bumps
  /// its cache-key version, so stale PDTs can never serve the new text.
  /// Not intended to race with in-flight batches against the same name.
  Status RegisterView(const std::string& name, const std::string& view_text)
      QV_EXCLUDES(views_mu_);

  /// Opens a cursor over the query's ranked result stream on the calling
  /// thread: plan -> cached (or fresh) PDTs -> evaluate + score. No hit
  /// is materialized until the caller's first FetchNext. The cursor is a
  /// self-contained session handle — it keeps the underlying
  /// PreparedQuery alive, so it stays valid across cache eviction, view
  /// re-registration, and other queries; the service itself (and its
  /// database/index/store) must merely outlive it. The cursor yields at
  /// most query.options.top_k hits.
  Result<std::unique_ptr<engine::ResultCursor>> OpenSearch(
      const BatchQuery& query) QV_EXCLUDES(views_mu_);

  /// Executes the whole batch on the pool; response i answers query i.
  /// Individual failures are per-slot errors, not batch failures.
  /// Implemented as one drained cursor per query.
  std::vector<Result<engine::SearchResponse>> SearchBatch(
      const std::vector<BatchQuery>& queries);

  /// Executes one query on the calling thread (used by the batch workers;
  /// public so callers can bypass the pool): OpenSearch + drain.
  Result<engine::SearchResponse> SearchOne(const BatchQuery& query);

  /// Drops all cached PDTs (cold-cache measurements, corpus swaps).
  void ClearCache() { cache_.Clear(); }

  Stats stats() const;
  int threads() const { return pool_.thread_count(); }

  /// Registers the service's instruments (qv_service_*) plus those of
  /// its PDT cache and thread pool into `registry`. Call once, after
  /// construction; the service must outlive the registry reads.
  Status RegisterMetrics(obs::MetricsRegistry* registry,
                         obs::LabelSet labels = {}) const;

 private:
  struct RegisteredView {
    std::string text;
    uint64_t version = 0;  // bumped by RegisterView; part of the cache key
    /// Bumped by InsertDocument/RemoveDocument of a referenced document;
    /// the other half of the cache key's version pair.
    uint64_t data_version = 0;
    /// fn:doc() names the view reads, extracted at registration. When
    /// extraction fails (view outside the QPT subset) `docs_known` stays
    /// false and every mutation conservatively bumps the view.
    std::vector<std::string> source_docs;
    bool docs_known = false;
  };

  enum class Mutation { kInsert, kRemove };

  /// Shared body of both mutation entry points: applies the insert or
  /// remove under the live database's exclusive lock; on success the
  /// affected views' data epochs bump (under the same exclusive hold, so
  /// epoch d in a cache key always means "built from corpus state d")
  /// and `counter` advances.
  Status ApplyMutation(Mutation op, const std::string& name,
                       const std::string& xml_text, obs::Counter* counter);

  /// The registered view's text and version pair, read under views_mu_.
  struct ViewSnapshot {
    std::string text;
    uint64_t version = 0;
    uint64_t data_version = 0;
  };
  Result<ViewSnapshot> SnapshotView(const std::string& name)
      QV_EXCLUDES(views_mu_);

  /// The shard-independent cache key prefix: length-prefixed view name,
  /// version pair, plan signature (see PrepareCursor for why each part
  /// is there). Sharded keys append "/s<i>#<epoch_i>".
  static std::string BaseCacheKey(const std::string& view_name,
                                  const ViewSnapshot& view,
                                  const std::string& signature);

  /// The tail of OpenSearch once the corpus surface is fixed: plan,
  /// fetch-or-build PDTs, open the cursor. In live mode the caller holds
  /// the live database's shared lock across this call and passes the
  /// captured surface in (`lease` pins the store snapshot beyond the
  /// lock); in static mode the surface is the immutable construction
  /// state and no lock is involved.
  Result<std::unique_ptr<engine::ResultCursor>> PrepareCursor(
      const BatchQuery& query, const xml::Database* database,
      const index::IndexSource* indexes, const storage::DocumentStore* store,
      std::shared_ptr<const storage::DocumentStore> lease)
      QV_EXCLUDES(views_mu_);

  /// Sharded OpenSearch tail: per-shard cache lookups, one
  /// engine.Open(request, prepared) fan-out on the pool, then cache
  /// fills for the shards the engine had to build.
  Result<std::unique_ptr<engine::ResultCursor>> PrepareShardedCursor(
      const BatchQuery& query) QV_EXCLUDES(views_mu_);

  /// Folds one drained cursor's EngineStats into the service-lifetime
  /// accumulator behind stats().engine.
  void FoldEngineStats(const engine::EngineStats& stats)
      QV_EXCLUDES(stats_mu_);

  // Static-mode pointers; in live mode these are re-read from live_
  // under its lock on every query.
  const xml::Database* database_ = nullptr;
  const index::IndexSource* indexes_ = nullptr;
  const storage::DocumentStore* store_ = nullptr;
  storage::LiveDatabase* live_ = nullptr;
  const storage::ShardSet* shards_ = nullptr;
  const pagestore::BufferPool* pool_stats_ = nullptr;
  /// Sharded mode: shard i's cache epoch, bumped by InvalidateShard.
  std::vector<std::atomic<uint64_t>> shard_epochs_;
  /// Cumulative EngineStats over drained queries (see Stats::engine).
  mutable qv::Mutex stats_mu_;
  engine::EngineStats engine_stats_ QV_GUARDED_BY(stats_mu_);
  /// Lock order: live_->mu() first, views_mu_ nested inside it (both
  /// PrepareCursor and ApplyMutation) — never take live_->mu() while
  /// holding views_mu_.
  mutable qv::SharedMutex views_mu_;
  std::map<std::string, RegisteredView> views_ QV_GUARDED_BY(views_mu_);
  PreparedQueryCache cache_;
  // Registry-native counters (stats() is a thin view over them).
  obs::Counter queries_;
  obs::Counter inserts_;
  obs::Counter removes_;
  ThreadPool pool_;  // last: workers must stop before members above die
};

}  // namespace quickview::service

#endif  // QUICKVIEW_SERVICE_QUERY_SERVICE_H_
