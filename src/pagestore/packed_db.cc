#include "pagestore/packed_db.h"

#include <algorithm>
#include <utility>

#include "index/path_index.h"
#include "pagestore/delta_log.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace quickview::pagestore {

namespace {

// Must match the separator MakePathValueKey appends (path_index.cc).
constexpr char kPathKeySep = '\x01';

struct NodeRecord {
  uint32_t subtree_count = 0;
  uint64_t subtree_bytes = 0;
  uint16_t depth = 0;
  std::string tag;
  std::string text;
};

Status ReadNodeRecord(ChainReader* reader, NodeRecord* out) {
  QUICKVIEW_RETURN_IF_ERROR(reader->ReadU32(&out->subtree_count));
  QUICKVIEW_RETURN_IF_ERROR(reader->ReadU64(&out->subtree_bytes));
  QUICKVIEW_RETURN_IF_ERROR(reader->ReadU16(&out->depth));
  uint16_t tag_len = 0;
  QUICKVIEW_RETURN_IF_ERROR(reader->ReadU16(&tag_len));
  out->tag.clear();
  QUICKVIEW_RETURN_IF_ERROR(reader->Read(tag_len, &out->tag));
  uint32_t text_len = 0;
  QUICKVIEW_RETURN_IF_ERROR(reader->ReadU32(&text_len));
  out->text.clear();
  QUICKVIEW_RETURN_IF_ERROR(reader->Read(text_len, &out->text));
  return Status::OK();
}

/// Splits a disk path-index row payload (value_len | value | entry
/// list) written by PackDocument.
Status SplitPathRow(const std::string& payload, std::string* value,
                    std::string* entries_encoded) {
  size_t pos = 0;
  uint32_t value_len = 0;
  if (!ReadU32(payload, &pos, &value_len) ||
      payload.size() - pos < value_len) {
    return Status::Internal("corrupt path-index row");
  }
  value->assign(payload, pos, value_len);
  entries_encoded->assign(payload, pos + value_len, std::string::npos);
  return Status::OK();
}

Status DecodePostingRun(const std::string& encoded,
                        std::vector<index::Posting>* out) {
  size_t pos = 0;
  uint32_t count = 0;
  if (!ReadU32(encoded, &pos, &count)) {
    return Status::Internal("corrupt posting run");
  }
  out->reserve(out->size() + count);
  for (uint32_t i = 0; i < count; ++i) {
    uint16_t id_len = 0;
    if (!ReadU16(encoded, &pos, &id_len) ||
        encoded.size() - pos < id_len) {
      return Status::Internal("corrupt posting run");
    }
    xml::DeweyId id = xml::DeweyId::Decode(encoded.substr(pos, id_len));
    pos += id_len;
    uint32_t tf = 0;
    if (!ReadU32(encoded, &pos, &tf)) {
      return Status::Internal("corrupt posting run");
    }
    out->push_back(index::Posting{std::move(id), tf});
  }
  return Status::OK();
}

}  // namespace

// --------------------------------------------------------------------------
// PagedPathIndex — the same probe algorithms as the in-memory PathIndex,
// expressed over DiskBTree scans.
// --------------------------------------------------------------------------

Result<std::vector<std::string>> PagedPathIndex::ExpandPattern(
    const index::PathPattern& pattern) const {
  std::vector<std::string> out;
  for (const std::string& path : paths_) {
    if (index::PatternMatchesPath(pattern, path)) out.push_back(path);
  }
  return out;
}

Status PagedPathIndex::ForEachPathRow(
    const std::string& path,
    const std::function<Result<bool>(std::string&& row_value,
                                     const std::string& entries_encoded)>&
        fn) const {
  std::string prefix = path;
  prefix.push_back(kPathKeySep);
  return tree_.ScanFrom(
      prefix,
      [&](std::string_view key,
          const DiskBTree::ValueRef& value) -> Result<bool> {
        if (key.substr(0, prefix.size()) != prefix) return false;
        QUICKVIEW_ASSIGN_OR_RETURN(std::string payload, value.Read());
        std::string row_value;
        std::string entries_encoded;
        QUICKVIEW_RETURN_IF_ERROR(
            SplitPathRow(payload, &row_value, &entries_encoded));
        return fn(std::move(row_value), entries_encoded);
      });
}

Result<std::vector<index::PathEntry>> PagedPathIndex::Collect(
    const index::PathPattern& pattern, bool with_values) const {
  QUICKVIEW_ASSIGN_OR_RETURN(std::vector<std::string> expanded,
                             ExpandPattern(pattern));
  std::vector<index::PathEntry> out;
  for (const std::string& path : expanded) {
    QUICKVIEW_RETURN_IF_ERROR(ForEachPathRow(
        path,
        [&](std::string&& row_value,
            const std::string& entries_encoded) -> Result<bool> {
          std::optional<std::string> attach;
          if (with_values) attach = std::move(row_value);
          index::DecodePathEntryListInto(entries_encoded, attach, &out);
          return true;
        }));
  }
  std::sort(out.begin(), out.end(),
            [](const index::PathEntry& a, const index::PathEntry& b) {
              return a.id < b.id;
            });
  return out;
}

Result<std::vector<index::PathEntry>> PagedPathIndex::LookUpId(
    const index::PathPattern& pattern) const {
  return Collect(pattern, /*with_values=*/false);
}

Result<std::vector<index::PathEntry>> PagedPathIndex::LookUpIdValue(
    const index::PathPattern& pattern) const {
  return Collect(pattern, /*with_values=*/true);
}

Result<std::vector<index::PathEntry>> PagedPathIndex::LookUpValue(
    const index::PathPattern& pattern, const std::string& value) const {
  QUICKVIEW_ASSIGN_OR_RETURN(std::vector<std::string> expanded,
                             ExpandPattern(pattern));
  std::vector<index::PathEntry> out;
  for (const std::string& path : expanded) {
    // Rows scan in value order, so stop at the first row past `value`
    // (at most one row per (path, value) pair exists). This is a
    // materializing scan over the path's earlier rows — the price of
    // keeping values out of the disk keys; acceptable while predicate
    // evaluation happens on LookUpPerPath entries, not through here.
    QUICKVIEW_RETURN_IF_ERROR(ForEachPathRow(
        path,
        [&](std::string&& row_value,
            const std::string& entries_encoded) -> Result<bool> {
          if (row_value > value) return false;
          if (row_value == value) {
            index::DecodePathEntryListInto(entries_encoded, value, &out);
            return false;
          }
          return true;
        }));
  }
  std::sort(out.begin(), out.end(),
            [](const index::PathEntry& a, const index::PathEntry& b) {
              return a.id < b.id;
            });
  return out;
}

Result<std::vector<index::PathRows>> PagedPathIndex::LookUpPerPath(
    const index::PathPattern& pattern, bool with_values) const {
  QUICKVIEW_ASSIGN_OR_RETURN(std::vector<std::string> expanded,
                             ExpandPattern(pattern));
  std::vector<index::PathRows> out;
  for (const std::string& path : expanded) {
    index::PathRows rows;
    rows.path = path;
    QUICKVIEW_RETURN_IF_ERROR(ForEachPathRow(
        path,
        [&](std::string&& row_value,
            const std::string& entries_encoded) -> Result<bool> {
          std::optional<std::string> attach;
          if (with_values) attach = std::move(row_value);
          index::DecodePathEntryListInto(entries_encoded, attach,
                                         &rows.entries);
          return true;
        }));
    std::sort(rows.entries.begin(), rows.entries.end(),
              [](const index::PathEntry& a, const index::PathEntry& b) {
                return a.id < b.id;
              });
    if (!rows.entries.empty()) out.push_back(std::move(rows));
  }
  return out;
}

// --------------------------------------------------------------------------
// PagedTermIndex
// --------------------------------------------------------------------------

Result<std::vector<index::Posting>> PagedTermIndex::Lookup(
    const std::string& term) const {
  std::vector<index::Posting> out;
  std::string encoded;
  QUICKVIEW_ASSIGN_OR_RETURN(bool found, tree_.Get(term, &encoded));
  if (found) QUICKVIEW_RETURN_IF_ERROR(DecodePostingRun(encoded, &out));
  return out;
}

// Point probes below pay O(run size) page I/O: a run is one B-tree
// value (possibly an overflow chain), so Contains/ListLength read it
// whole where the in-memory index answers from the composite-key tree.
// Nothing on the query path uses them today (PrepareLists wants full
// runs); if a pushdown ever does, serve counts from a bounded prefix
// read of the chain instead.
Result<bool> PagedTermIndex::Contains(const std::string& term,
                                      const xml::DeweyId& id,
                                      uint32_t* tf) const {
  QUICKVIEW_ASSIGN_OR_RETURN(std::vector<index::Posting> postings,
                             Lookup(term));
  auto it = std::lower_bound(postings.begin(), postings.end(), id,
                             [](const index::Posting& p,
                                const xml::DeweyId& key) {
                               return p.id < key;
                             });
  if (it == postings.end() || it->id != id) return false;
  if (tf != nullptr) *tf = it->tf;
  return true;
}

Result<uint64_t> PagedTermIndex::ListLength(const std::string& term) const {
  std::string encoded;
  QUICKVIEW_ASSIGN_OR_RETURN(bool found, tree_.Get(term, &encoded));
  if (!found) return static_cast<uint64_t>(0);
  size_t pos = 0;
  uint32_t count = 0;
  if (!ReadU32(encoded, &pos, &count)) {
    return Status::Internal("corrupt posting run for term '" + term + "'");
  }
  return static_cast<uint64_t>(count);
}

// --------------------------------------------------------------------------
// PackedDb
// --------------------------------------------------------------------------

Result<std::shared_ptr<PackedDb>> PackedDb::Open(
    const std::string& path, const BufferPoolOptions& pool_options) {
  auto db = std::shared_ptr<PackedDb>(new PackedDb());
  QUICKVIEW_ASSIGN_OR_RETURN(db->file_, PagedFile::Open(path));
  db->pool_ = std::make_unique<BufferPool>(db->file_.get(), pool_options);

  ChainReader directory(db->pool_.get(), db->file_->directory_page(), 0,
                        nullptr);
  uint32_t doc_count = 0;
  QUICKVIEW_RETURN_IF_ERROR(directory.ReadU32(&doc_count));
  for (uint32_t d = 0; d < doc_count; ++d) {
    auto doc = std::make_unique<PackedDocument>();
    uint16_t name_len = 0;
    QUICKVIEW_RETURN_IF_ERROR(directory.ReadU16(&name_len));
    QUICKVIEW_RETURN_IF_ERROR(directory.Read(name_len, &doc->name));
    uint32_t locator_root = 0;
    uint32_t path_root = 0;
    uint32_t inv_root = 0;
    QUICKVIEW_RETURN_IF_ERROR(directory.ReadU32(&doc->root_component));
    QUICKVIEW_RETURN_IF_ERROR(directory.ReadU32(&locator_root));
    QUICKVIEW_RETURN_IF_ERROR(directory.ReadU32(&path_root));
    QUICKVIEW_RETURN_IF_ERROR(directory.ReadU32(&inv_root));
    QUICKVIEW_RETURN_IF_ERROR(directory.ReadU64(&doc->node_count));
    uint32_t path_count = 0;
    QUICKVIEW_RETURN_IF_ERROR(directory.ReadU32(&path_count));
    std::vector<std::string> distinct_paths;
    distinct_paths.reserve(path_count);
    for (uint32_t p = 0; p < path_count; ++p) {
      uint16_t len = 0;
      QUICKVIEW_RETURN_IF_ERROR(directory.ReadU16(&len));
      std::string data_path;
      QUICKVIEW_RETURN_IF_ERROR(directory.Read(len, &data_path));
      distinct_paths.push_back(std::move(data_path));
    }

    doc->locator = DiskBTree(db->pool_.get(), locator_root);
    doc->paths = std::make_unique<PagedPathIndex>(
        DiskBTree(db->pool_.get(), path_root), std::move(distinct_paths));
    doc->terms =
        std::make_unique<PagedTermIndex>(DiskBTree(db->pool_.get(), inv_root));

    // Duplicate checks happen before any move: a failed map emplace
    // destroys its moved-from argument, which would leave `doc` (and
    // the by_root_ raw pointer) dangling.
    const PackedDocument* raw = doc.get();
    if (db->by_name_.find(raw->name) != db->by_name_.end()) {
      return Status::InvalidArgument("duplicate document name '" +
                                     raw->name + "' in packed db");
    }
    if (!db->by_root_.emplace(raw->root_component, raw).second) {
      return Status::InvalidArgument("duplicate root component " +
                                     std::to_string(raw->root_component) +
                                     " in packed db");
    }
    db->by_name_.emplace(raw->name, std::move(doc));
  }
  QUICKVIEW_RETURN_IF_ERROR(db->ApplyDeltaLog(path));
  return db;
}

void PackedDb::MaskName(const std::string& name) {
  auto base = by_name_.find(name);
  if (base != by_name_.end()) {
    by_root_.erase(base->second->root_component);
    by_name_.erase(base);
    ++delta_stats_.masked_base_documents;
  }
  auto overlay = overlay_by_name_.find(name);
  if (overlay != overlay_by_name_.end()) {
    overlay_by_root_.erase(overlay->second->doc->root_component());
    overlay_by_name_.erase(overlay);
  }
}

Status PackedDb::ApplyDeltaLog(const std::string& path) {
  QUICKVIEW_ASSIGN_OR_RETURN(std::vector<DeltaRecord> records,
                             ReadDeltaLog(path));
  if (records.empty()) return Status::OK();
  // Overlay documents get root components past every packed one, so the
  // two id spaces can never collide.
  uint32_t next_root = 1;
  for (const auto& [root, doc] : by_root_) {
    next_root = std::max(next_root, root + 1);
  }
  for (const DeltaRecord& record : records) {
    // Either kind of record supersedes every earlier holder of the name.
    MaskName(record.name);
    if (record.tombstone) {
      ++delta_stats_.tombstones;
      continue;
    }
    ++delta_stats_.inserts;
    QUICKVIEW_ASSIGN_OR_RETURN(std::shared_ptr<xml::Document> doc,
                               xml::ParseXml(record.xml, next_root++));
    auto overlay = std::make_unique<OverlayDocument>();
    overlay->name = record.name;
    overlay->indexes = index::BuildDocumentIndexes(*doc);
    overlay->doc = std::move(doc);
    const OverlayDocument* raw = overlay.get();
    overlay_by_root_[raw->doc->root_component()] = raw;
    overlay_by_name_[record.name] = std::move(overlay);
  }
  delta_stats_.overlay_documents = overlay_by_name_.size();
  return Status::OK();
}

std::optional<index::DocumentIndexView> PackedDb::GetView(
    const std::string& doc_name) const {
  auto overlay = overlay_by_name_.find(doc_name);
  if (overlay != overlay_by_name_.end()) {
    return overlay->second->indexes->View();
  }
  auto it = by_name_.find(doc_name);
  if (it == by_name_.end()) return std::nullopt;
  return index::DocumentIndexView{it->second->paths.get(),
                                  it->second->terms.get()};
}

std::vector<std::string> PackedDb::document_names() const {
  std::vector<std::string> out;
  out.reserve(by_name_.size() + overlay_by_name_.size());
  for (const auto& [name, root] : document_roots()) out.push_back(name);
  return out;
}

std::map<std::string, uint32_t> PackedDb::document_roots() const {
  std::map<std::string, uint32_t> out;
  for (const auto& [name, doc] : by_name_) out[name] = doc->root_component;
  for (const auto& [name, doc] : overlay_by_name_) {
    out[name] = doc->doc->root_component();
  }
  return out;
}

const PackedDb::OverlayDocument* PackedDb::OverlayByRoot(
    uint32_t root_component) const {
  auto it = overlay_by_root_.find(root_component);
  return it == overlay_by_root_.end() ? nullptr : it->second;
}

Result<ChainReader> PackedDb::LocateRecord(uint32_t root_component,
                                           const xml::DeweyId& id,
                                           PageAccounting* acct) const {
  auto it = by_root_.find(root_component);
  if (it == by_root_.end()) {
    return Status::NotFound("no document with root component " +
                            std::to_string(root_component));
  }
  std::string value;
  QUICKVIEW_ASSIGN_OR_RETURN(
      bool found, it->second->locator.Get(id.Encode(), &value, acct));
  if (!found) {
    return Status::NotFound("no element " + id.ToString());
  }
  size_t pos = 0;
  uint32_t page = 0;
  uint32_t offset = 0;
  if (!ReadU32(value, &pos, &page) || !ReadU32(value, &pos, &offset)) {
    return Status::Internal("corrupt node locator entry");
  }
  return ChainReader(pool_.get(), page, offset, acct);
}

Status PackedDb::CopySubtree(uint32_t root_component, const xml::DeweyId& id,
                             xml::Document* target,
                             xml::NodeIndex target_parent,
                             uint64_t* fetched_bytes,
                             PageAccounting* acct) const {
  if (const OverlayDocument* overlay = OverlayByRoot(root_component)) {
    xml::NodeIndex source = overlay->doc->FindByDewey(id);
    if (source == xml::kInvalidNode) {
      return Status::NotFound("no element " + id.ToString());
    }
    xml::CopySubtreeInto(*overlay->doc, source, target, target_parent);
    *fetched_bytes = xml::SubtreeByteLength(*overlay->doc, source);
    return Status::OK();
  }
  QUICKVIEW_ASSIGN_OR_RETURN(ChainReader reader,
                             LocateRecord(root_component, id, acct));
  NodeRecord record;
  QUICKVIEW_RETURN_IF_ERROR(ReadNodeRecord(&reader, &record));
  *fetched_bytes = record.subtree_bytes;

  // Reattach the preorder record run under target_parent, exactly as the
  // in-memory CopyRecursive does (fresh contiguous Dewey ordinals in the
  // target; source structure recovered from record depths).
  xml::NodeIndex root_index = target_parent == xml::kInvalidNode
                                  ? target->CreateRoot(record.tag)
                                  : target->AddChild(target_parent,
                                                     record.tag);
  target->node(root_index).text = std::move(record.text);
  std::vector<std::pair<uint16_t, xml::NodeIndex>> stack;
  stack.emplace_back(record.depth, root_index);
  for (uint32_t i = 1; i < record.subtree_count; ++i) {
    NodeRecord child;
    QUICKVIEW_RETURN_IF_ERROR(ReadNodeRecord(&reader, &child));
    while (!stack.empty() && stack.back().first >= child.depth) {
      stack.pop_back();
    }
    if (stack.empty() || stack.back().first + 1 != child.depth) {
      return Status::Internal("corrupt node-record chain under " +
                              id.ToString());
    }
    xml::NodeIndex child_index =
        target->AddChild(stack.back().second, child.tag);
    target->node(child_index).text = std::move(child.text);
    stack.emplace_back(child.depth, child_index);
  }
  return Status::OK();
}

Status PackedDb::GetValue(uint32_t root_component, const xml::DeweyId& id,
                          std::string* out, PageAccounting* acct) const {
  if (const OverlayDocument* overlay = OverlayByRoot(root_component)) {
    xml::NodeIndex source = overlay->doc->FindByDewey(id);
    if (source == xml::kInvalidNode) {
      return Status::NotFound("no element " + id.ToString());
    }
    *out = overlay->doc->node(source).text;
    return Status::OK();
  }
  QUICKVIEW_ASSIGN_OR_RETURN(ChainReader reader,
                             LocateRecord(root_component, id, acct));
  NodeRecord record;
  QUICKVIEW_RETURN_IF_ERROR(ReadNodeRecord(&reader, &record));
  *out = std::move(record.text);
  return Status::OK();
}

Status PackedDb::GetSubtreeLength(uint32_t root_component,
                                  const xml::DeweyId& id, uint64_t* out,
                                  PageAccounting* acct) const {
  if (const OverlayDocument* overlay = OverlayByRoot(root_component)) {
    xml::NodeIndex source = overlay->doc->FindByDewey(id);
    if (source == xml::kInvalidNode) {
      return Status::NotFound("no element " + id.ToString());
    }
    *out = xml::SubtreeByteLength(*overlay->doc, source);
    return Status::OK();
  }
  QUICKVIEW_ASSIGN_OR_RETURN(ChainReader reader,
                             LocateRecord(root_component, id, acct));
  NodeRecord record;
  QUICKVIEW_RETURN_IF_ERROR(ReadNodeRecord(&reader, &record));
  *out = record.subtree_bytes;
  return Status::OK();
}

}  // namespace quickview::pagestore
