#include "pagestore/disk_btree.h"

#include <utility>

namespace quickview::pagestore {

namespace {

constexpr uint8_t kInlineFlag = 0;
constexpr uint8_t kOverflowFlag = 1;

struct LeafEntry {
  std::string_view key;
  uint8_t flag = kInlineFlag;
  std::string_view inline_value;
  PageId overflow_page = kInvalidPage;
  uint64_t overflow_len = 0;
};

/// Parses the entry at `*pos`; false on malformed payload.
bool ParseLeafEntry(std::string_view payload, size_t* pos, LeafEntry* out) {
  uint16_t key_len = 0;
  if (!ReadU16(payload, pos, &key_len)) return false;
  if (payload.size() - *pos < key_len) return false;
  out->key = payload.substr(*pos, key_len);
  *pos += key_len;
  if (*pos >= payload.size()) return false;
  out->flag = static_cast<uint8_t>(payload[(*pos)++]);
  if (out->flag == kInlineFlag) {
    uint32_t len = 0;
    if (!ReadU32(payload, pos, &len)) return false;
    if (payload.size() - *pos < len) return false;
    out->inline_value = payload.substr(*pos, len);
    *pos += len;
    return true;
  }
  if (out->flag != kOverflowFlag) return false;
  uint32_t page = 0;
  if (!ReadU32(payload, pos, &page) ||
      !ReadU64(payload, pos, &out->overflow_len)) {
    return false;
  }
  out->overflow_page = page;
  return true;
}

bool ParseInteriorEntry(std::string_view payload, size_t* pos,
                        std::string_view* key, PageId* child) {
  uint16_t key_len = 0;
  if (!ReadU16(payload, pos, &key_len)) return false;
  if (payload.size() - *pos < key_len) return false;
  *key = payload.substr(*pos, key_len);
  *pos += key_len;
  uint32_t page = 0;
  if (!ReadU32(payload, pos, &page)) return false;
  *child = page;
  return true;
}

Status Corrupt(PageId page) {
  return Status::Internal("corrupt B-tree page " + std::to_string(page));
}

}  // namespace

Status DiskBTreeBuilder::Add(std::string_view key, std::string_view value) {
  if (key.size() > 0xffff) {
    return Status::InvalidArgument("index key too long for packed B-tree: " +
                                   std::to_string(key.size()) + " bytes");
  }
  if (any_ && std::string_view(last_key_) >= key) {
    return Status::InvalidArgument(
        "DiskBTreeBuilder keys must be strictly increasing");
  }

  std::string entry;
  AppendU16(&entry, static_cast<uint16_t>(key.size()));
  entry.append(key);
  if (value.size() <= kMaxInlineValue) {
    entry.push_back(static_cast<char>(kInlineFlag));
    AppendU32(&entry, static_cast<uint32_t>(value.size()));
    entry.append(value);
  } else {
    // Spill to a posting-run chain; the leaf keeps a fixed-size ref.
    ChainWriter overflow(writer_, PageType::kPostingRun);
    QUICKVIEW_RETURN_IF_ERROR(overflow.Append(value));
    QUICKVIEW_ASSIGN_OR_RETURN(PageId first, overflow.Finish());
    entry.push_back(static_cast<char>(kOverflowFlag));
    AppendU32(&entry, first);
    AppendU64(&entry, static_cast<uint64_t>(value.size()));
  }
  if (4 + entry.size() > kPagePayloadSize) {
    return Status::InvalidArgument("index entry too large for one page: " +
                                   std::to_string(entry.size()) + " bytes");
  }

  if (leaf_page_ != kInvalidPage &&
      4 + leaf_payload_.size() + entry.size() > kPagePayloadSize) {
    PageId next = writer_->Allocate();
    QUICKVIEW_RETURN_IF_ERROR(FlushLeaf(next));
    leaf_page_ = next;
    level_.emplace_back(std::string(key), leaf_page_);
  } else if (leaf_page_ == kInvalidPage) {
    leaf_page_ = writer_->Allocate();
    level_.emplace_back(std::string(key), leaf_page_);
  }
  leaf_payload_.append(entry);
  ++leaf_entries_;
  last_key_.assign(key);
  any_ = true;
  return Status::OK();
}

Status DiskBTreeBuilder::FlushLeaf(PageId next_leaf) {
  std::string payload;
  AppendU32(&payload, leaf_entries_);
  payload.append(leaf_payload_);
  QUICKVIEW_RETURN_IF_ERROR(
      writer_->WritePage(leaf_page_, PageType::kBTreeLeaf, payload,
                         next_leaf));
  leaf_payload_.clear();
  leaf_entries_ = 0;
  return Status::OK();
}

Result<PageId> DiskBTreeBuilder::Finish() {
  if (!any_) {
    // An empty index still gets a root so readers need no special case.
    PageId page = writer_->Allocate();
    std::string payload;
    AppendU32(&payload, 0);
    QUICKVIEW_RETURN_IF_ERROR(
        writer_->WritePage(page, PageType::kBTreeLeaf, payload,
                           kInvalidPage));
    return page;
  }
  QUICKVIEW_RETURN_IF_ERROR(FlushLeaf(kInvalidPage));

  // Interior levels, bottom-up, until one page covers everything.
  while (level_.size() > 1) {
    std::vector<std::pair<std::string, PageId>> next_level;
    std::string payload;
    uint32_t count = 0;
    std::string first_key;
    auto flush = [&]() -> Status {
      PageId page = writer_->Allocate();
      std::string full;
      AppendU32(&full, count);
      full.append(payload);
      QUICKVIEW_RETURN_IF_ERROR(writer_->WritePage(
          page, PageType::kBTreeInterior, full, kInvalidPage));
      next_level.emplace_back(std::move(first_key), page);
      payload.clear();
      count = 0;
      first_key.clear();
      return Status::OK();
    };
    for (auto& [key, child] : level_) {
      std::string entry;
      AppendU16(&entry, static_cast<uint16_t>(key.size()));
      entry.append(key);
      AppendU32(&entry, child);
      if (count > 0 && 4 + payload.size() + entry.size() > kPagePayloadSize) {
        QUICKVIEW_RETURN_IF_ERROR(flush());
      }
      if (count == 0) first_key = key;
      payload.append(entry);
      ++count;
    }
    if (count > 0) QUICKVIEW_RETURN_IF_ERROR(flush());
    level_ = std::move(next_level);
  }
  return level_[0].second;
}

Result<std::string> DiskBTree::ValueRef::Read() const {
  if (overflow_page_ == kInvalidPage) return std::string(inline_value_);
  std::string out;
  out.reserve(overflow_len_);
  ChainReader reader(source_, overflow_page_, 0, acct_);
  QUICKVIEW_RETURN_IF_ERROR(reader.Read(overflow_len_, &out));
  return out;
}

Result<PagePin> DiskBTree::DescendToLeaf(std::string_view key,
                                         PageAccounting* acct) const {
  PageId current = root_;
  while (true) {
    QUICKVIEW_ASSIGN_OR_RETURN(PagePin pin, source_->Fetch(current, acct));
    if (pin->type == PageType::kBTreeLeaf) return pin;
    if (pin->type != PageType::kBTreeInterior) return Corrupt(current);
    std::string_view payload = pin->payload;
    size_t pos = 0;
    uint32_t count = 0;
    if (!pagestore::ReadU32(payload, &pos, &count) || count == 0) {
      return Corrupt(current);
    }
    PageId child = kInvalidPage;
    for (uint32_t i = 0; i < count; ++i) {
      std::string_view entry_key;
      PageId entry_child = kInvalidPage;
      if (!ParseInteriorEntry(payload, &pos, &entry_key, &entry_child)) {
        return Corrupt(current);
      }
      // First child catches keys below every separator (scans start
      // there; point lookups fall off the leaf's sorted entries).
      if (i == 0 || entry_key <= key) {
        child = entry_child;
      } else {
        break;
      }
    }
    current = child;
  }
}

Result<bool> DiskBTree::Get(std::string_view key, std::string* value,
                            PageAccounting* acct) const {
  QUICKVIEW_ASSIGN_OR_RETURN(PagePin pin, DescendToLeaf(key, acct));
  std::string_view payload = pin->payload;
  size_t pos = 0;
  uint32_t count = 0;
  if (!pagestore::ReadU32(payload, &pos, &count)) return Corrupt(root_);
  for (uint32_t i = 0; i < count; ++i) {
    LeafEntry entry;
    if (!ParseLeafEntry(payload, &pos, &entry)) return Corrupt(root_);
    if (entry.key < key) continue;
    if (entry.key > key) return false;
    ValueRef ref;
    ref.source_ = source_;
    ref.acct_ = acct;
    ref.inline_value_ = entry.inline_value;
    ref.overflow_page_ = entry.overflow_page;
    ref.overflow_len_ = entry.overflow_len;
    QUICKVIEW_ASSIGN_OR_RETURN(*value, ref.Read());
    return true;
  }
  return false;
}

Status DiskBTree::ScanFrom(
    std::string_view start,
    const std::function<Result<bool>(std::string_view key,
                                     const ValueRef& value)>& fn,
    PageAccounting* acct) const {
  QUICKVIEW_ASSIGN_OR_RETURN(PagePin pin, DescendToLeaf(start, acct));
  bool started = false;
  while (true) {
    std::string_view payload = pin->payload;
    size_t pos = 0;
    uint32_t count = 0;
    if (!pagestore::ReadU32(payload, &pos, &count)) return Corrupt(root_);
    for (uint32_t i = 0; i < count; ++i) {
      LeafEntry entry;
      if (!ParseLeafEntry(payload, &pos, &entry)) return Corrupt(root_);
      if (!started) {
        if (entry.key < start) continue;
        started = true;
      }
      ValueRef ref;
      ref.source_ = source_;
      ref.acct_ = acct;
      ref.inline_value_ = entry.inline_value;
      ref.overflow_page_ = entry.overflow_page;
      ref.overflow_len_ = entry.overflow_len;
      QUICKVIEW_ASSIGN_OR_RETURN(bool keep_going, fn(entry.key, ref));
      if (!keep_going) return Status::OK();
    }
    PageId next = pin->next_page;
    if (next == kInvalidPage) return Status::OK();
    QUICKVIEW_ASSIGN_OR_RETURN(pin, source_->Fetch(next, acct));
    if (pin->type != PageType::kBTreeLeaf) return Corrupt(next);
  }
}

}  // namespace quickview::pagestore
