// Append-only delta side log for packed databases. A .qvpack file is
// immutable after packing; live document updates against a packed corpus
// go to `<pack>.delta` instead — a sequence of inserted-document and
// tombstone records that PackedDb::Open replays into an in-memory overlay
// consulted by every lookup. An offline `quickview_cli compact` folds the
// log into a fresh pack, byte-identical to packing the final corpus
// directly.
//
// File layout: 8-byte magic "QVDELTA1", then per record
//   u8 type ('i' insert | 't' tombstone) | u32 name_len | name |
//   u64 xml_len | xml | u32 FNV-1a checksum of everything before it.
// Records are self-checksummed so a torn append or bit rot surfaces as a
// ParseError at open, never as a silently wrong corpus.
//
// Concurrency: single writer, append-only; readers see the log only at
// PackedDb::Open time (reopen to observe later appends).
#ifndef QUICKVIEW_PAGESTORE_DELTA_LOG_H_
#define QUICKVIEW_PAGESTORE_DELTA_LOG_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace quickview::pagestore {

struct DeltaRecord {
  bool tombstone = false;
  std::string name;
  std::string xml;  // empty for tombstones
};

/// The side-log path for a pack: `pack_path` + ".delta".
std::string DeltaLogPath(const std::string& pack_path);

/// Appends an inserted (or replaced) document to the pack's delta log,
/// creating the log if needed. The XML is parsed first: a malformed
/// document fails here, at the write boundary, and appends nothing.
Status PackAppend(const std::string& pack_path, const std::string& name,
                  const std::string& xml_text);

/// Appends a tombstone: `name` is deleted from the corpus (whether it
/// lives in the base pack or in an earlier log record).
Status PackTombstone(const std::string& pack_path, const std::string& name);

/// Reads every record of the pack's delta log in append order. Returns an
/// empty vector when no log exists; ParseError on a corrupt or truncated
/// log.
Result<std::vector<DeltaRecord>> ReadDeltaLog(const std::string& pack_path);

}  // namespace quickview::pagestore

#endif  // QUICKVIEW_PAGESTORE_DELTA_LOG_H_
