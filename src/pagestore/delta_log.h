// Append-only delta side log for packed databases. A .qvpack file is
// immutable after packing; live document updates against a packed corpus
// go to `<pack>.delta` instead — a sequence of inserted-document and
// tombstone records that PackedDb::Open replays into an in-memory overlay
// consulted by every lookup. An offline `quickview_cli compact` folds the
// log into a fresh pack, byte-identical to packing the final corpus
// directly.
//
// The log IS a write-ahead log: records ride pagestore/wal.h frames
// (sequenced, length-prefixed, checksummed, committed by one contiguous
// write + fdatasync), with the document payload encoded as
//   u8 type ('i' insert | 't' tombstone) | u32 name_len | name |
//   u64 xml_len | xml.
// Recovery at open follows the WAL's position rule: a torn FINAL record
// (the one a crash mid-append leaves behind) is truncated away and the
// committed prefix recovered; corruption with bytes following — a
// mid-log checksum mismatch or sequence break — is ParseError, never a
// silent repair.
//
// Concurrency: single writer per path, append-only; readers see the log
// only at PackedDb::Open time (reopen to observe later appends).
#ifndef QUICKVIEW_PAGESTORE_DELTA_LOG_H_
#define QUICKVIEW_PAGESTORE_DELTA_LOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace quickview::pagestore {

struct DeltaRecord {
  bool tombstone = false;
  std::string name;
  std::string xml;  // empty for tombstones
};

/// The side-log path for a pack: `pack_path` + ".delta".
std::string DeltaLogPath(const std::string& pack_path);

/// The WAL payload encoding of one record (the frame around it — seq,
/// length, checksum — is pagestore/wal.h's business).
std::string EncodeDeltaPayload(const DeltaRecord& record);

/// Decodes a committed WAL payload. ParseError on a malformed payload —
/// the frame checksum already passed, so this is a writer bug or
/// corruption, never a torn append.
Result<DeltaRecord> DecodeDeltaPayload(std::string_view payload);

/// Appends an inserted (or replaced) document to the pack's delta log,
/// creating the log if needed, durable (fdatasync) before returning. The
/// XML is parsed first: a malformed document fails here, at the write
/// boundary, and appends nothing.
Status PackAppend(const std::string& pack_path, const std::string& name,
                  const std::string& xml_text);

/// Appends a tombstone: `name` is deleted from the corpus (whether it
/// lives in the base pack or in an earlier log record). Durable before
/// returning.
Status PackTombstone(const std::string& pack_path, const std::string& name);

/// Reads every committed record of the pack's delta log in append order.
/// Returns an empty vector when no log exists; a torn tail is dropped
/// (without modifying the file — the next writer truncates it); only
/// non-tail corruption is ParseError.
Result<std::vector<DeltaRecord>> ReadDeltaLog(const std::string& pack_path);

}  // namespace quickview::pagestore

#endif  // QUICKVIEW_PAGESTORE_DELTA_LOG_H_
