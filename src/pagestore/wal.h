// Write-ahead log: the durability backbone of the mutable engine. The
// `.delta` side log (pagestore/delta_log.h) and LiveDatabase's durable
// mutation path both write through this one class, which owns the three
// guarantees the old ad-hoc appender lacked:
//
//   Durability   every Append returns only after its record reached
//                stable storage via fdatasync on an O_APPEND fd —
//                never a buffered flush into the page cache.
//   Atomicity    each commit is ONE contiguous write() (the first one
//                carries the 8-byte magic), so concurrent appenders can
//                never interleave partial records or double-write the
//                header, and a crash tears at most the final write.
//   Group commit concurrent appenders are batched: the first into the
//                critical section becomes the leader, drains every
//                staged record into one write+fdatasync, runs the
//                batch's apply callbacks in sequence order, and wakes
//                the followers — amortizing the fsync (the dominant
//                ingest cost) across all of them.
//
// File layout: 8-byte magic "QVWAL001", then per record
//   u32 payload_len | u64 seq | payload | u32 FNV-1a over the first
//   12 + payload_len bytes.
// `seq` increases by exactly 1 per record, starting at 1.
//
// Recovery: opening scans the file and classifies damage by position.
// A record that cannot be completed — short frame, or checksum mismatch
// with NOTHING after it — is a torn tail: the committed prefix is
// recovered, the tail truncated, and the log stays writable. The same
// damage with bytes following (mid-log corruption, a sequence break, a
// malformed frame that checksums clean) is fatal ParseError: silent
// repair there would drop acknowledged commits.
//
// Checkpointing is pagestore/pack.h CompactPack: fold base + log into a
// fresh pack (written atomically: temp file + fsync + rename + directory
// fsync), after which the log is deleted and sequence numbers restart.
#ifndef QUICKVIEW_PAGESTORE_WAL_H_
#define QUICKVIEW_PAGESTORE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"
#include "common/sync.h"
#include "obs/metrics.h"

namespace quickview::pagestore {

struct WalOptions {
  /// Batch concurrent appenders into one write+fdatasync. When false
  /// every record pays its own sync — the configuration bench_wal_ingest
  /// compares group commit against.
  bool group_commit = true;
  /// Issue fdatasync at all. Off only for tests/benches that isolate
  /// framing cost; an acknowledged append is then NOT crash-durable.
  bool sync = true;
};

/// What a recovery scan found. `payloads` are the committed records in
/// append order; a torn tail (if any) has already been classified and —
/// on the Wal::Open path — physically truncated away.
struct WalReplay {
  std::vector<std::string> payloads;
  uint64_t last_seq = 0;         // seq of the last committed record
  uint64_t committed_bytes = 0;  // file prefix holding the records
  bool tail_truncated = false;   // a torn tail was dropped
  uint64_t dropped_bytes = 0;    // its size
};

/// Read-only recovery scan: never modifies the file. A missing file is
/// an empty replay. ParseError only for non-tail corruption.
Result<WalReplay> ReplayWal(const std::string& path);

/// fsyncs the directory holding `path`, making a created or renamed
/// directory entry itself durable (fsync of the file alone does not).
Status SyncParentDirectory(const std::string& path);

class Wal {
 public:
  /// Opens (creating if absent) the log at `path`, recovers the
  /// committed prefix, truncates any torn tail, and fsyncs the parent
  /// directory so the log file survives a crash of its creator.
  /// Single writer per path: two Wal instances on one file may
  /// double-write the magic.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           const WalOptions& options = {});

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Durably appends `payload`, returning its sequence number once the
  /// record — and every record batched with it — is on stable storage.
  /// `apply`, when provided, runs exactly once after durability, in
  /// sequence order with every other append's callback (it may run on
  /// the batch leader's thread); its error becomes this call's return
  /// value, with the record already durable. An I/O failure fails the
  /// whole batch and poisons the log: every later Append is rejected
  /// (the file may hold a torn frame only a reopen may truncate).
  Result<uint64_t> Append(std::string_view payload,
                          const std::function<Status()>& apply = nullptr)
      QV_EXCLUDES(mu_);

  /// Records recovered when this instance opened the file.
  const WalReplay& replay() const { return replay_; }
  const std::string& path() const { return path_; }

  /// Lifetime instrument readings (relaxed; exact once writers quiesce).
  uint64_t appended_records() const { return appends_.value(); }
  uint64_t sync_calls() const { return syncs_.value(); }
  uint64_t commit_batches() const { return batches_.value(); }

  /// Registers qv_wal_* under `labels`: appends/syncs/batches counters,
  /// the records-per-sync histogram, and replay gauges. The Wal must
  /// outlive the registry reads.
  Status RegisterMetrics(obs::MetricsRegistry* registry,
                         obs::LabelSet labels = {}) const;

 private:
  struct Waiter {
    uint64_t seq = 0;
    std::string frame;
    const std::function<Status()>* apply = nullptr;
    Status result;
    bool done = false;
  };

  Wal(std::string path, int fd, const WalOptions& options, WalReplay replay);

  /// One contiguous write of `buf` plus (when configured) fdatasync.
  /// Runs outside mu_ — only the leader, so the fd sees one writer.
  Status WriteAndSync(const std::string& buf);

  const std::string path_;
  const int fd_;
  const WalOptions options_;
  const WalReplay replay_;

  qv::Mutex mu_;
  qv::CondVar cv_;
  std::vector<Waiter*> queue_ QV_GUARDED_BY(mu_);
  bool leader_active_ QV_GUARDED_BY(mu_) = false;
  uint64_t next_seq_ QV_GUARDED_BY(mu_);
  uint64_t file_bytes_ QV_GUARDED_BY(mu_);
  // First I/O failure; poisons every later Append (see Append doc).
  Status broken_ QV_GUARDED_BY(mu_);

  // Registry-native instruments (relaxed atomics).
  obs::Counter appends_;        // records durably committed
  obs::Counter syncs_;          // fdatasync calls issued
  obs::Counter batches_;        // commit batches (leader rounds)
  Histogram group_size_;        // records per commit batch
  obs::Gauge replayed_records_;   // recovered at open
  obs::Gauge torn_dropped_bytes_;  // torn tail truncated at open
};

}  // namespace quickview::pagestore

#endif  // QUICKVIEW_PAGESTORE_WAL_H_
