// BufferPool: a fixed budget of resident page frames over a PagedFile,
// with LRU replacement. Fetch returns a pin (shared_ptr): pinned frames
// are never reclaimed from under a reader — eviction only drops the
// pool's own reference, so a page being consumed stays valid while the
// frame table moves on. Thread safe; one pool is shared by every query
// of a QueryService batch, which is what makes cross-query locality
// (buffer hits) observable.
#ifndef QUICKVIEW_PAGESTORE_BUFFER_POOL_H_
#define QUICKVIEW_PAGESTORE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/result.h"
#include "common/sync.h"
#include "obs/metrics.h"
#include "pagestore/page.h"
#include "pagestore/paged_file.h"

namespace quickview::pagestore {

struct BufferPoolOptions {
  /// Frame budget. With 4 KiB pages the default caps residency at 1 MiB —
  /// deliberately far below even modest databases, so eviction is the
  /// normal regime, as in the paper's disk-resident setting.
  size_t frames = 256;
};

struct BufferPoolStats {  // lint:allow(adhoc-stats) snapshot view; pool registers obs:: instruments
  uint64_t hits = 0;
  uint64_t misses = 0;       // == pages read from the file
  uint64_t evictions = 0;
  uint64_t bytes_read = 0;   // misses * page size
  uint64_t frames_in_use = 0;
};

class BufferPool final : public PageSource {
 public:
  BufferPool(const PagedFile* file, const BufferPoolOptions& options = {});

  /// Returns a pin on the page, reading it from the file on a miss (and
  /// evicting the least-recently-used unpinned frame when over budget).
  /// `acct`, when non-null, receives this call's hit/miss accounting on
  /// top of the pool-global counters.
  Result<PagePin> Fetch(PageId id, PageAccounting* acct) const override
      QV_EXCLUDES(mu_);

  /// Thin view over the pool's registry instruments (hits/misses/
  /// evictions are live obs::Counters; frames_in_use reads the frame
  /// table under the lock).
  BufferPoolStats stats() const QV_EXCLUDES(mu_);
  size_t frame_budget() const { return budget_; }

  /// Registers the pool's instruments (qv_bufferpool_*) under `labels`
  /// — per-instance labels (e.g. {"shard","2"}) keep multiple pools
  /// apart in one registry. The pool must outlive the registry reads.
  Status RegisterMetrics(obs::MetricsRegistry* registry,
                         obs::LabelSet labels = {}) const;

 private:
  struct Frame {
    PagePin page;
    std::list<PageId>::iterator lru_it;
  };

  const PagedFile* file_;
  size_t budget_;

  mutable qv::Mutex mu_;
  // front = most recently used
  mutable std::list<PageId> lru_ QV_GUARDED_BY(mu_);
  mutable std::unordered_map<PageId, Frame> frames_ QV_GUARDED_BY(mu_);
  // Registry-native counters (relaxed atomics; bumped under mu_ on the
  // fetch path, readable lock-free by stats() and the exposition).
  mutable obs::Counter hits_;
  mutable obs::Counter misses_;
  mutable obs::Counter evictions_;
};

}  // namespace quickview::pagestore

#endif  // QUICKVIEW_PAGESTORE_BUFFER_POOL_H_
