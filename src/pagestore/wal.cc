#include "pagestore/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/failpoint.h"
#include "pagestore/page.h"

namespace quickview::pagestore {

namespace {

constexpr char kWalMagic[] = "QVWAL001";
constexpr size_t kMagicSize = 8;
// u32 payload_len | u64 seq before the payload, u32 checksum after it.
constexpr size_t kFrameHeaderSize = 12;
constexpr size_t kFrameTrailerSize = 4;
// Far above any document this engine ingests; a "length" beyond it can
// only be garbage, and the frame it starts will not fit the file anyway.
constexpr uint32_t kMaxWalPayload = 1u << 30;

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  // Same justification as pagestore/paged_file.cc: glibc strerror returns
  // thread-local storage and the two strerror_r signatures are not worth
  // an error path under the log's single-leader invariant.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  return what + " " + path + ": " + std::strerror(errno);
}

uint32_t WalChecksum(std::string_view bytes) {
  uint32_t h = 2166136261u;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

std::string EncodeFrame(uint64_t seq, std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size() + kFrameTrailerSize);
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  AppendU64(&frame, seq);
  frame.append(payload);
  AppendU32(&frame, WalChecksum(frame));
  return frame;
}

/// The shared recovery scan. Classifies damage by position: anything
/// that prevents completing the FINAL record is a torn tail (recover the
/// prefix); the same damage with bytes after it is fatal.
Result<WalReplay> ScanWal(std::string_view bytes, const std::string& path) {
  WalReplay replay;
  if (bytes.empty()) return replay;
  if (bytes.size() < kMagicSize) {
    // A crash tore the very first append inside the magic itself.
    replay.tail_truncated = true;
    replay.dropped_bytes = bytes.size();
    return replay;
  }
  if (bytes.compare(0, kMagicSize, kWalMagic, kMagicSize) != 0) {
    return Status::ParseError("wal " + path + " has a bad magic header");
  }
  size_t pos = kMagicSize;
  replay.committed_bytes = pos;
  while (pos < bytes.size()) {
    const size_t remaining = bytes.size() - pos;
    uint32_t payload_len = 0;
    uint64_t seq = 0;
    size_t cursor = pos;
    uint64_t frame_size = 0;
    bool fits = remaining >= kFrameHeaderSize && ReadU32(bytes, &cursor,
                                                        &payload_len);
    if (fits) {
      fits = ReadU64(bytes, &cursor, &seq);
      frame_size = kFrameHeaderSize + static_cast<uint64_t>(payload_len) +
                   kFrameTrailerSize;
      fits = fits && payload_len <= kMaxWalPayload && remaining >= frame_size;
    }
    if (!fits) {
      replay.tail_truncated = true;
      replay.dropped_bytes = remaining;
      return replay;
    }
    const std::string_view body =
        bytes.substr(pos, kFrameHeaderSize + payload_len);
    cursor = pos + kFrameHeaderSize + payload_len;
    uint32_t stored = 0;
    ReadU32(bytes, &cursor, &stored);
    if (WalChecksum(body) != stored) {
      if (pos + frame_size == bytes.size()) {
        // Nothing follows: a torn (or bit-rotted — indistinguishable)
        // final record. Recover the committed prefix.
        replay.tail_truncated = true;
        replay.dropped_bytes = remaining;
        return replay;
      }
      return Status::ParseError(
          "wal " + path + ": checksum mismatch at byte " +
          std::to_string(pos) + " with " +
          std::to_string(bytes.size() - pos - frame_size) +
          " bytes following");
    }
    if (seq != replay.last_seq + 1) {
      // A checksum-valid record with the wrong sequence number was never
      // torn — the log is corrupt or spliced. Never auto-repair.
      return Status::ParseError(
          "wal " + path + ": sequence break at byte " + std::to_string(pos) +
          " (record " + std::to_string(seq) + " after " +
          std::to_string(replay.last_seq) + ")");
    }
    replay.payloads.emplace_back(body.substr(kFrameHeaderSize));
    replay.last_seq = seq;
    pos += frame_size;
    replay.committed_bytes = pos;
  }
  return replay;
}

Result<std::string> ReadWholeFile(int fd, const std::string& path) {
  std::string bytes;
  char buf[1 << 16];
  off_t off = 0;
  for (;;) {
    ssize_t n = ::pread(fd, buf, sizeof buf, off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoMessage("cannot read wal", path));
    }
    if (n == 0) return bytes;
    bytes.append(buf, static_cast<size_t>(n));
    off += n;
  }
}

}  // namespace

Result<WalReplay> ReplayWal(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return WalReplay();
    return Status::Internal(ErrnoMessage("cannot open wal", path));
  }
  Result<std::string> bytes = ReadWholeFile(fd, path);
  ::close(fd);
  QUICKVIEW_RETURN_IF_ERROR(bytes);
  return ScanWal(*bytes, path);
}

Status SyncParentDirectory(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal(ErrnoMessage("cannot open directory", dir));
  }
  int rc = ::fsync(fd);
  int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved_errno;
    return Status::Internal(ErrnoMessage("fsync failed on directory", dir));
  }
  return Status::OK();
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       const WalOptions& options) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal(ErrnoMessage("cannot open wal", path));
  }
  Result<std::string> bytes = ReadWholeFile(fd, path);
  if (!bytes.ok()) {
    ::close(fd);
    return bytes.status();
  }
  Result<WalReplay> replay = ScanWal(*bytes, path);
  if (!replay.ok()) {
    ::close(fd);
    return replay.status();
  }
  if (replay->committed_bytes < bytes->size()) {
    // Drop the torn tail for real, so the next append starts exactly at
    // the committed prefix.
    if (::ftruncate(fd, static_cast<off_t>(replay->committed_bytes)) != 0) {
      Status failed =
          Status::Internal(ErrnoMessage("cannot truncate torn wal", path));
      ::close(fd);
      return failed;
    }
    if (options.sync && ::fdatasync(fd) != 0) {
      Status failed =
          Status::Internal(ErrnoMessage("fdatasync failed on", path));
      ::close(fd);
      return failed;
    }
  }
  if (options.sync) {
    // The creating open above may have minted the directory entry.
    Status dir_sync = SyncParentDirectory(path);
    if (!dir_sync.ok()) {
      ::close(fd);
      return dir_sync;
    }
  }
  return std::unique_ptr<Wal>(
      new Wal(path, fd, options, *std::move(replay)));
}

Wal::Wal(std::string path, int fd, const WalOptions& options,
         WalReplay replay)
    : path_(std::move(path)),
      fd_(fd),
      options_(options),
      replay_(std::move(replay)),
      next_seq_(replay_.last_seq + 1),
      file_bytes_(replay_.committed_bytes) {
  replayed_records_.Set(static_cast<int64_t>(replay_.payloads.size()));
  torn_dropped_bytes_.Set(static_cast<int64_t>(replay_.dropped_bytes));
}

Wal::~Wal() { ::close(fd_); }

Status Wal::WriteAndSync(const std::string& buf) {
  QUICKVIEW_INJECT("wal.commit.before_write");
  if (fail::MaybeTornWrite("wal.commit.torn_write", fd_, buf.data(),
                           buf.size())) {
    return Status::Internal("unreachable: torn write injection returned");
  }
  size_t off = 0;
  while (off < buf.size()) {
    ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoMessage("write failed on", path_));
    }
    off += static_cast<size_t>(n);
  }
  QUICKVIEW_INJECT("wal.commit.before_sync");
  if (options_.sync) {
    if (::fdatasync(fd_) != 0) {
      return Status::Internal(ErrnoMessage("fdatasync failed on", path_));
    }
    syncs_.Increment();
  }
  QUICKVIEW_INJECT("wal.commit.after_sync");
  return Status::OK();
}

Result<uint64_t> Wal::Append(std::string_view payload,
                             const std::function<Status()>& apply) {
  if (payload.empty() || payload.size() > kMaxWalPayload) {
    return Status::InvalidArgument("wal payload must be 1.." +
                                   std::to_string(kMaxWalPayload) + " bytes");
  }
  Waiter me;
  if (apply) me.apply = &apply;
  qv::MutexLock lock(mu_);
  if (!broken_.ok()) return broken_;
  me.seq = next_seq_++;
  me.frame = EncodeFrame(me.seq, payload);
  queue_.push_back(&me);
  if (leader_active_) {
    // A leader is committing; it will pick this record up in its next
    // batch (that is the group: everyone who arrived during its I/O).
    while (!me.done) cv_.Wait(lock);
  } else {
    leader_active_ = true;
    while (!queue_.empty()) {
      std::vector<Waiter*> batch;
      if (options_.group_commit) {
        batch.swap(queue_);
      } else {
        // Per-record mode: one write+sync per record, same protocol.
        batch.push_back(queue_.front());
        queue_.erase(queue_.begin());
      }
      std::string buf;
      if (file_bytes_ == 0) buf.append(kWalMagic, kMagicSize);
      for (Waiter* w : batch) buf.append(w->frame);
      lock.Unlock();
      Status io = WriteAndSync(buf);
      for (Waiter* w : batch) {
        w->result = io;
        if (io.ok() && w->apply != nullptr) w->result = (*w->apply)();
      }
      lock.Lock();
      if (io.ok()) {
        file_bytes_ += buf.size();
        appends_.Increment(batch.size());
        batches_.Increment();
        group_size_.Record(batch.size());
      } else {
        // The file may now end in a torn frame; only a reopen (which
        // truncates it) may append again.
        broken_ = io;
      }
      for (Waiter* w : batch) w->done = true;
      cv_.NotifyAll();
    }
    leader_active_ = false;
  }
  QUICKVIEW_RETURN_IF_ERROR(me.result);
  return me.seq;
}

Status Wal::RegisterMetrics(obs::MetricsRegistry* registry,
                            obs::LabelSet labels) const {
  QV_RETURN_IF_ERROR(
      registry->RegisterCounter("qv_wal_appends_total", labels, &appends_));
  QV_RETURN_IF_ERROR(
      registry->RegisterCounter("qv_wal_syncs_total", labels, &syncs_));
  QV_RETURN_IF_ERROR(registry->RegisterCounter("qv_wal_commit_batches_total",
                                               labels, &batches_));
  QV_RETURN_IF_ERROR(registry->RegisterHistogram("qv_wal_group_size", labels,
                                                 &group_size_));
  QV_RETURN_IF_ERROR(registry->RegisterGauge("qv_wal_replayed_records",
                                             labels, &replayed_records_));
  return registry->RegisterGauge("qv_wal_torn_dropped_bytes", labels,
                                 &torn_dropped_bytes_);
}

}  // namespace quickview::pagestore
