// PagedFile: the single-file .qvpack container. Page 0 is the file
// header (magic, geometry, directory root); every other page is written
// once at pack time and read back through checksum-verified pread calls,
// so a reader is immutable and safe to share across threads.
//
// ChainWriter / ChainReader provide a byte-stream view over a linked list
// of pages (next_page pointers): node records, posting runs, overflow
// values and the directory all serialize as streams that may span pages.
#ifndef QUICKVIEW_PAGESTORE_PAGED_FILE_H_
#define QUICKVIEW_PAGESTORE_PAGED_FILE_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "pagestore/page.h"

namespace quickview::pagestore {

/// Append-oriented writer used by the packer. Pages are allocated with
/// Allocate() (ids are stable immediately, so tree structures can link
/// children before parents are written) and persisted with WritePage;
/// Finish() writes the header page and fsyncs.
class PagedFileWriter {
 public:
  static Result<std::unique_ptr<PagedFileWriter>> Create(
      const std::string& path);
  ~PagedFileWriter();
  PagedFileWriter(const PagedFileWriter&) = delete;
  PagedFileWriter& operator=(const PagedFileWriter&) = delete;

  /// Reserves the next page id (page 0 is the header, reserved at
  /// Create).
  PageId Allocate() { return next_page_++; }

  /// `payload.size()` must be <= kPagePayloadSize.
  Status WritePage(PageId id, PageType type, std::string_view payload,
                   PageId next_page);

  /// Writes the header page, fsyncs and closes. No further writes.
  Status Finish(PageId directory_page);

  uint32_t page_count() const { return next_page_; }

 private:
  PagedFileWriter(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
  PageId next_page_ = 1;
  bool finished_ = false;
};

/// Read side. Thread safe: reads use pread on an immutable file.
class PagedFile {
 public:
  /// Validates the header page (magic, version, page size, page count vs
  /// file size).
  static Result<std::unique_ptr<PagedFile>> Open(const std::string& path);
  ~PagedFile();
  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  /// Reads and checksum-verifies one page.
  Result<CachedPage> ReadPage(PageId id) const;

  uint32_t page_count() const { return page_count_; }
  PageId directory_page() const { return directory_page_; }
  const std::string& path() const { return path_; }

 private:
  PagedFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
  uint32_t page_count_ = 0;
  PageId directory_page_ = kInvalidPage;
};

/// Byte stream writer over a fresh page chain of one type.
class ChainWriter {
 public:
  ChainWriter(PagedFileWriter* writer, PageType type)
      : writer_(writer), type_(type) {}

  struct Pos {
    PageId page = kInvalidPage;
    uint32_t offset = 0;
  };

  /// Position the next Append will write to (allocates the first page of
  /// the chain on demand, so a Pos is always addressable).
  Pos Tell();

  Status Append(std::string_view bytes);

  /// Flushes the tail page; returns the first page of the chain (a chain
  /// that never received bytes still owns one empty page, so every
  /// segment has a valid root).
  Result<PageId> Finish();

 private:
  PagedFileWriter* writer_;
  PageType type_;
  PageId first_page_ = kInvalidPage;
  PageId current_page_ = kInvalidPage;
  std::string buffer_;
};

/// Byte stream reader over a page chain, pulling pages through a
/// PageSource so reads hit the buffer pool.
class ChainReader {
 public:
  ChainReader(const PageSource* source, PageId page, uint32_t offset,
              PageAccounting* acct)
      : source_(source), page_(page), offset_(offset), acct_(acct) {}

  /// Appends exactly `n` bytes to `out`; Internal error if the chain ends
  /// first.
  Status Read(size_t n, std::string* out);

  Status ReadU16(uint16_t* v);
  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);

 private:
  Status Pull();  // ensures current_ pinned and offset_ < payload size
  Status ReadScalar(size_t n, uint64_t* v);  // big-endian, no allocation

  const PageSource* source_;
  PageId page_;
  uint32_t offset_;
  PageAccounting* acct_;
  PagePin current_;
};

}  // namespace quickview::pagestore

#endif  // QUICKVIEW_PAGESTORE_PAGED_FILE_H_
