// PackDatabase: serializes a database and its already-built indices into
// a single .qvpack file of fixed-size pages — the offline "load time"
// counterpart of PackedDb::Open. Layout (see README "Storage format"):
//   page 0            file header
//   per document      node-record chain (DocumentStore content, preorder)
//                     node-locator B-tree   dewey -> record position
//                     path-index B-tree     (path \x01 value) -> entry list
//                     inverted B-tree       term -> posting run
//                     (long rows/runs spill into posting-run page chains)
//   directory chain   per-document names, root components, segment roots
//                     and the distinct-path dictionaries
#ifndef QUICKVIEW_PAGESTORE_PACK_H_
#define QUICKVIEW_PAGESTORE_PACK_H_

#include <string>

#include "common/result.h"
#include "index/index_builder.h"
#include "xml/dom.h"

namespace quickview::pagestore {

/// Writes `database` + `indexes` to `path` (overwritten if present).
/// Every document must have indexes; fails with NotFound otherwise.
Status PackDatabase(const xml::Database& database,
                    const index::DatabaseIndexes& indexes,
                    const std::string& path);

/// Folds `in_path`'s delta side log (pagestore/delta_log.h) into a fresh
/// pack at `out_path`: the surviving corpus — packed documents minus
/// tombstoned/shadowed ones plus log-inserted ones — is renumbered to
/// root components 1..N in document-name order, reindexed and repacked.
/// The output is byte-identical to PackDatabase over a database built
/// directly from the same documents with the same numbering, and carries
/// no delta log (a stale `out_path`.delta is deleted). `out_path` must
/// differ from `in_path` (the source is read lazily while the output is
/// written).
Status CompactPack(const std::string& in_path, const std::string& out_path);

}  // namespace quickview::pagestore

#endif  // QUICKVIEW_PAGESTORE_PACK_H_
