// PackDatabase: serializes a database and its already-built indices into
// a single .qvpack file of fixed-size pages — the offline "load time"
// counterpart of PackedDb::Open. Layout (see README "Storage format"):
//   page 0            file header
//   per document      node-record chain (DocumentStore content, preorder)
//                     node-locator B-tree   dewey -> record position
//                     path-index B-tree     (path \x01 value) -> entry list
//                     inverted B-tree       term -> posting run
//                     (long rows/runs spill into posting-run page chains)
//   directory chain   per-document names, root components, segment roots
//                     and the distinct-path dictionaries
#ifndef QUICKVIEW_PAGESTORE_PACK_H_
#define QUICKVIEW_PAGESTORE_PACK_H_

#include <string>

#include "common/result.h"
#include "index/index_builder.h"
#include "xml/dom.h"

namespace quickview::pagestore {

/// Writes `database` + `indexes` to `path` (overwritten if present).
/// Every document must have indexes; fails with NotFound otherwise.
Status PackDatabase(const xml::Database& database,
                    const index::DatabaseIndexes& indexes,
                    const std::string& path);

}  // namespace quickview::pagestore

#endif  // QUICKVIEW_PAGESTORE_PACK_H_
