// Sharded pack files: PackShardedDb partitions a database (see
// storage/shard_set.h for the scheme) and writes one .qvpack per shard
// plus a small text manifest — `<base>.qvset` — naming them in shard
// order:
//   qvset 1
//   shards <N>
//   shard <i> <pack file name, relative to the manifest's directory>
// storage::ShardSet::OpenPacked reads the manifest back and opens every
// shard pack with its slice of the buffer-pool budget.
#ifndef QUICKVIEW_PAGESTORE_SHARD_PACK_H_
#define QUICKVIEW_PAGESTORE_SHARD_PACK_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/shard_set.h"
#include "xml/dom.h"

namespace quickview::pagestore {

struct ShardManifest {
  int shards = 0;
  /// One pack file per shard, in shard order, relative to the manifest's
  /// directory.
  std::vector<std::string> pack_files;
};

/// `path` may be given with or without the .qvset extension; the
/// manifest always lands at `<base>.qvset`.
std::string ShardManifestPath(const std::string& path);

/// Pack file path for shard `shard` of the set at `path`:
/// `<base>.shard<i>.qvpack`.
std::string ShardPackPath(const std::string& path, int shard);

Status WriteShardManifest(const std::string& path,
                          const ShardManifest& manifest);
Result<ShardManifest> ReadShardManifest(const std::string& path);

/// Partitions `database` per `spec`, builds each shard's indexes, packs
/// every shard to `<base>.shard<i>.qvpack` and writes `<base>.qvset`.
/// Existing files at those paths are overwritten.
Status PackShardedDb(const xml::Database& database,
                     const storage::ShardingSpec& spec,
                     const std::string& path);

}  // namespace quickview::pagestore

#endif  // QUICKVIEW_PAGESTORE_SHARD_PACK_H_
