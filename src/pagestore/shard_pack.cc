#include "pagestore/shard_pack.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "pagestore/pack.h"

namespace quickview::pagestore {

namespace {

constexpr char kExtension[] = ".qvset";

std::string BasePath(const std::string& path) {
  const std::string ext(kExtension);
  if (path.size() > ext.size() &&
      path.compare(path.size() - ext.size(), ext.size(), ext) == 0) {
    return path.substr(0, path.size() - ext.size());
  }
  return path;
}

std::string FileName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

std::string ShardManifestPath(const std::string& path) {
  return BasePath(path) + kExtension;
}

std::string ShardPackPath(const std::string& path, int shard) {
  return BasePath(path) + ".shard" + std::to_string(shard) + ".qvpack";
}

Status WriteShardManifest(const std::string& path,
                          const ShardManifest& manifest) {
  if (manifest.shards <= 0 ||
      manifest.pack_files.size() != static_cast<size_t>(manifest.shards)) {
    return Status::InvalidArgument(
        "shard manifest needs one pack file per shard");
  }
  std::ofstream out(ShardManifestPath(path),
                    std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot write shard manifest '" +
                            ShardManifestPath(path) + "'");
  }
  out << "qvset 1\n";
  out << "shards " << manifest.shards << "\n";
  for (int i = 0; i < manifest.shards; ++i) {
    out << "shard " << i << " " << manifest.pack_files[i] << "\n";
  }
  out.flush();
  if (!out) {
    return Status::Internal("short write on shard manifest '" +
                            ShardManifestPath(path) + "'");
  }
  return Status::OK();
}

Result<ShardManifest> ReadShardManifest(const std::string& path) {
  const std::string manifest_path = ShardManifestPath(path);
  std::ifstream in(manifest_path, std::ios::binary);
  if (!in) {
    return Status::NotFound("no shard manifest at '" + manifest_path + "'");
  }
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (!in || magic != "qvset" || version != 1) {
    return Status::ParseError("'" + manifest_path +
                              "' is not a qvset v1 manifest");
  }
  ShardManifest manifest;
  std::string keyword;
  in >> keyword >> manifest.shards;
  if (!in || keyword != "shards" || manifest.shards <= 0) {
    return Status::ParseError("'" + manifest_path +
                              "' has a malformed shard count");
  }
  manifest.pack_files.resize(static_cast<size_t>(manifest.shards));
  for (int i = 0; i < manifest.shards; ++i) {
    int index = -1;
    std::string file;
    in >> keyword >> index >> file;
    if (!in || keyword != "shard" || index != i || file.empty()) {
      return Status::ParseError("'" + manifest_path +
                                "' has a malformed entry for shard " +
                                std::to_string(i));
    }
    manifest.pack_files[static_cast<size_t>(i)] = std::move(file);
  }
  return manifest;
}

Status PackShardedDb(const xml::Database& database,
                     const storage::ShardingSpec& spec,
                     const std::string& path) {
  QUICKVIEW_ASSIGN_OR_RETURN(
      std::vector<std::unique_ptr<xml::Database>> shards,
      storage::PartitionDatabase(database, spec));
  ShardManifest manifest;
  manifest.shards = spec.shards;
  for (int i = 0; i < spec.shards; ++i) {
    const xml::Database& shard_db = *shards[static_cast<size_t>(i)];
    std::unique_ptr<index::DatabaseIndexes> indexes =
        index::BuildDatabaseIndexes(shard_db);
    const std::string pack_path = ShardPackPath(path, i);
    QV_RETURN_IF_ERROR(PackDatabase(shard_db, *indexes, pack_path));
    manifest.pack_files.push_back(FileName(pack_path));
  }
  return WriteShardManifest(path, manifest);
}

}  // namespace quickview::pagestore
