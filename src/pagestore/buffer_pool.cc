#include "pagestore/buffer_pool.h"

#include <memory>
#include <utility>

namespace quickview::pagestore {

BufferPool::BufferPool(const PagedFile* file, const BufferPoolOptions& options)
    : file_(file), budget_(options.frames == 0 ? 1 : options.frames) {}

Result<PagePin> BufferPool::Fetch(PageId id, PageAccounting* acct) const {
  qv::MutexLock lock(mu_);
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    hits_.Increment();
    if (acct != nullptr) ++acct->buffer_hits;
    return it->second.page;
  }

  // Miss. The read happens under the lock: the pool is the concurrency
  // bottleneck by design (one file, one frame table); a per-page loading
  // latch would only matter once the workload outgrows this engine.
  QUICKVIEW_ASSIGN_OR_RETURN(CachedPage raw, file_->ReadPage(id));
  PagePin pin = std::make_shared<const CachedPage>(std::move(raw));
  misses_.Increment();
  if (acct != nullptr) {
    ++acct->pages_read;
    acct->bytes_read += kPageSize;
  }

  // Reclaim from the cold end; a frame whose pin is still held outside
  // the pool (use_count > 1) is skipped — its holder keeps the bytes
  // alive, and reclaiming it would just thrash the pin.
  auto victim = lru_.end();
  while (frames_.size() >= budget_ && victim != lru_.begin()) {
    --victim;
    auto vit = frames_.find(*victim);
    if (vit->second.page.use_count() > 1) continue;
    victim = lru_.erase(victim);
    frames_.erase(vit);
    evictions_.Increment();
  }

  lru_.push_front(id);
  frames_.emplace(id, Frame{pin, lru_.begin()});
  return pin;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats out;
  out.hits = hits_.value();
  out.misses = misses_.value();
  out.evictions = evictions_.value();
  out.bytes_read = out.misses * kPageSize;
  qv::MutexLock lock(mu_);
  out.frames_in_use = frames_.size();
  return out;
}

Status BufferPool::RegisterMetrics(obs::MetricsRegistry* registry,
                                   obs::LabelSet labels) const {
  QV_RETURN_IF_ERROR(
      registry->RegisterCounter("qv_bufferpool_hits_total", labels, &hits_));
  QV_RETURN_IF_ERROR(registry->RegisterCounter("qv_bufferpool_misses_total",
                                               labels, &misses_));
  QV_RETURN_IF_ERROR(registry->RegisterCounter(
      "qv_bufferpool_evictions_total", labels, &evictions_));
  QV_RETURN_IF_ERROR(registry->RegisterCallback(
      "qv_bufferpool_frames_in_use", labels,
      obs::MetricsRegistry::InstrumentKind::kGauge, [this]() -> int64_t {
        qv::MutexLock lock(mu_);
        return static_cast<int64_t>(frames_.size());
      }));
  return registry->RegisterCallback(
      "qv_bufferpool_frame_budget", labels,
      obs::MetricsRegistry::InstrumentKind::kGauge,
      [this]() -> int64_t { return static_cast<int64_t>(budget_); });
}

}  // namespace quickview::pagestore
