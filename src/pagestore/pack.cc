#include "pagestore/pack.h"

#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pagestore/delta_log.h"
#include "pagestore/disk_btree.h"
#include "pagestore/packed_db.h"
#include "pagestore/paged_file.h"
#include "pagestore/wal.h"
#include "xml/serializer.h"

namespace quickview::pagestore {

namespace {

/// Fills counts[i] with the subtree node count rooted at i.
uint32_t CountSubtrees(const xml::Document& doc, xml::NodeIndex index,
                       std::vector<uint32_t>* counts) {
  uint32_t total = 1;
  for (xml::NodeIndex child : doc.node(index).children) {
    total += CountSubtrees(doc, child, counts);
  }
  (*counts)[index] = total;
  return total;
}

/// One preorder node record. subtree_count/subtree_bytes let a reader
/// fetch a whole subtree — and account the identical byte count the
/// in-memory store reports — without ever consulting the base document.
Status AppendNodeRecord(const xml::Document& doc, xml::NodeIndex index,
                        uint32_t subtree_count, uint64_t subtree_bytes,
                        ChainWriter* chain) {
  const xml::Node& node = doc.node(index);
  if (node.tag.size() > 0xffff) {
    return Status::InvalidArgument("tag too long to pack: " + node.tag);
  }
  if (node.id.depth() > 0xffff) {
    // Record depth is how readers reattach subtrees; a silent u16 wrap
    // would corrupt parentage, so refuse absurdly deep documents.
    return Status::InvalidArgument("document too deep to pack: depth " +
                                   std::to_string(node.id.depth()));
  }
  std::string record;
  AppendU32(&record, subtree_count);
  AppendU64(&record, subtree_bytes);
  AppendU16(&record, static_cast<uint16_t>(node.id.depth()));
  AppendU16(&record, static_cast<uint16_t>(node.tag.size()));
  record.append(node.tag);
  AppendU32(&record, static_cast<uint32_t>(node.text.size()));
  record.append(node.text);
  return chain->Append(record);
}

struct PackedDocEntry {
  std::string name;
  uint32_t root_component = 0;
  PageId locator_root = kInvalidPage;
  PageId path_root = kInvalidPage;
  PageId inv_root = kInvalidPage;
  uint64_t node_count = 0;
  std::vector<std::string> distinct_paths;
};

Status PackDocument(const std::string& name, const xml::Document& doc,
                    const index::DocumentIndexes& doc_indexes,
                    PagedFileWriter* writer, PackedDocEntry* entry) {
  entry->name = name;
  entry->root_component = doc.root_component();
  entry->node_count = doc.size();
  entry->distinct_paths = doc_indexes.path_index.distinct_path_list();

  // --- Node records (preorder) + locator entries -------------------------
  std::vector<uint32_t> counts(doc.size(), 0);
  std::vector<uint64_t> byte_lengths(doc.size(), 0);
  std::vector<std::pair<std::string, std::string>> locator_rows;
  locator_rows.reserve(doc.size());
  ChainWriter records(writer, PageType::kNodeRecords);
  Status walk_status = Status::OK();
  std::function<void(xml::NodeIndex)> walk = [&](xml::NodeIndex index) {
    if (!walk_status.ok()) return;
    ChainWriter::Pos pos = records.Tell();
    std::string value;
    AppendU32(&value, pos.page);
    AppendU32(&value, pos.offset);
    locator_rows.emplace_back(doc.node(index).id.Encode(), std::move(value));
    walk_status = AppendNodeRecord(doc, index, counts[index],
                                   byte_lengths[index], &records);
    if (!walk_status.ok()) return;
    for (xml::NodeIndex child : doc.node(index).children) walk(child);
  };
  if (doc.has_root()) {
    CountSubtrees(doc, doc.root(), &counts);
    xml::SubtreeByteLengths(doc, doc.root(), &byte_lengths);
    walk(doc.root());
  }
  QUICKVIEW_RETURN_IF_ERROR(walk_status);
  QUICKVIEW_RETURN_IF_ERROR(records.Finish().status());

  DiskBTreeBuilder locator(writer);
  for (const auto& [key, value] : locator_rows) {
    QUICKVIEW_RETURN_IF_ERROR(locator.Add(key, value));
  }
  QUICKVIEW_ASSIGN_OR_RETURN(entry->locator_root, locator.Finish());

  // --- Path index --------------------------------------------------------
  // On disk a row is keyed by (path \x01 ordinal-in-value-order), with
  // the atomic value moved into the row payload (value_len | value |
  // entry list). Keys stay bounded — a multi-KB text value would blow
  // the one-page leaf-entry limit if it sat in the key, as it does in
  // the in-memory composite key — while long values and fat entry
  // lists spill to posting-run chains like any other big B-tree value.
  // Ordinals are assigned in (path, value) order, so prefix scans
  // reproduce the in-memory row order exactly.
  DiskBTreeBuilder paths(writer);
  Status path_status = Status::OK();
  std::string current_path;
  uint32_t path_ordinal = 0;
  doc_indexes.path_index.ForEachRaw(
      [&](const std::string& key, const std::string& value) {
        if (!path_status.ok()) return;
        size_t sep = key.find('\x01');
        if (sep == std::string::npos) {
          path_status = Status::Internal("malformed path-index key");
          return;
        }
        std::string path = key.substr(0, sep);
        std::string row_value = key.substr(sep + 1);
        if (path != current_path) {
          current_path = path;
          path_ordinal = 0;
        }
        std::string disk_key = path;
        disk_key.push_back('\x01');
        AppendU32(&disk_key, path_ordinal++);
        std::string payload;
        AppendU32(&payload, static_cast<uint32_t>(row_value.size()));
        payload.append(row_value);
        payload.append(value);
        path_status = paths.Add(disk_key, payload);
      });
  QUICKVIEW_RETURN_IF_ERROR(path_status);
  QUICKVIEW_ASSIGN_OR_RETURN(entry->path_root, paths.Finish());

  // --- Inverted index: postings regrouped into per-term runs -------------
  DiskBTreeBuilder terms(writer);
  Status term_status = Status::OK();
  std::string current_term;
  std::string run;
  uint32_t run_count = 0;
  auto flush_term = [&]() {
    if (run_count == 0) return;
    std::string value;
    AppendU32(&value, run_count);
    value.append(run);
    term_status = terms.Add(current_term, value);
    run.clear();
    run_count = 0;
  };
  doc_indexes.inverted_index.ForEachPosting(
      [&](const std::string& term, const xml::DeweyId& id, uint32_t tf) {
        if (!term_status.ok()) return;
        if (term != current_term) {
          flush_term();
          current_term = term;
        }
        if (!term_status.ok()) return;
        std::string id_bytes = id.Encode();
        AppendU16(&run, static_cast<uint16_t>(id_bytes.size()));
        run.append(id_bytes);
        AppendU32(&run, tf);
        ++run_count;
      });
  if (term_status.ok()) flush_term();
  QUICKVIEW_RETURN_IF_ERROR(term_status);
  QUICKVIEW_ASSIGN_OR_RETURN(entry->inv_root, terms.Finish());
  return Status::OK();
}

}  // namespace

Status PackDatabase(const xml::Database& database,
                    const index::DatabaseIndexes& indexes,
                    const std::string& path) {
  QUICKVIEW_ASSIGN_OR_RETURN(std::unique_ptr<PagedFileWriter> writer,
                             PagedFileWriter::Create(path));

  std::vector<PackedDocEntry> entries;
  for (const auto& [name, doc] : database.documents()) {
    const index::DocumentIndexes* doc_indexes = indexes.Get(name);
    if (doc_indexes == nullptr) {
      return Status::NotFound("no indexes for document '" + name +
                              "'; build them before packing");
    }
    PackedDocEntry entry;
    QUICKVIEW_RETURN_IF_ERROR(
        PackDocument(name, *doc, *doc_indexes, writer.get(), &entry));
    entries.push_back(std::move(entry));
  }

  ChainWriter directory(writer.get(), PageType::kDirectory);
  std::string dir;
  AppendU32(&dir, static_cast<uint32_t>(entries.size()));
  QUICKVIEW_RETURN_IF_ERROR(directory.Append(dir));
  for (const PackedDocEntry& entry : entries) {
    std::string record;
    if (entry.name.size() > 0xffff) {
      return Status::InvalidArgument("document name too long to pack: " +
                                     entry.name);
    }
    AppendU16(&record, static_cast<uint16_t>(entry.name.size()));
    record.append(entry.name);
    AppendU32(&record, entry.root_component);
    AppendU32(&record, entry.locator_root);
    AppendU32(&record, entry.path_root);
    AppendU32(&record, entry.inv_root);
    AppendU64(&record, entry.node_count);
    AppendU32(&record, static_cast<uint32_t>(entry.distinct_paths.size()));
    for (const std::string& p : entry.distinct_paths) {
      if (p.size() > 0xffff) {
        return Status::InvalidArgument("data path too long to pack: " + p);
      }
      AppendU16(&record, static_cast<uint16_t>(p.size()));
      record.append(p);
    }
    QUICKVIEW_RETURN_IF_ERROR(directory.Append(record));
  }
  QUICKVIEW_ASSIGN_OR_RETURN(PageId directory_page, directory.Finish());
  return writer->Finish(directory_page);
}

Status CompactPack(const std::string& in_path, const std::string& out_path) {
  // Canonicalize before comparing: the source pack is read lazily while
  // the output is written, so writing over the input — under ANY
  // spelling (relative vs absolute, ./, symlink) — would corrupt both.
  std::error_code ec;
  std::filesystem::path in_canonical =
      std::filesystem::weakly_canonical(in_path, ec);
  if (ec) in_canonical = in_path;
  std::filesystem::path out_canonical =
      std::filesystem::weakly_canonical(out_path, ec);
  if (ec) out_canonical = out_path;
  if (in_canonical == out_canonical) {
    return Status::InvalidArgument(
        "compact cannot write over its input; pick a different output "
        "path and rename afterwards");
  }
  QUICKVIEW_ASSIGN_OR_RETURN(std::shared_ptr<PackedDb> packed,
                             PackedDb::Open(in_path));
  // Reconstruct every surviving document into the canonical numbering
  // (1..N in name order) — CopySubtree assigns fresh contiguous Dewey
  // ordinals under the new root component, exactly what parsing the
  // document under that component would produce, so the repack below is
  // byte-identical to packing the final corpus directly.
  xml::Database database;
  uint32_t next_root = 1;
  for (const auto& [name, root] : packed->document_roots()) {
    auto doc = std::make_shared<xml::Document>(next_root++);
    uint64_t fetched_bytes = 0;
    PageAccounting acct;
    QUICKVIEW_RETURN_IF_ERROR(
        packed->CopySubtree(root, xml::DeweyId({root}), doc.get(),
                            xml::kInvalidNode, &fetched_bytes, &acct));
    database.AddDocument(name, std::move(doc));
  }
  std::unique_ptr<index::DatabaseIndexes> indexes =
      index::BuildDatabaseIndexes(database);
  // Build the output to the side and publish it with one atomic rename:
  // a crash mid-compact must never leave a truncated .qvpack at out_path
  // that is indistinguishable from a complete one. PagedFileWriter
  // fsyncs the temp file in Finish; the rename plus directory fsync make
  // the swap itself durable.
  const std::string tmp_path = out_path + ".compact.tmp";
  std::remove(tmp_path.c_str());
  QUICKVIEW_RETURN_IF_ERROR(PackDatabase(database, *indexes, tmp_path));
  // The compacted pack IS the folded state; an old side log lying next
  // to the output would replay on top of it at the next open. Drop it
  // BEFORE the rename: a crash between the two leaves out_path
  // unpublished (old state intact minus a log that only made sense over
  // the pre-compaction pack), whereas the reverse order could publish
  // the fresh pack with the stale log still replaying on top of it.
  std::remove(DeltaLogPath(out_path).c_str());
  QUICKVIEW_RETURN_IF_ERROR(SyncParentDirectory(out_path));
  if (std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
    return Status::Internal("cannot rename " + tmp_path + " to " + out_path);
  }
  return SyncParentDirectory(out_path);
}

}  // namespace quickview::pagestore
