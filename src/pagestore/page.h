// Page-level building blocks of the packed storage engine. A .qvpack
// database is one file of fixed-size pages; every page starts with a
// checksummed header so torn writes and bit rot surface as errors, not as
// wrong answers. PageSource is the seam between page consumers (disk
// B-trees, node-record readers) and the buffer pool that actually owns
// frames — the "through either the existing in-memory backing or
// on-demand page reads" abstraction of the storage engine.
#ifndef QUICKVIEW_PAGESTORE_PAGE_H_
#define QUICKVIEW_PAGESTORE_PAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"

namespace quickview::pagestore {

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xffffffffu;

/// 4 KiB pages: small enough that point lookups against cold indexes stay
/// cheap, large enough that posting runs amortize the header.
inline constexpr uint32_t kPageSize = 4096;

/// On-disk frame: u32 checksum | u32 payload_len | u32 next_page |
/// u8 type | 3 reserved bytes | payload | zero padding.
inline constexpr uint32_t kPageHeaderSize = 16;
inline constexpr uint32_t kPagePayloadSize = kPageSize - kPageHeaderSize;

enum class PageType : uint8_t {
  kHeader = 1,        // page 0: magic + file geometry + directory root
  kDirectory = 2,     // per-document segment roots + path dictionaries
  kNodeRecords = 3,   // DocumentStore content, preorder node records
  kBTreeLeaf = 4,     // sorted (key, value) entries, chained left-to-right
  kBTreeInterior = 5, // (first_key, child page) separators
  kPostingRun = 6,    // overflow chains for long B-tree values
};

/// Per-call page-I/O accounting, accumulated alongside the pool-global
/// counters so queries can report their own footprint.
struct PageAccounting {
  uint64_t pages_read = 0;   // buffer-pool misses (real file reads)
  uint64_t buffer_hits = 0;  // served from an already-resident frame
  uint64_t bytes_read = 0;   // page_size * pages_read
};

/// A decoded, verified page. Immutable once loaded; shared_ptr pins keep
/// it alive across buffer-pool eviction.
struct CachedPage {
  PageType type = PageType::kHeader;
  PageId next_page = kInvalidPage;
  std::string payload;
};

/// A pin on a resident page: holding it keeps the frame's bytes valid
/// (eviction only drops the pool's own reference).
using PagePin = std::shared_ptr<const CachedPage>;

/// Anything that can produce verified pages by id — the BufferPool in
/// production, or a direct PagedFile wrapper in tests.
class PageSource {
 public:
  virtual ~PageSource() = default;
  virtual Result<PagePin> Fetch(PageId id, PageAccounting* acct) const = 0;
};

/// FNV-1a over the page header (minus the checksum field) and payload.
inline uint32_t PageChecksum(PageType type, PageId next_page,
                             std::string_view payload) {
  uint32_t h = 2166136261u;
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 16777619u;
  };
  mix(static_cast<uint8_t>(type));
  for (int shift = 0; shift < 32; shift += 8) {
    mix(static_cast<uint8_t>((next_page >> shift) & 0xff));
  }
  for (int shift = 0; shift < 32; shift += 8) {
    mix(static_cast<uint8_t>((payload.size() >> shift) & 0xff));
  }
  for (char c : payload) mix(static_cast<uint8_t>(c));
  return h;
}

// Big-endian integer codec shared by every pagestore serializer (matches
// the byte order the rest of quickview persists in). Readers are
// bounds-checked: false means the input was truncated.
inline void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>(v & 0xff));
}
inline void AppendU32(std::string* out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}
inline void AppendU64(std::string* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

inline bool ReadU16(std::string_view in, size_t* pos, uint16_t* v) {
  if (in.size() < 2 || *pos > in.size() - 2) return false;
  *v = static_cast<uint16_t>((static_cast<uint8_t>(in[*pos]) << 8) |
                             static_cast<uint8_t>(in[*pos + 1]));
  *pos += 2;
  return true;
}
inline bool ReadU32(std::string_view in, size_t* pos, uint32_t* v) {
  if (in.size() < 4 || *pos > in.size() - 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out = (out << 8) | static_cast<uint8_t>(in[*pos + static_cast<size_t>(i)]);
  }
  *pos += 4;
  *v = out;
  return true;
}
inline bool ReadU64(std::string_view in, size_t* pos, uint64_t* v) {
  if (in.size() < 8 || *pos > in.size() - 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out = (out << 8) | static_cast<uint8_t>(in[*pos + static_cast<size_t>(i)]);
  }
  *pos += 8;
  *v = out;
  return true;
}

}  // namespace quickview::pagestore

#endif  // QUICKVIEW_PAGESTORE_PAGE_H_
