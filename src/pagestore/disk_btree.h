// DiskBTree: an immutable B+-tree laid out in .qvpack pages, bulk-built
// bottom-up at pack time from key-sorted input (quickview indices are
// built once per database load, so there is no insert path). Leaf pages
// chain left-to-right for range scans; values too large to inline in a
// leaf spill into posting-run page chains, which is how long inverted
// lists and fat path-index rows live on disk. All node access goes
// through a PageSource, so reads are buffered, checksummed and counted.
#ifndef QUICKVIEW_PAGESTORE_DISK_BTREE_H_
#define QUICKVIEW_PAGESTORE_DISK_BTREE_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "pagestore/page.h"
#include "pagestore/paged_file.h"

namespace quickview::pagestore {

/// Values longer than this spill to overflow (posting-run) chains. A
/// leaf entry is then a fixed 12-byte reference, so every leaf holds
/// many keys even when rows are huge.
inline constexpr size_t kMaxInlineValue = 1024;

/// Bulk loader. Keys must arrive in strictly increasing byte order.
class DiskBTreeBuilder {
 public:
  explicit DiskBTreeBuilder(PagedFileWriter* writer) : writer_(writer) {}

  Status Add(std::string_view key, std::string_view value);

  /// Writes remaining leaf + interior levels; returns the root page.
  Result<PageId> Finish();

 private:
  Status FlushLeaf(PageId next_leaf);

  PagedFileWriter* writer_;
  std::string leaf_payload_;
  uint32_t leaf_entries_ = 0;
  PageId leaf_page_ = kInvalidPage;
  std::string last_key_;
  bool any_ = false;
  /// (first key, page) per completed page of the level below.
  std::vector<std::pair<std::string, PageId>> level_;
};

/// Reader over a bulk-built tree. Cheap value type: a PageSource plus a
/// root id.
class DiskBTree {
 public:
  DiskBTree() = default;
  DiskBTree(const PageSource* source, PageId root)
      : source_(source), root_(root) {}

  /// A value sitting in a leaf: either inline bytes or an overflow
  /// reference. Valid only during the Scan callback that produced it.
  class ValueRef {
   public:
    Result<std::string> Read() const;

   private:
    friend class DiskBTree;
    const PageSource* source_ = nullptr;
    PageAccounting* acct_ = nullptr;
    std::string_view inline_value_;
    PageId overflow_page_ = kInvalidPage;
    uint64_t overflow_len_ = 0;
  };

  /// Point lookup; false if the key is absent.
  Result<bool> Get(std::string_view key, std::string* value,
                   PageAccounting* acct = nullptr) const;

  /// Visits entries with key >= start in key order until `fn` returns
  /// false. The key passed to `fn` aliases the pinned page.
  Status ScanFrom(
      std::string_view start,
      const std::function<Result<bool>(std::string_view key,
                                       const ValueRef& value)>& fn,
      PageAccounting* acct = nullptr) const;

  PageId root() const { return root_; }

 private:
  Result<PagePin> DescendToLeaf(std::string_view key,
                                PageAccounting* acct) const;

  const PageSource* source_ = nullptr;
  PageId root_ = kInvalidPage;
};

}  // namespace quickview::pagestore

#endif  // QUICKVIEW_PAGESTORE_DISK_BTREE_H_
