#include "pagestore/delta_log.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "pagestore/page.h"
#include "xml/parser.h"

namespace quickview::pagestore {

namespace {

constexpr char kMagic[] = "QVDELTA1";
constexpr size_t kMagicSize = 8;

uint32_t RecordChecksum(std::string_view record_bytes) {
  uint32_t h = 2166136261u;
  for (char c : record_bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

std::string EncodeRecord(bool tombstone, const std::string& name,
                         const std::string& xml_text) {
  std::string record;
  record.push_back(tombstone ? 't' : 'i');
  AppendU32(&record, static_cast<uint32_t>(name.size()));
  record.append(name);
  AppendU64(&record, static_cast<uint64_t>(xml_text.size()));
  record.append(xml_text);
  AppendU32(&record, RecordChecksum(record));
  return record;
}

Status AppendRecord(const std::string& pack_path, const std::string& record) {
  const std::string log_path = DeltaLogPath(pack_path);
  // The magic goes first whenever the log has no bytes yet — NOT merely
  // when the file is absent: a zero-byte log (crash between the creating
  // open and the first write) must heal on the next append instead of
  // accumulating magic-less records that poison every later open.
  std::error_code ec;
  uintmax_t size = std::filesystem::file_size(log_path, ec);
  bool has_header = !ec && size > 0;
  std::ofstream out(log_path, std::ios::binary | std::ios::app);
  if (!out) {
    return Status::Internal("cannot open delta log " + log_path);
  }
  if (!has_header) out.write(kMagic, kMagicSize);
  out.write(record.data(), static_cast<std::streamsize>(record.size()));
  out.flush();
  if (!out) {
    return Status::Internal("short write to delta log " + log_path);
  }
  return Status::OK();
}

}  // namespace

std::string DeltaLogPath(const std::string& pack_path) {
  return pack_path + ".delta";
}

Status PackAppend(const std::string& pack_path, const std::string& name,
                  const std::string& xml_text) {
  if (name.empty()) {
    return Status::InvalidArgument("document name must not be empty");
  }
  // Validate at the write boundary: a record that cannot replay would
  // poison every later open of the pack.
  QUICKVIEW_RETURN_IF_ERROR(xml::ParseXml(xml_text));
  return AppendRecord(pack_path, EncodeRecord(/*tombstone=*/false, name,
                                              xml_text));
}

Status PackTombstone(const std::string& pack_path, const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("document name must not be empty");
  }
  return AppendRecord(pack_path,
                      EncodeRecord(/*tombstone=*/true, name, std::string()));
}

Result<std::vector<DeltaRecord>> ReadDeltaLog(const std::string& pack_path) {
  const std::string log_path = DeltaLogPath(pack_path);
  std::ifstream in(log_path, std::ios::binary);
  if (!in) return std::vector<DeltaRecord>();
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  if (bytes.size() < kMagicSize ||
      bytes.compare(0, kMagicSize, kMagic, kMagicSize) != 0) {
    return Status::ParseError("delta log " + log_path +
                              " has a bad magic header");
  }
  std::vector<DeltaRecord> records;
  size_t pos = kMagicSize;
  while (pos < bytes.size()) {
    const size_t record_start = pos;
    if (bytes.size() - pos < 1) break;
    char type = bytes[pos++];
    if (type != 'i' && type != 't') {
      return Status::ParseError("delta log " + log_path +
                                ": unknown record type at byte " +
                                std::to_string(record_start));
    }
    uint32_t name_len = 0;
    uint64_t xml_len = 0;
    DeltaRecord record;
    record.tombstone = type == 't';
    if (!ReadU32(bytes, &pos, &name_len) || bytes.size() - pos < name_len) {
      return Status::ParseError("delta log " + log_path +
                                ": truncated record at byte " +
                                std::to_string(record_start));
    }
    record.name.assign(bytes, pos, name_len);
    pos += name_len;
    if (!ReadU64(bytes, &pos, &xml_len) || bytes.size() - pos < xml_len) {
      return Status::ParseError("delta log " + log_path +
                                ": truncated record at byte " +
                                std::to_string(record_start));
    }
    record.xml.assign(bytes, pos, static_cast<size_t>(xml_len));
    pos += static_cast<size_t>(xml_len);
    uint32_t stored_checksum = 0;
    if (!ReadU32(bytes, &pos, &stored_checksum)) {
      return Status::ParseError("delta log " + log_path +
                                ": truncated checksum at byte " +
                                std::to_string(record_start));
    }
    uint32_t computed = RecordChecksum(
        std::string_view(bytes).substr(record_start, pos - 4 - record_start));
    if (computed != stored_checksum) {
      return Status::ParseError("delta log " + log_path +
                                ": checksum mismatch at byte " +
                                std::to_string(record_start));
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace quickview::pagestore
