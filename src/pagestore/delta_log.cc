#include "pagestore/delta_log.h"

#include <memory>
#include <utility>

#include "pagestore/page.h"
#include "pagestore/wal.h"
#include "xml/parser.h"

namespace quickview::pagestore {

namespace {

Status AppendDurably(const std::string& pack_path, const DeltaRecord& record) {
  // Opening the WAL re-runs recovery, so an append after a crash first
  // truncates any torn tail — the log self-heals on the write path. Each
  // append is one contiguous write on the WAL's O_APPEND fd (the first
  // one carries the magic), fdatasync'd before Append returns: the
  // probe-then-open header heal and the buffered two-write append of the
  // old ad-hoc appender are gone.
  QUICKVIEW_ASSIGN_OR_RETURN(std::unique_ptr<Wal> wal,
                             Wal::Open(DeltaLogPath(pack_path)));
  QUICKVIEW_ASSIGN_OR_RETURN(uint64_t seq,
                             wal->Append(EncodeDeltaPayload(record)));
  (void)seq;
  return Status::OK();
}

}  // namespace

std::string DeltaLogPath(const std::string& pack_path) {
  return pack_path + ".delta";
}

std::string EncodeDeltaPayload(const DeltaRecord& record) {
  std::string payload;
  payload.push_back(record.tombstone ? 't' : 'i');
  AppendU32(&payload, static_cast<uint32_t>(record.name.size()));
  payload.append(record.name);
  AppendU64(&payload, static_cast<uint64_t>(record.xml.size()));
  payload.append(record.xml);
  return payload;
}

Result<DeltaRecord> DecodeDeltaPayload(std::string_view payload) {
  if (payload.empty()) {
    return Status::ParseError("delta payload is empty");
  }
  size_t pos = 0;
  char type = payload[pos++];
  if (type != 'i' && type != 't') {
    return Status::ParseError("delta payload has unknown record type '" +
                              std::string(1, type) + "'");
  }
  DeltaRecord record;
  record.tombstone = type == 't';
  uint32_t name_len = 0;
  uint64_t xml_len = 0;
  if (!ReadU32(payload, &pos, &name_len) ||
      payload.size() - pos < name_len) {
    return Status::ParseError("delta payload has a truncated name");
  }
  record.name.assign(payload.substr(pos, name_len));
  pos += name_len;
  if (!ReadU64(payload, &pos, &xml_len) ||
      payload.size() - pos != xml_len) {
    return Status::ParseError("delta payload has a malformed body length");
  }
  record.xml.assign(payload.substr(pos, static_cast<size_t>(xml_len)));
  return record;
}

Status PackAppend(const std::string& pack_path, const std::string& name,
                  const std::string& xml_text) {
  if (name.empty()) {
    return Status::InvalidArgument("document name must not be empty");
  }
  // Validate at the write boundary: a record that cannot replay would
  // poison every later open of the pack.
  QUICKVIEW_RETURN_IF_ERROR(xml::ParseXml(xml_text));
  DeltaRecord record;
  record.name = name;
  record.xml = xml_text;
  return AppendDurably(pack_path, record);
}

Status PackTombstone(const std::string& pack_path, const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("document name must not be empty");
  }
  DeltaRecord record;
  record.tombstone = true;
  record.name = name;
  return AppendDurably(pack_path, record);
}

Result<std::vector<DeltaRecord>> ReadDeltaLog(const std::string& pack_path) {
  QUICKVIEW_ASSIGN_OR_RETURN(WalReplay replay,
                             ReplayWal(DeltaLogPath(pack_path)));
  std::vector<DeltaRecord> records;
  records.reserve(replay.payloads.size());
  for (const std::string& payload : replay.payloads) {
    QUICKVIEW_ASSIGN_OR_RETURN(DeltaRecord record,
                               DecodeDeltaPayload(payload));
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace quickview::pagestore
