// PackedDb: the query-time face of a .qvpack file. Opens the directory,
// wires a shared BufferPool over the PagedFile, and exposes
//  - index::IndexSource: per-document PathIndexView / TermIndexView
//    implementations that answer the PDT probe set from B-tree-node and
//    posting-run pages, and
//  - document fetches (CopySubtree / GetValue / GetSubtreeLength) that
//    read node-record pages — the packed backing of DocumentStore.
// Everything is demand-paged: opening the database reads the header and
// directory only; a query touches exactly the pages its B-tree descents,
// posting runs and materialized hits require.
//
// Live updates: the pack file itself is immutable, so Open also replays
// the append-only `<pack>.delta` side log (pagestore/delta_log.h) into an
// in-memory overlay — inserted documents get fresh root components past
// the packed ones and fully in-memory indices; tombstoned (or shadowed)
// base documents are masked out of every lookup. Overlay fetches cost
// zero page reads. `quickview_cli compact` folds the log back into a
// fresh pack offline.
//
// Thread safety: immutable after Open (the delta log is read once, at
// open; reopen to observe later appends); all page reads go through the
// BufferPool, which is internally synchronized.
#ifndef QUICKVIEW_PAGESTORE_PACKED_DB_H_
#define QUICKVIEW_PAGESTORE_PACKED_DB_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/index_builder.h"
#include "index/index_view.h"
#include "pagestore/buffer_pool.h"
#include "pagestore/disk_btree.h"
#include "pagestore/paged_file.h"
#include "xml/dewey_id.h"
#include "xml/dom.h"

namespace quickview::pagestore {

/// Path-index view answered from disk B-tree pages. Mirrors the
/// in-memory PathIndex probe algorithms over the identical key space
/// ((path \x01 value) composite keys, EncodePathEntryList row payloads),
/// so both backings return byte-identical results.
class PagedPathIndex final : public index::PathIndexView {
 public:
  PagedPathIndex(DiskBTree tree, std::vector<std::string> distinct_paths)
      : tree_(tree), paths_(std::move(distinct_paths)) {}

  Result<std::vector<std::string>> ExpandPattern(
      const index::PathPattern& pattern) const override;
  Result<std::vector<index::PathEntry>> LookUpId(
      const index::PathPattern& pattern) const override;
  Result<std::vector<index::PathEntry>> LookUpIdValue(
      const index::PathPattern& pattern) const override;
  Result<std::vector<index::PathEntry>> LookUpValue(
      const index::PathPattern& pattern,
      const std::string& value) const override;
  Result<std::vector<index::PathRows>> LookUpPerPath(
      const index::PathPattern& pattern, bool with_values) const override;

 private:
  Result<std::vector<index::PathEntry>> Collect(
      const index::PathPattern& pattern, bool with_values) const;

  /// Scans the disk rows of one data path in value order, decoding each
  /// payload into (atomic value, encoded entry list); `fn` returns false
  /// to stop early. The single home of the prefix-scan/row-split logic
  /// all probes share.
  Status ForEachPathRow(
      const std::string& path,
      const std::function<Result<bool>(std::string&& row_value,
                                       const std::string& entries_encoded)>&
          fn) const;

  DiskBTree tree_;
  std::vector<std::string> paths_;  // sorted distinct full data paths
};

/// Inverted-list view over per-term posting runs on disk.
class PagedTermIndex final : public index::TermIndexView {
 public:
  explicit PagedTermIndex(DiskBTree tree) : tree_(tree) {}

  Result<std::vector<index::Posting>> Lookup(
      const std::string& term) const override;
  Result<bool> Contains(const std::string& term, const xml::DeweyId& id,
                        uint32_t* tf) const override;
  Result<uint64_t> ListLength(const std::string& term) const override;

 private:
  DiskBTree tree_;
};

class PackedDb final : public index::IndexSource {
 public:
  /// Reads header + directory; index and node-record pages stay on disk
  /// until queries pull them through the pool.
  static Result<std::shared_ptr<PackedDb>> Open(
      const std::string& path, const BufferPoolOptions& pool_options = {});

  std::optional<index::DocumentIndexView> GetView(
      const std::string& doc_name) const override;

  /// Per-call page accounting for the three document fetches lands in
  /// `acct` (locator descent + node-record pages).
  Status CopySubtree(uint32_t root_component, const xml::DeweyId& id,
                     xml::Document* target, xml::NodeIndex target_parent,
                     uint64_t* fetched_bytes, PageAccounting* acct) const;
  Status GetValue(uint32_t root_component, const xml::DeweyId& id,
                  std::string* out, PageAccounting* acct) const;
  Status GetSubtreeLength(uint32_t root_component, const xml::DeweyId& id,
                          uint64_t* out, PageAccounting* acct) const;

  const BufferPool& pool() const { return *pool_; }
  const PagedFile& file() const { return *file_; }
  std::vector<std::string> document_names() const;

  /// Every live document (base + overlay), name -> root component, in
  /// name order. What compaction repacks.
  std::map<std::string, uint32_t> document_roots() const;

  /// How the delta side log changed this open, all zero when none exists.
  struct DeltaStats {  // lint:allow(adhoc-stats) point-in-time size snapshot of the delta store
    uint64_t inserts = 0;     // insert records replayed
    uint64_t tombstones = 0;  // tombstone records replayed
    size_t overlay_documents = 0;  // live in-memory documents
    size_t masked_base_documents = 0;  // packed docs hidden by the log
  };
  const DeltaStats& delta_stats() const { return delta_stats_; }

 private:
  struct PackedDocument {
    std::string name;
    uint32_t root_component = 0;
    uint64_t node_count = 0;
    DiskBTree locator;
    std::unique_ptr<PagedPathIndex> paths;
    std::unique_ptr<PagedTermIndex> terms;
  };

  /// A document that lives in the delta log, not in pack pages: fully
  /// in-memory, served with zero page I/O.
  struct OverlayDocument {
    std::string name;
    std::shared_ptr<xml::Document> doc;
    std::unique_ptr<index::DocumentIndexes> indexes;
  };

  PackedDb() = default;

  Status ApplyDeltaLog(const std::string& path);

  /// Hides `name` from every lookup (tombstone, or shadowing by a newer
  /// insert record).
  void MaskName(const std::string& name);

  /// Locator hit for `id`, or NotFound (same message shape as the
  /// in-memory store so responses stay byte-identical).
  Result<ChainReader> LocateRecord(uint32_t root_component,
                                   const xml::DeweyId& id,
                                   PageAccounting* acct) const;

  /// Overlay document owning `root_component`, or nullptr.
  const OverlayDocument* OverlayByRoot(uint32_t root_component) const;

  std::unique_ptr<PagedFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::map<std::string, std::unique_ptr<PackedDocument>> by_name_;
  std::map<uint32_t, const PackedDocument*> by_root_;
  std::map<std::string, std::unique_ptr<OverlayDocument>> overlay_by_name_;
  std::map<uint32_t, const OverlayDocument*> overlay_by_root_;
  DeltaStats delta_stats_;
};

}  // namespace quickview::pagestore

#endif  // QUICKVIEW_PAGESTORE_PACKED_DB_H_
