#include "pagestore/paged_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace quickview::pagestore {

namespace {

constexpr char kMagic[8] = {'Q', 'V', 'P', 'A', 'C', 'K', '1', '\n'};
constexpr uint32_t kFormatVersion = 1;

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  // strerror is not reentrant, but every caller is on an error path that
  // already holds the file's single-writer invariant, and glibc returns
  // thread-local storage here; strerror_r's two incompatible signatures
  // are not worth that. (concurrency-mt-unsafe is globally off in
  // .clang-tidy for this one site — keep the marker if it returns.)
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  return what + " " + path + ": " + std::strerror(errno);
}

Status EncodePage(PageType type, std::string_view payload, PageId next_page,
                  std::string* frame) {
  if (payload.size() > kPagePayloadSize) {
    return Status::Internal("page payload overflow: " +
                            std::to_string(payload.size()) + " bytes");
  }
  frame->clear();
  frame->reserve(kPageSize);
  AppendU32(frame, PageChecksum(type, next_page, payload));
  AppendU32(frame, static_cast<uint32_t>(payload.size()));
  AppendU32(frame, next_page);
  frame->push_back(static_cast<char>(type));
  frame->append(3, '\0');
  frame->append(payload);
  frame->resize(kPageSize, '\0');
  return Status::OK();
}

Status DecodePage(const std::string& frame, PageId id, CachedPage* out) {
  size_t pos = 0;
  uint32_t checksum = 0;
  uint32_t payload_len = 0;
  uint32_t next_page = 0;
  ReadU32(frame, &pos, &checksum);
  ReadU32(frame, &pos, &payload_len);
  ReadU32(frame, &pos, &next_page);
  uint8_t type = static_cast<uint8_t>(frame[pos]);
  if (payload_len > kPagePayloadSize ||
      type < static_cast<uint8_t>(PageType::kHeader) ||
      type > static_cast<uint8_t>(PageType::kPostingRun)) {
    return Status::Internal("corrupt page header in page " +
                            std::to_string(id));
  }
  out->type = static_cast<PageType>(type);
  out->next_page = next_page;
  out->payload.assign(frame, kPageHeaderSize, payload_len);
  if (PageChecksum(out->type, out->next_page, out->payload) != checksum) {
    return Status::Internal("page checksum mismatch in page " +
                            std::to_string(id));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<PagedFileWriter>> PagedFileWriter::Create(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal(ErrnoMessage("cannot create", path));
  return std::unique_ptr<PagedFileWriter>(new PagedFileWriter(fd, path));
}

PagedFileWriter::~PagedFileWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status PagedFileWriter::WritePage(PageId id, PageType type,
                                  std::string_view payload,
                                  PageId next_page) {
  if (finished_) return Status::Internal("write after Finish");
  if (id >= next_page_) {
    return Status::Internal("write to unallocated page " +
                            std::to_string(id));
  }
  std::string frame;
  QUICKVIEW_RETURN_IF_ERROR(EncodePage(type, payload, next_page, &frame));
  ssize_t n = ::pwrite(fd_, frame.data(), frame.size(),
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(frame.size())) {
    return Status::Internal(ErrnoMessage("short write to", path_));
  }
  return Status::OK();
}

Status PagedFileWriter::Finish(PageId directory_page) {
  if (finished_) return Status::Internal("Finish called twice");
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  AppendU32(&header, kFormatVersion);
  AppendU32(&header, kPageSize);
  AppendU32(&header, next_page_);
  AppendU32(&header, directory_page);
  // Page 0 was reserved at Create (next_page_ starts at 1), so the
  // allocation bound check admits it.
  QUICKVIEW_RETURN_IF_ERROR(
      WritePage(0, PageType::kHeader, header, kInvalidPage));
  finished_ = true;
  if (::fsync(fd_) != 0) {
    return Status::Internal(ErrnoMessage("fsync failed on", path_));
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    return Status::Internal(ErrnoMessage("close failed on", path_));
  }
  fd_ = -1;
  return Status::OK();
}

Result<std::unique_ptr<PagedFile>> PagedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("cannot open packed db " + path);
  auto file = std::unique_ptr<PagedFile>(new PagedFile(fd, path));

  struct stat st;
  if (fstat(fd, &st) != 0 || st.st_size % kPageSize != 0 ||
      st.st_size < kPageSize) {
    return Status::InvalidArgument(path +
                                   " is not a .qvpack file (bad size)");
  }
  file->page_count_ = static_cast<uint32_t>(st.st_size / kPageSize);

  QUICKVIEW_ASSIGN_OR_RETURN(CachedPage header, file->ReadPage(0));
  size_t pos = 0;
  if (header.type != PageType::kHeader ||
      header.payload.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) !=
          0) {
    return Status::InvalidArgument(path + " is not a .qvpack file");
  }
  pos = sizeof(kMagic);
  uint32_t version = 0;
  uint32_t page_size = 0;
  uint32_t page_count = 0;
  uint32_t directory_page = 0;
  if (!ReadU32(header.payload, &pos, &version) ||
      !ReadU32(header.payload, &pos, &page_size) ||
      !ReadU32(header.payload, &pos, &page_count) ||
      !ReadU32(header.payload, &pos, &directory_page)) {
    return Status::InvalidArgument(path + ": truncated .qvpack header");
  }
  if (version != kFormatVersion) {
    return Status::Unsupported(path + ": unsupported .qvpack version " +
                               std::to_string(version));
  }
  if (page_size != kPageSize || page_count != file->page_count_ ||
      directory_page >= page_count) {
    return Status::InvalidArgument(path + ": inconsistent .qvpack header");
  }
  file->directory_page_ = directory_page;
  return file;
}

PagedFile::~PagedFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<CachedPage> PagedFile::ReadPage(PageId id) const {
  if (id == kInvalidPage || (page_count_ != 0 && id >= page_count_)) {
    return Status::Internal("page id " + std::to_string(id) +
                            " out of range in " + path_);
  }
  std::string frame(kPageSize, '\0');
  ssize_t n = ::pread(fd_, frame.data(), frame.size(),
                      static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(frame.size())) {
    return Status::Internal("short read of page " + std::to_string(id) +
                            " from " + path_);
  }
  CachedPage page;
  QUICKVIEW_RETURN_IF_ERROR(DecodePage(frame, id, &page));
  return page;
}

ChainWriter::Pos ChainWriter::Tell() {
  if (current_page_ == kInvalidPage) {
    current_page_ = writer_->Allocate();
    first_page_ = current_page_;
  }
  return Pos{current_page_, static_cast<uint32_t>(buffer_.size())};
}

Status ChainWriter::Append(std::string_view bytes) {
  Tell();  // ensure the chain owns a page
  while (!bytes.empty()) {
    size_t room = kPagePayloadSize - buffer_.size();
    if (room == 0) {
      PageId next = writer_->Allocate();
      QUICKVIEW_RETURN_IF_ERROR(
          writer_->WritePage(current_page_, type_, buffer_, next));
      current_page_ = next;
      buffer_.clear();
      room = kPagePayloadSize;
    }
    size_t take = std::min(room, bytes.size());
    buffer_.append(bytes.substr(0, take));
    bytes.remove_prefix(take);
  }
  return Status::OK();
}

Result<PageId> ChainWriter::Finish() {
  Tell();  // a chain with no bytes still gets its (empty) root page
  QUICKVIEW_RETURN_IF_ERROR(
      writer_->WritePage(current_page_, type_, buffer_, kInvalidPage));
  return first_page_;
}

Status ChainReader::Pull() {
  while (true) {
    if (current_ == nullptr) {
      if (page_ == kInvalidPage) {
        return Status::Internal("read past end of page chain");
      }
      QUICKVIEW_ASSIGN_OR_RETURN(current_, source_->Fetch(page_, acct_));
    }
    if (offset_ < current_->payload.size()) return Status::OK();
    // This page is exhausted (offset may legitimately equal payload size
    // when a record ended exactly at a page boundary); move on.
    page_ = current_->next_page;
    offset_ = 0;
    current_ = nullptr;
  }
}

Status ChainReader::Read(size_t n, std::string* out) {
  while (n > 0) {
    QUICKVIEW_RETURN_IF_ERROR(Pull());
    size_t avail = current_->payload.size() - offset_;
    size_t take = std::min(avail, n);
    out->append(current_->payload, offset_, take);
    offset_ += static_cast<uint32_t>(take);
    n -= take;
  }
  return Status::OK();
}

Status ChainReader::ReadScalar(size_t n, uint64_t* v) {
  // Decoded straight off the pinned payload: scalar reads run once per
  // field per node record on the materialization hot path, so they must
  // not allocate.
  uint64_t out = 0;
  while (n > 0) {
    QUICKVIEW_RETURN_IF_ERROR(Pull());
    size_t avail = current_->payload.size() - offset_;
    size_t take = std::min(avail, n);
    for (size_t i = 0; i < take; ++i) {
      out = (out << 8) |
            static_cast<uint8_t>(current_->payload[offset_ + i]);
    }
    offset_ += static_cast<uint32_t>(take);
    n -= take;
  }
  *v = out;
  return Status::OK();
}

Status ChainReader::ReadU16(uint16_t* v) {
  uint64_t wide = 0;
  QUICKVIEW_RETURN_IF_ERROR(ReadScalar(2, &wide));
  *v = static_cast<uint16_t>(wide);
  return Status::OK();
}

Status ChainReader::ReadU32(uint32_t* v) {
  uint64_t wide = 0;
  QUICKVIEW_RETURN_IF_ERROR(ReadScalar(4, &wide));
  *v = static_cast<uint32_t>(wide);
  return Status::OK();
}

Status ChainReader::ReadU64(uint64_t* v) { return ReadScalar(8, v); }

}  // namespace quickview::pagestore
