// CancellationToken: the cooperative stop signal threaded through the
// sharded query pipeline (modeled on the interrupt channel of OceanBase's
// PX coordinator: the coordinator trips one flag, every worker polls it
// at stage boundaries and unwinds with a typed status instead of
// finishing work nobody will read).
//
// Two trip conditions share one token:
//   - Cancel(): explicit — a caller abandoning a cursor, the merged
//     cursor having satisfied its top-k budget, or a failed sibling
//     shard triggering fail-fast;
//   - a deadline: armed once at query admission (SearchRequest.deadline),
//     checked on every poll, so a query that overstays its budget stops
//     inside whichever stage it is in.
//
// Polling is a relaxed atomic load plus (when armed) one steady_clock
// read — cheap enough for per-candidate granularity. The token carries
// no synchronization duties beyond the flag itself: shard results are
// published through the ShardGroup's lock, never through the token.
#ifndef QUICKVIEW_COMMON_CANCELLATION_H_
#define QUICKVIEW_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace quickview {

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cooperative stop. Idempotent; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arms the deadline; pass before handing the token to workers (the
  /// deadline itself is not synchronized, only read afterwards).
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// True once Cancel() was called or the armed deadline passed.
  bool Fired() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// The typed error a worker returns when it observes the token: an
  /// explicit Cancel() wins over the deadline (fail-fast and abandoned
  /// cursors are deliberate; DeadlineExceeded means "too slow").
  Status ToStatus() const {
    if (cancelled_.load(std::memory_order_acquire)) {
      return Status::Cancelled("query cancelled");
    }
    return Status::DeadlineExceeded("query deadline exceeded");
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;  // written before workers see the token
};

}  // namespace quickview

#endif  // QUICKVIEW_COMMON_CANCELLATION_H_
