// Small string helpers shared across modules.
#ifndef QUICKVIEW_COMMON_STRINGS_H_
#define QUICKVIEW_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace quickview {

/// Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string_view> SplitString(std::string_view input, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// True iff `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// ASCII lowercase copy.
std::string AsciiToLower(std::string_view s);

/// Parses a decimal number; returns false on any non-numeric input.
bool ParseDouble(std::string_view s, double* out);

/// Formats a double without trailing zeros ("42" not "42.000000").
std::string FormatDouble(double v);

}  // namespace quickview

#endif  // QUICKVIEW_COMMON_STRINGS_H_
