#include "common/failpoint.h"

#include <unistd.h>

namespace quickview::fail {

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

// Remaining crossings before the crash; claimed with fetch_sub so exactly
// one thread observes the 1 -> 0 transition.
std::atomic<int64_t> g_countdown{0};
std::atomic<int64_t> g_hits{0};
std::atomic<uint64_t> g_torn_seed{0};

// True when this crossing is the armed one.
bool ClaimHit() {
  g_hits.fetch_add(1, std::memory_order_relaxed);
  return g_countdown.fetch_sub(1, std::memory_order_acq_rel) == 1;
}

}  // namespace

void ArmCrash(int64_t countdown, uint64_t torn_seed) {
  g_hits.store(0, std::memory_order_relaxed);
  g_torn_seed.store(torn_seed, std::memory_order_relaxed);
  g_countdown.store(countdown, std::memory_order_relaxed);
  internal::g_armed.store(countdown > 0, std::memory_order_release);
}

void Disarm() {
  internal::g_armed.store(false, std::memory_order_release);
  g_countdown.store(0, std::memory_order_relaxed);
}

int64_t Hits() { return g_hits.load(std::memory_order_relaxed); }

void InjectHit(const char* site) {
  (void)site;
  if (ClaimHit()) _exit(kCrashExitCode);
}

bool MaybeTornWrite(const char* site, int fd, const void* data, size_t size) {
  (void)site;
  if (!Armed() || !ClaimHit()) return false;
  if (size > 1) {
    // splitmix64 over (seed, hit count): deterministic per trial, a
    // different strict prefix per crossing.
    uint64_t x = g_torn_seed.load(std::memory_order_relaxed) +
                 0x9e3779b97f4a7c15ull *
                     static_cast<uint64_t>(g_hits.load(
                         std::memory_order_relaxed));
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    size_t prefix = static_cast<size_t>(x % size);  // in [0, size)
    const char* p = static_cast<const char*>(data);
    size_t off = 0;
    while (off < prefix) {
      ssize_t n = ::write(fd, p + off, prefix - off);
      if (n <= 0) break;  // crashing anyway; a short torn write is fine
      off += static_cast<size_t>(n);
    }
  }
  _exit(kCrashExitCode);
}

}  // namespace quickview::fail
