// A fixed-size thread pool: N workers draining one FIFO task queue. The
// service layer sizes it once at startup (paper-scale serving wants a
// bounded number of executors, not a thread per request) and submits
// closures; the sharded query coordinator fans per-shard work onto the
// same pool. Drain() gives batch callers a completion barrier without
// per-task futures; RunOneQueued() lets a caller that is itself blocked
// on queued work help execute it instead of deadlocking the pool (a
// coordinator running ON a worker thread must never sleep while its
// subtasks sit behind it in the queue).
//
// Lives in common/ because both the service layer (batch execution) and
// the engine layer (per-shard fan-out) schedule onto it.
#ifndef QUICKVIEW_COMMON_THREAD_POOL_H_
#define QUICKVIEW_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "obs/metrics.h"

namespace quickview {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(int threads);

  /// Completes queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Safe from any thread,
  /// including from within a task.
  void Submit(std::function<void()> task) QV_EXCLUDES(mu_);

  /// Pops one queued task (FIFO) and runs it on the CALLING thread;
  /// returns false immediately when the queue is empty. This is the
  /// work-stealing escape hatch for nested waits: a task that blocks on
  /// other tasks of the same pool calls this in its wait loop, so the
  /// pool makes progress even when every worker is parked in such a
  /// wait. The stolen task may be anything in the queue, not necessarily
  /// one the caller is waiting on.
  bool RunOneQueued() QV_EXCLUDES(mu_);

  /// Blocks until the queue is empty and every worker is idle. Tasks
  /// submitted while draining are waited for too.
  void Drain() QV_EXCLUDES(mu_);

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Tasks waiting in the queue / executing right now (point-in-time).
  size_t queue_depth() const QV_EXCLUDES(mu_);
  int active() const QV_EXCLUDES(mu_);

  /// Registers the pool's instruments (qv_threadpool_*) under `labels`.
  /// The pool must outlive the registry reads.
  Status RegisterMetrics(obs::MetricsRegistry* registry,
                         obs::LabelSet labels = {}) const;

 private:
  void WorkerLoop() QV_EXCLUDES(mu_);

  mutable qv::Mutex mu_;
  qv::CondVar work_cv_;  // workers wait for tasks / stop
  qv::CondVar idle_cv_;  // Drain waits for quiescence
  std::deque<std::function<void()>> queue_ QV_GUARDED_BY(mu_);
  int active_ QV_GUARDED_BY(mu_) = 0;  // tasks currently executing
  bool stop_ QV_GUARDED_BY(mu_) = false;
  obs::Counter submitted_;  // tasks ever enqueued
  obs::Counter completed_;  // tasks finished (workers + helpers)
  std::vector<std::thread> workers_;  // written only in the constructor
};

}  // namespace quickview

#endif  // QUICKVIEW_COMMON_THREAD_POOL_H_
