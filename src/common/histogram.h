// Histogram: a log-bucketed value histogram for latency observability.
// Values (conventionally microseconds) land in log-linear buckets — 8
// sub-buckets per power-of-two octave, HdrHistogram-style — so the full
// uint64 range is covered by a fixed 496-slot array with a worst-case
// relative quantization error of 1/8th. Recording is one relaxed
// fetch_add per counter (lock-cheap, safe from any thread: the server
// records per-opcode latencies on every RPC completion); reading is a
// linear scan. Histograms merge by bucket-wise addition, so per-thread
// instances (the load driver) fold into one report without ever sharing
// a cache line on the hot path.
//
// Quantiles are reported as the LOWER BOUND of the bucket containing the
// rank — deterministic, and never overstates the observed value by more
// than one sub-bucket width.
#ifndef QUICKVIEW_COMMON_HISTOGRAM_H_
#define QUICKVIEW_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace quickview {

/// A point-in-time copy of a Histogram: each live bucket atomic is read
/// exactly once at capture, and every derived figure (quantiles,
/// exposition lines, percentile tables) is computed from the copy — so
/// one render can never mix counts from different instants. `count` is
/// the sum of the captured bucket counts (self-consistent with the
/// buckets by construction, unlike the live count_ atomic which may be
/// mid-update relative to them).
struct HistogramSnapshot {
  struct Bucket {
    uint64_t lower = 0;  // smallest value mapping to this bucket
    uint64_t upper = 0;  // largest value mapping to this bucket
    uint64_t count = 0;
  };
  std::vector<Bucket> buckets;  // non-empty buckets, in value order
  uint64_t count = 0;
  uint64_t sum = 0;

  /// Same contract as Histogram::ValueAtQuantile, over the captured
  /// counts: the lower bound of the bucket holding the rank-q
  /// observation; 0 when empty.
  uint64_t ValueAtQuantile(double q) const {
    if (count == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
    if (rank == 0) rank = 1;
    if (rank > count) rank = count;
    uint64_t seen = 0;
    for (const Bucket& b : buckets) {
      seen += b.count;
      if (seen >= rank) return b.lower;
    }
    return buckets.empty() ? 0 : buckets.back().lower;
  }
};

class Histogram {
 public:
  /// 8 sub-buckets per octave: values < 8 map exactly (buckets 0..7),
  /// larger values map to 8 * (exponent - 3) + sub-bucket.
  static constexpr int kSubBucketBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 8
  static constexpr size_t kBuckets =
      static_cast<size_t>(kSubBuckets) +
      static_cast<size_t>(64 - kSubBucketBits) * kSubBuckets;  // 496

  Histogram() = default;

  // Copying would need a consistency protocol; merge into a fresh
  // instance instead (Merge tolerates concurrent recording).
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Maps `value` to its bucket. Exact below kSubBuckets; above, the top
  /// kSubBucketBits bits after the leading one select the sub-bucket.
  static size_t BucketIndex(uint64_t value) {
    if (value < kSubBuckets) return static_cast<size_t>(value);
    const int exponent = 63 - std::countl_zero(value);  // >= kSubBucketBits
    const uint64_t sub =
        (value >> (exponent - kSubBucketBits)) - kSubBuckets;
    return static_cast<size_t>(kSubBuckets) +
           static_cast<size_t>(exponent - kSubBucketBits) * kSubBuckets +
           static_cast<size_t>(sub);
  }

  /// The smallest value mapping to bucket `index` (the quantile answer).
  static uint64_t BucketLowerBound(size_t index) {
    if (index < kSubBuckets) return index;
    const size_t octave = (index - kSubBuckets) / kSubBuckets;
    const size_t sub = (index - kSubBuckets) % kSubBuckets;
    const int exponent = static_cast<int>(octave) + kSubBucketBits;
    return (uint64_t{kSubBuckets} + sub) << (exponent - kSubBucketBits);
  }

  /// Records one observation. Safe from any thread; never blocks.
  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Adds `other`'s counts into this histogram (bucket-wise; tolerant of
  /// concurrent Record calls on either side — the merge is then simply
  /// some consistent interleaving).
  void Merge(const Histogram& other) {
    for (size_t i = 0; i < kBuckets; ++i) {
      uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
      if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// The lower bound of the bucket holding the rank-`q` observation
  /// (q in [0, 1]; 0.5 = median). 0 on an empty histogram. Concurrent
  /// recording may skew the answer by the in-flight observations — fine
  /// for live stats endpoints.
  uint64_t ValueAtQuantile(double q) const {
    const uint64_t total = count();
    if (total == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    // rank in [1, total]: the index of the wanted observation in sorted
    // order (ceil, so q = 0.5 over 2 observations picks the first).
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
    if (rank == 0) rank = 1;
    if (rank > total) rank = total;
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i].load(std::memory_order_relaxed);
      if (seen >= rank) return BucketLowerBound(i);
    }
    return BucketLowerBound(kBuckets - 1);
  }

  /// Captures a self-consistent point-in-time copy (one relaxed load
  /// per bucket). Concurrent Record calls land wholly in or wholly out
  /// of the snapshot per bucket; the snapshot's count/quantiles always
  /// agree with its own buckets.
  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    for (size_t i = 0; i < kBuckets; ++i) {
      uint64_t n = buckets_[i].load(std::memory_order_relaxed);
      if (n == 0) continue;
      HistogramSnapshot::Bucket b;
      b.lower = BucketLowerBound(i);
      b.upper = i + 1 < kBuckets ? BucketLowerBound(i + 1) - 1 : ~uint64_t{0};
      b.count = n;
      snap.buckets.push_back(b);
      snap.count += n;
    }
    snap.sum = sum_.load(std::memory_order_relaxed);
    return snap;
  }

  /// Non-empty (bucket lower bound, count) pairs in value order.
  std::vector<std::pair<uint64_t, uint64_t>> NonEmptyBuckets() const {
    std::vector<std::pair<uint64_t, uint64_t>> out;
    for (size_t i = 0; i < kBuckets; ++i) {
      uint64_t n = buckets_[i].load(std::memory_order_relaxed);
      if (n != 0) out.emplace_back(BucketLowerBound(i), n);
    }
    return out;
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace quickview

#endif  // QUICKVIEW_COMMON_HISTOGRAM_H_
