#include "common/status.h"

namespace quickview {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kEvalError:
      return "EvalError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace quickview
