#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace quickview {

std::vector<std::string_view> SplitString(std::string_view input, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(input.substr(start));
      break;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

std::string FormatDouble(double v) {
  if (v == static_cast<long long>(v)) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace quickview
