// Annotated synchronization primitives — the ONLY place in quickview
// allowed to name std::mutex and friends (tools/lint.py enforces this).
//
// Every wrapper carries Clang thread-safety attributes, so a clang build
// with -Wthread-safety (the CI `analyze` leg adds it, with -Werror)
// proves the lock discipline statically on every compile: a member
// declared QV_GUARDED_BY(mu_) cannot be touched without mu_ held, a
// function declared QV_REQUIRES(mu_) cannot be called without it, and a
// scoped lock cannot leak past its capability. Under GCC (and any other
// compiler) the attributes expand to nothing and the wrappers compile to
// exactly the std primitives they hold.
//
// Idiom:
//
//   class Table {
//    public:
//     void Put(std::string key) QV_EXCLUDES(mu_) {
//       qv::MutexLock lock(mu_);
//       rows_.push_back(std::move(key));
//     }
//    private:
//     qv::Mutex mu_;
//     std::vector<std::string> rows_ QV_GUARDED_BY(mu_);
//   };
//
// Suppression policy: QV_NO_THREAD_SAFETY_ANALYSIS is a last resort for
// lock flow the analysis cannot follow (conditional locking joined
// across branches, locks handed between objects). Every use must carry a
// comment justifying why the analysis cannot see the invariant and what
// enforces it instead (see README "Static analysis").
#ifndef QUICKVIEW_COMMON_SYNC_H_
#define QUICKVIEW_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Attribute macros (clang Thread Safety Analysis; no-ops elsewhere).
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define QV_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define QV_THREAD_ANNOTATION_(x)  // not supported by this compiler
#endif

/// Declares a type to be a lockable capability ("mutex", "shared_mutex").
#define QV_CAPABILITY(x) QV_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose lifetime holds (and releases) a capability.
#define QV_SCOPED_CAPABILITY QV_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only with the named capability held
/// (shared suffices for reads, exclusive is required for writes).
#define QV_GUARDED_BY(x) QV_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the named capability.
#define QV_PT_GUARDED_BY(x) QV_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Caller must hold the capability exclusively / shared before the call.
#define QV_REQUIRES(...) \
  QV_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define QV_REQUIRES_SHARED(...) \
  QV_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability (lock-shaped functions).
#define QV_ACQUIRE(...) QV_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define QV_ACQUIRE_SHARED(...) \
  QV_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define QV_RELEASE(...) QV_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define QV_RELEASE_SHARED(...) \
  QV_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define QV_TRY_ACQUIRE(...) \
  QV_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function takes it itself —
/// self-deadlock guard). QV_LOCKS_EXCLUDED is the legacy spelling.
#define QV_EXCLUDES(...) QV_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define QV_LOCKS_EXCLUDED(...) QV_EXCLUDES(__VA_ARGS__)

/// Function returns a reference to the named capability (accessor idiom:
/// lets callers lock another object's mutex under analysis).
#define QV_RETURN_CAPABILITY(x) QV_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the capability is held (trusted by analysis).
#define QV_ASSERT_CAPABILITY(x) \
  QV_THREAD_ANNOTATION_(assert_capability(x))

/// Lock-order documentation (checked under -Wthread-safety-beta only).
#define QV_ACQUIRED_BEFORE(...) \
  QV_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define QV_ACQUIRED_AFTER(...) \
  QV_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Opts a function out of the analysis. Needs a justifying comment.
#define QV_NO_THREAD_SAFETY_ANALYSIS \
  QV_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace quickview::sync {

class CondVar;

/// Exclusive mutex (std::mutex with a capability attribute).
class QV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QV_ACQUIRE() { mu_.lock(); }
  void Unlock() QV_RELEASE() { mu_.unlock(); }
  bool TryLock() QV_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Reader-writer mutex. Writers use Lock/WriterLock (exclusive), readers
/// LockShared/ReaderLock (shared).
class QV_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() QV_ACQUIRE() { mu_.lock(); }
  void Unlock() QV_RELEASE() { mu_.unlock(); }
  void LockShared() QV_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() QV_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class ReaderLock;
  friend class WriterLock;
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a Mutex. Supports temporary manual
/// Unlock()/Lock() pairs (the worker-loop idiom) and CondVar waits; the
/// destructor releases whatever is still held.
class QV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QV_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() QV_RELEASE() {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drop the lock (e.g. to run a task); pair with Lock().
  void Unlock() QV_RELEASE() { lock_.unlock(); }
  void Lock() QV_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Scoped shared (read) lock on a SharedMutex.
class QV_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) QV_ACQUIRE_SHARED(mu)
      : lock_(mu.mu_) {}
  ~ReaderLock() QV_RELEASE() {}
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

/// Scoped exclusive (write) lock on a SharedMutex.
class QV_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) QV_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~WriterLock() QV_RELEASE() {}
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

/// Condition variable for qv::Mutex. Wait takes the MutexLock the caller
/// holds; from the analysis' point of view the lock is held across the
/// wait (it is released and reacquired inside, invisibly — which is
/// exactly the invariant the caller may rely on). Prefer the explicit
///   while (!predicate) cv.Wait(lock);
/// loop over a predicate lambda: the loop body is analyzed against the
/// held lock, a lambda would need its own annotations.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace quickview::sync

/// Call-site spelling: qv::Mutex, qv::MutexLock lock(mu_), ...
namespace qv = quickview::sync;

#endif  // QUICKVIEW_COMMON_SYNC_H_
