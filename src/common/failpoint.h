// Crash-injection failpoints — the chaos hooks behind the WAL crash
// harness (tests/wal_crash_test.cc), replacing ad-hoc test plumbing with
// one registry the production code can carry permanently.
//
//   QUICKVIEW_INJECT("wal.commit.before_sync");
//
// compiles to a single relaxed atomic load when nothing is armed — cheap
// enough to leave in release builds, the same bargain OceanBase strikes
// with its tracepoint macro. A test arms the registry with a countdown:
//
//   quickview::fail::ArmCrash(/*countdown=*/17, /*torn_seed=*/42);
//
// and the 17th injection point the process crosses calls _exit(
// kCrashExitCode) — no destructors, no buffered-stream flushes, exactly
// the state a power failure leaves behind (modulo the page cache, which
// a parent process observing the file after the child's exit sees in
// full — so "durable" from the harness's point of view means "was
// actually written", which is what the injection points probe).
//
// Write-site variant: MaybeTornWrite() sits where the WAL issues its
// batch write. When the countdown expires there, it writes a
// pseudo-random strict prefix of the in-flight buffer and exits —
// simulating the torn tail a mid-append crash leaves on disk.
//
// Thread safety: arming/disarming and hits are all atomics; countdown
// expiry is claimed with a fetch_sub so exactly one thread crashes.
#ifndef QUICKVIEW_COMMON_FAILPOINT_H_
#define QUICKVIEW_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace quickview::fail {

/// Exit code of an injected crash; the harness's waitpid distinguishes it
/// from asserts/sanitizer aborts.
inline constexpr int kCrashExitCode = 61;

namespace internal {
extern std::atomic<bool> g_armed;
}  // namespace internal

/// True when a crash countdown is armed. One relaxed load — the only
/// cost QUICKVIEW_INJECT pays when injection is off.
inline bool Armed() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

/// Arms the registry: the `countdown`-th injection point crossed from now
/// (1-based, across all threads) crashes the process. `torn_seed` feeds
/// the prefix-length PRNG of MaybeTornWrite.
void ArmCrash(int64_t countdown, uint64_t torn_seed = 0);

/// Disarms; pending countdowns are forgotten.
void Disarm();

/// Injection points crossed while armed (test observability).
int64_t Hits();

/// Called by QUICKVIEW_INJECT when armed: counts the hit and crashes via
/// _exit(kCrashExitCode) if the countdown expired at `site`.
void InjectHit(const char* site);

/// Write-shaped injection point. Disarmed or countdown not expired:
/// returns false and writes nothing — the caller performs its own full
/// write. Countdown expired: writes a pseudo-random strict prefix of
/// [data, data+size) to `fd` and _exit()s, never returning.
bool MaybeTornWrite(const char* site, int fd, const void* data, size_t size);

}  // namespace quickview::fail

/// A crash-injection point. Free when disarmed; under an armed countdown
/// the chosen crossing _exit()s the process.
#define QUICKVIEW_INJECT(site)                   \
  do {                                           \
    if (quickview::fail::Armed()) {              \
      quickview::fail::InjectHit(site);          \
    }                                            \
  } while (0)

#endif  // QUICKVIEW_COMMON_FAILPOINT_H_
