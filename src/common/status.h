// Status: lightweight error model used across quickview (Arrow/RocksDB
// idiom). Functions that can fail return Status or Result<T>; exceptions
// are not used on query-processing paths.
#ifndef QUICKVIEW_COMMON_STATUS_H_
#define QUICKVIEW_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace quickview {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,       // malformed XML or XQuery input
  kUnsupported,      // outside the Appendix A grammar / supported axes
  kEvalError,        // runtime query-evaluation failure (e.g. unbound var)
  kCancelled,        // work stopped because a cancellation token fired
  kDeadlineExceeded,  // work stopped because its deadline passed
  kResourceExhausted,  // admission queue full / capacity limit hit
  kInternal,
};

/// Outcome of an operation: kOk, or an error code plus message.
/// [[nodiscard]]: silently dropping a Status hides failures (a missed
/// NotFound became a wrong answer, not an error, in early harnesses) —
/// callers must check, propagate, or explicitly discard a return.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status EvalError(std::string msg) {
    return Status(StatusCode::kEvalError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define QV_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::quickview::Status _qv_status = (expr);     \
    if (!_qv_status.ok()) return _qv_status;     \
  } while (false)

}  // namespace quickview

#endif  // QUICKVIEW_COMMON_STATUS_H_
