// Deprecation plumbing for the staged API migrations. Entry points kept
// only as byte-identical compatibility wrappers are marked
// [[deprecated]]; the whole tree builds with -Werror, so any internal
// caller that has not migrated breaks the build. The parity tests that
// PROVE the wrappers byte-identical are the one sanctioned caller — they
// wrap the calls in QV_SUPPRESS_DEPRECATED_BEGIN/END (both GCC and clang
// honor the GCC pragma spelling).
#ifndef QUICKVIEW_COMMON_DEPRECATION_H_
#define QUICKVIEW_COMMON_DEPRECATION_H_

#define QV_SUPPRESS_DEPRECATED_BEGIN                               \
  _Pragma("GCC diagnostic push") _Pragma(                          \
      "GCC diagnostic ignored \"-Wdeprecated-declarations\"")

#define QV_SUPPRESS_DEPRECATED_END _Pragma("GCC diagnostic pop")

#endif  // QUICKVIEW_COMMON_DEPRECATION_H_
