// Result<T>: a value or a non-OK Status (Arrow-style).
#ifndef QUICKVIEW_COMMON_RESULT_H_
#define QUICKVIEW_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace quickview {

/// Holds either a value of type T or an error Status. A Result is never
/// constructed from an OK status.
/// [[nodiscard]] for the same reason as Status: dropping a Result drops
/// both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

namespace internal {
/// Uniform error extraction for the propagation macros below: a Status is
/// its own error, a Result yields its Status.
inline const Status& ToStatus(const Status& status) { return status; }
template <typename T>
const Status& ToStatus(const Result<T>& result) {
  return result.status();
}
}  // namespace internal

#define QV_CONCAT_INNER_(a, b) a##b
#define QV_CONCAT_(a, b) QV_CONCAT_INNER_(a, b)

/// Evaluates a Status- or Result-returning expression; on error returns
/// the Status (a Result's value, if any, is discarded).
#define QUICKVIEW_RETURN_IF_ERROR(expr)                         \
  do {                                                          \
    auto&& _qv_propagate = (expr);                              \
    if (!_qv_propagate.ok()) {                                  \
      return ::quickview::internal::ToStatus(_qv_propagate);    \
    }                                                           \
  } while (false)

/// Evaluates a Result-returning expression; on error returns the Status,
/// otherwise assigns the value to `lhs`.
#define QUICKVIEW_ASSIGN_OR_RETURN(lhs, expr)            \
  QV_ASSIGN_OR_RETURN_IMPL_(                             \
      QV_CONCAT_(_qv_result_, __LINE__), lhs, expr)
#define QV_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

/// Short-form alias, kept for existing call sites.
#define QV_ASSIGN_OR_RETURN(lhs, expr) QUICKVIEW_ASSIGN_OR_RETURN(lhs, expr)

}  // namespace quickview

#endif  // QUICKVIEW_COMMON_RESULT_H_
