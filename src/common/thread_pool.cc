#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace quickview {

ThreadPool::ThreadPool(int threads) {
  int count = std::max(1, threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    qv::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  submitted_.Increment();
  {
    qv::MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

bool ThreadPool::RunOneQueued() {
  std::function<void()> task;
  {
    qv::MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
  }
  try {
    task();
  } catch (...) {
    // Same contract as WorkerLoop: a task's exception must not take the
    // helping thread down; tasks that need the error catch it inside.
  }
  completed_.Increment();
  qv::MutexLock lock(mu_);
  --active_;
  if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
  return true;
}

size_t ThreadPool::queue_depth() const {
  qv::MutexLock lock(mu_);
  return queue_.size();
}

int ThreadPool::active() const {
  qv::MutexLock lock(mu_);
  return active_;
}

Status ThreadPool::RegisterMetrics(obs::MetricsRegistry* registry,
                                   obs::LabelSet labels) const {
  QV_RETURN_IF_ERROR(registry->RegisterCounter(
      "qv_threadpool_tasks_submitted_total", labels, &submitted_));
  QV_RETURN_IF_ERROR(registry->RegisterCounter(
      "qv_threadpool_tasks_completed_total", labels, &completed_));
  QV_RETURN_IF_ERROR(registry->RegisterCallback(
      "qv_threadpool_queue_depth", labels,
      obs::MetricsRegistry::InstrumentKind::kGauge,
      [this]() -> int64_t { return static_cast<int64_t>(queue_depth()); }));
  QV_RETURN_IF_ERROR(registry->RegisterCallback(
      "qv_threadpool_active_tasks", labels,
      obs::MetricsRegistry::InstrumentKind::kGauge,
      [this]() -> int64_t { return active(); }));
  return registry->RegisterCallback(
      "qv_threadpool_threads", labels,
      obs::MetricsRegistry::InstrumentKind::kGauge,
      [this]() -> int64_t { return thread_count(); });
}

void ThreadPool::Drain() {
  qv::MutexLock lock(mu_);
  while (!(queue_.empty() && active_ == 0)) {
    idle_cv_.Wait(lock);
  }
}

void ThreadPool::WorkerLoop() {
  qv::MutexLock lock(mu_);
  while (true) {
    while (!stop_ && queue_.empty()) {
      work_cv_.Wait(lock);
    }
    if (queue_.empty()) break;  // stop_ set and nothing left to run
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.Unlock();
    try {
      task();
    } catch (...) {
      // A task must not take down the pool (and with it every other
      // in-flight query): swallow, keep the worker and `active_` sane.
      // Submitters that need the error must catch inside the task —
      // QueryService::SearchBatch converts exceptions to per-slot
      // Status there.
    }
    completed_.Increment();
    lock.Lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
  }
}

}  // namespace quickview
