#include "index/index_builder.h"

#include <vector>

#include "xml/serializer.h"
#include "xml/tokenizer.h"

namespace quickview::index {

const DocumentIndexes* DatabaseIndexes::Get(const std::string& doc_name) const {
  auto it = indexes_.find(doc_name);
  return it == indexes_.end() ? nullptr : it->second.get();
}

DocumentIndexes* DatabaseIndexes::GetMutable(const std::string& doc_name) {
  auto it = indexes_.find(doc_name);
  return it == indexes_.end() ? nullptr : it->second.get();
}

void DatabaseIndexes::Put(const std::string& doc_name,
                          std::unique_ptr<DocumentIndexes> idx) {
  indexes_[doc_name] = std::move(idx);
}

bool DatabaseIndexes::Remove(const std::string& doc_name) {
  return indexes_.erase(doc_name) != 0;
}

std::optional<DocumentIndexView> DatabaseIndexes::GetView(
    const std::string& doc_name) const {
  const DocumentIndexes* doc_indexes = Get(doc_name);
  if (doc_indexes == nullptr) return std::nullopt;
  return doc_indexes->View();
}

namespace {

void IndexSubtree(const xml::Document& doc, xml::NodeIndex index,
                  std::string* path, DocumentIndexes* out) {
  const xml::Node& node = doc.node(index);
  size_t path_len = path->size();
  path->push_back('/');
  path->append(node.tag);

  out->path_index.AddEntry(*path, node.text, node.id,
                           xml::SubtreeByteLength(doc, index));

  // Count directly-contained terms (tag-name tokens + direct text tokens).
  std::map<std::string, uint32_t> counts;
  for (std::string& term : xml::DirectTerms(node)) ++counts[term];
  for (const auto& [term, count] : counts) {
    out->inverted_index.Add(term, node.id, count);
  }

  for (xml::NodeIndex child : node.children) {
    IndexSubtree(doc, child, path, out);
  }
  path->resize(path_len);
}

/// The incremental mirror of IndexSubtree: the same walk, routed to the
/// read-modify-write mutation methods (byte lengths precomputed in one
/// pass — the bulk walk's per-node recursion is fine at load time but
/// O(n x depth) per update).
void ApplySubtree(const xml::Document& doc, xml::NodeIndex index,
                  const std::vector<uint64_t>& byte_lengths,
                  std::string* path, bool add, DocumentIndexes* out) {
  const xml::Node& node = doc.node(index);
  size_t path_len = path->size();
  path->push_back('/');
  path->append(node.tag);

  if (add) {
    out->path_index.InsertEntry(*path, node.text, node.id,
                                byte_lengths[index]);
  } else {
    out->path_index.RemoveEntry(*path, node.text, node.id);
  }

  std::map<std::string, uint32_t> counts;
  for (std::string& term : xml::DirectTerms(node)) ++counts[term];
  for (const auto& [term, count] : counts) {
    if (add) {
      out->inverted_index.Add(term, node.id, count);
    } else {
      out->inverted_index.Remove(term, node.id);
    }
  }

  for (xml::NodeIndex child : node.children) {
    ApplySubtree(doc, child, byte_lengths, path, add, out);
  }
  path->resize(path_len);
}

void ApplyDocument(const xml::Document& doc, bool add, DocumentIndexes* out) {
  if (!doc.has_root()) return;
  std::vector<uint64_t> byte_lengths(doc.size(), 0);
  xml::SubtreeByteLengths(doc, doc.root(), &byte_lengths);
  std::string path;
  ApplySubtree(doc, doc.root(), byte_lengths, &path, add, out);
}

}  // namespace

void DocumentIndexes::AddDocument(const xml::Document& doc) {
  ApplyDocument(doc, /*add=*/true, this);
}

void DocumentIndexes::RemoveDocument(const xml::Document& doc) {
  ApplyDocument(doc, /*add=*/false, this);
}

std::unique_ptr<DocumentIndexes> BuildDocumentIndexes(
    const xml::Document& doc) {
  auto out = std::make_unique<DocumentIndexes>();
  if (doc.has_root()) {
    std::string path;
    IndexSubtree(doc, doc.root(), &path, out.get());
  }
  out->path_index.Finalize();
  return out;
}

std::unique_ptr<DatabaseIndexes> BuildDatabaseIndexes(
    const xml::Database& database) {
  auto out = std::make_unique<DatabaseIndexes>();
  for (const auto& [name, doc] : database.documents()) {
    out->Put(name, BuildDocumentIndexes(*doc));
  }
  return out;
}

}  // namespace quickview::index
