#include "index/path_index.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace quickview::index {

namespace {

// Separates the path from the value in composite B+-tree keys. '\x01' is
// below any tag or value character we produce.
constexpr char kKeySep = '\x01';

void AppendU32(std::string* out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

uint32_t ReadU32(const std::string& in, size_t* pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<unsigned char>(in[(*pos)++]);
  }
  return v;
}

void AppendU64(std::string* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

uint64_t ReadU64(const std::string& in, size_t* pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(in[(*pos)++]);
  }
  return v;
}

}  // namespace

std::string MakePathValueKey(const std::string& path,
                             const std::string& value) {
  std::string key = path;
  key.push_back(kKeySep);
  key.append(value);
  return key;
}

std::string EncodePathEntryList(
    const std::vector<std::pair<xml::DeweyId, uint64_t>>& entries) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(entries.size()));
  for (const auto& [id, byte_length] : entries) {
    std::string id_bytes = id.Encode();
    AppendU32(&out, static_cast<uint32_t>(id_bytes.size()));
    out.append(id_bytes);
    AppendU64(&out, byte_length);
  }
  return out;
}

void DecodePathEntryListInto(const std::string& encoded,
                             const std::optional<std::string>& value,
                             std::vector<PathEntry>* out) {
  size_t pos = 0;
  uint32_t count = ReadU32(encoded, &pos);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id_len = ReadU32(encoded, &pos);
    xml::DeweyId id = xml::DeweyId::Decode(encoded.substr(pos, id_len));
    pos += id_len;
    uint64_t byte_length = ReadU64(encoded, &pos);
    out->push_back(PathEntry{std::move(id), byte_length, value});
  }
}

std::string PatternToString(const PathPattern& pattern) {
  std::string out;
  for (const PathStep& step : pattern) {
    out += step.descendant ? "//" : "/";
    out += step.tag;
  }
  return out;
}

namespace {

bool MatchFrom(const PathPattern& pattern, size_t pi,
               const std::vector<std::string_view>& segments, size_t si) {
  if (pi == pattern.size()) return si == segments.size();
  const PathStep& step = pattern[pi];
  if (!step.descendant) {
    return si < segments.size() && segments[si] == step.tag &&
           MatchFrom(pattern, pi + 1, segments, si + 1);
  }
  for (size_t t = si; t < segments.size(); ++t) {
    if (segments[t] == step.tag &&
        MatchFrom(pattern, pi + 1, segments, t + 1)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool PatternMatchesPath(const PathPattern& pattern, const std::string& path) {
  assert(!path.empty() && path[0] == '/');
  std::vector<std::string_view> segments =
      SplitString(std::string_view(path).substr(1), '/');
  return MatchFrom(pattern, 0, segments, 0);
}

void PathIndex::AddEntry(const std::string& path, const std::string& value,
                         const xml::DeweyId& id, uint64_t byte_length) {
  pending_[{path, value}].emplace_back(id, byte_length);
}

void PathIndex::Finalize() {
  std::string last_path;
  for (auto& [key, entries] : pending_) {
    const auto& [path, value] = key;
    if (path != last_path) {
      paths_.push_back(path);
      last_path = path;
    }
    ++path_rows_[path];
    tree_.Insert(MakePathValueKey(path, value), EncodePathEntryList(entries));
  }
  pending_.clear();
}

namespace {

/// Inverse of EncodePathEntryList, back to the (id, byte length) pairs
/// the read-modify-write mutation path re-encodes.
std::vector<std::pair<xml::DeweyId, uint64_t>> DecodePathEntryPairs(
    const std::string& encoded) {
  std::vector<std::pair<xml::DeweyId, uint64_t>> out;
  size_t pos = 0;
  uint32_t count = ReadU32(encoded, &pos);
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id_len = ReadU32(encoded, &pos);
    xml::DeweyId id = xml::DeweyId::Decode(encoded.substr(pos, id_len));
    pos += id_len;
    uint64_t byte_length = ReadU64(encoded, &pos);
    out.emplace_back(std::move(id), byte_length);
  }
  return out;
}

}  // namespace

void PathIndex::InsertEntry(const std::string& path, const std::string& value,
                            const xml::DeweyId& id, uint64_t byte_length) {
  assert(pending_.empty());
  std::string key = MakePathValueKey(path, value);
  std::string encoded;
  std::vector<std::pair<xml::DeweyId, uint64_t>> entries;
  if (tree_.Get(key, &encoded)) {
    entries = DecodePathEntryPairs(encoded);
  } else if (++path_rows_[path] == 1) {
    paths_.insert(std::lower_bound(paths_.begin(), paths_.end(), path), path);
  }
  auto it = std::lower_bound(entries.begin(), entries.end(), id,
                             [](const std::pair<xml::DeweyId, uint64_t>& e,
                                const xml::DeweyId& target) {
                               return e.first < target;
                             });
  if (it != entries.end() && it->first == id) {
    it->second = byte_length;
  } else {
    entries.emplace(it, id, byte_length);
  }
  tree_.Insert(key, EncodePathEntryList(entries));
}

bool PathIndex::RemoveEntry(const std::string& path, const std::string& value,
                            const xml::DeweyId& id) {
  assert(pending_.empty());
  std::string key = MakePathValueKey(path, value);
  std::string encoded;
  if (!tree_.Get(key, &encoded)) return false;
  std::vector<std::pair<xml::DeweyId, uint64_t>> entries =
      DecodePathEntryPairs(encoded);
  auto it = std::lower_bound(entries.begin(), entries.end(), id,
                             [](const std::pair<xml::DeweyId, uint64_t>& e,
                                const xml::DeweyId& target) {
                               return e.first < target;
                             });
  if (it == entries.end() || it->first != id) return false;
  entries.erase(it);
  if (!entries.empty()) {
    tree_.Insert(key, EncodePathEntryList(entries));
    return true;
  }
  tree_.Delete(key);
  auto rows = path_rows_.find(path);
  if (rows != path_rows_.end() && --rows->second == 0) {
    path_rows_.erase(rows);
    auto pos = std::lower_bound(paths_.begin(), paths_.end(), path);
    if (pos != paths_.end() && *pos == path) paths_.erase(pos);
  }
  return true;
}

std::vector<std::string> PathIndex::ExpandPattern(
    const PathPattern& pattern) const {
  std::vector<std::string> out;
  for (const std::string& path : paths_) {
    if (PatternMatchesPath(pattern, path)) out.push_back(path);
  }
  return out;
}

std::vector<PathEntry> PathIndex::Collect(const PathPattern& pattern,
                                          bool with_values) const {
  std::vector<PathEntry> out;
  for (const std::string& path : ExpandPattern(pattern)) {
    // Prefix scan over all (path, value) rows for this path: the path plus
    // separator is a prefix of the composite key.
    std::string prefix = path;
    prefix.push_back(kKeySep);
    for (BTree::Iterator it = tree_.Seek(prefix); it.Valid(); it.Next()) {
      if (it.key().compare(0, prefix.size(), prefix) != 0) break;
      std::optional<std::string> value;
      if (with_values) value = it.key().substr(prefix.size());
      DecodePathEntryListInto(it.value(), value, &out);
    }
  }
  // Merge the per-row Dewey-ordered lists into one ordered list.
  std::sort(out.begin(), out.end(),
            [](const PathEntry& a, const PathEntry& b) { return a.id < b.id; });
  return out;
}

void PathIndex::ForEachRow(
    const std::function<void(const std::string&, const std::string&,
                             const std::vector<PathEntry>&)>& fn) const {
  for (BTree::Iterator it = tree_.Begin(); it.Valid(); it.Next()) {
    size_t sep = it.key().find(kKeySep);
    std::string path = it.key().substr(0, sep);
    std::string value = it.key().substr(sep + 1);
    std::vector<PathEntry> entries;
    DecodePathEntryListInto(it.value(), std::nullopt, &entries);
    fn(path, value, entries);
  }
}

void PathIndex::ForEachRaw(
    const std::function<void(const std::string&, const std::string&)>& fn)
    const {
  for (BTree::Iterator it = tree_.Begin(); it.Valid(); it.Next()) {
    fn(it.key(), it.value());
  }
}

std::vector<PathIndex::PathRows> PathIndex::LookUpPerPath(
    const PathPattern& pattern, bool with_values) const {
  std::vector<PathRows> out;
  for (const std::string& path : ExpandPattern(pattern)) {
    PathRows rows;
    rows.path = path;
    std::string prefix = path;
    prefix.push_back(kKeySep);
    for (BTree::Iterator it = tree_.Seek(prefix); it.Valid(); it.Next()) {
      if (it.key().compare(0, prefix.size(), prefix) != 0) break;
      std::optional<std::string> value;
      if (with_values) value = it.key().substr(prefix.size());
      DecodePathEntryListInto(it.value(), value, &rows.entries);
    }
    std::sort(
        rows.entries.begin(), rows.entries.end(),
        [](const PathEntry& a, const PathEntry& b) { return a.id < b.id; });
    if (!rows.entries.empty()) out.push_back(std::move(rows));
  }
  return out;
}

std::vector<PathEntry> PathIndex::LookUpId(const PathPattern& pattern) const {
  return Collect(pattern, /*with_values=*/false);
}

std::vector<PathEntry> PathIndex::LookUpIdValue(
    const PathPattern& pattern) const {
  return Collect(pattern, /*with_values=*/true);
}

std::vector<PathEntry> PathIndex::LookUpValue(const PathPattern& pattern,
                                              const std::string& value) const {
  std::vector<PathEntry> out;
  for (const std::string& path : ExpandPattern(pattern)) {
    std::string encoded;
    if (tree_.Get(MakePathValueKey(path, value), &encoded)) {
      DecodePathEntryListInto(encoded, value, &out);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PathEntry& a, const PathEntry& b) { return a.id < b.id; });
  return out;
}

}  // namespace quickview::index
