// Index views: the PageSource-facing abstraction of the two query-time
// index surfaces. The PDT pipeline only ever issues the probe set of
// paper Fig 7 (path-pattern lookups and inverted-list retrievals), so
// that narrow surface is what gets virtualized: the same PrepareLists /
// GeneratePdt code runs over the in-memory B+-trees (index/btree.h) or
// over disk-resident B-tree pages pulled on demand through a buffer pool
// (pagestore/packed_db.h). Lookups against a paged backing can fail with
// real I/O errors (truncated file, checksum mismatch), so every view
// method returns Result<> even though the in-memory adapters cannot fail.
#ifndef QUICKVIEW_INDEX_INDEX_VIEW_H_
#define QUICKVIEW_INDEX_INDEX_VIEW_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/inverted_index.h"
#include "index/path_index.h"

namespace quickview::index {

/// Query-time surface of a path index (paper §3.2, Fig 5).
class PathIndexView {
 public:
  virtual ~PathIndexView() = default;

  /// Distinct full data paths matching the pattern, in path order.
  virtual Result<std::vector<std::string>> ExpandPattern(
      const PathPattern& pattern) const = 0;

  /// All ids on paths matching `pattern`, merged into one Dewey-ordered
  /// list; values are not materialized.
  virtual Result<std::vector<PathEntry>> LookUpId(
      const PathPattern& pattern) const = 0;

  /// As LookUpId but each entry carries its atomic value.
  virtual Result<std::vector<PathEntry>> LookUpIdValue(
      const PathPattern& pattern) const = 0;

  /// Ids on paths matching `pattern` whose atomic value equals `value`.
  virtual Result<std::vector<PathEntry>> LookUpValue(
      const PathPattern& pattern, const std::string& value) const = 0;

  /// One (data path, Dewey-ordered entries) group per distinct matching
  /// full data path.
  virtual Result<std::vector<PathRows>> LookUpPerPath(
      const PathPattern& pattern, bool with_values) const = 0;
};

/// Query-time surface of an inverted-list index (paper §3.2, Fig 4b).
class TermIndexView {
 public:
  virtual ~TermIndexView() = default;

  /// Full postings list for `term`, Dewey-ordered; empty if unknown.
  virtual Result<std::vector<Posting>> Lookup(
      const std::string& term) const = 0;

  /// Point probe: does element `id` directly contain `term`?
  virtual Result<bool> Contains(const std::string& term,
                                const xml::DeweyId& id,
                                uint32_t* tf) const = 0;

  /// Number of elements directly containing `term`.
  virtual Result<uint64_t> ListLength(const std::string& term) const = 0;
};

/// The two views of one document's indices, as consumed by PrepareLists /
/// GeneratePdt. Non-owning; valid while the backing IndexSource lives.
struct DocumentIndexView {
  const PathIndexView* paths = nullptr;
  const TermIndexView* terms = nullptr;
};

/// Where a query finds the indices of a document: the in-memory
/// DatabaseIndexes or a packed on-disk database. Lookup by the document
/// name used in fn:doc().
class IndexSource {
 public:
  virtual ~IndexSource() = default;

  /// std::nullopt if no indices exist for `doc_name`. The returned
  /// pointers stay valid for the lifetime of the source.
  virtual std::optional<DocumentIndexView> GetView(
      const std::string& doc_name) const = 0;
};

/// In-memory adapters: forward to the concrete B+-tree-backed indexes,
/// which cannot fail.
class InMemoryPathIndexView final : public PathIndexView {
 public:
  explicit InMemoryPathIndexView(const PathIndex* impl) : impl_(impl) {}

  Result<std::vector<std::string>> ExpandPattern(
      const PathPattern& pattern) const override {
    return impl_->ExpandPattern(pattern);
  }
  Result<std::vector<PathEntry>> LookUpId(
      const PathPattern& pattern) const override {
    return impl_->LookUpId(pattern);
  }
  Result<std::vector<PathEntry>> LookUpIdValue(
      const PathPattern& pattern) const override {
    return impl_->LookUpIdValue(pattern);
  }
  Result<std::vector<PathEntry>> LookUpValue(
      const PathPattern& pattern, const std::string& value) const override {
    return impl_->LookUpValue(pattern, value);
  }
  Result<std::vector<PathRows>> LookUpPerPath(const PathPattern& pattern,
                                              bool with_values) const override {
    return impl_->LookUpPerPath(pattern, with_values);
  }

 private:
  const PathIndex* impl_;
};

class InMemoryTermIndexView final : public TermIndexView {
 public:
  explicit InMemoryTermIndexView(const InvertedIndex* impl) : impl_(impl) {}

  Result<std::vector<Posting>> Lookup(const std::string& term) const override {
    return impl_->Lookup(term);
  }
  Result<bool> Contains(const std::string& term, const xml::DeweyId& id,
                        uint32_t* tf) const override {
    return impl_->Contains(term, id, tf);
  }
  Result<uint64_t> ListLength(const std::string& term) const override {
    return static_cast<uint64_t>(impl_->ListLength(term));
  }

 private:
  const InvertedIndex* impl_;
};

}  // namespace quickview::index

#endif  // QUICKVIEW_INDEX_INDEX_VIEW_H_
