// Inverted-list index (paper §3.2, Fig 4b): for each term, the Dewey-
// ordered list of elements that *directly* contain it, with the term
// frequency. A B+-tree over (term, id) composite keys provides both full
// list retrieval (prefix scan) and point containment probes, matching
// "an index such as a B+-tree is usually built on top of each inverted
// list so that we can efficiently check whether a given element contains
// a keyword".
#ifndef QUICKVIEW_INDEX_INVERTED_INDEX_H_
#define QUICKVIEW_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "index/btree.h"
#include "xml/dewey_id.h"

namespace quickview::index {

struct Posting {
  xml::DeweyId id;
  uint32_t tf = 0;
};

class InvertedIndex {
 public:
  InvertedIndex() = default;
  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  /// Adds (accumulates) `count` occurrences of `term` directly contained
  /// by element `id`. `term` must already be lowercased.
  void Add(const std::string& term, const xml::DeweyId& id, uint32_t count);

  /// Removes the (term, id) posting entirely (live document updates);
  /// returns whether it existed.
  bool Remove(const std::string& term, const xml::DeweyId& id);

  /// Full postings list for `term`, Dewey-ordered. Empty if unknown.
  std::vector<Posting> Lookup(const std::string& term) const;

  /// Point probe: does element `id` directly contain `term`? Fills `*tf`
  /// when non-null.
  bool Contains(const std::string& term, const xml::DeweyId& id,
                uint32_t* tf = nullptr) const;

  /// Number of elements directly containing `term`.
  size_t ListLength(const std::string& term) const;

  /// Iterates every (term, id, tf) posting in (term, id) order. Used by
  /// persistence.
  void ForEachPosting(
      const std::function<void(const std::string& term,
                               const xml::DeweyId& id, uint32_t tf)>& fn)
      const;

  size_t size() const { return tree_.size(); }
  BTree::Stats stats() const { return tree_.stats(); }
  void ResetStats() { tree_.ResetStats(); }

 private:
  static std::string MakeKey(const std::string& term, const xml::DeweyId& id);

  BTree tree_;
};

}  // namespace quickview::index

#endif  // QUICKVIEW_INDEX_INVERTED_INDEX_H_
