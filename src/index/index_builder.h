// Builds the per-document path and inverted-list indices for a Database —
// the offline "load time" work of a traditional full-text XML engine
// (paper §1), after which queries over virtual views never scan base data.
#ifndef QUICKVIEW_INDEX_INDEX_BUILDER_H_
#define QUICKVIEW_INDEX_INDEX_BUILDER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "index/index_view.h"
#include "index/inverted_index.h"
#include "index/path_index.h"
#include "xml/dom.h"

namespace quickview::index {

/// The indices for one document. Always heap-allocated and pinned (the
/// views below point back into this object), hence neither copyable nor
/// movable.
struct DocumentIndexes {
  PathIndex path_index;
  InvertedIndex inverted_index;

  DocumentIndexes() = default;
  DocumentIndexes(const DocumentIndexes&) = delete;
  DocumentIndexes& operator=(const DocumentIndexes&) = delete;

  /// The PageSource-style view the PDT pipeline consumes; valid while
  /// this object lives.
  DocumentIndexView View() const { return {&path_view_, &term_view_}; }

  /// Incremental write path (live document updates): adds / removes every
  /// path-index entry and posting of `doc` in place, without rebuilding.
  /// Replacing a document under the same name is RemoveDocument(old) +
  /// AddDocument(new). Requires a finalized path index (BuildDocumentIndexes
  /// output); external synchronization against concurrent readers.
  void AddDocument(const xml::Document& doc);
  void RemoveDocument(const xml::Document& doc);

 private:
  InMemoryPathIndexView path_view_{&path_index};
  InMemoryTermIndexView term_view_{&inverted_index};
};

/// Indices for every document in a database, keyed by document name (the
/// name used in fn:doc()). Implements IndexSource so the engine can run
/// the identical pipeline over this in-memory backing or over a packed
/// on-disk database.
class DatabaseIndexes : public IndexSource {
 public:
  const DocumentIndexes* Get(const std::string& doc_name) const;
  DocumentIndexes* GetMutable(const std::string& doc_name);
  void Put(const std::string& doc_name, std::unique_ptr<DocumentIndexes> idx);

  /// Drops the document's indices (per-document posting removal at
  /// corpus granularity); returns whether they existed.
  bool Remove(const std::string& doc_name);

  std::optional<DocumentIndexView> GetView(
      const std::string& doc_name) const override;

  const std::map<std::string, std::unique_ptr<DocumentIndexes>>& all() const {
    return indexes_;
  }

 private:
  std::map<std::string, std::unique_ptr<DocumentIndexes>> indexes_;
};

/// Builds path + inverted indices for one document.
std::unique_ptr<DocumentIndexes> BuildDocumentIndexes(
    const xml::Document& doc);

/// Builds indices for every document in `database`.
std::unique_ptr<DatabaseIndexes> BuildDatabaseIndexes(
    const xml::Database& database);

}  // namespace quickview::index

#endif  // QUICKVIEW_INDEX_INDEX_BUILDER_H_
