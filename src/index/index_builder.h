// Builds the per-document path and inverted-list indices for a Database —
// the offline "load time" work of a traditional full-text XML engine
// (paper §1), after which queries over virtual views never scan base data.
#ifndef QUICKVIEW_INDEX_INDEX_BUILDER_H_
#define QUICKVIEW_INDEX_INDEX_BUILDER_H_

#include <map>
#include <memory>
#include <string>

#include "index/inverted_index.h"
#include "index/path_index.h"
#include "xml/dom.h"

namespace quickview::index {

/// The indices for one document.
struct DocumentIndexes {
  PathIndex path_index;
  InvertedIndex inverted_index;
};

/// Indices for every document in a database, keyed by document name (the
/// name used in fn:doc()).
class DatabaseIndexes {
 public:
  const DocumentIndexes* Get(const std::string& doc_name) const;
  DocumentIndexes* GetMutable(const std::string& doc_name);
  void Put(const std::string& doc_name, std::unique_ptr<DocumentIndexes> idx);

  const std::map<std::string, std::unique_ptr<DocumentIndexes>>& all() const {
    return indexes_;
  }

 private:
  std::map<std::string, std::unique_ptr<DocumentIndexes>> indexes_;
};

/// Builds path + inverted indices for one document.
std::unique_ptr<DocumentIndexes> BuildDocumentIndexes(
    const xml::Document& doc);

/// Builds indices for every document in `database`.
std::unique_ptr<DatabaseIndexes> BuildDatabaseIndexes(
    const xml::Database& database);

}  // namespace quickview::index

#endif  // QUICKVIEW_INDEX_INDEX_BUILDER_H_
