// Path index (paper §3.2, Fig 5): a Path-Values table with one row per
// unique (Path, Value) pair, mapping to the Dewey-ordered list of ids of
// elements on that path with that atomic value, backed by a B+-tree over
// the composite (Path, Value) key. Supports
//  - value-predicate probes:  (path, value) exact key lookup,
//  - path probes:             prefix scan on the path component,
//  - descendant axes:         expansion of '//' patterns against the
//                             dictionary of distinct full data paths.
// Entries additionally carry the subtree byte length of each element,
// which is how PDTs obtain byte lengths "solely using indices".
#ifndef QUICKVIEW_INDEX_PATH_INDEX_H_
#define QUICKVIEW_INDEX_PATH_INDEX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "index/btree.h"
#include "xml/dewey_id.h"

namespace quickview::index {

/// One step of a path pattern: axis ('/' or '//') plus a tag-name test.
struct PathStep {
  bool descendant = false;  // true for '//'
  std::string tag;

  bool operator==(const PathStep&) const = default;
};

/// A root-anchored path pattern such as /books//book/isbn.
using PathPattern = std::vector<PathStep>;

/// Renders a pattern as "/books//book/isbn".
std::string PatternToString(const PathPattern& pattern);

/// An id retrieved from the path index, with its element's subtree byte
/// length and (for LookUpIdValue) its atomic value.
struct PathEntry {
  xml::DeweyId id;
  uint64_t byte_length = 0;
  std::optional<std::string> value;
};

/// One (data path, Dewey-ordered entries) group per distinct full data
/// path matching a pattern. PDT generation needs the per-path grouping
/// to map each id's ancestors back to QPT nodes.
struct PathRows {
  std::string path;
  std::vector<PathEntry> entries;
};

/// Composite (Path, Value) B+-tree key: path, '\x01' separator (below any
/// tag or value character we produce), value. Shared with the on-disk
/// path index so both backings scan identical key spaces.
std::string MakePathValueKey(const std::string& path,
                             const std::string& value);

/// Serialized row payload: count-prefixed (Dewey id, byte length) pairs.
/// The same bytes live in the in-memory B+-tree values and in packed
/// B-tree-node pages on disk.
std::string EncodePathEntryList(
    const std::vector<std::pair<xml::DeweyId, uint64_t>>& entries);

/// Appends the row's entries to `out`, each carrying `value` (or nullopt).
void DecodePathEntryListInto(const std::string& encoded,
                             const std::optional<std::string>& value,
                             std::vector<PathEntry>* out);

class PathIndex {
 public:
  PathIndex() = default;
  PathIndex(const PathIndex&) = delete;
  PathIndex& operator=(const PathIndex&) = delete;
  PathIndex(PathIndex&&) = default;
  PathIndex& operator=(PathIndex&&) = default;

  /// Registers an element on `path` (a full data path like
  /// "/books/book/isbn") with atomic value `value` (empty string is the
  /// null value of Fig 5). Must be called in non-decreasing Dewey order
  /// per (path, value) pair; the builder guarantees document order.
  void AddEntry(const std::string& path, const std::string& value,
                const xml::DeweyId& id, uint64_t byte_length);

  /// Moves buffered rows into the B+-tree. Lookups before Finalize()
  /// see nothing.
  void Finalize();

  /// Incremental write path (live document updates). Both methods operate
  /// on the finalized B+-tree with read-modify-write of the affected
  /// (path, value) row and keep the distinct-path dictionary consistent;
  /// they must not be mixed with un-finalized AddEntry buffering.
  ///
  /// InsertEntry adds (or replaces, when `id` is already present in the
  /// row) a single element entry.
  void InsertEntry(const std::string& path, const std::string& value,
                   const xml::DeweyId& id, uint64_t byte_length);

  /// Removes the entry for `id` from the (path, value) row; returns
  /// whether it existed. Deletes the row (and, when it was the path's
  /// last row, the path dictionary entry) once empty.
  bool RemoveEntry(const std::string& path, const std::string& value,
                   const xml::DeweyId& id);

  /// Distinct full data paths matching the pattern, in path order
  /// ("the index is probed for each full data path", §3.2).
  std::vector<std::string> ExpandPattern(const PathPattern& pattern) const;

  /// All ids on paths matching `pattern`, merged into one Dewey-ordered
  /// list (LookUpID of Fig 7). Values are not materialized.
  std::vector<PathEntry> LookUpId(const PathPattern& pattern) const;

  /// As LookUpId but each entry carries its atomic value (LookUpIDValue
  /// of Fig 7 — "combining retrieval of IDs and values").
  std::vector<PathEntry> LookUpIdValue(const PathPattern& pattern) const;

  /// Ids on paths matching `pattern` whose atomic value equals `value`
  /// (equality-predicate probe using the composite key).
  std::vector<PathEntry> LookUpValue(const PathPattern& pattern,
                                     const std::string& value) const;

  /// Compatibility alias: PathRows now lives at namespace scope so the
  /// on-disk path index can return the same row type.
  using PathRows = ::quickview::index::PathRows;
  std::vector<PathRows> LookUpPerPath(const PathPattern& pattern,
                                      bool with_values) const;

  /// Iterates every (path, value, entries) row in key order. Values of
  /// entries carry no `value` field (the row's value is the 2nd argument).
  /// Used by persistence.
  void ForEachRow(
      const std::function<void(const std::string& path,
                               const std::string& value,
                               const std::vector<PathEntry>& entries)>& fn)
      const;

  /// Iterates every raw (composite key, encoded row) pair in key order —
  /// the exact bytes a packed database stores in its B-tree-node pages.
  void ForEachRaw(const std::function<void(const std::string& key,
                                           const std::string& value)>& fn)
      const;

  /// Sorted distinct full data paths (the dictionary ExpandPattern
  /// matches against; a packed database persists it in its directory).
  const std::vector<std::string>& distinct_path_list() const {
    return paths_;
  }

  size_t distinct_paths() const { return paths_.size(); }
  size_t rows() const { return tree_.size(); }
  BTree::Stats stats() const { return tree_.stats(); }
  void ResetStats() { tree_.ResetStats(); }

 private:
  std::vector<PathEntry> Collect(const PathPattern& pattern,
                                 bool with_values) const;

  BTree tree_;
  // Buffered rows before Finalize: (path, value) -> entries.
  std::map<std::pair<std::string, std::string>,
           std::vector<std::pair<xml::DeweyId, uint64_t>>>
      pending_;
  std::vector<std::string> paths_;  // sorted distinct full data paths
  // Live (path, value) row count per path: how InsertEntry/RemoveEntry
  // know when a path enters or leaves the dictionary above.
  std::map<std::string, size_t> path_rows_;
};

/// True iff the full data path `path` (e.g. "/books/book/isbn") matches
/// the pattern (e.g. /books//isbn).
bool PatternMatchesPath(const PathPattern& pattern, const std::string& path);

}  // namespace quickview::index

#endif  // QUICKVIEW_INDEX_PATH_INDEX_H_
