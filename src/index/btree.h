// In-memory B+-tree on byte-string keys — the index substrate behind the
// path index and the inverted-list index (paper §3.2: "A B+-tree index is
// built on the (Path, Value) pair", "an index such as a B+-tree is usually
// built on top of each inverted list"). Supports point lookups, ordered
// iteration and prefix scans. Node-visit counters provide the I/O cost
// model used by the benchmark harness.
#ifndef QUICKVIEW_INDEX_BTREE_H_
#define QUICKVIEW_INDEX_BTREE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace quickview::index {

/// B+-tree mapping string keys to string values. Keys are unique; Insert
/// overwrites. Deletion is lazy (no rebalancing) since quickview indices
/// are bulk-built once per database load.
///
/// Thread safety: externally synchronized, thread-compatible. Lookups
/// and scans are const and may run concurrently; Insert/Delete require
/// exclusion against all other access. The tree itself carries no mutex
/// (and hence no QV_GUARDED_BY members — see common/sync.h): in the
/// live engine every BTree lives inside a DatabaseIndexes owned by
/// LiveDatabase, whose annotated reader-writer lock is the capability
/// that guards it. When latch-crabbed concurrent writers land (ROADMAP),
/// the per-node latches will be qv primitives so the same analysis
/// covers them.
class BTree {
 private:
  struct Node;
  struct Leaf;
  struct Interior;

 public:
  /// Snapshot of the node-visit counters. The live counters are relaxed
  /// atomics so concurrent readers (lookups and scans are logically const)
  /// can count without data races; a snapshot is not an atomic pair, which
  /// is fine for the cost model the benchmarks build from it.
  struct Stats {  // lint:allow(adhoc-stats) per-index structural stats, not telemetry
    uint64_t nodes_visited = 0;  // interior + leaf nodes touched
    uint64_t entries_scanned = 0;
  };

  static constexpr int kFanout = 64;  // max keys per node

  BTree();
  ~BTree();
  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts or overwrites.
  void Insert(std::string_view key, std::string_view value);

  /// Point lookup; returns false if absent (ignoring that is always a
  /// bug — `value` is untouched then).
  [[nodiscard]] bool Get(std::string_view key, std::string* value) const;

  /// Removes the key if present; returns whether it existed.
  bool Delete(std::string_view key);

  size_t size() const { return size_; }
  int height() const { return height_; }

  Stats stats() const {
    return Stats{nodes_visited_.load(std::memory_order_relaxed),
                 entries_scanned_.load(std::memory_order_relaxed)};
  }
  void ResetStats() {
    nodes_visited_.store(0, std::memory_order_relaxed);
    entries_scanned_.store(0, std::memory_order_relaxed);
  }

  /// Forward iterator over (key, value) pairs in key order. Scan
  /// counters accumulate locally and flush to the tree's shared atomic
  /// stats once, on destruction — one contended write per scan instead
  /// of one per entry (matters when many query threads share an index).
  /// Copying copies the position only; pending counts stay with the
  /// original.
  class Iterator {
   public:
    Iterator() = default;
    Iterator(const Iterator& other)
        : leaf_(other.leaf_), pos_(other.pos_), tree_(other.tree_) {}
    Iterator& operator=(const Iterator& other) {
      if (this != &other) {
        Flush();
        leaf_ = other.leaf_;
        pos_ = other.pos_;
        tree_ = other.tree_;
      }
      return *this;
    }
    ~Iterator() { Flush(); }

    bool Valid() const;
    const std::string& key() const;
    const std::string& value() const;
    void Next();

   private:
    friend class BTree;
    void Flush();

    Leaf* leaf_ = nullptr;
    int pos_ = 0;
    const BTree* tree_ = nullptr;
    uint64_t pending_entries_ = 0;
    uint64_t pending_nodes_ = 0;
  };

  /// Iterator positioned at the first key >= `key`.
  Iterator Seek(std::string_view key) const;

  /// Iterator at the smallest key.
  Iterator Begin() const;

  /// Collects all (key, value) pairs whose key starts with `prefix`,
  /// in key order.
  std::vector<std::pair<std::string, std::string>> PrefixScan(
      std::string_view prefix) const;

 private:
  Leaf* FindLeaf(std::string_view key) const;
  void SplitChild(Interior* parent, int child_pos);
  static void FreeNode(Node* node);

  void CountNodeVisits(uint64_t n) const {
    nodes_visited_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountEntriesScanned(uint64_t n) const {
    entries_scanned_.fetch_add(n, std::memory_order_relaxed);
  }

  Node* root_;
  size_t size_ = 0;
  int height_ = 1;
  mutable std::atomic<uint64_t> nodes_visited_{0};
  mutable std::atomic<uint64_t> entries_scanned_{0};
};

}  // namespace quickview::index

#endif  // QUICKVIEW_INDEX_BTREE_H_
