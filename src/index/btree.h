// In-memory B+-tree on byte-string keys — the index substrate behind the
// path index and the inverted-list index (paper §3.2: "A B+-tree index is
// built on the (Path, Value) pair", "an index such as a B+-tree is usually
// built on top of each inverted list"). Supports point lookups, ordered
// iteration and prefix scans. Node-visit counters provide the I/O cost
// model used by the benchmark harness.
#ifndef QUICKVIEW_INDEX_BTREE_H_
#define QUICKVIEW_INDEX_BTREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace quickview::index {

/// B+-tree mapping string keys to string values. Keys are unique; Insert
/// overwrites. Deletion is lazy (no rebalancing) since quickview indices
/// are bulk-built once per database load.
class BTree {
 private:
  struct Node;
  struct Leaf;
  struct Interior;

 public:
  struct Stats {
    uint64_t nodes_visited = 0;  // interior + leaf nodes touched
    uint64_t entries_scanned = 0;
  };

  static constexpr int kFanout = 64;  // max keys per node

  BTree();
  ~BTree();
  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts or overwrites.
  void Insert(std::string_view key, std::string_view value);

  /// Point lookup; returns false if absent.
  bool Get(std::string_view key, std::string* value) const;

  /// Removes the key if present; returns whether it existed.
  bool Delete(std::string_view key);

  size_t size() const { return size_; }
  int height() const { return height_; }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Forward iterator over (key, value) pairs in key order.
  class Iterator {
   public:
    bool Valid() const;
    const std::string& key() const;
    const std::string& value() const;
    void Next();

   private:
    friend class BTree;
    Leaf* leaf_ = nullptr;
    int pos_ = 0;
    const BTree* tree_ = nullptr;
  };

  /// Iterator positioned at the first key >= `key`.
  Iterator Seek(std::string_view key) const;

  /// Iterator at the smallest key.
  Iterator Begin() const;

  /// Collects all (key, value) pairs whose key starts with `prefix`,
  /// in key order.
  std::vector<std::pair<std::string, std::string>> PrefixScan(
      std::string_view prefix) const;

 private:
  Leaf* FindLeaf(std::string_view key) const;
  void SplitChild(Interior* parent, int child_pos);
  static void FreeNode(Node* node);

  Node* root_;
  size_t size_ = 0;
  int height_ = 1;
  mutable Stats stats_;
};

}  // namespace quickview::index

#endif  // QUICKVIEW_INDEX_BTREE_H_
