#include "index/inverted_index.h"

namespace quickview::index {

namespace {
constexpr char kKeySep = '\x01';

std::string EncodeTf(uint32_t tf) {
  std::string out(4, '\0');
  out[0] = static_cast<char>((tf >> 24) & 0xff);
  out[1] = static_cast<char>((tf >> 16) & 0xff);
  out[2] = static_cast<char>((tf >> 8) & 0xff);
  out[3] = static_cast<char>(tf & 0xff);
  return out;
}

uint32_t DecodeTf(const std::string& bytes) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(bytes[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(bytes[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(bytes[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[3]));
}
}  // namespace

std::string InvertedIndex::MakeKey(const std::string& term,
                                   const xml::DeweyId& id) {
  std::string key = term;
  key.push_back(kKeySep);
  key.append(id.Encode());
  return key;
}

void InvertedIndex::Add(const std::string& term, const xml::DeweyId& id,
                        uint32_t count) {
  if (count == 0) return;
  std::string key = MakeKey(term, id);
  std::string existing;
  if (tree_.Get(key, &existing)) count += DecodeTf(existing);
  tree_.Insert(key, EncodeTf(count));
}

bool InvertedIndex::Remove(const std::string& term, const xml::DeweyId& id) {
  return tree_.Delete(MakeKey(term, id));
}

std::vector<Posting> InvertedIndex::Lookup(const std::string& term) const {
  std::vector<Posting> out;
  std::string prefix = term;
  prefix.push_back(kKeySep);
  for (BTree::Iterator it = tree_.Seek(prefix); it.Valid(); it.Next()) {
    if (it.key().compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(Posting{xml::DeweyId::Decode(it.key().substr(prefix.size())),
                          DecodeTf(it.value())});
  }
  return out;
}

bool InvertedIndex::Contains(const std::string& term, const xml::DeweyId& id,
                             uint32_t* tf) const {
  std::string encoded;
  if (!tree_.Get(MakeKey(term, id), &encoded)) return false;
  if (tf != nullptr) *tf = DecodeTf(encoded);
  return true;
}

void InvertedIndex::ForEachPosting(
    const std::function<void(const std::string&, const xml::DeweyId&,
                             uint32_t)>& fn) const {
  for (BTree::Iterator it = tree_.Begin(); it.Valid(); it.Next()) {
    size_t sep = it.key().find(kKeySep);
    fn(it.key().substr(0, sep),
       xml::DeweyId::Decode(it.key().substr(sep + 1)),
       DecodeTf(it.value()));
  }
}

size_t InvertedIndex::ListLength(const std::string& term) const {
  size_t count = 0;
  std::string prefix = term;
  prefix.push_back(kKeySep);
  for (BTree::Iterator it = tree_.Seek(prefix); it.Valid(); it.Next()) {
    if (it.key().compare(0, prefix.size(), prefix) != 0) break;
    ++count;
  }
  return count;
}

}  // namespace quickview::index
