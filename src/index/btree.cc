#include "index/btree.h"

#include <algorithm>
#include <cassert>

namespace quickview::index {

struct BTree::Node {
  bool is_leaf;
  std::vector<std::string> keys;

  explicit Node(bool leaf) : is_leaf(leaf) {}
};

struct BTree::Leaf : BTree::Node {
  std::vector<std::string> values;
  Leaf* next = nullptr;

  Leaf() : Node(/*leaf=*/true) {}
};

struct BTree::Interior : BTree::Node {
  // children.size() == keys.size() + 1; keys[i] is the smallest key
  // reachable through children[i + 1].
  std::vector<Node*> children;

  Interior() : Node(/*leaf=*/false) {}
};

BTree::BTree() : root_(new Leaf()) {}

void BTree::FreeNode(Node* node) {
  if (!node->is_leaf) {
    for (Node* child : static_cast<Interior*>(node)->children) {
      FreeNode(child);
    }
    delete static_cast<Interior*>(node);
  } else {
    delete static_cast<Leaf*>(node);
  }
}

BTree::~BTree() { FreeNode(root_); }

namespace {

// Index of the child to descend into for `key`.
int ChildIndex(const std::vector<std::string>& keys, std::string_view key) {
  auto it = std::upper_bound(keys.begin(), keys.end(), key,
                             [](std::string_view a, const std::string& b) {
                               return a < std::string_view(b);
                             });
  return static_cast<int>(it - keys.begin());
}

}  // namespace

BTree::Leaf* BTree::FindLeaf(std::string_view key) const {
  Node* node = root_;
  uint64_t visited = 1;
  while (!node->is_leaf) {
    Interior* interior = static_cast<Interior*>(node);
    node = interior->children[ChildIndex(interior->keys, key)];
    ++visited;
  }
  CountNodeVisits(visited);
  return static_cast<Leaf*>(node);
}

void BTree::SplitChild(Interior* parent, int child_pos) {
  Node* child = parent->children[child_pos];
  size_t mid = child->keys.size() / 2;
  if (child->is_leaf) {
    Leaf* left = static_cast<Leaf*>(child);
    Leaf* right = new Leaf();
    right->keys.assign(left->keys.begin() + mid, left->keys.end());
    right->values.assign(left->values.begin() + mid, left->values.end());
    left->keys.resize(mid);
    left->values.resize(mid);
    right->next = left->next;
    left->next = right;
    parent->keys.insert(parent->keys.begin() + child_pos,
                        right->keys.front());
    parent->children.insert(parent->children.begin() + child_pos + 1, right);
  } else {
    Interior* left = static_cast<Interior*>(child);
    Interior* right = new Interior();
    // keys[mid] moves up; right gets keys after it.
    std::string up = left->keys[mid];
    right->keys.assign(left->keys.begin() + mid + 1, left->keys.end());
    right->children.assign(left->children.begin() + mid + 1,
                           left->children.end());
    left->keys.resize(mid);
    left->children.resize(mid + 1);
    parent->keys.insert(parent->keys.begin() + child_pos, std::move(up));
    parent->children.insert(parent->children.begin() + child_pos + 1, right);
  }
}

void BTree::Insert(std::string_view key, std::string_view value) {
  if (root_->keys.size() >= kFanout) {
    Interior* new_root = new Interior();
    new_root->children.push_back(root_);
    SplitChild(new_root, 0);
    root_ = new_root;
    ++height_;
  }
  Node* node = root_;
  while (!node->is_leaf) {
    Interior* interior = static_cast<Interior*>(node);
    int pos = ChildIndex(interior->keys, key);
    if (interior->children[pos]->keys.size() >= kFanout) {
      SplitChild(interior, pos);
      if (key >= std::string_view(interior->keys[pos])) ++pos;
    }
    node = interior->children[pos];
  }
  Leaf* leaf = static_cast<Leaf*>(node);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key,
                             [](const std::string& a, std::string_view b) {
                               return std::string_view(a) < b;
                             });
  size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  if (it != leaf->keys.end() && *it == key) {
    leaf->values[pos] = std::string(value);
    return;
  }
  leaf->keys.insert(it, std::string(key));
  leaf->values.insert(leaf->values.begin() + pos, std::string(value));
  ++size_;
}

bool BTree::Get(std::string_view key, std::string* value) const {
  Leaf* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key,
                             [](const std::string& a, std::string_view b) {
                               return std::string_view(a) < b;
                             });
  if (it == leaf->keys.end() || *it != key) return false;
  CountEntriesScanned(1);
  if (value != nullptr) {
    *value = leaf->values[it - leaf->keys.begin()];
  }
  return true;
}

bool BTree::Delete(std::string_view key) {
  Leaf* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key,
                             [](const std::string& a, std::string_view b) {
                               return std::string_view(a) < b;
                             });
  if (it == leaf->keys.end() || *it != key) return false;
  size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  leaf->keys.erase(it);
  leaf->values.erase(leaf->values.begin() + pos);
  --size_;
  return true;
}

bool BTree::Iterator::Valid() const {
  return leaf_ != nullptr && pos_ < static_cast<int>(leaf_->keys.size());
}

const std::string& BTree::Iterator::key() const {
  assert(Valid());
  return leaf_->keys[pos_];
}

const std::string& BTree::Iterator::value() const {
  assert(Valid());
  return leaf_->values[pos_];
}

void BTree::Iterator::Next() {
  assert(Valid());
  ++pending_entries_;
  ++pos_;
  while (leaf_ != nullptr && pos_ >= static_cast<int>(leaf_->keys.size())) {
    leaf_ = leaf_->next;
    pos_ = 0;
    if (leaf_ != nullptr) ++pending_nodes_;
  }
}

void BTree::Iterator::Flush() {
  if (tree_ == nullptr) return;
  if (pending_entries_ != 0) tree_->CountEntriesScanned(pending_entries_);
  if (pending_nodes_ != 0) tree_->CountNodeVisits(pending_nodes_);
  pending_entries_ = 0;
  pending_nodes_ = 0;
}

BTree::Iterator BTree::Seek(std::string_view key) const {
  Leaf* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key,
                             [](const std::string& a, std::string_view b) {
                               return std::string_view(a) < b;
                             });
  Iterator iter;
  iter.tree_ = this;
  iter.leaf_ = leaf;
  iter.pos_ = static_cast<int>(it - leaf->keys.begin());
  // Skip an exhausted leaf (possible after lazy deletes).
  while (iter.leaf_ != nullptr &&
         iter.pos_ >= static_cast<int>(iter.leaf_->keys.size())) {
    iter.leaf_ = iter.leaf_->next;
    iter.pos_ = 0;
  }
  return iter;
}

BTree::Iterator BTree::Begin() const { return Seek(""); }

std::vector<std::pair<std::string, std::string>> BTree::PrefixScan(
    std::string_view prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (Iterator it = Seek(prefix); it.Valid(); it.Next()) {
    if (it.key().compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it.key(), it.value());
  }
  return out;
}

}  // namespace quickview::index
