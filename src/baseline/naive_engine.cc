#include "baseline/naive_engine.h"

#include <chrono>

#include "common/strings.h"
#include "scoring/scorer.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace quickview::baseline {

namespace {
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}
}  // namespace

Result<engine::SearchResponse> NaiveEngine::Search(
    const std::string& query, const engine::SearchOptions& options) const {
  QV_ASSIGN_OR_RETURN(xquery::KeywordQuery kq,
                      xquery::ParseKeywordQuery(query));
  engine::SearchResponse response;

  // Materialize the entire view (the expensive step the paper measures as
  // "58 seconds spent on materializing the view").
  Clock::time_point start = Clock::now();
  xquery::Evaluator evaluator(database_);
  QV_ASSIGN_OR_RETURN(xquery::Sequence view_results,
                      evaluator.Evaluate(kq.view));
  response.timings.eval_ms = MsSince(start);

  // Tokenize + score the materialized results; serialize the top k.
  start = Clock::now();
  scoring::ScoringOutcome outcome =
      scoring::ScoreResults(view_results, kq.keywords, kq.conjunctive);
  std::vector<scoring::ScoredResult>& scored = outcome.ranked;
  response.stats.view_results = view_results.size();
  response.stats.matching_results = scored.size();
  response.stats.view_bytes = outcome.view_bytes;
  scoring::TakeTopK(&scored, options.top_k);
  for (const scoring::ScoredResult& r : scored) {
    engine::SearchHit hit;
    hit.score = r.score;
    hit.tf = r.tf;
    hit.byte_length = r.byte_length;
    hit.xml = xml::Serialize(*r.result.doc, r.result.effective_index());
    response.hits.push_back(std::move(hit));
  }
  response.timings.post_ms = MsSince(start);
  return response;
}

Result<engine::SearchResponse> NaiveEngine::SearchView(
    const std::string& view_text, const std::vector<std::string>& keywords,
    const engine::SearchOptions& options) const {
  std::string query = "let $view := " + view_text + "\nfor $qv in $view\n";
  query += "where $qv ftcontains(";
  for (size_t i = 0; i < keywords.size(); ++i) {
    if (i > 0) query += options.conjunctive ? " & " : " | ";
    query += "'" + AsciiToLower(keywords[i]) + "'";
  }
  query += ")\nreturn $qv";
  return Search(query, options);
}

}  // namespace quickview::baseline
