#include "baseline/projection.h"

namespace quickview::baseline {

std::vector<ProjectionPath> ProjectionPathsFromQpt(const qpt::Qpt& qpt) {
  std::vector<ProjectionPath> out;
  for (size_t i = 1; i < qpt.nodes.size(); ++i) {
    ProjectionPath path;
    path.pattern = qpt.PatternFor(static_cast<int>(i));
    path.keep_subtree = qpt.nodes[i].c_ann;
    out.push_back(std::move(path));
  }
  return out;
}

namespace {

struct MatchState {
  int path = 0;
  int pos = 0;  // number of steps already matched
};

struct Marks {
  std::vector<char> matched;        // element itself on some path
  std::vector<char> keep_subtree;   // '#'-style subtree materialization
};

void Scan(const xml::Document& doc, xml::NodeIndex index,
          const std::vector<ProjectionPath>& paths,
          const std::vector<MatchState>& active, Marks* marks,
          uint64_t* scanned) {
  ++*scanned;
  const xml::Node& node = doc.node(index);
  std::vector<MatchState> next;
  for (const MatchState& state : active) {
    const index::PathPattern& pattern = paths[state.path].pattern;
    const index::PathStep& step = pattern[state.pos];
    // '//' steps stay armed arbitrarily deep.
    if (step.descendant) next.push_back(state);
    if (node.tag == step.tag) {
      if (state.pos + 1 == static_cast<int>(pattern.size())) {
        marks->matched[index] = true;
        if (paths[state.path].keep_subtree) marks->keep_subtree[index] = true;
      } else {
        next.push_back(MatchState{state.path, state.pos + 1});
      }
    }
  }
  for (xml::NodeIndex child : node.children) {
    Scan(doc, child, paths, next, marks, scanned);
  }
}

/// Post-order: subtree contains a match somewhere.
bool ComputeHasKept(const xml::Document& doc, xml::NodeIndex index,
                    const Marks& marks, std::vector<char>* has_kept) {
  bool any = marks.matched[index] || marks.keep_subtree[index];
  for (xml::NodeIndex child : doc.node(index).children) {
    if (ComputeHasKept(doc, child, marks, has_kept)) any = true;
  }
  (*has_kept)[index] = any;
  return any;
}

/// Copies kept structure into `target` (matched elements with text,
/// ancestors of matches structurally, subtrees of '#' matches fully).
void Build(const xml::Document& doc, xml::NodeIndex index, const Marks& marks,
           const std::vector<char>& has_kept, bool under_subtree,
           xml::Document* target, xml::NodeIndex target_parent,
           uint64_t* kept) {
  const xml::Node& node = doc.node(index);
  bool keep_all = under_subtree || marks.keep_subtree[index];
  bool self = keep_all || marks.matched[index];
  if (!self && !has_kept[index]) return;

  xml::NodeIndex copied =
      target_parent == xml::kInvalidNode
          ? target->CreateRoot(node.tag)
          : target->AddChildWithId(target_parent, node.tag, node.id);
  ++*kept;
  if (self) target->node(copied).text = node.text;
  for (xml::NodeIndex child : node.children) {
    Build(doc, child, marks, has_kept, keep_all, target, copied, kept);
  }
}

}  // namespace

std::shared_ptr<xml::Document> ProjectDocument(
    const xml::Document& doc, const std::vector<ProjectionPath>& paths,
    ProjectionStats* stats) {
  auto out = std::make_shared<xml::Document>(doc.root_component());
  if (!doc.has_root()) return out;
  Marks marks;
  marks.matched.assign(doc.size(), false);
  marks.keep_subtree.assign(doc.size(), false);
  std::vector<MatchState> initial;
  for (size_t i = 0; i < paths.size(); ++i) {
    if (!paths[i].pattern.empty()) {
      initial.push_back(MatchState{static_cast<int>(i), 0});
    }
  }
  uint64_t scanned = 0;
  Scan(doc, doc.root(), paths, initial, &marks, &scanned);
  std::vector<char> has_kept(doc.size(), false);
  ComputeHasKept(doc, doc.root(), marks, &has_kept);
  uint64_t kept = 0;
  Build(doc, doc.root(), marks, has_kept, /*under_subtree=*/false, out.get(),
        xml::kInvalidNode, &kept);
  if (stats != nullptr) {
    stats->elements_scanned = scanned;
    stats->elements_kept = kept;
  }
  return out;
}

std::shared_ptr<xml::Document> ProjectDocument(
    const xml::Document& doc, const std::vector<ProjectionPath>& paths) {
  return ProjectDocument(doc, paths, nullptr);
}

}  // namespace quickview::baseline
