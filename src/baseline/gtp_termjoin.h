// "GTP" comparator of paper §5.1: Generalized Tree Patterns [14] with
// TermJoin [2], the state-of-the-art integration of structure and keyword
// search the paper compares against. It computes the same pruned trees as
// the PDT module but in the way Timber would:
//   - per-QPT-node element streams are fetched *by tag* (not by path), so
//     the streams are longer;
//   - the document hierarchy is reconstructed with stack-style structural
//     joins over the Dewey-ordered tag streams (CE bottom-up, PE
//     top-down);
//   - join values and predicate operands are read from *base document
//     storage*, not from the path index ("GTP requires accessing the base
//     data to support value joins").
// Keyword statistics come from the inverted index (TermJoin's role). The
// resulting pruned documents feed the same evaluator and scorer, so the
// comparison isolates exactly the two costs the paper attributes to GTP.
#ifndef QUICKVIEW_BASELINE_GTP_TERMJOIN_H_
#define QUICKVIEW_BASELINE_GTP_TERMJOIN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "qpt/qpt.h"
#include "storage/document_store.h"
#include "xml/dom.h"

namespace quickview::baseline {

/// Builds the pruned document for one QPT the Timber way (tag streams +
/// structural joins + base-data value/length access). Exposed so the
/// ablation benchmark can compare construction costs against GeneratePdt
/// directly.
Result<std::shared_ptr<xml::Document>> BuildGtpPrunedDocument(
    const qpt::Qpt& qpt, const index::DocumentIndexes& indexes,
    const storage::DocumentStore* store,
    const std::vector<std::string>& keywords,
    storage::DocumentStore::Stats* fetch_stats = nullptr);

class GtpTermJoinEngine {
 public:
  GtpTermJoinEngine(const xml::Database* database,
                    const index::DatabaseIndexes* indexes,
                    const storage::DocumentStore* store)
      : database_(database), indexes_(indexes), store_(store) {}

  Result<engine::SearchResponse> Search(
      const std::string& query, const engine::SearchOptions& options) const;

  Result<engine::SearchResponse> SearchView(
      const std::string& view_text, const std::vector<std::string>& keywords,
      const engine::SearchOptions& options) const;

 private:
  const xml::Database* database_;
  const index::DatabaseIndexes* indexes_;
  const storage::DocumentStore* store_;
};

}  // namespace quickview::baseline

#endif  // QUICKVIEW_BASELINE_GTP_TERMJOIN_H_
