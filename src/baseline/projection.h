// "Proj" comparator of paper §5.1: projecting XML documents [30]. Given
// the projection paths of a query, PROJ makes a full streaming scan of
// each base document and retains every element on a projection path
// (materializing subtrees of paths marked '#' — here, the QPT's 'c'
// nodes). The paper measures exactly this projected-document generation
// cost, which is dominated by the full document scan; quickview's PDT
// module replaces the scan with index probes.
#ifndef QUICKVIEW_BASELINE_PROJECTION_H_
#define QUICKVIEW_BASELINE_PROJECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/path_index.h"
#include "qpt/qpt.h"
#include "xml/dom.h"

namespace quickview::baseline {

/// One projection path, optionally keeping the whole subtree of matches
/// (PROJ's '#' annotation).
struct ProjectionPath {
  index::PathPattern pattern;
  bool keep_subtree = false;
};

/// Derives the projection paths of a QPT: one per QPT node; 'c' nodes
/// keep their subtrees. PROJ has isolated-path semantics — predicates and
/// twig (mandatory-edge) constraints are NOT applied, which is one of the
/// semantic differences the paper calls out in §4.
std::vector<ProjectionPath> ProjectionPathsFromQpt(const qpt::Qpt& qpt);

/// Scans `doc` once and builds the projected document: every element
/// matching some path is kept (with text for subtree-kept matches and all
/// their descendants); ancestors of kept elements are kept structurally.
std::shared_ptr<xml::Document> ProjectDocument(
    const xml::Document& doc, const std::vector<ProjectionPath>& paths);

/// Statistics of a projection run.
struct ProjectionStats {  // lint:allow(adhoc-stats) per-run baseline measurement record
  uint64_t elements_scanned = 0;  // full scan: every element of the doc
  uint64_t elements_kept = 0;
};

std::shared_ptr<xml::Document> ProjectDocument(
    const xml::Document& doc, const std::vector<ProjectionPath>& paths,
    ProjectionStats* stats);

}  // namespace quickview::baseline

#endif  // QUICKVIEW_BASELINE_PROJECTION_H_
