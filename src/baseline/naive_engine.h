// "Baseline" comparator of paper §5.1: materializes the entire view at
// query time by evaluating the view over the base documents, tokenizes the
// materialized results, and only then scores and returns the top k. Same
// public response types as ViewSearchEngine, so benchmarks and parity
// tests interchange them freely.
#ifndef QUICKVIEW_BASELINE_NAIVE_ENGINE_H_
#define QUICKVIEW_BASELINE_NAIVE_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/view_search_engine.h"
#include "storage/document_store.h"
#include "xml/dom.h"

namespace quickview::baseline {

class NaiveEngine {
 public:
  explicit NaiveEngine(const xml::Database* database) : database_(database) {}

  Result<engine::SearchResponse> Search(
      const std::string& query, const engine::SearchOptions& options) const;

  Result<engine::SearchResponse> SearchView(
      const std::string& view_text, const std::vector<std::string>& keywords,
      const engine::SearchOptions& options) const;

 private:
  const xml::Database* database_;
};

}  // namespace quickview::baseline

#endif  // QUICKVIEW_BASELINE_NAIVE_ENGINE_H_
