#include "baseline/gtp_termjoin.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/strings.h"
#include "qpt/generate_qpt.h"
#include "scoring/materializer.h"
#include "scoring/scorer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace quickview::baseline {

namespace {

using Clock = std::chrono::steady_clock;
using xml::DeweyId;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct GtpEntry {
  DeweyId id;
  uint64_t byte_length = 0;
  std::optional<std::string> value;
};

DeweyId Successor(const DeweyId& id) {
  std::vector<uint32_t> components = id.components();
  ++components.back();
  return DeweyId(std::move(components));
}

/// Stack-style structural semijoin: parents that have at least one element
/// of `children` as a child ('/') or descendant ('//'). Both inputs are
/// Dewey-ordered; parent ranges may nest, so each parent binary-searches
/// its subtree range.
std::vector<GtpEntry> HasDescendant(const std::vector<GtpEntry>& parents,
                                    const std::vector<GtpEntry>& children,
                                    bool parent_child) {
  std::vector<GtpEntry> out;
  for (const GtpEntry& p : parents) {
    auto lo = std::lower_bound(children.begin(), children.end(), p.id,
                               [](const GtpEntry& e, const DeweyId& key) {
                                 return e.id < key;
                               });
    DeweyId succ = Successor(p.id);
    bool found = false;
    for (auto it = lo; it != children.end() && it->id < succ; ++it) {
      if (!p.id.IsAncestorOf(it->id)) continue;
      if (!parent_child || it->id.depth() == p.id.depth() + 1) {
        found = true;
        break;
      }
    }
    if (found) out.push_back(p);
  }
  return out;
}

/// Children that have some element of `parents` as parent ('/') or
/// ancestor ('//').
std::vector<GtpEntry> HasAncestor(const std::vector<GtpEntry>& children,
                                  const std::vector<GtpEntry>& parents,
                                  bool parent_child) {
  std::vector<DeweyId> parent_ids;
  parent_ids.reserve(parents.size());
  for (const GtpEntry& p : parents) parent_ids.push_back(p.id);
  auto contains = [&parent_ids](const DeweyId& id) {
    return std::binary_search(parent_ids.begin(), parent_ids.end(), id);
  };
  std::vector<GtpEntry> out;
  for (const GtpEntry& c : children) {
    bool found = false;
    if (parent_child) {
      if (c.id.depth() >= 2) found = contains(c.id.Parent());
    } else {
      for (size_t depth = 1; depth < c.id.depth(); ++depth) {
        if (contains(c.id.Prefix(depth))) {
          found = true;
          break;
        }
      }
    }
    if (found) out.push_back(c);
  }
  return out;
}

}  // namespace

Result<std::shared_ptr<xml::Document>> BuildGtpPrunedDocument(
    const qpt::Qpt& qpt, const index::DocumentIndexes& indexes,
    const storage::DocumentStore* store,
    const std::vector<std::string>& keywords,
    storage::DocumentStore::Stats* fetch_stats) {
  const size_t n = qpt.nodes.size();
  std::vector<std::vector<GtpEntry>> streams(n);

  // Tag streams: all elements with the node's tag, regardless of path.
  for (size_t i = 1; i < n; ++i) {
    const qpt::QptNode& node = qpt.nodes[i];
    index::PathPattern tag_pattern{index::PathStep{true, node.tag}};
    for (index::PathEntry& e : indexes.path_index.LookUpId(tag_pattern)) {
      streams[i].push_back(GtpEntry{std::move(e.id), e.byte_length, {}});
    }
    // Values for predicates and 'v' nodes come from base storage.
    if (node.v_ann || !node.preds.empty()) {
      std::vector<GtpEntry> kept;
      for (GtpEntry& e : streams[i]) {
        std::string value;
        QV_RETURN_IF_ERROR(
            store->GetValue(e.id.component(0), e.id, &value, fetch_stats));
        bool passes = true;
        for (const qpt::QptPredicate& pred : node.preds) {
          if (!pred.Matches(value)) {
            passes = false;
            break;
          }
        }
        if (!passes) continue;
        if (node.v_ann) e.value = std::move(value);
        kept.push_back(std::move(e));
      }
      streams[i] = std::move(kept);
    }
  }

  // CE bottom-up: children have larger indices than parents by
  // construction, so a reverse scan visits children first.
  std::vector<std::vector<GtpEntry>> ce(n);
  for (size_t i = n; i-- > 1;) {
    std::vector<GtpEntry> current = std::move(streams[i]);
    for (int child : qpt.nodes[i].children) {
      if (!qpt.nodes[child].parent_mandatory) continue;
      current = HasDescendant(current, ce[child],
                              !qpt.nodes[child].parent_descendant);
    }
    ce[i] = std::move(current);
  }

  // PE top-down.
  std::vector<std::vector<GtpEntry>> pe(n);
  for (size_t i = 1; i < n; ++i) {
    const qpt::QptNode& node = qpt.nodes[i];
    if (node.parent == 0) {
      // Edge from the virtual document root: '/' pins the element to the
      // document root (depth 1); '//' admits any depth.
      for (GtpEntry& e : ce[i]) {
        if (node.parent_descendant || e.id.depth() == 1) {
          pe[i].push_back(std::move(e));
        }
      }
    } else {
      pe[i] = HasAncestor(ce[i], pe[node.parent], !node.parent_descendant);
    }
  }

  // Assemble, fetching byte lengths for 'c' nodes from base storage and
  // keyword statistics from the inverted index (TermJoin's integration).
  std::map<DeweyId, pdt::PdtElement> elements;
  for (size_t i = 1; i < n; ++i) {
    const qpt::QptNode& node = qpt.nodes[i];
    for (GtpEntry& e : pe[i]) {
      pdt::PdtElement& out = elements[e.id];
      if (out.tag.empty()) out.tag = node.tag;
      if (e.value.has_value()) out.value = std::move(e.value);
      out.content = out.content || node.c_ann;
      if (node.c_ann && out.byte_length == 0) {
        QV_RETURN_IF_ERROR(store->GetSubtreeLength(
            e.id.component(0), e.id, &out.byte_length, fetch_stats));
      }
    }
  }
  std::vector<pdt::InvList> inv_lists;
  for (const std::string& keyword : keywords) {
    pdt::InvList inv;
    inv.term = keyword;
    inv.postings = indexes.inverted_index.Lookup(keyword);
    inv.BuildPrefix();
    inv_lists.push_back(std::move(inv));
  }
  return pdt::AssemblePdtDocument(elements, inv_lists);
}

Result<engine::SearchResponse> GtpTermJoinEngine::Search(
    const std::string& query, const engine::SearchOptions& options) const {
  QV_ASSIGN_OR_RETURN(xquery::KeywordQuery kq,
                      xquery::ParseKeywordQuery(query));
  engine::SearchResponse response;
  Clock::time_point start = Clock::now();
  QV_ASSIGN_OR_RETURN(std::vector<qpt::Qpt> qpts,
                      qpt::GenerateQpts(&kq.view));
  response.timings.qpt_ms = MsSince(start);

  start = Clock::now();
  storage::DocumentStore::Stats fetches;
  std::vector<std::shared_ptr<xml::Document>> pruned;
  for (const qpt::Qpt& q : qpts) {
    const index::DocumentIndexes* doc_indexes = indexes_->Get(q.source_doc);
    if (doc_indexes == nullptr) {
      return Status::NotFound("no indexes for document '" + q.source_doc +
                              "'");
    }
    QV_ASSIGN_OR_RETURN(
        std::shared_ptr<xml::Document> doc,
        BuildGtpPrunedDocument(q, *doc_indexes, store_, kq.keywords,
                               &fetches));
    pruned.push_back(std::move(doc));
  }
  response.timings.pdt_ms = MsSince(start);

  start = Clock::now();
  xquery::Evaluator evaluator(database_);
  for (size_t i = 0; i < qpts.size(); ++i) {
    evaluator.OverrideDocument(qpts[i].occurrence_name, pruned[i].get());
  }
  QV_ASSIGN_OR_RETURN(xquery::Sequence view_results,
                      evaluator.Evaluate(kq.view));
  response.timings.eval_ms = MsSince(start);

  start = Clock::now();
  scoring::ScoringOutcome outcome =
      scoring::ScoreResults(view_results, kq.keywords, kq.conjunctive);
  std::vector<scoring::ScoredResult>& scored = outcome.ranked;
  response.stats.view_results = view_results.size();
  response.stats.matching_results = scored.size();
  response.stats.view_bytes = outcome.view_bytes;
  scoring::TakeTopK(&scored, options.top_k);
  for (const scoring::ScoredResult& r : scored) {
    engine::SearchHit hit;
    hit.score = r.score;
    hit.tf = r.tf;
    hit.byte_length = r.byte_length;
    QV_ASSIGN_OR_RETURN(
        hit.xml, scoring::MaterializeToXml(r.result, store_, &fetches));
    response.hits.push_back(std::move(hit));
  }
  response.stats.store_fetches = fetches.fetch_calls;
  response.stats.store_bytes = fetches.bytes_fetched;
  response.timings.post_ms = MsSince(start);
  return response;
}

Result<engine::SearchResponse> GtpTermJoinEngine::SearchView(
    const std::string& view_text, const std::vector<std::string>& keywords,
    const engine::SearchOptions& options) const {
  std::string query = "let $view := " + view_text + "\nfor $qv in $view\n";
  query += "where $qv ftcontains(";
  for (size_t i = 0; i < keywords.size(); ++i) {
    if (i > 0) query += options.conjunctive ? " & " : " | ";
    query += "'" + AsciiToLower(keywords[i]) + "'";
  }
  query += ")\nreturn $qv";
  return Search(query, options);
}

}  // namespace quickview::baseline
