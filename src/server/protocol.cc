#include "server/protocol.h"

#include <bit>
#include <cstddef>

#include "pagestore/page.h"

namespace quickview::server {
namespace {

using pagestore::AppendU16;
using pagestore::AppendU32;
using pagestore::AppendU64;
using pagestore::ReadU16;
using pagestore::ReadU32;
using pagestore::ReadU64;

/// FNV-1a over the frame header after the magic, plus the payload — same
/// constants as pagestore::PageChecksum, so a corrupt frame surfaces as
/// an error, never as a wrong answer.
uint32_t FrameChecksum(uint8_t opcode, uint8_t flags, uint64_t request_id,
                       std::string_view payload) {
  uint32_t h = 2166136261u;
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 16777619u;
  };
  mix(static_cast<uint8_t>((kProtocolVersion >> 8) & 0xff));
  mix(static_cast<uint8_t>(kProtocolVersion & 0xff));
  mix(opcode);
  mix(flags);
  for (int shift = 56; shift >= 0; shift -= 8) {
    mix(static_cast<uint8_t>((request_id >> shift) & 0xff));
  }
  for (int shift = 24; shift >= 0; shift -= 8) {
    mix(static_cast<uint8_t>((payload.size() >> shift) & 0xff));
  }
  for (char c : payload) mix(static_cast<uint8_t>(c));
  return h;
}

void AppendString(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool ReadString(std::string_view in, size_t* pos, std::string* s) {
  uint32_t len = 0;
  if (!ReadU32(in, pos, &len)) return false;
  if (in.size() - *pos < len) return false;
  s->assign(in.substr(*pos, len));
  *pos += len;
  return true;
}

/// Doubles cross the wire as their IEEE-754 bit patterns — decode
/// returns the bit-identical value, which the server_test parity
/// assertions rely on.
void AppendF64(std::string* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

bool ReadF64(std::string_view in, size_t* pos, double* v) {
  uint64_t bits = 0;
  if (!ReadU64(in, pos, &bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

Status Truncated(const char* what) {
  return Status::ParseError(std::string("truncated ") + what + " payload");
}

Status Trailing(const char* what) {
  return Status::ParseError(std::string("trailing bytes after ") + what +
                            " payload");
}

void AppendHit(std::string* out, const engine::SearchHit& hit) {
  AppendF64(out, hit.score);
  AppendU32(out, static_cast<uint32_t>(hit.tf.size()));
  for (uint64_t tf : hit.tf) AppendU64(out, tf);
  AppendU64(out, hit.byte_length);
  AppendString(out, hit.xml);
}

bool ReadHit(std::string_view in, size_t* pos, engine::SearchHit* hit) {
  uint32_t tf_count = 0;
  if (!ReadF64(in, pos, &hit->score)) return false;
  if (!ReadU32(in, pos, &tf_count)) return false;
  // Bound the reservation by what the payload could actually hold.
  if (in.size() - *pos < static_cast<size_t>(tf_count) * 8) return false;
  hit->tf.clear();
  hit->tf.reserve(tf_count);
  for (uint32_t i = 0; i < tf_count; ++i) {
    uint64_t tf = 0;
    if (!ReadU64(in, pos, &tf)) return false;
    hit->tf.push_back(tf);
  }
  if (!ReadU64(in, pos, &hit->byte_length)) return false;
  return ReadString(in, pos, &hit->xml);
}

void AppendSearchStats(std::string* out, const engine::SearchStats& s) {
  AppendU64(out, s.view_results);
  AppendU64(out, s.matching_results);
  AppendU64(out, s.pdt.ids_processed);
  AppendU64(out, s.pdt.nodes_emitted);
  AppendU64(out, s.pdt.peak_ct_nodes);
  AppendU64(out, s.pdt.index_probes);
  AppendU64(out, s.pdt.pdt_bytes);
  AppendU64(out, s.store_fetches);
  AppendU64(out, s.store_bytes);
  AppendU64(out, s.pages_read);
  AppendU64(out, s.buffer_hits);
  AppendU64(out, s.view_bytes);
}

bool ReadSearchStats(std::string_view in, size_t* pos,
                     engine::SearchStats* s) {
  uint64_t view_results = 0;
  uint64_t matching_results = 0;
  if (!ReadU64(in, pos, &view_results)) return false;
  if (!ReadU64(in, pos, &matching_results)) return false;
  s->view_results = static_cast<size_t>(view_results);
  s->matching_results = static_cast<size_t>(matching_results);
  return ReadU64(in, pos, &s->pdt.ids_processed) &&
         ReadU64(in, pos, &s->pdt.nodes_emitted) &&
         ReadU64(in, pos, &s->pdt.peak_ct_nodes) &&
         ReadU64(in, pos, &s->pdt.index_probes) &&
         ReadU64(in, pos, &s->pdt.pdt_bytes) &&
         ReadU64(in, pos, &s->store_fetches) &&
         ReadU64(in, pos, &s->store_bytes) &&
         ReadU64(in, pos, &s->pages_read) &&
         ReadU64(in, pos, &s->buffer_hits) &&
         ReadU64(in, pos, &s->view_bytes);
}

}  // namespace

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kRegisterView:
      return "RegisterView";
    case Opcode::kSearch:
      return "Search";
    case Opcode::kOpenCursor:
      return "OpenCursor";
    case Opcode::kFetchNext:
      return "FetchNext";
    case Opcode::kCloseCursor:
      return "CloseCursor";
    case Opcode::kInsert:
      return "Insert";
    case Opcode::kRemove:
      return "Remove";
    case Opcode::kStats:
      return "Stats";
  }
  return "Unknown";
}

void EncodeFrame(const Frame& frame, std::string* out) {
  AppendU32(out, kFrameMagic);
  AppendU16(out, kProtocolVersion);
  out->push_back(static_cast<char>(frame.opcode));
  out->push_back(static_cast<char>(frame.flags));
  AppendU64(out, frame.request_id);
  AppendU32(out, static_cast<uint32_t>(frame.payload.size()));
  out->append(frame.payload);
  AppendU32(out, FrameChecksum(static_cast<uint8_t>(frame.opcode),
                               frame.flags, frame.request_id, frame.payload));
}

Result<FrameDecode> DecodeFrame(std::string_view in, Frame* frame,
                                size_t* consumed) {
  if (in.size() < kFrameHeaderSize) return FrameDecode::kNeedMore;
  size_t pos = 0;
  uint32_t magic = 0;
  uint16_t version = 0;
  uint32_t payload_len = 0;
  uint64_t request_id = 0;
  ReadU32(in, &pos, &magic);
  ReadU16(in, &pos, &version);
  const uint8_t opcode = static_cast<uint8_t>(in[pos++]);
  const uint8_t flags = static_cast<uint8_t>(in[pos++]);
  ReadU64(in, &pos, &request_id);
  ReadU32(in, &pos, &payload_len);
  if (magic != kFrameMagic) return Status::ParseError("bad frame magic");
  if (version != kProtocolVersion) {
    return Status::ParseError("unsupported protocol version " +
                              std::to_string(version));
  }
  if (opcode < kMinOpcode || opcode > kMaxOpcode) {
    return Status::ParseError("unknown opcode " + std::to_string(opcode));
  }
  if ((flags & ~(kFlagError | kFlagTrace)) != 0) {
    return Status::ParseError("reserved frame flags set");
  }
  if (payload_len > kMaxFramePayload) {
    return Status::ParseError("frame payload over limit: " +
                              std::to_string(payload_len));
  }
  const size_t total = kFrameHeaderSize + payload_len + kFrameTrailerSize;
  if (in.size() < total) return FrameDecode::kNeedMore;
  std::string_view payload = in.substr(kFrameHeaderSize, payload_len);
  pos = kFrameHeaderSize + payload_len;
  uint32_t checksum = 0;
  ReadU32(in, &pos, &checksum);
  if (checksum != FrameChecksum(opcode, flags, request_id, payload)) {
    return Status::ParseError("frame checksum mismatch");
  }
  frame->opcode = static_cast<Opcode>(opcode);
  frame->flags = flags;
  frame->request_id = request_id;
  frame->payload.assign(payload);
  *consumed = total;
  return FrameDecode::kFrame;
}

void EncodeTracedPayload(std::string_view trace, std::string_view inner,
                         std::string* out) {
  AppendU32(out, static_cast<uint32_t>(trace.size()));
  out->append(trace);
  out->append(inner);
}

Result<TracedPayload> SplitTracedPayload(std::string_view payload) {
  size_t pos = 0;
  uint32_t trace_len = 0;
  if (!ReadU32(payload, &pos, &trace_len) ||
      payload.size() - pos < trace_len) {
    return Truncated("traced payload");
  }
  TracedPayload split;
  split.trace.assign(payload.substr(pos, trace_len));
  split.inner.assign(payload.substr(pos + trace_len));
  return split;
}

// ---------------------------------------------------------------------------
// Status wire table. Frozen: append new codes, never renumber.

uint16_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kNotFound:
      return 2;
    case StatusCode::kParseError:
      return 3;
    case StatusCode::kUnsupported:
      return 4;
    case StatusCode::kEvalError:
      return 5;
    case StatusCode::kCancelled:
      return 6;
    case StatusCode::kDeadlineExceeded:
      return 7;
    case StatusCode::kInternal:
      return 8;
    case StatusCode::kResourceExhausted:
      return 9;
  }
  return 8;  // unreachable; map to Internal
}

Result<StatusCode> WireStatusCode(uint16_t wire) {
  switch (wire) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kNotFound;
    case 3:
      return StatusCode::kParseError;
    case 4:
      return StatusCode::kUnsupported;
    case 5:
      return StatusCode::kEvalError;
    case 6:
      return StatusCode::kCancelled;
    case 7:
      return StatusCode::kDeadlineExceeded;
    case 8:
      return StatusCode::kInternal;
    case 9:
      return StatusCode::kResourceExhausted;
    default:
      return Status::ParseError("unknown wire status code " +
                                std::to_string(wire));
  }
}

void EncodeStatusPayload(const Status& status, std::string* out) {
  AppendU16(out, StatusCodeToWire(status.code()));
  AppendString(out, status.message());
}

Status DecodeStatusPayload(std::string_view payload, Status* decoded) {
  size_t pos = 0;
  uint16_t wire = 0;
  std::string message;
  if (!ReadU16(payload, &pos, &wire) || !ReadString(payload, &pos, &message)) {
    return Truncated("status");
  }
  if (pos != payload.size()) return Trailing("status");
  QUICKVIEW_ASSIGN_OR_RETURN(StatusCode code, WireStatusCode(wire));
  *decoded = Status(code, std::move(message));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// RPC payloads.

void Encode(const RegisterViewRequest& req, std::string* out) {
  AppendString(out, req.name);
  AppendString(out, req.view_text);
}

Result<RegisterViewRequest> DecodeRegisterViewRequest(
    std::string_view payload) {
  RegisterViewRequest req;
  size_t pos = 0;
  if (!ReadString(payload, &pos, &req.name) ||
      !ReadString(payload, &pos, &req.view_text)) {
    return Truncated("RegisterView");
  }
  if (pos != payload.size()) return Trailing("RegisterView");
  return req;
}

void Encode(const SearchRpcRequest& req, std::string* out) {
  AppendString(out, req.view);
  AppendU32(out, static_cast<uint32_t>(req.keywords.size()));
  for (const std::string& kw : req.keywords) AppendString(out, kw);
  AppendU32(out, req.top_k);
  out->push_back(req.conjunctive ? 1 : 0);
  AppendU32(out, static_cast<uint32_t>(req.shard));
  AppendU64(out, req.deadline_ms);
}

Result<SearchRpcRequest> DecodeSearchRpcRequest(std::string_view payload) {
  SearchRpcRequest req;
  size_t pos = 0;
  uint32_t keyword_count = 0;
  if (!ReadString(payload, &pos, &req.view) ||
      !ReadU32(payload, &pos, &keyword_count)) {
    return Truncated("Search");
  }
  req.keywords.clear();
  for (uint32_t i = 0; i < keyword_count; ++i) {
    std::string kw;
    if (!ReadString(payload, &pos, &kw)) return Truncated("Search");
    req.keywords.push_back(std::move(kw));
  }
  uint32_t shard = 0;
  if (!ReadU32(payload, &pos, &req.top_k) || pos >= payload.size()) {
    return Truncated("Search");
  }
  const uint8_t conjunctive = static_cast<uint8_t>(payload[pos++]);
  if (conjunctive > 1) {
    return Status::ParseError("Search conjunctive flag out of range");
  }
  req.conjunctive = conjunctive == 1;
  if (!ReadU32(payload, &pos, &shard) ||
      !ReadU64(payload, &pos, &req.deadline_ms)) {
    return Truncated("Search");
  }
  req.shard = static_cast<int32_t>(shard);
  if (pos != payload.size()) return Trailing("Search");
  return req;
}

void Encode(const engine::SearchResponse& resp, std::string* out) {
  AppendU32(out, static_cast<uint32_t>(resp.hits.size()));
  for (const engine::SearchHit& hit : resp.hits) AppendHit(out, hit);
  AppendF64(out, resp.timings.qpt_ms);
  AppendF64(out, resp.timings.pdt_ms);
  AppendF64(out, resp.timings.eval_ms);
  AppendF64(out, resp.timings.post_ms);
  AppendSearchStats(out, resp.stats);
}

Result<engine::SearchResponse> DecodeSearchResponse(std::string_view payload) {
  engine::SearchResponse resp;
  size_t pos = 0;
  uint32_t hit_count = 0;
  if (!ReadU32(payload, &pos, &hit_count)) return Truncated("Search response");
  resp.hits.clear();
  for (uint32_t i = 0; i < hit_count; ++i) {
    engine::SearchHit hit;
    if (!ReadHit(payload, &pos, &hit)) return Truncated("Search response");
    resp.hits.push_back(std::move(hit));
  }
  if (!ReadF64(payload, &pos, &resp.timings.qpt_ms) ||
      !ReadF64(payload, &pos, &resp.timings.pdt_ms) ||
      !ReadF64(payload, &pos, &resp.timings.eval_ms) ||
      !ReadF64(payload, &pos, &resp.timings.post_ms) ||
      !ReadSearchStats(payload, &pos, &resp.stats)) {
    return Truncated("Search response");
  }
  if (pos != payload.size()) return Trailing("Search response");
  return resp;
}

void Encode(const OpenCursorResponse& resp, std::string* out) {
  AppendU64(out, resp.cursor_id);
  AppendU64(out, resp.matching);
  AppendU64(out, resp.pending);
}

Result<OpenCursorResponse> DecodeOpenCursorResponse(std::string_view payload) {
  OpenCursorResponse resp;
  size_t pos = 0;
  if (!ReadU64(payload, &pos, &resp.cursor_id) ||
      !ReadU64(payload, &pos, &resp.matching) ||
      !ReadU64(payload, &pos, &resp.pending)) {
    return Truncated("OpenCursor response");
  }
  if (pos != payload.size()) return Trailing("OpenCursor response");
  return resp;
}

void Encode(const FetchNextRequest& req, std::string* out) {
  AppendU64(out, req.cursor_id);
  AppendU32(out, req.count);
}

Result<FetchNextRequest> DecodeFetchNextRequest(std::string_view payload) {
  FetchNextRequest req;
  size_t pos = 0;
  if (!ReadU64(payload, &pos, &req.cursor_id) ||
      !ReadU32(payload, &pos, &req.count)) {
    return Truncated("FetchNext");
  }
  if (pos != payload.size()) return Trailing("FetchNext");
  return req;
}

void Encode(const FetchNextResponse& resp, std::string* out) {
  AppendU32(out, static_cast<uint32_t>(resp.hits.size()));
  for (const engine::SearchHit& hit : resp.hits) AppendHit(out, hit);
  out->push_back(resp.done ? 1 : 0);
}

Result<FetchNextResponse> DecodeFetchNextResponse(std::string_view payload) {
  FetchNextResponse resp;
  size_t pos = 0;
  uint32_t hit_count = 0;
  if (!ReadU32(payload, &pos, &hit_count)) {
    return Truncated("FetchNext response");
  }
  for (uint32_t i = 0; i < hit_count; ++i) {
    engine::SearchHit hit;
    if (!ReadHit(payload, &pos, &hit)) return Truncated("FetchNext response");
    resp.hits.push_back(std::move(hit));
  }
  if (pos >= payload.size()) return Truncated("FetchNext response");
  const uint8_t done = static_cast<uint8_t>(payload[pos++]);
  if (done > 1) {
    return Status::ParseError("FetchNext done flag out of range");
  }
  resp.done = done == 1;
  if (pos != payload.size()) return Trailing("FetchNext response");
  return resp;
}

void Encode(const CloseCursorRequest& req, std::string* out) {
  AppendU64(out, req.cursor_id);
}

Result<CloseCursorRequest> DecodeCloseCursorRequest(std::string_view payload) {
  CloseCursorRequest req;
  size_t pos = 0;
  if (!ReadU64(payload, &pos, &req.cursor_id)) return Truncated("CloseCursor");
  if (pos != payload.size()) return Trailing("CloseCursor");
  return req;
}

void Encode(const InsertRequest& req, std::string* out) {
  AppendString(out, req.name);
  AppendString(out, req.xml_text);
}

Result<InsertRequest> DecodeInsertRequest(std::string_view payload) {
  InsertRequest req;
  size_t pos = 0;
  if (!ReadString(payload, &pos, &req.name) ||
      !ReadString(payload, &pos, &req.xml_text)) {
    return Truncated("Insert");
  }
  if (pos != payload.size()) return Trailing("Insert");
  return req;
}

void Encode(const RemoveRequest& req, std::string* out) {
  AppendString(out, req.name);
}

Result<RemoveRequest> DecodeRemoveRequest(std::string_view payload) {
  RemoveRequest req;
  size_t pos = 0;
  if (!ReadString(payload, &pos, &req.name)) return Truncated("Remove");
  if (pos != payload.size()) return Trailing("Remove");
  return req;
}

void Encode(const StatsRpcRequest& req, std::string* out) {
  // The binary form stays the historical empty payload, so old callers'
  // frames decode unchanged.
  if (req.format == StatsRpcRequest::kBinary) return;
  out->push_back(static_cast<char>(req.format));
}

Result<StatsRpcRequest> DecodeStatsRpcRequest(std::string_view payload) {
  StatsRpcRequest req;
  if (payload.empty()) return req;
  if (payload.size() != 1) return Trailing("Stats");
  const uint8_t format = static_cast<uint8_t>(payload[0]);
  if (format > StatsRpcRequest::kText) {
    return Status::ParseError("Stats format out of range");
  }
  req.format = format;
  return req;
}

void Encode(const StatsResponse& resp, std::string* out) {
  AppendU64(out, resp.admitted);
  AppendU64(out, resp.shed);
  AppendU64(out, resp.deadline_rejected);
  AppendU64(out, resp.inflight);
  AppendU64(out, resp.queued);
  AppendU64(out, resp.open_cursors);
  AppendU64(out, resp.connections_open);
  AppendU64(out, resp.connections_accepted);
  AppendU64(out, resp.connections_rejected);
  AppendU64(out, resp.frames_received);
  AppendU64(out, resp.frames_sent);
  AppendU64(out, resp.protocol_errors);
  for (size_t i = 0; i < kOpcodeSlots; ++i) {
    AppendU64(out, resp.latency[i].count);
    AppendU64(out, resp.latency[i].p50_us);
    AppendU64(out, resp.latency[i].p90_us);
    AppendU64(out, resp.latency[i].p99_us);
    AppendU64(out, resp.latency[i].shed);
    AppendU64(out, resp.latency[i].deadline_rejected);
  }
  AppendU64(out, resp.queries);
  AppendU64(out, resp.documents_inserted);
  AppendU64(out, resp.documents_removed);
  AppendU64(out, resp.cache_hits);
  AppendU64(out, resp.cache_misses);
  AppendU64(out, resp.cache_evictions);
  AppendSearchStats(out, resp.search);
  AppendU64(out, resp.buffer.hits);
  AppendU64(out, resp.buffer.misses);
  AppendU64(out, resp.buffer.evictions);
  AppendU64(out, resp.buffer.frames_in_use);
  AppendU64(out, resp.buffer.frame_capacity);
  AppendU32(out, static_cast<uint32_t>(resp.slow_queries.size()));
  for (const SlowQueryEntry& entry : resp.slow_queries) {
    AppendU64(out, entry.latency_us);
    AppendU64(out, entry.request_id);
    out->push_back(static_cast<char>(entry.opcode));
    AppendString(out, entry.description);
    AppendString(out, entry.trace);
  }
}

Result<StatsResponse> DecodeStatsResponse(std::string_view payload) {
  StatsResponse resp;
  size_t pos = 0;
  bool ok = ReadU64(payload, &pos, &resp.admitted) &&
            ReadU64(payload, &pos, &resp.shed) &&
            ReadU64(payload, &pos, &resp.deadline_rejected) &&
            ReadU64(payload, &pos, &resp.inflight) &&
            ReadU64(payload, &pos, &resp.queued) &&
            ReadU64(payload, &pos, &resp.open_cursors) &&
            ReadU64(payload, &pos, &resp.connections_open) &&
            ReadU64(payload, &pos, &resp.connections_accepted) &&
            ReadU64(payload, &pos, &resp.connections_rejected) &&
            ReadU64(payload, &pos, &resp.frames_received) &&
            ReadU64(payload, &pos, &resp.frames_sent) &&
            ReadU64(payload, &pos, &resp.protocol_errors);
  for (size_t i = 0; ok && i < kOpcodeSlots; ++i) {
    ok = ReadU64(payload, &pos, &resp.latency[i].count) &&
         ReadU64(payload, &pos, &resp.latency[i].p50_us) &&
         ReadU64(payload, &pos, &resp.latency[i].p90_us) &&
         ReadU64(payload, &pos, &resp.latency[i].p99_us) &&
         ReadU64(payload, &pos, &resp.latency[i].shed) &&
         ReadU64(payload, &pos, &resp.latency[i].deadline_rejected);
  }
  ok = ok && ReadU64(payload, &pos, &resp.queries) &&
       ReadU64(payload, &pos, &resp.documents_inserted) &&
       ReadU64(payload, &pos, &resp.documents_removed) &&
       ReadU64(payload, &pos, &resp.cache_hits) &&
       ReadU64(payload, &pos, &resp.cache_misses) &&
       ReadU64(payload, &pos, &resp.cache_evictions) &&
       ReadSearchStats(payload, &pos, &resp.search) &&
       ReadU64(payload, &pos, &resp.buffer.hits) &&
       ReadU64(payload, &pos, &resp.buffer.misses) &&
       ReadU64(payload, &pos, &resp.buffer.evictions) &&
       ReadU64(payload, &pos, &resp.buffer.frames_in_use) &&
       ReadU64(payload, &pos, &resp.buffer.frame_capacity);
  uint32_t slow_count = 0;
  ok = ok && ReadU32(payload, &pos, &slow_count);
  for (uint32_t i = 0; ok && i < slow_count; ++i) {
    SlowQueryEntry entry;
    ok = ReadU64(payload, &pos, &entry.latency_us) &&
         ReadU64(payload, &pos, &entry.request_id) && pos < payload.size();
    if (ok) entry.opcode = static_cast<uint8_t>(payload[pos++]);
    ok = ok && ReadString(payload, &pos, &entry.description) &&
         ReadString(payload, &pos, &entry.trace);
    if (ok) resp.slow_queries.push_back(std::move(entry));
  }
  if (!ok) return Truncated("Stats response");
  if (pos != payload.size()) return Trailing("Stats response");
  return resp;
}

}  // namespace quickview::server
