// LoadDriver: the closed-loop workload generator behind
// tools/quickview_loadgen and bench_server_throughput. N threads open
// one connection each and issue a mixed Search / cursor-paging workload
// against a running server, optionally paced to a target QPS and with
// injected per-request deadlines; per-thread latency histograms merge
// into one report.
#ifndef QUICKVIEW_SERVER_LOAD_DRIVER_H_
#define QUICKVIEW_SERVER_LOAD_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"

namespace quickview::server {

struct LoadOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Concurrent connections (one thread each).
  int connections = 4;
  /// Requests issued per connection (a "request" is one Search, or one
  /// OpenCursor + page fetches + CloseCursor when paged).
  int requests_per_connection = 64;
  /// Aggregate target rate over all connections; 0 = unpaced (as fast
  /// as the closed loop allows).
  double target_qps = 0;
  /// Every `paged_every`-th request pages through a cursor instead of a
  /// one-shot Search; 0 disables paging.
  int paged_every = 4;
  /// Hits per FetchNext page on the paged requests.
  uint32_t page_size = 3;
  /// Injected per-request deadline; 0 = none.
  uint64_t deadline_ms = 0;
  uint32_t top_k = 10;
  bool conjunctive = false;
  /// View name the workload queries (must already be registered).
  std::string view = "default";
  /// Keyword lists rotated round-robin across requests. Empty = a
  /// built-in rotation over the demo corpus' planted terms.
  std::vector<std::vector<std::string>> keyword_sets;
};

struct LoadReport {
  uint64_t attempted = 0;
  uint64_t ok = 0;
  /// Typed error splits.
  uint64_t shed = 0;               // kResourceExhausted
  uint64_t deadline_exceeded = 0;  // kDeadlineExceeded
  uint64_t other_errors = 0;       // any other error status
  uint64_t transport_errors = 0;   // connect/send/recv failures
  uint64_t hits_fetched = 0;
  double wall_ms = 0;
  double achieved_qps = 0;
  /// Per-request latency (us), merged over every connection.
  std::shared_ptr<Histogram> latency;
};

/// Runs the workload to completion. Fails only on setup errors (no
/// connection could be established); per-request errors are counted in
/// the report instead.
Result<LoadReport> RunLoadDriver(const LoadOptions& options);

}  // namespace quickview::server

#endif  // QUICKVIEW_SERVER_LOAD_DRIVER_H_
