#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace quickview::server {
namespace {

Status TransportError(const char* what) {
  return Status::Internal(std::string("connection ") + what + ": " +
                          std::strerror(errno));
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      next_request_(other.next_request_),
      buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_request_ = other.next_request_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Status Client::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("client already connected");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return TransportError("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = TransportError("connect");
    ::close(fd);
    return status;
  }
  fd_ = fd;
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status Client::SetRecvTimeout(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return TransportError("setsockopt");
  }
  return Status::OK();
}

Status Client::SendRequest(Opcode opcode, uint64_t request_id,
                           std::string payload, uint8_t flags) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  Frame frame;
  frame.opcode = opcode;
  frame.flags = flags;
  frame.request_id = request_id;
  frame.payload = std::move(payload);
  std::string wire;
  EncodeFrame(frame, &wire);
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return TransportError("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> Client::ReadFrame() {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  char chunk[64 * 1024];
  for (;;) {
    Frame frame;
    size_t consumed = 0;
    QUICKVIEW_ASSIGN_OR_RETURN(FrameDecode decoded,
                               DecodeFrame(buffer_, &frame, &consumed));
    if (decoded == FrameDecode::kFrame) {
      buffer_.erase(0, consumed);
      return frame;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::Internal("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("read timed out");
      }
      return TransportError("recv");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<std::string> Client::Call(Opcode opcode, std::string payload,
                                 std::string* trace_out) {
  const uint64_t request_id = next_request_++;
  if (trace_out != nullptr) trace_out->clear();
  const uint8_t flags = trace_out != nullptr ? kFlagTrace : 0;
  QUICKVIEW_RETURN_IF_ERROR(
      SendRequest(opcode, request_id, std::move(payload), flags));
  for (;;) {
    QUICKVIEW_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    // A strict request/response client never has other ids in flight; an
    // unsolicited id (e.g. the connection-reject frame, id 0) is decoded
    // for its typed error rather than skipped.
    if (frame.request_id != request_id &&
        (frame.flags & kFlagError) == 0) {
      continue;
    }
    if ((frame.flags & kFlagError) != 0) {
      Status status;
      QUICKVIEW_RETURN_IF_ERROR(DecodeStatusPayload(frame.payload, &status));
      if (status.ok()) {
        return Status::Internal("error frame carried an OK status");
      }
      return status;
    }
    if ((frame.flags & kFlagTrace) != 0) {
      QUICKVIEW_ASSIGN_OR_RETURN(TracedPayload traced,
                                 SplitTracedPayload(frame.payload));
      if (trace_out != nullptr) *trace_out = std::move(traced.trace);
      return std::move(traced.inner);
    }
    return std::move(frame.payload);
  }
}

Status Client::RegisterView(const std::string& name,
                            const std::string& view_text) {
  RegisterViewRequest req{name, view_text};
  std::string payload;
  Encode(req, &payload);
  return Call(Opcode::kRegisterView, std::move(payload)).status();
}

Result<engine::SearchResponse> Client::Search(const SearchRpcRequest& request,
                                              std::string* trace_out) {
  std::string payload;
  Encode(request, &payload);
  QUICKVIEW_ASSIGN_OR_RETURN(
      std::string body, Call(Opcode::kSearch, std::move(payload), trace_out));
  return DecodeSearchResponse(body);
}

Result<OpenCursorResponse> Client::OpenCursor(const SearchRpcRequest& request,
                                              std::string* trace_out) {
  std::string payload;
  Encode(request, &payload);
  QUICKVIEW_ASSIGN_OR_RETURN(
      std::string body,
      Call(Opcode::kOpenCursor, std::move(payload), trace_out));
  return DecodeOpenCursorResponse(body);
}

Result<FetchNextResponse> Client::FetchNext(uint64_t cursor_id, uint32_t count,
                                            std::string* trace_out) {
  FetchNextRequest req{cursor_id, count};
  std::string payload;
  Encode(req, &payload);
  QUICKVIEW_ASSIGN_OR_RETURN(
      std::string body,
      Call(Opcode::kFetchNext, std::move(payload), trace_out));
  return DecodeFetchNextResponse(body);
}

Status Client::CloseCursor(uint64_t cursor_id) {
  CloseCursorRequest req{cursor_id};
  std::string payload;
  Encode(req, &payload);
  return Call(Opcode::kCloseCursor, std::move(payload)).status();
}

Status Client::Insert(const std::string& name, const std::string& xml_text) {
  InsertRequest req{name, xml_text};
  std::string payload;
  Encode(req, &payload);
  return Call(Opcode::kInsert, std::move(payload)).status();
}

Status Client::Remove(const std::string& name) {
  RemoveRequest req{name};
  std::string payload;
  Encode(req, &payload);
  return Call(Opcode::kRemove, std::move(payload)).status();
}

Result<StatsResponse> Client::Stats() {
  QUICKVIEW_ASSIGN_OR_RETURN(std::string body,
                             Call(Opcode::kStats, std::string()));
  return DecodeStatsResponse(body);
}

Result<std::string> Client::StatsText() {
  StatsRpcRequest req;
  req.format = StatsRpcRequest::kText;
  std::string payload;
  Encode(req, &payload);
  return Call(Opcode::kStats, std::move(payload));
}

}  // namespace quickview::server
