#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace quickview::server {
namespace {

using Clock = std::chrono::steady_clock;

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Blocking full-buffer send. MSG_NOSIGNAL: a dead peer is a false
/// return, never a SIGPIPE.
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Slow-query-log description of a Search/OpenCursor request.
std::string DescribeSearch(const char* verb, const SearchRpcRequest& req) {
  std::string out(verb);
  out += " view=";
  out += req.view;
  out += " keywords=";
  for (size_t i = 0; i < req.keywords.size(); ++i) {
    if (i > 0) out += ',';
    out += req.keywords[i];
  }
  return out;
}

}  // namespace

Server::Connection::~Connection() {
  // The fd closes exactly once, after the last holder (reader thread,
  // worker task, accept/stop path) dropped its shared_ptr — so a late
  // worker can never write into a recycled descriptor.
  if (fd >= 0) ::close(fd);
}

Server::Server(service::QueryService* service, const ServerOptions& options)
    : service_(service),
      options_(options),
      slow_log_(obs::SlowQueryLog::Options{options.slow_query_threshold_us,
                                           options.slow_query_capacity}),
      pool_(options.worker_threads > 0
                ? options.worker_threads
                : static_cast<int>(std::thread::hardware_concurrency())) {
  RegisterServerMetrics();
  // The service stack (cache, engine pool, buffer pools, live database)
  // registers unlabeled; the RPC pool below distinguishes itself with a
  // `pool` label so two ThreadPools share one metric name.
  (void)service_->RegisterMetrics(&registry_);
  (void)pool_.RegisterMetrics(&registry_, {{"pool", "rpc"}});
}

void Server::RegisterServerMetrics() {
  using Kind = obs::MetricsRegistry::InstrumentKind;
  auto read = [](const std::atomic<uint64_t>* value) {
    return [value]() -> int64_t {
      return static_cast<int64_t>(value->load(std::memory_order_relaxed));
    };
  };
  struct Series {
    const char* name;
    Kind kind;
    const std::atomic<uint64_t>* value;
  };
  const Series series[] = {
      {"qv_server_admitted_total", Kind::kCounter, &admitted_},
      {"qv_server_shed_total", Kind::kCounter, &shed_},
      {"qv_server_deadline_rejected_total", Kind::kCounter,
       &deadline_rejected_},
      {"qv_server_connections_accepted_total", Kind::kCounter,
       &conns_accepted_},
      {"qv_server_connections_rejected_total", Kind::kCounter,
       &conns_rejected_},
      {"qv_server_frames_received_total", Kind::kCounter, &frames_in_},
      {"qv_server_frames_sent_total", Kind::kCounter, &frames_out_},
      {"qv_server_protocol_errors_total", Kind::kCounter, &protocol_errors_},
      {"qv_server_queued", Kind::kGauge, &queued_},
      {"qv_server_inflight", Kind::kGauge, &inflight_},
      {"qv_server_open_cursors", Kind::kGauge, &open_cursors_},
      {"qv_server_connections_open", Kind::kGauge, &conns_open_},
  };
  for (const Series& s : series) {
    (void)registry_.RegisterCallback(s.name, {}, s.kind, read(s.value));
  }
  for (uint8_t op = kMinOpcode; op <= kMaxOpcode; ++op) {
    obs::LabelSet labels{{"opcode", OpcodeName(static_cast<Opcode>(op))}};
    (void)registry_.RegisterHistogram("qv_server_latency_us", labels,
                                      &latency_[op]);
    (void)registry_.RegisterCallback("qv_server_opcode_shed_total", labels,
                                     Kind::kCounter, read(&op_shed_[op]));
    (void)registry_.RegisterCallback("qv_server_opcode_deadline_rejected_total",
                                     labels, Kind::kCounter,
                                     read(&op_deadline_rejected_[op]));
  }
  (void)registry_.RegisterCallback(
      "qv_server_slow_log_considered_total", {}, Kind::kCounter,
      [this]() -> int64_t {
        return static_cast<int64_t>(slow_log_.considered());
      });
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (listen_fd_ >= 0) {
    return Status::InvalidArgument("server already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoMessage("socket"));
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::Internal(ErrnoMessage("bind"));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) != 0) {
    Status status = Status::Internal(ErrnoMessage("listen"));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status status = Status::Internal(ErrnoMessage("getsockname"));
    ::close(fd);
    return status;
  }
  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  stopping_.store(true, std::memory_order_release);
  // Unblock accept() and join the accept thread before closing the fd,
  // so accept never reads a recycled descriptor.
  if (listen_fd_ >= 0) (void)::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Unblock every reader's recv. shutdown (not close): the shared_ptr
  // snapshot keeps each fd valid while we poke it.
  std::vector<std::shared_ptr<Connection>> snapshot;
  {
    qv::MutexLock lock(conns_mu_);
    for (auto& [id, conn] : conns_) snapshot.push_back(conn);
  }
  for (const std::shared_ptr<Connection>& conn : snapshot) {
    conn->closing.store(true, std::memory_order_release);
    (void)::shutdown(conn->fd, SHUT_RDWR);
  }
  snapshot.clear();
  // Readers remove themselves from conns_ and mark their thread finished
  // on the way out; with the accept thread gone no new ones appear.
  for (;;) {
    std::map<uint64_t, std::thread> to_join;
    {
      qv::MutexLock lock(conns_mu_);
      to_join.swap(readers_);
      finished_readers_.clear();
    }
    if (to_join.empty()) break;
    for (auto& [id, thread] : to_join) thread.join();
  }
  pool_.Drain();
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener gone
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    ReapFinishedReaders();
    conns_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (conns_open_.load(std::memory_order_acquire) >=
        options_.max_connections) {
      // Typed rejection: one unsolicited error frame (request id 0), then
      // close. Clients treat it as "server full, back off".
      conns_rejected_.fetch_add(1, std::memory_order_relaxed);
      Frame reject;
      reject.opcode = Opcode::kStats;
      reject.flags = kFlagError;
      reject.request_id = 0;
      EncodeStatusPayload(
          Status::ResourceExhausted(
              "connection limit reached (" +
              std::to_string(options_.max_connections) + ")"),
          &reject.payload);
      std::string wire;
      EncodeFrame(reject, &wire);
      (void)SendAll(fd, wire);
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conns_open_.fetch_add(1, std::memory_order_release);
    {
      qv::MutexLock lock(conns_mu_);
      conn->id = next_conn_++;
      conns_[conn->id] = conn;
      readers_[conn->id] = std::thread([this, conn] { ReaderLoop(conn); });
    }
  }
}

void Server::ReapFinishedReaders() {
  std::vector<std::thread> joinable;
  {
    qv::MutexLock lock(conns_mu_);
    for (uint64_t id : finished_readers_) {
      auto it = readers_.find(id);
      if (it != readers_.end()) {
        joinable.push_back(std::move(it->second));
        readers_.erase(it);
      }
    }
    finished_readers_.clear();
  }
  // Join outside the lock; "finished" means the reader is past its last
  // shared state, join only waits out its return.
  for (std::thread& thread : joinable) thread.join();
}

void Server::ReaderLoop(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  std::vector<char> chunk(64 * 1024);
  bool poisoned = false;
  while (!poisoned) {
    ssize_t n = ::recv(conn->fd, chunk.data(), chunk.size(), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed, error, or Stop's shutdown
    }
    buffer.append(chunk.data(), static_cast<size_t>(n));
    size_t offset = 0;
    for (;;) {
      Frame frame;
      size_t consumed = 0;
      Result<FrameDecode> decoded = DecodeFrame(
          std::string_view(buffer).substr(offset), &frame, &consumed);
      if (!decoded.ok()) {
        // Corrupt framing poisons the stream — there is no resync point
        // in a length-prefixed protocol. Count it and drop the peer.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        poisoned = true;
        break;
      }
      if (*decoded == FrameDecode::kNeedMore) break;
      offset += consumed;
      frames_in_.fetch_add(1, std::memory_order_relaxed);
      HandleFrame(conn, std::move(frame), Clock::now());
    }
    buffer.erase(0, offset);
  }
  // Disconnect cleanup. closing first, then the cursor sweep: a
  // concurrent OpenCursor worker checks `closing` under cursor_mu, so it
  // either stored its cursor before the sweep (destroyed here) or
  // observes closing and never stores it.
  conn->closing.store(true, std::memory_order_release);
  CloseConnectionCursors(conn);
  {
    qv::MutexLock lock(conns_mu_);
    conns_.erase(conn->id);
    finished_readers_.push_back(conn->id);
  }
  conns_open_.fetch_sub(1, std::memory_order_release);
}

void Server::CloseConnectionCursors(const std::shared_ptr<Connection>& conn) {
  std::map<uint64_t, CursorEntry> doomed;
  {
    qv::MutexLock lock(conn->cursor_mu);
    doomed.swap(conn->cursors);
  }
  if (!doomed.empty()) {
    open_cursors_.fetch_sub(doomed.size(), std::memory_order_relaxed);
  }
}

void Server::HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame,
                         Clock::time_point arrival) {
  const Opcode opcode = frame.opcode;
  if ((frame.flags & kFlagError) != 0) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, opcode, frame.request_id,
              Status::InvalidArgument("error flag set on a request frame"));
    return;
  }
  // Stats and CloseCursor run inline on the reader thread: observability
  // and resource release must work even when the pool is saturated.
  if (opcode == Opcode::kStats || opcode == Opcode::kCloseCursor) {
    ExecuteRpc(conn, frame, arrival);
    return;
  }
  // Admission gate (CAS, not a lock: shedding must stay O(1) under the
  // very overload it handles). The pool's own queue is unbounded, so
  // this counter IS the bound.
  uint64_t queued = queued_.load(std::memory_order_relaxed);
  for (;;) {
    if (queued >= options_.admission_queue_limit) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      op_shed_[static_cast<size_t>(opcode)].fetch_add(
          1, std::memory_order_relaxed);
      SendError(conn, opcode, frame.request_id,
                Status::ResourceExhausted(
                    "admission queue full (limit " +
                    std::to_string(options_.admission_queue_limit) + ")"));
      RecordLatency(opcode, arrival);
      return;
    }
    if (queued_.compare_exchange_weak(queued, queued + 1,
                                      std::memory_order_acq_rel)) {
      break;
    }
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  pool_.Submit([this, conn, frame = std::move(frame), arrival] {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    ExecuteRpc(conn, frame, arrival);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  });
}

void Server::ExecuteRpc(const std::shared_ptr<Connection>& conn,
                        const Frame& frame, Clock::time_point arrival) {
  RpcObs obs;
  Result<std::string> payload = RunOpcode(conn, frame, arrival, &obs);
  if (payload.ok()) {
    std::string body = std::move(payload).value();
    uint8_t flags = 0;
    // The trace crosses the wire only when the CLIENT asked (trace_all
    // alone keeps it server-side, for the slow-query log).
    if ((frame.flags & kFlagTrace) != 0 && !obs.trace.empty()) {
      std::string wrapped;
      EncodeTracedPayload(obs.trace, body, &wrapped);
      body = std::move(wrapped);
      flags = kFlagTrace;
    }
    SendResponse(conn, frame.opcode, frame.request_id, std::move(body), flags);
  } else {
    SendError(conn, frame.opcode, frame.request_id, payload.status());
  }
  const uint64_t elapsed_us = RecordLatency(frame.opcode, arrival);
  obs::SlowQueryLog::Entry entry;
  entry.latency_us = elapsed_us;
  entry.request_id = frame.request_id;
  entry.opcode = static_cast<uint8_t>(frame.opcode);
  entry.description = obs.description.empty() ? OpcodeName(frame.opcode)
                                              : std::move(obs.description);
  entry.trace = std::move(obs.trace);
  slow_log_.Record(std::move(entry));
}

Result<std::string> Server::RunOpcode(const std::shared_ptr<Connection>& conn,
                                      const Frame& frame,
                                      Clock::time_point arrival, RpcObs* obs) {
  // Trace when the client asked or the server traces everything; the
  // trace id IS the wire request id, so client- and server-side views of
  // one request correlate by construction.
  const bool traced =
      (frame.flags & kFlagTrace) != 0 || options_.trace_all;
  // Turns a Search/OpenCursor request into a BatchQuery whose deadline
  // is the REMAINING budget: absolute from frame arrival, so queueing
  // time counts against it. Returns false when already expired.
  auto to_batch_query = [&](const SearchRpcRequest& req,
                            service::BatchQuery* query) -> bool {
    query->view = req.view;
    query->keywords = req.keywords;
    query->options.top_k = req.top_k;
    query->options.conjunctive = req.conjunctive;
    query->shard = req.shard;
    if (req.deadline_ms != 0) {
      const Clock::time_point deadline =
          arrival + std::chrono::milliseconds(req.deadline_ms);
      const Clock::time_point now = Clock::now();
      if (now >= deadline) return false;
      query->deadline = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - now);
    }
    return true;
  };

  switch (frame.opcode) {
    case Opcode::kRegisterView: {
      QUICKVIEW_ASSIGN_OR_RETURN(RegisterViewRequest req,
                                 DecodeRegisterViewRequest(frame.payload));
      QUICKVIEW_RETURN_IF_ERROR(service_->RegisterView(req.name,
                                                       req.view_text));
      return std::string();
    }
    case Opcode::kSearch: {
      QUICKVIEW_ASSIGN_OR_RETURN(SearchRpcRequest req,
                                 DecodeSearchRpcRequest(frame.payload));
      obs->description = DescribeSearch("search", req);
      service::BatchQuery query;
      if (!to_batch_query(req, &query)) {
        deadline_rejected_.fetch_add(1, std::memory_order_relaxed);
        op_deadline_rejected_[static_cast<size_t>(frame.opcode)].fetch_add(
            1, std::memory_order_relaxed);
        return Status::DeadlineExceeded("deadline expired before execution");
      }
      std::shared_ptr<obs::Trace> trace;
      if (traced) {
        trace = std::make_shared<obs::Trace>(frame.request_id);
        query.trace = trace;
      }
      Result<engine::SearchResponse> resp = service_->SearchOne(query);
      // SearchOne drained the cursor, so the trace is quiescent — its
      // tree is complete through materialization. Serialized even on
      // error: the slow-query log wants to explain failures too.
      if (trace != nullptr) obs->trace = trace->Serialize();
      if (!resp.ok()) return resp.status();
      std::string payload;
      Encode(*resp, &payload);
      return payload;
    }
    case Opcode::kOpenCursor: {
      QUICKVIEW_ASSIGN_OR_RETURN(SearchRpcRequest req,
                                 DecodeSearchRpcRequest(frame.payload));
      obs->description = DescribeSearch("open_cursor", req);
      service::BatchQuery query;
      if (!to_batch_query(req, &query)) {
        deadline_rejected_.fetch_add(1, std::memory_order_relaxed);
        op_deadline_rejected_[static_cast<size_t>(frame.opcode)].fetch_add(
            1, std::memory_order_relaxed);
        return Status::DeadlineExceeded("deadline expired before execution");
      }
      std::shared_ptr<obs::Trace> trace;
      if (traced) {
        trace = std::make_shared<obs::Trace>(frame.request_id);
        query.trace = trace;
      }
      Result<std::unique_ptr<engine::ResultCursor>> opened =
          service_->OpenSearch(query);
      if (trace != nullptr) obs->trace = trace->Serialize();
      if (!opened.ok()) return opened.status();
      std::unique_ptr<engine::ResultCursor> cursor = std::move(opened).value();
      OpenCursorResponse resp;
      resp.matching = cursor->stats().search.matching_results;
      resp.pending = cursor->pending();
      {
        qv::MutexLock lock(conn->cursor_mu);
        if (conn->closing.load(std::memory_order_acquire)) {
          // Disconnected while we built it; the sweep may already have
          // run, so never store past it.
          return Status::Cancelled("connection closed");
        }
        resp.cursor_id = conn->next_cursor++;
        // The trace stays with the cursor: FetchNext keeps growing the
        // materialize span, and each traced fetch re-serializes the
        // (bigger) tree.
        conn->cursors[resp.cursor_id] = CursorEntry{std::move(cursor), trace};
      }
      open_cursors_.fetch_add(1, std::memory_order_relaxed);
      std::string payload;
      Encode(resp, &payload);
      return payload;
    }
    case Opcode::kFetchNext: {
      QUICKVIEW_ASSIGN_OR_RETURN(FetchNextRequest req,
                                 DecodeFetchNextRequest(frame.payload));
      // Cursor ops on one connection serialize under cursor_mu — holding
      // it across the fetch is what lets disconnect destroy cursors
      // without racing an in-flight FetchNext (and is what makes the
      // cursor's trace quiescent when we serialize it below).
      qv::MutexLock lock(conn->cursor_mu);
      auto it = conn->cursors.find(req.cursor_id);
      if (it == conn->cursors.end()) {
        return Status::NotFound("unknown cursor id " +
                                std::to_string(req.cursor_id));
      }
      Result<std::vector<engine::SearchHit>> hits =
          it->second.cursor->FetchNext(req.count);
      if (!hits.ok()) {
        // A failed fetch leaves the cursor unspecified; retire it.
        conn->cursors.erase(it);
        open_cursors_.fetch_sub(1, std::memory_order_relaxed);
        return hits.status();
      }
      if (it->second.trace != nullptr) {
        obs->trace = it->second.trace->Serialize();
      }
      FetchNextResponse resp;
      resp.hits = std::move(hits).value();
      resp.done = it->second.cursor->Done();
      std::string payload;
      Encode(resp, &payload);
      return payload;
    }
    case Opcode::kCloseCursor: {
      QUICKVIEW_ASSIGN_OR_RETURN(CloseCursorRequest req,
                                 DecodeCloseCursorRequest(frame.payload));
      qv::MutexLock lock(conn->cursor_mu);
      if (conn->cursors.erase(req.cursor_id) == 0) {
        return Status::NotFound("unknown cursor id " +
                                std::to_string(req.cursor_id));
      }
      open_cursors_.fetch_sub(1, std::memory_order_relaxed);
      return std::string();
    }
    case Opcode::kInsert: {
      QUICKVIEW_ASSIGN_OR_RETURN(InsertRequest req,
                                 DecodeInsertRequest(frame.payload));
      QUICKVIEW_RETURN_IF_ERROR(
          service_->InsertDocument(req.name, req.xml_text));
      return std::string();
    }
    case Opcode::kRemove: {
      QUICKVIEW_ASSIGN_OR_RETURN(RemoveRequest req,
                                 DecodeRemoveRequest(frame.payload));
      QUICKVIEW_RETURN_IF_ERROR(service_->RemoveDocument(req.name));
      return std::string();
    }
    case Opcode::kStats: {
      QUICKVIEW_ASSIGN_OR_RETURN(StatsRpcRequest req,
                                 DecodeStatsRpcRequest(frame.payload));
      if (req.format == StatsRpcRequest::kText) {
        // Raw Prometheus exposition bytes, not a StatsResponse.
        return registry_.TextExposition();
      }
      std::string payload;
      Encode(SnapshotStats(), &payload);
      return payload;
    }
  }
  return Status::Internal("unhandled opcode");  // unreachable: decode checks
}

void Server::SendFrame(const std::shared_ptr<Connection>& conn,
                       const Frame& frame) {
  if (conn->closing.load(std::memory_order_acquire)) return;
  std::string wire;
  EncodeFrame(frame, &wire);
  qv::MutexLock lock(conn->write_mu);
  if (SendAll(conn->fd, wire)) {
    frames_out_.fetch_add(1, std::memory_order_relaxed);
  } else {
    conn->closing.store(true, std::memory_order_release);
  }
}

void Server::SendResponse(const std::shared_ptr<Connection>& conn,
                          Opcode opcode, uint64_t request_id,
                          std::string payload, uint8_t flags) {
  Frame frame;
  frame.opcode = opcode;
  frame.flags = flags;
  frame.request_id = request_id;
  frame.payload = std::move(payload);
  SendFrame(conn, frame);
}

void Server::SendError(const std::shared_ptr<Connection>& conn, Opcode opcode,
                       uint64_t request_id, const Status& status) {
  Frame frame;
  frame.opcode = opcode;
  frame.flags = kFlagError;
  frame.request_id = request_id;
  EncodeStatusPayload(status, &frame.payload);
  SendFrame(conn, frame);
}

uint64_t Server::RecordLatency(Opcode opcode, Clock::time_point arrival) {
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - arrival);
  const uint64_t elapsed_us = static_cast<uint64_t>(elapsed.count());
  latency_[static_cast<size_t>(opcode)].Record(elapsed_us);
  return elapsed_us;
}

StatsResponse Server::SnapshotStats() const {
  StatsResponse out;
  out.admitted = admitted_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.deadline_rejected = deadline_rejected_.load(std::memory_order_relaxed);
  out.inflight = inflight_.load(std::memory_order_relaxed);
  out.queued = queued_.load(std::memory_order_relaxed);
  out.open_cursors = open_cursors_.load(std::memory_order_relaxed);
  out.connections_open = conns_open_.load(std::memory_order_relaxed);
  out.connections_accepted = conns_accepted_.load(std::memory_order_relaxed);
  out.connections_rejected = conns_rejected_.load(std::memory_order_relaxed);
  out.frames_received = frames_in_.load(std::memory_order_relaxed);
  out.frames_sent = frames_out_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kOpcodeSlots; ++i) {
    // One consistent point-in-time snapshot per histogram: count and
    // every quantile come from the same bucket state.
    const HistogramSnapshot snap = latency_[i].Snapshot();
    out.latency[i].count = snap.count;
    out.latency[i].p50_us = snap.ValueAtQuantile(0.50);
    out.latency[i].p90_us = snap.ValueAtQuantile(0.90);
    out.latency[i].p99_us = snap.ValueAtQuantile(0.99);
    out.latency[i].shed = op_shed_[i].load(std::memory_order_relaxed);
    out.latency[i].deadline_rejected =
        op_deadline_rejected_[i].load(std::memory_order_relaxed);
  }
  service::QueryService::Stats service_stats = service_->stats();
  out.queries = service_stats.queries;
  out.documents_inserted = service_stats.documents_inserted;
  out.documents_removed = service_stats.documents_removed;
  out.cache_hits = service_stats.cache.hits;
  out.cache_misses = service_stats.cache.misses;
  out.cache_evictions = service_stats.cache.evictions;
  out.search = service_stats.engine.search;
  out.buffer = service_stats.engine.buffer;
  for (obs::SlowQueryLog::Entry& entry : slow_log_.Snapshot()) {
    SlowQueryEntry wire;
    wire.latency_us = entry.latency_us;
    wire.request_id = entry.request_id;
    wire.opcode = entry.opcode;
    wire.description = std::move(entry.description);
    wire.trace = std::move(entry.trace);
    out.slow_queries.push_back(std::move(wire));
  }
  return out;
}

}  // namespace quickview::server
