// Wire protocol of the quickview serving layer: length-prefixed binary
// frames carrying typed RPCs. Layout (all integers big-endian, matching
// the pagestore codec the payload encoders reuse):
//
//   +--------+---------+--------+-------+------------+-------------+
//   | magic  | version | opcode | flags | request id | payload len |
//   | u32    | u16     | u8     | u8    | u64        | u32         |
//   +--------+---------+--------+-------+------------+-------------+
//   | payload (payload len bytes)                                  |
//   +--------------------------------------------------------------+
//   | checksum u32  (FNV-1a over header-after-magic + payload)     |
//   +--------------------------------------------------------------+
//
// 20-byte header, 4-byte trailer. A response frame echoes the request's
// opcode and request id; the kFlagError bit says the payload is an
// encoded Status instead of the opcode's success payload. Status codes
// cross the wire through an explicit stable table (StatusCodeToWire /
// WireStatusCode) so reordering the C++ enum can never silently change
// the protocol.
//
// Decoding is incremental: DecodeFrame on a partial buffer reports
// kNeedMore (read more bytes, try again); corrupt input — bad magic,
// bad version, oversized payload, checksum mismatch — is a ParseError,
// after which the connection is poisoned and should be closed.
#ifndef QUICKVIEW_SERVER_PROTOCOL_H_
#define QUICKVIEW_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"
#include "common/status.h"
#include "engine/view_search_engine.h"

namespace quickview::server {

inline constexpr uint32_t kFrameMagic = 0x51565250;  // "QVRP"
inline constexpr uint16_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 20;
inline constexpr size_t kFrameTrailerSize = 4;
/// Hard cap on a single frame's payload; anything larger is corrupt (or
/// hostile) input, rejected before allocation.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// Frame flags. kFlagError marks a response whose payload is an encoded
/// Status (EncodeStatusPayload) rather than the opcode's success shape.
/// kFlagTrace on a request asks the server to trace it; on a SUCCESS
/// response it marks a traced payload: `trace len u32 | trace bytes |
/// inner payload` (EncodeTracedPayload / SplitTracedPayload), where the
/// trace bytes are the obs::Trace::Serialize breakdown. An error
/// response never carries a trace.
inline constexpr uint8_t kFlagError = 0x01;
inline constexpr uint8_t kFlagTrace = 0x02;

enum class Opcode : uint8_t {
  kRegisterView = 1,
  kSearch = 2,
  kOpenCursor = 3,
  kFetchNext = 4,
  kCloseCursor = 5,
  kInsert = 6,
  kRemove = 7,
  kStats = 8,
};
inline constexpr uint8_t kMinOpcode = 1;
inline constexpr uint8_t kMaxOpcode = 8;
/// Opcode values are dense 1..kMaxOpcode; kOpcodeSlots sizes per-opcode
/// arrays indexed by raw opcode value.
inline constexpr size_t kOpcodeSlots = kMaxOpcode + 1;

const char* OpcodeName(Opcode op);

/// One decoded frame (or one to encode). `opcode` is validated to be a
/// known Opcode by DecodeFrame; `flags` bits other than kFlagError and
/// kFlagTrace are reserved and must be zero.
struct Frame {
  Opcode opcode = Opcode::kStats;
  uint8_t flags = 0;
  uint64_t request_id = 0;
  std::string payload;
};

/// Appends the encoded frame (header + payload + checksum) to `out`.
void EncodeFrame(const Frame& frame, std::string* out);

enum class FrameDecode {
  kFrame,     // one complete frame decoded; *consumed bytes were used
  kNeedMore,  // `in` is a valid prefix of a frame; read more and retry
};

/// Decodes the frame at the front of `in`. On kFrame, `*frame` holds the
/// decoded frame and `*consumed` its full encoded size. ParseError on
/// corrupt input (bad magic/version/opcode/flags, payload over
/// kMaxFramePayload, checksum mismatch).
Result<FrameDecode> DecodeFrame(std::string_view in, Frame* frame,
                                size_t* consumed);

/// Traced-response payload (kFlagTrace on a success frame):
/// `trace len u32 | trace bytes | inner payload`.
void EncodeTracedPayload(std::string_view trace, std::string_view inner,
                         std::string* out);
struct TracedPayload {
  std::string trace;
  std::string inner;
};
Result<TracedPayload> SplitTracedPayload(std::string_view payload);

// ---------------------------------------------------------------------------
// Status on the wire. The numeric mapping is part of the protocol and
// frozen; new StatusCode members get NEW wire numbers here, appended.

uint16_t StatusCodeToWire(StatusCode code);
/// ParseError result for unknown wire values.
Result<StatusCode> WireStatusCode(uint16_t wire);

/// wire code u16 | message len u32 | message bytes.
void EncodeStatusPayload(const Status& status, std::string* out);
/// Fills `*decoded` (which may itself be any code, including kOk);
/// returns ParseError when the payload is corrupt.
Status DecodeStatusPayload(std::string_view payload, Status* decoded);

// ---------------------------------------------------------------------------
// RPC payloads. Each request/response struct has an Encode (append to
// string) and Decode (whole payload -> struct, ParseError on truncated
// or trailing bytes). Success responses for kRegisterView, kCloseCursor,
// kInsert and kRemove have empty payloads.

struct RegisterViewRequest {
  std::string name;
  std::string view_text;
};
void Encode(const RegisterViewRequest& req, std::string* out);
Result<RegisterViewRequest> DecodeRegisterViewRequest(std::string_view payload);

/// Shared by kSearch (drain to a SearchResponse) and kOpenCursor (open a
/// server-side cursor). deadline_ms == 0 means no deadline.
struct SearchRpcRequest {
  std::string view;
  std::vector<std::string> keywords;
  uint32_t top_k = 10;
  bool conjunctive = false;
  int32_t shard = -1;
  uint64_t deadline_ms = 0;
};
void Encode(const SearchRpcRequest& req, std::string* out);
Result<SearchRpcRequest> DecodeSearchRpcRequest(std::string_view payload);

/// kSearch success payload: the full engine::SearchResponse — hits with
/// bit-exact scores (doubles cross the wire as their IEEE-754 bit
/// patterns), per-module timings, and pipeline counters.
void Encode(const engine::SearchResponse& resp, std::string* out);
Result<engine::SearchResponse> DecodeSearchResponse(std::string_view payload);

struct OpenCursorResponse {
  uint64_t cursor_id = 0;
  /// Matches ResultCursor: total ranked matches and hits still pending.
  uint64_t matching = 0;
  uint64_t pending = 0;
};
void Encode(const OpenCursorResponse& resp, std::string* out);
Result<OpenCursorResponse> DecodeOpenCursorResponse(std::string_view payload);

struct FetchNextRequest {
  uint64_t cursor_id = 0;
  uint32_t count = 0;
};
void Encode(const FetchNextRequest& req, std::string* out);
Result<FetchNextRequest> DecodeFetchNextRequest(std::string_view payload);

struct FetchNextResponse {
  std::vector<engine::SearchHit> hits;
  bool done = false;
};
void Encode(const FetchNextResponse& resp, std::string* out);
Result<FetchNextResponse> DecodeFetchNextResponse(std::string_view payload);

struct CloseCursorRequest {
  uint64_t cursor_id = 0;
};
void Encode(const CloseCursorRequest& req, std::string* out);
Result<CloseCursorRequest> DecodeCloseCursorRequest(std::string_view payload);

struct InsertRequest {
  std::string name;
  std::string xml_text;
};
void Encode(const InsertRequest& req, std::string* out);
Result<InsertRequest> DecodeInsertRequest(std::string_view payload);

struct RemoveRequest {
  std::string name;
};
void Encode(const RemoveRequest& req, std::string* out);
Result<RemoveRequest> DecodeRemoveRequest(std::string_view payload);

/// kStats request: an empty payload (the historical encoding) asks for
/// the binary StatsResponse below; a one-byte payload selects the
/// format explicitly — 0 binary, 1 Prometheus text (the response
/// payload is then the raw TextExposition bytes, not a StatsResponse).
struct StatsRpcRequest {
  enum Format : uint8_t { kBinary = 0, kText = 1 };
  uint8_t format = kBinary;
};
void Encode(const StatsRpcRequest& req, std::string* out);
Result<StatsRpcRequest> DecodeStatsRpcRequest(std::string_view payload);

struct OpcodeLatency {
  uint64_t count = 0;
  uint64_t p50_us = 0;
  uint64_t p90_us = 0;
  uint64_t p99_us = 0;
  /// Admission-control outcomes for this opcode: requests shed at the
  /// queue limit, and requests rejected because their deadline had
  /// already expired when a worker picked them up.
  uint64_t shed = 0;
  uint64_t deadline_rejected = 0;
};

/// One slow-query-log entry: the K worst admitted requests by latency
/// (obs::SlowQueryLog). `trace` is empty unless the request was traced.
struct SlowQueryEntry {
  uint64_t latency_us = 0;
  uint64_t request_id = 0;
  uint8_t opcode = 0;
  std::string description;
  std::string trace;
};

struct StatsResponse {
  // Admission / connection counters.
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t deadline_rejected = 0;
  uint64_t inflight = 0;
  uint64_t queued = 0;
  uint64_t open_cursors = 0;
  uint64_t connections_open = 0;
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t protocol_errors = 0;
  /// Indexed by raw opcode value (slot 0 unused).
  OpcodeLatency latency[kOpcodeSlots] = {};
  // QueryService counters.
  uint64_t queries = 0;
  uint64_t documents_inserted = 0;
  uint64_t documents_removed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  // EngineStats: the aggregate SearchStats + buffer-pool counters.
  engine::SearchStats search;
  engine::BufferCounters buffer;
  /// Worst admitted requests by latency, worst first.
  std::vector<SlowQueryEntry> slow_queries;
};
void Encode(const StatsResponse& resp, std::string* out);
Result<StatsResponse> DecodeStatsResponse(std::string_view payload);

}  // namespace quickview::server

#endif  // QUICKVIEW_SERVER_PROTOCOL_H_
