// Server: the network front end over QueryService — a TCP listener
// speaking the framed binary protocol of server/protocol.h, built on
// thread-per-connection readers (hard connection cap) that dispatch RPC
// work onto one ThreadPool.
//
// Admission control: every pooled RPC passes a bounded admission gate
// before it may queue. Queue full -> the request is SHED: an immediate
// kResourceExhausted error frame from the reader thread, never unbounded
// buffering — under overload clients get a typed "back off" in O(1)
// instead of a timeout. Stats and CloseCursor bypass the gate and run
// inline on the reader thread: observability and resource release must
// keep working exactly when the pool is saturated.
//
// Deadlines: a request's deadline_ms is absolute from frame arrival.
// Expired before a worker picks it up -> kDeadlineExceeded without
// executing; otherwise the remaining budget flows into
// BatchQuery::deadline, so in-flight shard work unwinds through the
// engine's CancellationToken and the typed error crosses the wire.
//
// Handles: cursors opened by kOpenCursor are session-scoped ids living
// on the connection; disconnect destroys them (serialized against any
// in-flight FetchNext on the same cursor map). Prepared-query reuse
// happens one layer down, in the service's PreparedQueryCache — every
// Search/OpenCursor for the same (view, plan) hits it.
//
// Observability: per-opcode log-bucketed latency histograms
// (arrival -> response written) plus admission/shed/inflight/connection
// counters, all returned by the kStats RPC alongside the service's own
// QueryService::Stats. Every series also lives in an obs::MetricsRegistry
// (server counters, per-opcode latency histograms, and everything the
// QueryService stack registers), so `kStats format=text` answers with a
// Prometheus exposition. Requests carrying kFlagTrace (or all of them,
// with ServerOptions::trace_all) run with an obs::Trace whose request id
// is the wire request id; the serialized span tree rides back on the
// response and feeds the worst-K SlowQueryLog.
#ifndef QUICKVIEW_SERVER_SERVER_H_
#define QUICKVIEW_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "engine/result_cursor.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "server/protocol.h"
#include "service/query_service.h"

namespace quickview::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is Server::port() after Start.
  uint16_t port = 0;
  /// RPC worker threads; 0 = hardware concurrency.
  int worker_threads = 0;
  /// Admission gate: pooled RPCs queued-but-not-executing beyond this
  /// are shed with kResourceExhausted.
  size_t admission_queue_limit = 128;
  /// Hard cap on concurrent connections; over it, accepts are rejected
  /// with a kResourceExhausted error frame and closed.
  size_t max_connections = 64;
  /// Trace every request server-side, as if kFlagTrace were set — the
  /// slow-query log then always carries span trees. Responses only echo
  /// the trace back when the CLIENT set kFlagTrace on its request.
  bool trace_all = false;
  /// Slow-query log: completed requests at/above this latency compete
  /// for the worst-K slots. 0 considers every request.
  uint64_t slow_query_threshold_us = 0;
  /// Worst-K capacity of the slow-query log; 0 disables it.
  size_t slow_query_capacity = 8;
};

class Server {
 public:
  /// `service` must outlive the server. Call Start() to begin serving.
  Server(service::QueryService* service, const ServerOptions& options);

  /// Stops (if still running) and joins every thread.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept thread. InvalidArgument on a
  /// bad host, Internal on socket failures.
  Status Start();

  /// Closes the listener and every connection, joins all reader threads,
  /// and drains the worker pool. Idempotent.
  void Stop();

  /// The bound port (after Start); 0 before.
  uint16_t port() const { return port_; }

  /// The RPC worker pool — exposed so tests can stall it (submit gate
  /// tasks) to exercise shedding and deadline expiry deterministically.
  ThreadPool* worker_pool() { return &pool_; }

  /// The kStats answer, also available in-process.
  StatsResponse SnapshotStats() const;

  /// The unified metrics registry (server + QueryService stack).
  /// `kStats format=text` answers with MetricsText(); tools also dump it
  /// on shutdown.
  const obs::MetricsRegistry& registry() const { return registry_; }
  std::string MetricsText() const { return registry_.TextExposition(); }

 private:
  /// A server-side cursor plus the trace that produced it, so every
  /// later FetchNext keeps attributing materialization work to the same
  /// span tree.
  struct CursorEntry {
    std::unique_ptr<engine::ResultCursor> cursor;
    std::shared_ptr<obs::Trace> trace;
  };
  /// Per-connection state. Reader thread, worker tasks and the close
  /// path all hold a shared_ptr, so the fd closes exactly once — in the
  /// destructor, after the last user is gone (no fd-reuse races).
  struct Connection {
    ~Connection();

    int fd = -1;
    uint64_t id = 0;
    /// Serializes whole-frame writes (worker tasks and the reader thread
    /// may respond concurrently on one connection).
    qv::Mutex write_mu;
    /// Guards the cursor table. Disconnect cleanup destroys cursors
    /// under this lock, so an in-flight FetchNext on a worker either
    /// completes first or finds the cursor already gone — never touches
    /// a dying one.
    qv::Mutex cursor_mu;
    std::map<uint64_t, CursorEntry> cursors QV_GUARDED_BY(cursor_mu);
    uint64_t next_cursor QV_GUARDED_BY(cursor_mu) = 1;
    /// Set when the peer disconnected or the server is stopping; writers
    /// skip the (dead) socket.
    std::atomic<bool> closing{false};
  };

  void AcceptLoop();
  /// Joins reader threads whose connections already ended.
  void ReapFinishedReaders();
  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  /// Routes one decoded frame: inline opcodes run here; pooled opcodes
  /// pass the admission gate and are submitted.
  void HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame,
                   std::chrono::steady_clock::time_point arrival);
  /// Trace + description of one RPC, filled by RunOpcode and consumed by
  /// the response path (traced payload) and the slow-query log.
  struct RpcObs {
    /// Serialized span tree; empty when the request ran untraced.
    std::string trace;
    /// Human-readable request summary for the slow-query log.
    std::string description;
  };

  /// Runs one RPC end to end: execute, respond (wrapping the payload
  /// with the span tree when the client asked for a trace), record
  /// latency, offer the slow-query log. Used by workers and the inline
  /// reader-thread path alike.
  void ExecuteRpc(const std::shared_ptr<Connection>& conn, const Frame& frame,
                  std::chrono::steady_clock::time_point arrival);
  /// Builds + executes the opcode's success payload; any error becomes
  /// an error frame. `arrival` anchors the request's absolute deadline.
  Result<std::string> RunOpcode(const std::shared_ptr<Connection>& conn,
                                const Frame& frame,
                                std::chrono::steady_clock::time_point arrival,
                                RpcObs* obs);
  /// Destroys every cursor the connection still holds (disconnect path).
  void CloseConnectionCursors(const std::shared_ptr<Connection>& conn);

  /// Writes one frame; on socket failure marks the connection closing.
  void SendFrame(const std::shared_ptr<Connection>& conn, const Frame& frame);
  void SendResponse(const std::shared_ptr<Connection>& conn, Opcode opcode,
                    uint64_t request_id, std::string payload,
                    uint8_t flags = 0);
  void SendError(const std::shared_ptr<Connection>& conn, Opcode opcode,
                 uint64_t request_id, const Status& status);
  /// Response-written timestamp minus arrival, into the opcode's
  /// histogram; returns the elapsed microseconds.
  uint64_t RecordLatency(Opcode opcode,
                         std::chrono::steady_clock::time_point arrival);
  /// Registers the server's own counters, gauges and per-opcode latency
  /// histograms into registry_ (constructor-time; names are unique by
  /// construction, so failure is a programming error).
  void RegisterServerMetrics();

  service::QueryService* service_;
  ServerOptions options_;

  int listen_fd_ = -1;
  std::atomic<uint16_t> port_{0};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  qv::Mutex conns_mu_;
  std::map<uint64_t, std::shared_ptr<Connection>> conns_
      QV_GUARDED_BY(conns_mu_);
  std::map<uint64_t, std::thread> readers_ QV_GUARDED_BY(conns_mu_);
  /// Reader threads that returned and can be joined (a thread cannot
  /// join itself, so the accept loop / Stop reap them).
  std::vector<uint64_t> finished_readers_ QV_GUARDED_BY(conns_mu_);
  uint64_t next_conn_ QV_GUARDED_BY(conns_mu_) = 1;

  // Admission + observability counters (see StatsResponse).
  std::atomic<uint64_t> queued_{0};
  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> deadline_rejected_{0};
  std::atomic<uint64_t> open_cursors_{0};
  std::atomic<uint64_t> conns_open_{0};
  std::atomic<uint64_t> conns_accepted_{0};
  std::atomic<uint64_t> conns_rejected_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  Histogram latency_[kOpcodeSlots];
  /// Per-opcode admission outcomes (slot 0 unused), alongside the
  /// process-wide totals above.
  std::atomic<uint64_t> op_shed_[kOpcodeSlots]{};
  std::atomic<uint64_t> op_deadline_rejected_[kOpcodeSlots]{};

  /// Unified registry: server series registered in the constructor, plus
  /// everything QueryService::RegisterMetrics pulls in.
  obs::MetricsRegistry registry_;
  obs::SlowQueryLog slow_log_;

  ThreadPool pool_;  // last-ish: workers must stop before state above
};

}  // namespace quickview::server

#endif  // QUICKVIEW_SERVER_SERVER_H_
