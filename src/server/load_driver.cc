#include "server/load_driver.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "server/client.h"
#include "server/protocol.h"

namespace quickview::server {
namespace {

using Clock = std::chrono::steady_clock;

/// Default rotation: the planted terms of the demo corpus
/// (workload::GenerateBookRevDatabase), mixed so cache hits and misses,
/// singles and pairs all occur.
std::vector<std::vector<std::string>> DefaultKeywordSets() {
  return {
      {"xml"},
      {"search"},
      {"web"},
      {"database"},
      {"xml", "search"},
      {"web", "database"},
      {"xml", "web"},
      {"search", "database"},
  };
}

struct ThreadCounters {  // lint:allow(adhoc-stats) per-run client-side tallies, not server telemetry
  uint64_t attempted = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t other_errors = 0;
  uint64_t transport_errors = 0;
  uint64_t hits_fetched = 0;
};

void CountError(const Status& status, ThreadCounters* counters) {
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
      ++counters->shed;
      break;
    case StatusCode::kDeadlineExceeded:
      ++counters->deadline_exceeded;
      break;
    case StatusCode::kInternal:
      // The client maps transport failures to Internal("connection ...").
      ++counters->transport_errors;
      break;
    default:
      ++counters->other_errors;
      break;
  }
}

void RunConnection(const LoadOptions& options,
                   const std::vector<std::vector<std::string>>& keyword_sets,
                   int thread_index, Clock::time_point start,
                   ThreadCounters* counters, Histogram* latency) {
  Client client;
  if (!client.Connect(options.host, options.port).ok()) {
    counters->transport_errors += 1;
    counters->attempted += static_cast<uint64_t>(
        options.requests_per_connection);
    return;
  }
  // Closed-loop pacing: each connection owns every `connections`-th slot
  // of the aggregate schedule; sleep_until keeps the offered rate at
  // target_qps even when responses are slow.
  const double per_connection_qps =
      options.target_qps > 0
          ? options.target_qps / static_cast<double>(options.connections)
          : 0;
  for (int i = 0; i < options.requests_per_connection; ++i) {
    if (per_connection_qps > 0) {
      const auto offset = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(static_cast<double>(i) /
                                        per_connection_qps));
      std::this_thread::sleep_until(start + offset);
    }
    const size_t set =
        static_cast<size_t>(thread_index + i) % keyword_sets.size();
    SearchRpcRequest request;
    request.view = options.view;
    request.keywords = keyword_sets[set];
    request.top_k = options.top_k;
    request.conjunctive = options.conjunctive;
    request.deadline_ms = options.deadline_ms;
    ++counters->attempted;
    const Clock::time_point issue = Clock::now();
    const bool paged =
        options.paged_every > 0 && i % options.paged_every == 0;
    if (paged) {
      Result<OpenCursorResponse> opened = client.OpenCursor(request);
      if (!opened.ok()) {
        CountError(opened.status(), counters);
      } else {
        bool failed = false;
        for (;;) {
          Result<FetchNextResponse> page =
              client.FetchNext(opened->cursor_id, options.page_size);
          if (!page.ok()) {
            CountError(page.status(), counters);
            failed = true;
            break;
          }
          counters->hits_fetched += page->hits.size();
          if (page->done || page->hits.empty()) break;
        }
        if (!failed) {
          if (client.CloseCursor(opened->cursor_id).ok()) {
            ++counters->ok;
          } else {
            ++counters->transport_errors;
          }
        }
      }
    } else {
      Result<engine::SearchResponse> response = client.Search(request);
      if (response.ok()) {
        ++counters->ok;
        counters->hits_fetched += response->hits.size();
      } else {
        CountError(response.status(), counters);
      }
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - issue);
    latency->Record(static_cast<uint64_t>(elapsed.count()));
    if (!client.connected()) return;  // transport gone; stop this thread
  }
}

}  // namespace

Result<LoadReport> RunLoadDriver(const LoadOptions& options) {
  if (options.connections <= 0 || options.requests_per_connection <= 0) {
    return Status::InvalidArgument(
        "connections and requests_per_connection must be positive");
  }
  // Fail fast if the server is unreachable at all (per-connection
  // failures during the run are counted, not fatal).
  {
    Client probe;
    QUICKVIEW_RETURN_IF_ERROR(probe.Connect(options.host, options.port));
  }
  const std::vector<std::vector<std::string>> keyword_sets =
      options.keyword_sets.empty() ? DefaultKeywordSets()
                                   : options.keyword_sets;

  const int n = options.connections;
  std::vector<ThreadCounters> counters(static_cast<size_t>(n));
  std::vector<std::unique_ptr<Histogram>> histograms;
  for (int i = 0; i < n; ++i) {
    histograms.push_back(std::make_unique<Histogram>());
  }
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&options, &keyword_sets, i, start, &counters,
                          &histograms] {
      RunConnection(options, keyword_sets, i, start,
                    &counters[static_cast<size_t>(i)], histograms[
                        static_cast<size_t>(i)].get());
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - start);

  LoadReport report;
  report.latency = std::make_shared<Histogram>();
  for (int i = 0; i < n; ++i) {
    const ThreadCounters& c = counters[static_cast<size_t>(i)];
    report.attempted += c.attempted;
    report.ok += c.ok;
    report.shed += c.shed;
    report.deadline_exceeded += c.deadline_exceeded;
    report.other_errors += c.other_errors;
    report.transport_errors += c.transport_errors;
    report.hits_fetched += c.hits_fetched;
    report.latency->Merge(*histograms[static_cast<size_t>(i)]);
  }
  report.wall_ms = static_cast<double>(wall.count()) / 1000.0;
  report.achieved_qps =
      report.wall_ms > 0
          ? static_cast<double>(report.attempted) * 1000.0 / report.wall_ms
          : 0;
  return report;
}

}  // namespace quickview::server
