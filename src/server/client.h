// Client: a blocking, single-connection speaker of the quickview wire
// protocol — one typed method per RPC, plus the raw Send/ReadFrame pair
// the tests use to drive the server into corner states (e.g. filling
// the admission queue without reading responses).
//
// Not thread-safe: one Client per thread (the load driver opens one per
// worker). RPC methods are strict request/response — each sends one
// frame and reads frames until the matching request id comes back; an
// error frame decodes into its typed Status, so a server-side
// kResourceExhausted or kDeadlineExceeded surfaces to the caller
// exactly as the in-process QueryService would have returned it.
#ifndef QUICKVIEW_SERVER_CLIENT_H_
#define QUICKVIEW_SERVER_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "server/protocol.h"

namespace quickview::server {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to host:port (IPv4 dotted quad). A server over its
  /// connection cap replies with one error frame and closes; that
  /// surfaces on the first RPC, not here.
  Status Connect(const std::string& host, uint16_t port);

  /// Closes the connection (idempotent).
  void Close();

  bool connected() const { return fd_ >= 0; }

  /// SO_RCVTIMEO on the socket: a read blocked longer than this fails
  /// DeadlineExceeded instead of hanging forever.
  Status SetRecvTimeout(std::chrono::milliseconds timeout);

  // Typed RPCs. Transport failures are Internal("connection ..."); a
  // server-side error frame is returned as its decoded Status.
  //
  // A non-null `trace_out` sets kFlagTrace on the request: the server
  // traces it end to end and `*trace_out` receives the serialized span
  // tree from the response (empty if the server returned none).
  Status RegisterView(const std::string& name, const std::string& view_text);
  Result<engine::SearchResponse> Search(const SearchRpcRequest& request,
                                        std::string* trace_out = nullptr);
  Result<OpenCursorResponse> OpenCursor(const SearchRpcRequest& request,
                                        std::string* trace_out = nullptr);
  Result<FetchNextResponse> FetchNext(uint64_t cursor_id, uint32_t count,
                                      std::string* trace_out = nullptr);
  Status CloseCursor(uint64_t cursor_id);
  Status Insert(const std::string& name, const std::string& xml_text);
  Status Remove(const std::string& name);
  Result<StatsResponse> Stats();
  /// kStats with format=text: the server's Prometheus exposition.
  Result<std::string> StatsText();

  // Raw frame access, for tests that decouple sending from reading.
  /// Sends one request frame with an explicit request id.
  Status SendRequest(Opcode opcode, uint64_t request_id, std::string payload,
                     uint8_t flags = 0);
  /// Reads the next whole frame off the wire (any opcode/id).
  Result<Frame> ReadFrame();

 private:
  /// Send + read until `request_id` answers; returns the success payload
  /// or the error frame's Status. A non-null `trace_out` sets kFlagTrace
  /// on the request and unwraps a traced response into trace + inner
  /// payload.
  Result<std::string> Call(Opcode opcode, std::string payload,
                           std::string* trace_out = nullptr);

  int fd_ = -1;
  uint64_t next_request_ = 1;
  std::string buffer_;  // bytes read but not yet decoded
};

}  // namespace quickview::server

#endif  // QUICKVIEW_SERVER_CLIENT_H_
