#include "workload/bookrev_generator.h"

#include <random>

namespace quickview::workload {

namespace {

using xml::Document;
using xml::NodeIndex;

const char* const kTopics[] = {"xml",      "search",  "web",     "database",
                               "services", "systems", "queries", "index"};

std::string Isbn(int i) {
  std::string out = std::to_string(100 + i % 900);
  out += "-" + std::to_string(10 + i % 90);
  out += "-" + std::to_string(1000 + i);
  return out;
}

}  // namespace

std::shared_ptr<xml::Database> GenerateBookRevDatabase(
    const BookRevOptions& opts) {
  std::mt19937_64 rng(opts.seed);
  auto pick = [&rng](auto& list, size_t n) { return list[rng() % n]; };

  auto db = std::make_shared<xml::Database>();
  auto books = std::make_shared<Document>(1);
  NodeIndex books_root = books->CreateRoot("books");
  for (int i = 0; i < opts.num_books; ++i) {
    NodeIndex book = books->AddChild(books_root, "book");
    books->node(books->AddChild(book, "isbn")).text = Isbn(i);
    std::string title = std::string(pick(kTopics, 8)) + " " +
                        pick(kTopics, 8) + " in practice";
    books->node(books->AddChild(book, "title")).text = title;
    books->node(books->AddChild(book, "publisher")).text =
        (rng() % 2 == 0) ? "Prentice Hall" : "Morgan Kaufmann";
    books->node(books->AddChild(book, "year")).text =
        std::to_string(1990 + static_cast<int>(rng() % 16));
  }
  db->AddDocument("books.xml", books);

  auto reviews = std::make_shared<Document>(2);
  NodeIndex reviews_root = reviews->CreateRoot("reviews");
  for (int i = 0; i < opts.num_books; ++i) {
    int count = static_cast<int>(rng() % (opts.max_reviews_per_book + 1));
    for (int r = 0; r < count; ++r) {
      NodeIndex review = reviews->AddChild(reviews_root, "review");
      reviews->node(reviews->AddChild(review, "isbn")).text = Isbn(i);
      reviews->node(reviews->AddChild(review, "rate")).text =
          (rng() % 3 == 0) ? "Excellent" : "Good";
      std::string content = "about " + std::string(pick(kTopics, 8)) +
                            " and " + pick(kTopics, 8) + ", easy to read";
      reviews->node(reviews->AddChild(review, "content")).text = content;
      reviews->node(reviews->AddChild(review, "reviewer")).text =
          "reviewer" + std::to_string(rng() % 10);
    }
  }
  db->AddDocument("reviews.xml", reviews);
  return db;
}

std::string BookRevView() {
  return R"(for $book in fn:doc(books.xml)/books//book
where $book/year > 1995
return <bookrevs>
  <book> {$book/title} </book>,
  {for $rev in fn:doc(reviews.xml)/reviews//review
   where $rev/isbn = $book/isbn
   return $rev/content}
</bookrevs>)";
}

std::string BookRevKeywordQuery() {
  return "let $view := " + BookRevView() + R"(
for $bookrev in $view
where $bookrev ftcontains('xml' & 'search')
return $bookrev)";
}

}  // namespace quickview::workload
