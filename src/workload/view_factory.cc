#include "workload/view_factory.h"

namespace quickview::workload {

namespace {

/// The selection-only view (0 joins / nesting level 1).
std::string SelectionView(int min_year) {
  return "for $art in fn:doc(inex.xml)/books//article\n"
         "where $art/year > " +
         std::to_string(min_year) +
         "\nreturn <res>{$art/title}, {$art/bdy}</res>";
}

/// Publications-under-author body; `$a` must be bound by the caller.
/// Extra joins nest inside per ViewSpec.
std::string AuthorPubsBody(const ViewSpec& spec) {
  std::string year_pred = "[./year > " + std::to_string(spec.min_year) + "]";
  std::string pub_children = "{$art/title}, {$art/bdy}";
  if (spec.num_joins >= 3) {
    pub_children +=
        ", {for $v in fn:doc(venues.xml)/venues//venue\n"
        "    where $v/fno = $art/fno\n"
        "    return $v/vname}";
  }
  std::string out =
      "<authorpubs><aname>{$a/name}</aname>,\n"
      "  {for $art in fn:doc(inex.xml)/books//article" +
      year_pred +
      "\n   where $art/fm/au = $a/name\n"
      "   return <pub>" +
      pub_children + "</pub>}";
  if (spec.num_joins >= 2) {
    out +=
        ",\n  {for $af in fn:doc(affil.xml)/affils//affil\n"
        "    where $af/name = $a/name\n"
        "    return $af/inst}";
  }
  if (spec.num_joins >= 4) {
    out +=
        ",\n  {for $aw in fn:doc(awards.xml)/awards//award\n"
        "    where $aw/name = $a/name\n"
        "    return $aw/prize}";
  }
  out += "\n</authorpubs>";
  return out;
}

}  // namespace

std::string BuildInexView(const ViewSpec& spec) {
  if (spec.num_joins == 0 || spec.nesting_level <= 1) {
    return SelectionView(spec.min_year);
  }
  std::string author_pubs = AuthorPubsBody(spec);
  if (spec.nesting_level <= 2) {
    return "for $a in fn:doc(authors.xml)/authors//author\nreturn " +
           author_pubs;
  }
  std::string group_pubs =
      "<grouppubs><gname>{$g/gname}</gname>,\n"
      " {for $a in fn:doc(authors.xml)/authors//author\n"
      "  where $a/group = $g/gname\n"
      "  return " +
      author_pubs + "}</grouppubs>";
  if (spec.nesting_level == 3) {
    return "for $g in fn:doc(groups.xml)/groups//group\nreturn " +
           group_pubs;
  }
  // Nesting level 4: supergroups wrap groups.
  return "for $sg in fn:doc(supergroups.xml)/supergroups//sgroup\n"
         "return <sgpubs><sgname>{$sg/sgname}</sgname>,\n"
         " {for $g in fn:doc(groups.xml)/groups//group\n"
         "  where $g/sgname = $sg/sgname\n"
         "  return " +
         group_pubs + "}</sgpubs>";
}

}  // namespace quickview::workload
