#include "workload/inex_generator.h"

#include <algorithm>
#include <random>

namespace quickview::workload {

namespace {

using xml::Document;
using xml::NodeIndex;

/// Deterministic text source planting the Table 1 selectivity-tier terms
/// at fixed rates among filler vocabulary.
class TextSource {
 public:
  explicit TextSource(uint64_t seed) : rng_(seed) {}

  std::string Word() {
    double roll = Uniform();
    if (roll < 0.030) return roll < 0.015 ? "ieee" : "computing";  // low sel
    if (roll < 0.036) return roll < 0.033 ? "thomas" : "control";  // medium
    if (roll < 0.0366) {
      return roll < 0.0363 ? "moore" : "burnett";  // high selectivity
    }
    return "w" + std::to_string(rng_() % 4000);
  }

  std::string Sentence(int words) {
    std::string out;
    for (int i = 0; i < words; ++i) {
      if (i > 0) out.push_back(' ');
      out += Word();
    }
    return out;
  }

  uint64_t Int(uint64_t bound) { return rng_() % bound; }
  double Uniform() {
    return static_cast<double>(rng_() % 1000000) / 1000000.0;
  }

 private:
  std::mt19937_64 rng_;
};

/// Appends a leaf child and tracks an approximate byte size.
NodeIndex AddLeaf(Document* doc, NodeIndex parent, const std::string& tag,
                  std::string text, uint64_t* bytes) {
  NodeIndex node = doc->AddChild(parent, tag);
  *bytes += 2 * tag.size() + 5 + text.size();
  doc->node(node).text = std::move(text);
  return node;
}

}  // namespace

std::shared_ptr<xml::Database> GenerateInexDatabase(const InexOptions& opts) {
  auto db = std::make_shared<xml::Database>();
  TextSource text(opts.seed);

  // --- inex.xml: journals with articles ---
  auto inex = std::make_shared<Document>(1);
  NodeIndex books = inex->CreateRoot("books");
  uint64_t bytes = 0;
  int article_counter = 0;
  std::vector<std::string> article_fnos;
  std::vector<std::string> article_authors;  // per article, for sizing
  while (bytes < opts.target_bytes) {
    NodeIndex journal = inex->AddChild(books, "journal");
    AddLeaf(inex.get(), journal, "title",
            "journal of " + text.Sentence(2), &bytes);
    int articles_here = 4 + static_cast<int>(text.Int(5));
    for (int a = 0; a < articles_here && bytes < opts.target_bytes; ++a) {
      NodeIndex article = inex->AddChild(journal, "article");
      std::string fno = "fno" + std::to_string(article_counter++);
      article_fnos.push_back(fno);
      AddLeaf(inex.get(), article, "fno", fno, &bytes);
      AddLeaf(inex.get(), article, "title", text.Sentence(5), &bytes);
      AddLeaf(inex.get(), article, "year",
              std::to_string(1990 + text.Int(16)), &bytes);
      NodeIndex fm = inex->AddChild(article, "fm");
      // Join selectivity (replication model, see InexOptions): articles
      // draw authors from a pool of num_authors * selectivity names, so
      // each matching author joins ~1/selectivity times more articles.
      uint64_t pool = std::max<uint64_t>(
          1, static_cast<uint64_t>(opts.num_authors *
                                   opts.join_selectivity));
      std::string author = "author" + std::to_string(text.Int(pool));
      article_authors.push_back(author);
      AddLeaf(inex.get(), fm, "au", author, &bytes);
      AddLeaf(inex.get(), fm, "kwd", text.Sentence(4), &bytes);
      NodeIndex bdy = inex->AddChild(article, "bdy");
      // Real INEX articles are overwhelmingly body text (the 500 MB
      // collection holds ~12k articles, tens of KB each); sections scale
      // with the view-element-size knob.
      int sections = 3 * opts.element_size_factor;
      for (int s = 0; s < sections; ++s) {
        NodeIndex sec = inex->AddChild(bdy, "sec");
        for (int p = 0; p < 5; ++p) {
          AddLeaf(inex.get(), sec, "p",
                  text.Sentence(40 + static_cast<int>(text.Int(30))),
                  &bytes);
        }
      }
    }
  }
  db->AddDocument("inex.xml", inex);

  // --- authors.xml ---
  auto authors = std::make_shared<Document>(2);
  NodeIndex authors_root = authors->CreateRoot("authors");
  uint64_t side_bytes = 0;
  for (int i = 0; i < opts.num_authors; ++i) {
    NodeIndex author = authors->AddChild(authors_root, "author");
    AddLeaf(authors.get(), author, "name", "author" + std::to_string(i),
            &side_bytes);
    AddLeaf(authors.get(), author, "group",
            "group" + std::to_string(i % opts.num_groups), &side_bytes);
    AddLeaf(authors.get(), author, "bio", text.Sentence(8), &side_bytes);
  }
  db->AddDocument("authors.xml", authors);

  // --- groups.xml / supergroups.xml (nesting levels 3 and 4) ---
  auto groups = std::make_shared<Document>(3);
  NodeIndex groups_root = groups->CreateRoot("groups");
  for (int i = 0; i < opts.num_groups; ++i) {
    NodeIndex group = groups->AddChild(groups_root, "group");
    AddLeaf(groups.get(), group, "gname", "group" + std::to_string(i),
            &side_bytes);
    AddLeaf(groups.get(), group, "sgname",
            "sgroup" + std::to_string(i % opts.num_supergroups), &side_bytes);
  }
  db->AddDocument("groups.xml", groups);

  auto supergroups = std::make_shared<Document>(4);
  NodeIndex sg_root = supergroups->CreateRoot("supergroups");
  for (int i = 0; i < opts.num_supergroups; ++i) {
    NodeIndex sgroup = supergroups->AddChild(sg_root, "sgroup");
    AddLeaf(supergroups.get(), sgroup, "sgname",
            "sgroup" + std::to_string(i), &side_bytes);
    AddLeaf(supergroups.get(), sgroup, "motto", text.Sentence(4),
            &side_bytes);
  }
  db->AddDocument("supergroups.xml", supergroups);

  // --- join-chain side documents (Fig 17's 2nd..4th joins) ---
  auto affils = std::make_shared<Document>(5);
  NodeIndex affils_root = affils->CreateRoot("affils");
  for (int i = 0; i < opts.num_authors; ++i) {
    NodeIndex affil = affils->AddChild(affils_root, "affil");
    AddLeaf(affils.get(), affil, "name", "author" + std::to_string(i),
            &side_bytes);
    AddLeaf(affils.get(), affil, "inst",
            "institute " + text.Sentence(3), &side_bytes);
  }
  db->AddDocument("affil.xml", affils);

  auto venues = std::make_shared<Document>(6);
  NodeIndex venues_root = venues->CreateRoot("venues");
  for (size_t i = 0; i < article_fnos.size(); ++i) {
    // Every k-th article has a venue record.
    if (i % 3 != 0) continue;
    NodeIndex venue = venues->AddChild(venues_root, "venue");
    AddLeaf(venues.get(), venue, "fno", article_fnos[i], &side_bytes);
    AddLeaf(venues.get(), venue, "vname",
            "venue " + std::to_string(text.Int(opts.num_venues)),
            &side_bytes);
  }
  db->AddDocument("venues.xml", venues);

  auto awards = std::make_shared<Document>(7);
  NodeIndex awards_root = awards->CreateRoot("awards");
  for (int i = 0; i < opts.num_authors; i += 2) {
    NodeIndex award = awards->AddChild(awards_root, "award");
    AddLeaf(awards.get(), award, "name", "author" + std::to_string(i),
            &side_bytes);
    AddLeaf(awards.get(), award, "prize", "prize " + text.Sentence(2),
            &side_bytes);
  }
  db->AddDocument("awards.xml", awards);

  return db;
}

std::vector<std::string> KeywordsForTier(KeywordTier tier) {
  switch (tier) {
    case KeywordTier::kLow:
      return {"ieee", "computing"};
    case KeywordTier::kMedium:
      return {"thomas", "control"};
    case KeywordTier::kHigh:
      return {"moore", "burnett"};
  }
  return {};
}

std::vector<std::string> DefaultKeywords(int count) {
  static const char* kTerms[] = {"thomas", "control", "ieee", "moore",
                                 "computing"};
  std::vector<std::string> out;
  for (int i = 0; i < count && i < 5; ++i) out.emplace_back(kTerms[i]);
  return out;
}

}  // namespace quickview::workload
