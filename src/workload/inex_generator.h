// Synthetic INEX-like dataset generator. The paper evaluates on the
// 500 MB INEX collection (IEEE publication records); this generator
// reproduces the DTD excerpt of §5.1 —
//   books(journal*), journal(title, article*),
//   article(fno, title, year, fm, bdy), fm(au*, kwd*), bdy(sec*), sec(p*)
// — with every Table 1 parameter as a knob: data size, keyword
// selectivity tiers (named after the paper's Low/Medium/High term pairs),
// join selectivity (fraction of articles whose author appears in
// authors.xml), nesting-level side documents, and view-element size.
// Deterministic for a fixed seed.
#ifndef QUICKVIEW_WORKLOAD_INEX_GENERATOR_H_
#define QUICKVIEW_WORKLOAD_INEX_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "xml/dom.h"

namespace quickview::workload {

/// Keyword selectivity tiers; the paper's Table 1 names example terms for
/// each (Low: IEEE/Computing — frequent terms, long inverted lists;
/// High: Moore/Burnett — rare terms, short lists).
enum class KeywordTier { kLow, kMedium, kHigh };

struct InexOptions {
  /// Approximate serialized size of inex.xml, in bytes.
  uint64_t target_bytes = 2 << 20;
  uint64_t seed = 42;
  /// Multiplies the body text per article (the "Avg. Size of View
  /// Element" knob, 1X..5X).
  int element_size_factor = 1;
  /// Paper Table 1 join selectivity (1X, 0.5X, 0.2X, 0.1X): the paper
  /// decreases selectivity "by replicating subsets of the data", so a
  /// *given author joins more articles* at lower values. Here the article
  /// author pool shrinks to num_authors * join_selectivity distinct
  /// names, multiplying matches per matching author by 1/selectivity
  /// while total data and join output stay constant.
  double join_selectivity = 1.0;
  int num_authors = 256;
  int num_groups = 8;       // nesting level 3
  int num_supergroups = 3;  // nesting level 4
  int num_venues = 32;      // join chain
};

/// Documents produced: inex.xml, authors.xml, groups.xml,
/// supergroups.xml, affil.xml, venues.xml, awards.xml.
std::shared_ptr<xml::Database> GenerateInexDatabase(const InexOptions& opts);

/// The paper's Table 1 keyword pairs by selectivity tier (lowercased).
std::vector<std::string> KeywordsForTier(KeywordTier tier);

/// `count` (1..5) keywords of roughly medium selectivity, for the Fig 15
/// sweep.
std::vector<std::string> DefaultKeywords(int count);

}  // namespace quickview::workload

#endif  // QUICKVIEW_WORKLOAD_INEX_GENERATOR_H_
