// Generator for the paper's running example (Fig 1): a books.xml document
// and a reviews.xml document joined on isbn, used by the examples and the
// correctness test suite.
#ifndef QUICKVIEW_WORKLOAD_BOOKREV_GENERATOR_H_
#define QUICKVIEW_WORKLOAD_BOOKREV_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "xml/dom.h"

namespace quickview::workload {

struct BookRevOptions {
  int num_books = 40;
  int max_reviews_per_book = 4;
  uint64_t seed = 7;
};

/// Documents produced: books.xml (book: isbn, title, publisher, year) and
/// reviews.xml (review: isbn, rate, content, reviewer). Titles and review
/// contents plant the terms "xml", "search", "web", "database" at varying
/// rates so keyword queries have interesting answers.
std::shared_ptr<xml::Database> GenerateBookRevDatabase(
    const BookRevOptions& opts);

/// The view of paper Fig 2: books with year > 1995, their titles, and the
/// contents of their reviews nested under them.
std::string BookRevView();

/// The full Fig 2 keyword query over that view.
std::string BookRevKeywordQuery();

}  // namespace quickview::workload

#endif  // QUICKVIEW_WORKLOAD_BOOKREV_GENERATOR_H_
