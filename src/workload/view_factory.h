// Builds the parameterized INEX views of the evaluation section: number
// of value joins (Fig 17), join selectivity (via the generator), and
// nesting level (Fig 19) map onto generated view text.
#ifndef QUICKVIEW_WORKLOAD_VIEW_FACTORY_H_
#define QUICKVIEW_WORKLOAD_VIEW_FACTORY_H_

#include <string>

namespace quickview::workload {

struct ViewSpec {
  /// Number of value joins: 0 = selection-only view; 1 = articles nested
  /// under authors (the paper's default view); 2 adds affiliations, 3
  /// adds venues, 4 adds awards.
  int num_joins = 1;
  /// FLWOR nesting depth: 1 = selection only; 2 = publications under
  /// authors (default); 3 wraps authors in groups; 4 wraps groups in
  /// supergroups. Ignored (forced to the matching depth) when < joins+1.
  int nesting_level = 2;
  /// Selection predicate on article year (present at every level).
  int min_year = 1995;
};

/// View text for the spec, against GenerateInexDatabase documents.
std::string BuildInexView(const ViewSpec& spec);

}  // namespace quickview::workload

#endif  // QUICKVIEW_WORKLOAD_VIEW_FACTORY_H_
