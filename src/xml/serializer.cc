#include "xml/serializer.h"

namespace quickview::xml {

std::string EscapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

void SerializeTo(const Document& doc, NodeIndex index, std::string* out) {
  const Node& node = doc.node(index);
  out->push_back('<');
  out->append(node.tag);
  out->push_back('>');
  if (!node.text.empty()) out->append(EscapeText(node.text));
  for (NodeIndex child : node.children) SerializeTo(doc, child, out);
  out->append("</");
  out->append(node.tag);
  out->push_back('>');
}

uint64_t EscapedLength(const std::string& text) {
  uint64_t length = 0;
  for (char c : text) {
    switch (c) {
      case '&':
        length += 5;
        break;
      case '<':
      case '>':
        length += 4;
        break;
      case '"':
      case '\'':
        length += 6;
        break;
      default:
        length += 1;
    }
  }
  return length;
}

}  // namespace

std::string Serialize(const Document& doc, NodeIndex node) {
  std::string out;
  SerializeTo(doc, node, &out);
  return out;
}

std::string Serialize(const Document& doc) {
  if (!doc.has_root()) return "";
  return Serialize(doc, doc.root());
}

uint64_t SubtreeByteLength(const Document& doc, NodeIndex node_index) {
  const Node& node = doc.node(node_index);
  // <tag> + </tag> = 2*tag + 5.
  uint64_t length = 2 * node.tag.size() + 5;
  if (!node.text.empty()) length += EscapedLength(node.text);
  for (NodeIndex child : node.children) {
    length += SubtreeByteLength(doc, child);
  }
  return length;
}

uint64_t SubtreeByteLengths(const Document& doc, NodeIndex node_index,
                            std::vector<uint64_t>* lengths) {
  const Node& node = doc.node(node_index);
  uint64_t length = 2 * node.tag.size() + 5;
  if (!node.text.empty()) length += EscapedLength(node.text);
  for (NodeIndex child : node.children) {
    length += SubtreeByteLengths(doc, child, lengths);
  }
  (*lengths)[node_index] = length;
  return length;
}

}  // namespace quickview::xml
