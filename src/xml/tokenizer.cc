#include "xml/tokenizer.h"

#include <cctype>

namespace quickview::xml {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> DirectTerms(const Node& node) {
  std::vector<std::string> terms = Tokenize(node.tag);
  std::vector<std::string> text_terms = Tokenize(node.text);
  terms.insert(terms.end(), std::make_move_iterator(text_terms.begin()),
               std::make_move_iterator(text_terms.end()));
  return terms;
}

uint32_t SubtreeTermFrequency(const Document& doc, NodeIndex node,
                              std::string_view term) {
  uint32_t count = 0;
  for (NodeIndex index : doc.SubtreeNodes(node)) {
    for (const std::string& t : DirectTerms(doc.node(index))) {
      if (t == term) ++count;
    }
  }
  return count;
}

}  // namespace quickview::xml
