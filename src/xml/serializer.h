// XML serialization. Byte lengths reported by SubtreeByteLength() define
// the len(e) used for score normalization (paper §4.2.2.2 / Theorem 4.1),
// so the serializer is the single source of truth for element sizes.
#ifndef QUICKVIEW_XML_SERIALIZER_H_
#define QUICKVIEW_XML_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/dom.h"

namespace quickview::xml {

/// Serializes the subtree rooted at `node` to XML text. Text is emitted
/// before children (matching how the parser folds direct text).
std::string Serialize(const Document& doc, NodeIndex node);

/// Serializes the whole document.
std::string Serialize(const Document& doc);

/// Byte length of Serialize(doc, node) without building the string.
uint64_t SubtreeByteLength(const Document& doc, NodeIndex node);

/// One-pass form: fills `(*lengths)[i]` with SubtreeByteLength(doc, i)
/// for every node in the subtree under `node` and returns the subtree's
/// own length. `lengths` must already be sized to doc.size(). Callers
/// that need every node's length (the packer) use this instead of n
/// recursive SubtreeByteLength calls (O(n) vs O(n x depth)).
uint64_t SubtreeByteLengths(const Document& doc, NodeIndex node,
                            std::vector<uint64_t>* lengths);

/// Escapes &, <, >, " and ' for element content.
std::string EscapeText(const std::string& text);

}  // namespace quickview::xml

#endif  // QUICKVIEW_XML_SERIALIZER_H_
