// XML serialization. Byte lengths reported by SubtreeByteLength() define
// the len(e) used for score normalization (paper §4.2.2.2 / Theorem 4.1),
// so the serializer is the single source of truth for element sizes.
#ifndef QUICKVIEW_XML_SERIALIZER_H_
#define QUICKVIEW_XML_SERIALIZER_H_

#include <cstdint>
#include <string>

#include "xml/dom.h"

namespace quickview::xml {

/// Serializes the subtree rooted at `node` to XML text. Text is emitted
/// before children (matching how the parser folds direct text).
std::string Serialize(const Document& doc, NodeIndex node);

/// Serializes the whole document.
std::string Serialize(const Document& doc);

/// Byte length of Serialize(doc, node) without building the string.
uint64_t SubtreeByteLength(const Document& doc, NodeIndex node);

/// Escapes &, <, >, " and ' for element content.
std::string EscapeText(const std::string& text);

}  // namespace quickview::xml

#endif  // QUICKVIEW_XML_SERIALIZER_H_
