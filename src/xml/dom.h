// In-memory XML document model (paper §2.1). Attributes are modeled as
// subelements, as the paper does; directly-contained text is stored inline
// on the owning element. Every node carries a Dewey ID (§3.2).
//
// The same Document class represents base documents, PDTs (pruned document
// trees, §4) and query result trees: PDT nodes additionally carry a
// NodeStats payload with selectively-materialized values, subtree term
// frequencies and subtree byte lengths, which is how the unmodified query
// evaluator can run over PDTs (paper Fig 3).
#ifndef QUICKVIEW_XML_DOM_H_
#define QUICKVIEW_XML_DOM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "xml/dewey_id.h"

namespace quickview::xml {

using NodeIndex = uint32_t;
inline constexpr NodeIndex kInvalidNode = static_cast<NodeIndex>(-1);

/// Extra payload present on PDT nodes and on result-tree nodes copied from
/// PDTs. For a 'c'-annotated node the subtree content is pruned away and
/// summarized by `term_tf` (per query keyword) and `byte_length`; the
/// original location is remembered for deferred materialization.
struct NodeStats {  // lint:allow(adhoc-stats) per-document structural counts, not telemetry
  /// Subtree term frequency for each query keyword, by keyword position.
  std::vector<uint32_t> term_tf;
  /// Serialized byte length of the full (unpruned) subtree.
  uint64_t byte_length = 0;
  /// True for 'c' nodes whose content is pruned and must be fetched from
  /// document storage during materialization.
  bool content_pruned = false;
  /// Source document ordinal (root Dewey component) and id, for fetching.
  uint32_t source_doc = 0;
  DeweyId source_id;
};

struct Node {
  std::string tag;
  /// Concatenated directly-contained text (atomic value for leaf elements).
  std::string text;
  DeweyId id;
  NodeIndex parent = kInvalidNode;
  std::vector<NodeIndex> children;
  /// Present on PDT / result-tree nodes only.
  std::optional<NodeStats> stats;
};

/// A single XML tree. Nodes are stored contiguously and addressed by
/// NodeIndex; the root always has index 0 once created.
class Document {
 public:
  /// `root_component` is the first Dewey component of every id in this
  /// document (distinct per document in a Database, as in paper Fig 8
  /// where book ids start with 1 and review ids with 2).
  explicit Document(uint32_t root_component = 1)
      : root_component_(root_component) {}

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  /// Creates the root element; must be called exactly once, first.
  NodeIndex CreateRoot(std::string tag);

  /// Appends a child element; the Dewey ordinal is one past the current
  /// last child's ordinal (contiguous for parsed documents).
  NodeIndex AddChild(NodeIndex parent, std::string tag);

  /// Appends a child element with an explicit Dewey id (PDT construction,
  /// where ordinals are sparse). `id` must be a child-extension of the
  /// parent's id and greater than the last child's id.
  NodeIndex AddChildWithId(NodeIndex parent, std::string tag, DeweyId id);

  bool has_root() const { return !nodes_.empty(); }
  NodeIndex root() const { return 0; }
  uint32_t root_component() const { return root_component_; }

  Node& node(NodeIndex i) { return nodes_[i]; }
  const Node& node(NodeIndex i) const { return nodes_[i]; }
  size_t size() const { return nodes_.size(); }

  /// Locates the node with exactly this Dewey id, or kInvalidNode.
  NodeIndex FindByDewey(const DeweyId& id) const;

  /// Sum of tokens/bytes convenience: all node indices in document order
  /// (pre-order), starting at `start`.
  std::vector<NodeIndex> SubtreeNodes(NodeIndex start) const;

 private:
  uint32_t root_component_;
  std::vector<Node> nodes_;
};

/// Copies the subtree of `source` rooted at `source_index` into `target`
/// as a child of `target_parent` (or as the root when `target_parent` is
/// kInvalidNode and `target` is empty). The copy gets fresh contiguous
/// Dewey ordinals under the target position. Returns the copy's index.
/// Shared by the in-memory DocumentStore fetch path, the packed-database
/// delta overlay, and pack compaction.
NodeIndex CopySubtreeInto(const Document& source, NodeIndex source_index,
                          Document* target, NodeIndex target_parent);

/// A named collection of documents (the database instance D of §2.1).
/// Each document is registered under the name used by fn:doc() in views
/// and is assigned a distinct root Dewey component.
class Database {
 public:
  /// Adds `doc` under `name`; the document's root component must be unique
  /// within the database.
  void AddDocument(const std::string& name, std::shared_ptr<Document> doc);

  /// Unregisters the document stored under `name`; returns whether it
  /// existed. Shared_ptr holders (store snapshots, open cursors) keep the
  /// removed document alive.
  bool RemoveDocument(const std::string& name);

  /// nullptr if absent.
  const Document* GetDocument(const std::string& name) const;
  std::shared_ptr<Document> GetDocumentShared(const std::string& name) const;

  /// Document whose root component is `root_component`; nullptr if absent.
  const Document* GetDocumentByRoot(uint32_t root_component) const;
  const std::string* GetNameByRoot(uint32_t root_component) const;

  const std::map<std::string, std::shared_ptr<Document>>& documents() const {
    return documents_;
  }

  /// Smallest unused root component (1-based).
  uint32_t NextRootComponent() const;

 private:
  std::map<std::string, std::shared_ptr<Document>> documents_;
  std::map<uint32_t, std::string> by_root_;
};

}  // namespace quickview::xml

#endif  // QUICKVIEW_XML_DOM_H_
