// Minimal XML parser producing quickview DOM trees. Supports elements,
// attributes (converted to leading subelements, as the paper treats them),
// character data, CDATA, the five predefined entities, comments and
// processing instructions (skipped). No DTD/namespace processing.
#ifndef QUICKVIEW_XML_PARSER_H_
#define QUICKVIEW_XML_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "xml/dom.h"

namespace quickview::xml {

/// Parses `input` into a Document whose Dewey ids start with
/// `root_component`. Returns ParseError with a byte offset on bad input.
Result<std::shared_ptr<Document>> ParseXml(std::string_view input,
                                           uint32_t root_component = 1);

}  // namespace quickview::xml

#endif  // QUICKVIEW_XML_PARSER_H_
