#include "xml/dewey_id.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace quickview::xml {

DeweyId DeweyId::Parse(const std::string& text) {
  if (text.empty()) return DeweyId();
  std::vector<uint32_t> components;
  for (std::string_view piece : SplitString(text, '.')) {
    uint32_t value = 0;
    for (char c : piece) {
      assert(c >= '0' && c <= '9');
      value = value * 10 + static_cast<uint32_t>(c - '0');
    }
    components.push_back(value);
  }
  return DeweyId(std::move(components));
}

DeweyId DeweyId::Parent() const {
  if (components_.empty()) return DeweyId();
  return Prefix(components_.size() - 1);
}

DeweyId DeweyId::Prefix(size_t len) const {
  assert(len <= components_.size());
  return DeweyId(std::vector<uint32_t>(components_.begin(),
                                       components_.begin() + len));
}

DeweyId DeweyId::Child(uint32_t ordinal) const {
  std::vector<uint32_t> components = components_;
  components.push_back(ordinal);
  return DeweyId(std::move(components));
}

bool DeweyId::IsPrefixOf(const DeweyId& other) const {
  if (components_.size() > other.components_.size()) return false;
  return std::equal(components_.begin(), components_.end(),
                    other.components_.begin());
}

bool DeweyId::IsAncestorOf(const DeweyId& other) const {
  return components_.size() < other.components_.size() && IsPrefixOf(other);
}

bool DeweyId::IsParentOf(const DeweyId& other) const {
  return components_.size() + 1 == other.components_.size() &&
         IsPrefixOf(other);
}

size_t DeweyId::CommonPrefixLength(const DeweyId& other) const {
  size_t limit = std::min(components_.size(), other.components_.size());
  size_t i = 0;
  while (i < limit && components_[i] == other.components_[i]) ++i;
  return i;
}

std::string DeweyId::Encode() const {
  std::string out;
  out.reserve(components_.size() * 4);
  for (uint32_t c : components_) {
    out.push_back(static_cast<char>((c >> 24) & 0xff));
    out.push_back(static_cast<char>((c >> 16) & 0xff));
    out.push_back(static_cast<char>((c >> 8) & 0xff));
    out.push_back(static_cast<char>(c & 0xff));
  }
  return out;
}

DeweyId DeweyId::Decode(const std::string& bytes) {
  assert(bytes.size() % 4 == 0);
  std::vector<uint32_t> components;
  components.reserve(bytes.size() / 4);
  for (size_t i = 0; i < bytes.size(); i += 4) {
    uint32_t c = (static_cast<uint32_t>(static_cast<unsigned char>(bytes[i]))
                  << 24) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(bytes[i + 1]))
                  << 16) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(bytes[i + 2]))
                  << 8) |
                 static_cast<uint32_t>(static_cast<unsigned char>(bytes[i + 3]));
    components.push_back(c);
  }
  return DeweyId(std::move(components));
}

std::string DeweyId::ToString() const {
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(components_[i]);
  }
  return out;
}

}  // namespace quickview::xml
