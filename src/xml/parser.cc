#include "xml/parser.h"

#include <cctype>
#include <string>

namespace quickview::xml {

namespace {

class Parser {
 public:
  Parser(std::string_view input, uint32_t root_component)
      : input_(input), doc_(std::make_shared<Document>(root_component)) {}

  Result<std::shared_ptr<Document>> Run() {
    SkipProlog();
    if (AtEnd() || Peek() != '<') {
      return Error("expected root element");
    }
    QV_RETURN_IF_ERROR(ParseElement(kInvalidNode));
    SkipMisc();
    if (!AtEnd()) return Error("trailing content after root element");
    return doc_;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at byte " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (!AtEnd() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool TryConsume(std::string_view token) {
    if (input_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void SkipUntil(std::string_view token) {
    size_t found = input_.find(token, pos_);
    pos_ = found == std::string_view::npos ? input_.size()
                                           : found + token.size();
  }

  void SkipProlog() {
    SkipWhitespace();
    while (!AtEnd()) {
      if (TryConsume("<?")) {
        SkipUntil("?>");
      } else if (TryConsume("<!--")) {
        SkipUntil("-->");
      } else if (TryConsume("<!DOCTYPE")) {
        SkipUntil(">");
      } else {
        break;
      }
      SkipWhitespace();
    }
  }

  void SkipMisc() {
    SkipWhitespace();
    while (!AtEnd()) {
      if (TryConsume("<?")) {
        SkipUntil("?>");
      } else if (TryConsume("<!--")) {
        SkipUntil("-->");
      } else {
        break;
      }
      SkipWhitespace();
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  /// Decodes predefined entities in `raw` into `out`.
  Status AppendDecoded(std::string_view raw, std::string* out) {
    size_t i = 0;
    while (i < raw.size()) {
      if (raw[i] != '&') {
        out->push_back(raw[i++]);
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Status::ParseError("unterminated entity reference");
      }
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") {
        out->push_back('&');
      } else if (entity == "lt") {
        out->push_back('<');
      } else if (entity == "gt") {
        out->push_back('>');
      } else if (entity == "quot") {
        out->push_back('"');
      } else if (entity == "apos") {
        out->push_back('\'');
      } else if (!entity.empty() && entity[0] == '#') {
        uint32_t code = 0;
        if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
          for (size_t j = 2; j < entity.size(); ++j) {
            code = code * 16 +
                   static_cast<uint32_t>(
                       std::isdigit(static_cast<unsigned char>(entity[j]))
                           ? entity[j] - '0'
                           : std::tolower(entity[j]) - 'a' + 10);
          }
        } else {
          for (size_t j = 1; j < entity.size(); ++j) {
            code = code * 10 + static_cast<uint32_t>(entity[j] - '0');
          }
        }
        // ASCII only; others replaced with '?'.
        out->push_back(code < 128 ? static_cast<char>(code) : '?');
      } else {
        return Status::ParseError("unknown entity &" + std::string(entity) +
                                  ";");
      }
      i = semi + 1;
    }
    return Status::OK();
  }

  Status ParseElement(NodeIndex parent) {
    if (!TryConsume("<")) return Error("expected '<'");
    QV_ASSIGN_OR_RETURN(std::string tag, ParseName());

    NodeIndex self = parent == kInvalidNode
                         ? doc_->CreateRoot(std::move(tag))
                         : doc_->AddChild(parent, std::move(tag));

    // Attributes become leading subelements (paper §2.1).
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') break;
      QV_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (!TryConsume("=")) return Error("expected '=' in attribute");
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated attribute value");
      std::string_view raw = input_.substr(start, pos_ - start);
      ++pos_;
      NodeIndex attr = doc_->AddChild(self, std::move(attr_name));
      QV_RETURN_IF_ERROR(AppendDecoded(raw, &doc_->node(attr).text));
    }

    if (TryConsume("/>")) return Status::OK();
    if (!TryConsume(">")) return Error("expected '>'");

    // Content: text, children, comments, CDATA, end tag.
    while (true) {
      if (AtEnd()) return Error("unterminated element");
      if (Peek() == '<') {
        if (TryConsume("<!--")) {
          SkipUntil("-->");
          continue;
        }
        if (TryConsume("<![CDATA[")) {
          size_t start = pos_;
          size_t end = input_.find("]]>", pos_);
          if (end == std::string_view::npos) {
            return Error("unterminated CDATA");
          }
          doc_->node(self).text.append(input_.substr(start, end - start));
          pos_ = end + 3;
          continue;
        }
        if (TryConsume("<?")) {
          SkipUntil("?>");
          continue;
        }
        if (PeekAt(1) == '/') {
          pos_ += 2;
          QV_ASSIGN_OR_RETURN(std::string end_tag, ParseName());
          SkipWhitespace();
          if (!TryConsume(">")) return Error("expected '>' in end tag");
          if (end_tag != doc_->node(self).tag) {
            return Error("mismatched end tag </" + end_tag + ">");
          }
          return Status::OK();
        }
        QV_RETURN_IF_ERROR(ParseElement(self));
        continue;
      }
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') ++pos_;
      std::string decoded;
      QV_RETURN_IF_ERROR(AppendDecoded(
          TrimText(input_.substr(start, pos_ - start)), &decoded));
      if (!decoded.empty()) {
        // Text runs separated by child elements join with one space.
        std::string& text = doc_->node(self).text;
        if (!text.empty()) text.push_back(' ');
        text.append(decoded);
      }
    }
  }

  /// Collapses pure-whitespace runs; keeps interior text as-is.
  static std::string_view TrimText(std::string_view text) {
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
      ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
      --end;
    }
    return text.substr(begin, end - begin);
  }

  std::string_view input_;
  size_t pos_ = 0;
  std::shared_ptr<Document> doc_;
};

}  // namespace

Result<std::shared_ptr<Document>> ParseXml(std::string_view input,
                                           uint32_t root_component) {
  return Parser(input, root_component).Run();
}

}  // namespace quickview::xml
