#include "xml/dom.h"

#include <algorithm>
#include <cassert>

namespace quickview::xml {

NodeIndex Document::CreateRoot(std::string tag) {
  assert(nodes_.empty());
  Node root;
  root.tag = std::move(tag);
  root.id = DeweyId({root_component_});
  nodes_.push_back(std::move(root));
  return 0;
}

NodeIndex Document::AddChild(NodeIndex parent, std::string tag) {
  assert(parent < nodes_.size());
  uint32_t ordinal = 1;
  if (!nodes_[parent].children.empty()) {
    const Node& last = nodes_[nodes_[parent].children.back()];
    ordinal = last.id.components().back() + 1;
  }
  return AddChildWithId(parent, std::move(tag),
                        nodes_[parent].id.Child(ordinal));
}

NodeIndex Document::AddChildWithId(NodeIndex parent, std::string tag,
                                   DeweyId id) {
  assert(parent < nodes_.size());
  assert(nodes_[parent].id.IsParentOf(id));
  NodeIndex index = static_cast<NodeIndex>(nodes_.size());
  Node child;
  child.tag = std::move(tag);
  child.id = std::move(id);
  child.parent = parent;
  nodes_.push_back(std::move(child));
  nodes_[parent].children.push_back(index);
  return index;
}

NodeIndex Document::FindByDewey(const DeweyId& id) const {
  if (nodes_.empty()) return kInvalidNode;
  if (id.empty() || id.component(0) != root_component_) return kInvalidNode;
  NodeIndex current = 0;
  for (size_t depth = 1; depth < id.depth(); ++depth) {
    uint32_t ordinal = id.component(depth);
    const std::vector<NodeIndex>& children = nodes_[current].children;
    // Children are sorted by ordinal; binary search on the last component.
    auto it = std::lower_bound(
        children.begin(), children.end(), ordinal,
        [this](NodeIndex child, uint32_t target) {
          return nodes_[child].id.components().back() < target;
        });
    if (it == children.end() ||
        nodes_[*it].id.components().back() != ordinal) {
      return kInvalidNode;
    }
    current = *it;
  }
  return current;
}

std::vector<NodeIndex> Document::SubtreeNodes(NodeIndex start) const {
  std::vector<NodeIndex> out;
  std::vector<NodeIndex> stack = {start};
  while (!stack.empty()) {
    NodeIndex current = stack.back();
    stack.pop_back();
    out.push_back(current);
    const std::vector<NodeIndex>& children = nodes_[current].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

NodeIndex CopySubtreeInto(const Document& source, NodeIndex source_index,
                          Document* target, NodeIndex target_parent) {
  const Node& node = source.node(source_index);
  NodeIndex copied = target_parent == kInvalidNode
                         ? target->CreateRoot(node.tag)
                         : target->AddChild(target_parent, node.tag);
  target->node(copied).text = node.text;
  for (NodeIndex child : node.children) {
    CopySubtreeInto(source, child, target, copied);
  }
  return copied;
}

void Database::AddDocument(const std::string& name,
                           std::shared_ptr<Document> doc) {
  assert(doc != nullptr);
  assert(by_root_.find(doc->root_component()) == by_root_.end());
  by_root_[doc->root_component()] = name;
  documents_[name] = std::move(doc);
}

bool Database::RemoveDocument(const std::string& name) {
  auto it = documents_.find(name);
  if (it == documents_.end()) return false;
  by_root_.erase(it->second->root_component());
  documents_.erase(it);
  return true;
}

const Document* Database::GetDocument(const std::string& name) const {
  auto it = documents_.find(name);
  return it == documents_.end() ? nullptr : it->second.get();
}

std::shared_ptr<Document> Database::GetDocumentShared(
    const std::string& name) const {
  auto it = documents_.find(name);
  return it == documents_.end() ? nullptr : it->second;
}

const Document* Database::GetDocumentByRoot(uint32_t root_component) const {
  auto it = by_root_.find(root_component);
  if (it == by_root_.end()) return nullptr;
  return GetDocument(it->second);
}

const std::string* Database::GetNameByRoot(uint32_t root_component) const {
  auto it = by_root_.find(root_component);
  return it == by_root_.end() ? nullptr : &it->second;
}

uint32_t Database::NextRootComponent() const {
  uint32_t next = 1;
  while (by_root_.find(next) != by_root_.end()) ++next;
  return next;
}

}  // namespace quickview::xml
