// Dewey IDs (paper §3.2, Fig 4a): hierarchical element identifiers where an
// element's ID contains its parent's ID as a prefix. Component order equals
// document order, so ordered merges over ID lists visit elements in document
// order and cluster each element's descendants immediately after it.
#ifndef QUICKVIEW_XML_DEWEY_ID_H_
#define QUICKVIEW_XML_DEWEY_ID_H_

#include <cstdint>
#include <compare>
#include <string>
#include <vector>

namespace quickview::xml {

/// A hierarchical element id such as 1.2.3. The empty id () is the virtual
/// root that precedes every document node.
class DeweyId {
 public:
  DeweyId() = default;
  explicit DeweyId(std::vector<uint32_t> components)
      : components_(std::move(components)) {}

  /// Parses "1.2.3" form; returns the empty id for an empty string.
  static DeweyId Parse(const std::string& text);

  const std::vector<uint32_t>& components() const { return components_; }
  size_t depth() const { return components_.size(); }
  bool empty() const { return components_.empty(); }
  uint32_t component(size_t i) const { return components_[i]; }

  /// Id of the parent element; the empty id has no parent (returns empty).
  DeweyId Parent() const;

  /// First `len` components (len <= depth()).
  DeweyId Prefix(size_t len) const;

  /// Child id formed by appending `ordinal`.
  DeweyId Child(uint32_t ordinal) const;

  /// True iff this id is a (strict or equal) prefix of `other`, i.e. this
  /// element is `other` or one of its ancestors.
  bool IsPrefixOf(const DeweyId& other) const;

  /// True iff this element is a strict ancestor of `other`.
  bool IsAncestorOf(const DeweyId& other) const;

  /// True iff this element is the parent of `other`.
  bool IsParentOf(const DeweyId& other) const;

  /// Length of the longest common prefix with `other`.
  size_t CommonPrefixLength(const DeweyId& other) const;

  /// Fixed-width big-endian byte encoding: byte order == Dewey order, so
  /// these encodings are usable directly as B+-tree keys.
  std::string Encode() const;
  static DeweyId Decode(const std::string& bytes);

  /// "1.2.3"; "" for the empty id.
  std::string ToString() const;

  // Dewey (document) order: component-wise, ancestor before descendant.
  auto operator<=>(const DeweyId& other) const {
    return components_ <=> other.components_;
  }
  bool operator==(const DeweyId& other) const = default;

 private:
  std::vector<uint32_t> components_;
};

}  // namespace quickview::xml

#endif  // QUICKVIEW_XML_DEWEY_ID_H_
