// Keyword tokenizer defining the term universe for tf/idf and contains()
// (paper §2.1-2.2). A keyword can appear "in the tag name or text content"
// of an element, so DirectTerms() includes the tag-name tokens; both the
// index builder and the materialized-view baseline use the same definition,
// which is what makes Efficient-vs-Baseline scores exactly equal.
#ifndef QUICKVIEW_XML_TOKENIZER_H_
#define QUICKVIEW_XML_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "xml/dom.h"

namespace quickview::xml {

/// Lowercased maximal alphanumeric runs.
std::vector<std::string> Tokenize(std::string_view text);

/// Terms directly contained by a node: tokens of its tag name followed by
/// tokens of its direct text (not descendants).
std::vector<std::string> DirectTerms(const Node& node);

/// Number of occurrences of `term` (already lowercased) in the subtree
/// rooted at `node` — the tf(e, k) of §2.2 computed from materialized data.
uint32_t SubtreeTermFrequency(const Document& doc, NodeIndex node,
                              std::string_view term);

}  // namespace quickview::xml

#endif  // QUICKVIEW_XML_TOKENIZER_H_
