#include "obs/slow_query_log.h"

#include <algorithm>
#include <utility>

namespace quickview::obs {

void SlowQueryLog::Record(Entry entry) {
  qv::MutexLock lock(mu_);
  ++considered_;
  if (options_.capacity == 0) return;
  if (entry.latency_us < options_.threshold_us) return;
  if (entries_.size() < options_.capacity) {
    entries_.push_back(std::move(entry));
    return;
  }
  // At capacity: replace the least-slow kept entry if this one is worse.
  auto weakest = std::min_element(
      entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
        return a.latency_us < b.latency_us;
      });
  if (entry.latency_us > weakest->latency_us) *weakest = std::move(entry);
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Snapshot() const {
  std::vector<Entry> out;
  {
    qv::MutexLock lock(mu_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.latency_us != b.latency_us) return a.latency_us > b.latency_us;
    return a.request_id < b.request_id;
  });
  return out;
}

uint64_t SlowQueryLog::considered() const {
  qv::MutexLock lock(mu_);
  return considered_;
}

}  // namespace quickview::obs
