// Per-request tracing: a Trace is allocated per request (the server uses
// the wire request id as the trace id), spans are opened and closed
// around pipeline stages, and the finished tree serializes to a
// flame-style indented breakdown.
//
// The span tree mirrors the search pipeline:
//
//   request (root)
//   ├─ prepare                cache probe + plan on the calling thread
//   ├─ shard [shard=i]        one per shard task, created in shard order
//   │   ├─ plan
//   │   ├─ build_pdts         counters: ids_processed, nodes_emitted, ...
//   │   └─ evaluate           counters: view_results, candidates
//   ├─ merge                  ranked-stream fan-in + idf finalization
//   └─ materialize            FetchNext: hits, heap_pops, pages_read, ...
//
// Concurrency model (lock-cheap by construction):
//   - StartSpan takes the trace mutex once per span (spans live in a
//     deque, so pointers stay stable); shard tasks racing to create
//     spans is the supported case.
//   - Everything else on a span — Close, AddCounter — is plain stores
//     by the one thread that owns the span at that moment. No atomics,
//     no locks on the hot path.
//   - Serialize/Snapshot require quiescence: every span owner must have
//     finished, with a happens-before edge to the serializing thread
//     (the engine's Open barrier and the cursor's single-threaded
//     contract provide exactly that).
//
// Tracing is opt-in per request: a null Trace* disables every hook
// (SpanScope on a null trace is a no-op), which is the compiled-in
// default path benchmarked by bench_trace_overhead.
//
// AddCounter is an upsert (adding to an existing key accumulates), and
// it stays legal after Close: the cursor attributes materialization I/O
// back to the already-closed per-shard spans so that summing a counter
// over the shard spans always matches the cursor's EngineStats.
#ifndef QUICKVIEW_OBS_TRACE_H_
#define QUICKVIEW_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace quickview::obs {

class Trace;

class TraceSpan {
 public:
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  /// Move is for the owning deque's append only; spans are referred to
  /// by stable pointer after creation.
  TraceSpan(TraceSpan&&) = default;

  /// Sets the span's duration to "now - start". May be called more than
  /// once (the cursor re-closes its materialize span after every
  /// FetchNext); the last call wins.
  void Close();

  /// Adds `delta` to counter `name`, creating it at the end of the
  /// counter list on first use. Owner-thread only (see file comment).
  void AddCounter(std::string_view name, uint64_t delta);

  const std::string& name() const { return name_; }
  int shard() const { return shard_; }
  /// Offset from the trace epoch / wall time of the span, nanoseconds.
  uint64_t start_ns() const { return start_ns_; }
  uint64_t duration_ns() const { return duration_ns_; }
  bool closed() const { return closed_; }
  const TraceSpan* parent() const { return parent_; }
  const std::vector<std::pair<std::string, uint64_t>>& counters() const {
    return counters_;
  }
  /// The counter's value, 0 if absent.
  uint64_t counter(std::string_view name) const;

 private:
  friend class Trace;
  TraceSpan(Trace* trace, std::string name, TraceSpan* parent, int shard,
            uint64_t start_ns);

  Trace* trace_;
  std::string name_;
  TraceSpan* parent_;
  int shard_;
  uint64_t start_ns_;
  uint64_t duration_ns_ = 0;
  bool closed_ = false;
  std::vector<std::pair<std::string, uint64_t>> counters_;
};

class Trace {
 public:
  /// Creates the trace with an open root span named `root_name`; the
  /// epoch (span time zero) is the construction instant.
  explicit Trace(uint64_t id, std::string root_name = "request");
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  uint64_t id() const { return id_; }
  TraceSpan* root() { return root_; }

  /// Opens a child span. Thread-safe (shard tasks race here). A null
  /// `parent` parents to the root.
  TraceSpan* StartSpan(std::string name, TraceSpan* parent = nullptr,
                       int shard = -1) QV_EXCLUDES(mu_);

  /// The flame-style breakdown: one line per span, two-space indent per
  /// depth, children in creation order under their parent —
  ///
  ///   trace <id>
  ///     <name>[ shard=<s>] start=<us>us dur=<us>us [ctr=v ...]
  ///
  /// Deterministic modulo the start=/dur= fields (strip them to compare
  /// runs byte-for-byte). Closes the root first if still open.
  /// Requires quiescence: no concurrent span activity.
  std::string Serialize() QV_EXCLUDES(mu_);

  /// All spans in creation order (root first). Requires quiescence;
  /// pointers are valid for the trace's lifetime.
  std::vector<const TraceSpan*> spans() const QV_EXCLUDES(mu_);

  uint64_t NowNs() const;

 private:
  mutable qv::Mutex mu_;
  std::deque<TraceSpan> spans_ QV_GUARDED_BY(mu_);
  TraceSpan* root_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;
  uint64_t id_;
};

/// RAII span guard tolerant of a disabled trace: every operation on a
/// SpanScope constructed with a null Trace* is a no-op, so call sites
/// carry no branches beyond one null check.
class SpanScope {
 public:
  SpanScope(Trace* trace, std::string name, TraceSpan* parent = nullptr,
            int shard = -1)
      : span_(trace == nullptr
                  ? nullptr
                  : trace->StartSpan(std::move(name), parent, shard)) {}
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() {
    if (span_ != nullptr) span_->Close();
  }

  TraceSpan* span() const { return span_; }
  void AddCounter(std::string_view name, uint64_t delta) {
    if (span_ != nullptr) span_->AddCounter(name, delta);
  }

 private:
  TraceSpan* span_;
};

}  // namespace quickview::obs

#endif  // QUICKVIEW_OBS_TRACE_H_
