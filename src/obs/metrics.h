// MetricsRegistry: the one named-instrument surface for the whole
// process. Subsystems own typed instruments (Counter, Gauge,
// common/histogram.h Histogram) as plain members — recording stays a
// relaxed atomic op on the owner's hot path — and register them here by
// name so every counter in the process renders through a single
// Prometheus-text exposition instead of N hand-rolled stats structs.
//
// Naming convention: `qv_<subsystem>_<name>`, lowercase with
// underscores; counters end in `_total`. Series of one metric name may
// differ by labels (e.g. per-shard buffer pools register
// qv_buffer_hits_total{shard="0"} / {shard="1"}), but must share one
// type: registration enforces both the name grammar and type agreement.
//
// Lifetime contract: the registry stores pointers; every registered
// instrument (and captured callback state) must outlive the registry
// reads. In practice the owner of the registry (Server, CLI) also owns
// or outlives the components it registers.
//
// Exposition: TextExposition() renders the Prometheus text format —
// `# TYPE` line per metric, one sample line per labeled series,
// histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
// `_count` — from a point-in-time HistogramSnapshot per histogram, so a
// render never re-reads live atomics mid-line.
#ifndef QUICKVIEW_OBS_METRICS_H_
#define QUICKVIEW_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/sync.h"

namespace quickview::obs {

/// A monotonically increasing count. Recording is one relaxed
/// fetch_add; safe from any thread.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time level that can move both ways.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Label key/value pairs rendered as {key="value",...}. Keys follow the
/// metric-name grammar; values are escaped on render.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  enum class InstrumentKind { kCounter, kGauge };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register one series of `name` with `labels`. InvalidArgument on a
  /// malformed name/label key, a duplicate (name, labels) pair, or a
  /// type conflict on `name`. The instrument must outlive every
  /// TextExposition() call.
  Status RegisterCounter(std::string name, LabelSet labels,
                         const Counter* counter);
  Status RegisterGauge(std::string name, LabelSet labels, const Gauge* gauge);
  Status RegisterHistogram(std::string name, LabelSet labels,
                           const Histogram* histogram);
  /// A computed series: `read` is invoked at exposition time (it must be
  /// thread-safe; it may take locks — exposition is off the hot path).
  Status RegisterCallback(std::string name, LabelSet labels,
                          InstrumentKind kind, std::function<int64_t()> read);

  /// Prometheus text format, metrics in first-registration order,
  /// series of one metric in registration order. Deterministic for
  /// deterministic instrument values.
  std::string TextExposition() const;

  /// Number of registered series (all kinds).
  size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallback };
  struct Instrument {
    std::string name;
    LabelSet labels;
    Kind kind = Kind::kCounter;
    InstrumentKind callback_kind = InstrumentKind::kGauge;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    std::function<int64_t()> read;
  };

  Status Add(Instrument instrument) QV_EXCLUDES(mu_);

  mutable qv::Mutex mu_;
  std::vector<Instrument> instruments_ QV_GUARDED_BY(mu_);
};

}  // namespace quickview::obs

#endif  // QUICKVIEW_OBS_METRICS_H_
