#include "obs/metrics.h"

#include <algorithm>
#include <utility>

namespace quickview::obs {
namespace {

/// Prometheus metric-name / label-key grammar, restricted to the
/// project's lowercase convention: [a-z_][a-z0-9_]*.
bool ValidName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

/// Label values escape backslash, double quote and newline per the
/// Prometheus text-format spec.
void AppendEscaped(std::string* out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '"':
        out->append("\\\"");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

void AppendLabels(std::string* out, const LabelSet& labels,
                  std::string_view extra_key = {},
                  std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return;
  out->push_back('{');
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out->push_back(',');
    first = false;
    out->append(key);
    out->append("=\"");
    AppendEscaped(out, value);
    out->push_back('"');
  }
  if (!extra_key.empty()) {
    if (!first) out->push_back(',');
    out->append(extra_key);
    out->append("=\"");
    AppendEscaped(out, extra_value);
    out->push_back('"');
  }
  out->push_back('}');
}

}  // namespace

Status MetricsRegistry::RegisterCounter(std::string name, LabelSet labels,
                                        const Counter* counter) {
  Instrument inst;
  inst.name = std::move(name);
  inst.labels = std::move(labels);
  inst.kind = Kind::kCounter;
  inst.counter = counter;
  return Add(std::move(inst));
}

Status MetricsRegistry::RegisterGauge(std::string name, LabelSet labels,
                                      const Gauge* gauge) {
  Instrument inst;
  inst.name = std::move(name);
  inst.labels = std::move(labels);
  inst.kind = Kind::kGauge;
  inst.gauge = gauge;
  return Add(std::move(inst));
}

Status MetricsRegistry::RegisterHistogram(std::string name, LabelSet labels,
                                          const Histogram* histogram) {
  Instrument inst;
  inst.name = std::move(name);
  inst.labels = std::move(labels);
  inst.kind = Kind::kHistogram;
  inst.histogram = histogram;
  return Add(std::move(inst));
}

Status MetricsRegistry::RegisterCallback(std::string name, LabelSet labels,
                                         InstrumentKind kind,
                                         std::function<int64_t()> read) {
  Instrument inst;
  inst.name = std::move(name);
  inst.labels = std::move(labels);
  inst.kind = Kind::kCallback;
  inst.callback_kind = kind;
  inst.read = std::move(read);
  return Add(std::move(inst));
}

Status MetricsRegistry::Add(Instrument instrument) {
  if (!ValidName(instrument.name)) {
    return Status::InvalidArgument("bad metric name: " + instrument.name);
  }
  for (const auto& [key, value] : instrument.labels) {
    if (!ValidName(key) || key == "le") {
      return Status::InvalidArgument("bad label key on " + instrument.name +
                                     ": " + key);
    }
  }
  const bool has_target =
      instrument.counter != nullptr || instrument.gauge != nullptr ||
      instrument.histogram != nullptr || instrument.read != nullptr;
  if (!has_target) {
    return Status::InvalidArgument("null instrument for " + instrument.name);
  }
  // Prometheus renders counters as `<name>` too, but samples of one name
  // must all be the same type; a callback's exposition type is its
  // declared InstrumentKind.
  auto exposition_kind = [](const Instrument& inst) {
    if (inst.kind == Kind::kCallback) {
      return inst.callback_kind == InstrumentKind::kCounter ? Kind::kCounter
                                                            : Kind::kGauge;
    }
    return inst.kind;
  };
  qv::MutexLock lock(mu_);
  for (const Instrument& existing : instruments_) {
    if (existing.name != instrument.name) continue;
    if (exposition_kind(existing) != exposition_kind(instrument)) {
      return Status::InvalidArgument("metric " + instrument.name +
                                     " registered with a different type");
    }
    if (existing.labels == instrument.labels) {
      return Status::InvalidArgument("duplicate series for metric " +
                                     instrument.name);
    }
  }
  instruments_.push_back(std::move(instrument));
  return Status::OK();
}

size_t MetricsRegistry::size() const {
  qv::MutexLock lock(mu_);
  return instruments_.size();
}

std::string MetricsRegistry::TextExposition() const {
  qv::MutexLock lock(mu_);
  std::string out;
  // Metrics render in first-registration order; all series of one name
  // render under a single # TYPE header (the format requires grouping).
  std::vector<size_t> order;
  order.reserve(instruments_.size());
  std::vector<bool> rendered(instruments_.size(), false);
  for (size_t i = 0; i < instruments_.size(); ++i) {
    if (rendered[i]) continue;
    const std::string& name = instruments_[i].name;
    const char* type = "gauge";
    switch (instruments_[i].kind) {
      case Kind::kCounter:
        type = "counter";
        break;
      case Kind::kGauge:
        type = "gauge";
        break;
      case Kind::kHistogram:
        type = "histogram";
        break;
      case Kind::kCallback:
        type = instruments_[i].callback_kind == InstrumentKind::kCounter
                   ? "counter"
                   : "gauge";
        break;
    }
    out.append("# TYPE ");
    out.append(name);
    out.push_back(' ');
    out.append(type);
    out.push_back('\n');
    for (size_t j = i; j < instruments_.size(); ++j) {
      if (rendered[j] || instruments_[j].name != name) continue;
      rendered[j] = true;
      const Instrument& inst = instruments_[j];
      switch (inst.kind) {
        case Kind::kCounter:
          out.append(name);
          AppendLabels(&out, inst.labels);
          out.push_back(' ');
          out.append(std::to_string(inst.counter->value()));
          out.push_back('\n');
          break;
        case Kind::kGauge:
          out.append(name);
          AppendLabels(&out, inst.labels);
          out.push_back(' ');
          out.append(std::to_string(inst.gauge->value()));
          out.push_back('\n');
          break;
        case Kind::kCallback:
          out.append(name);
          AppendLabels(&out, inst.labels);
          out.push_back(' ');
          out.append(std::to_string(inst.read()));
          out.push_back('\n');
          break;
        case Kind::kHistogram: {
          // Cumulative le-bound buckets from one point-in-time snapshot.
          // Each captured bucket holds values in [lower, upper], so the
          // running total through it is exactly the count of
          // observations <= upper.
          const HistogramSnapshot snap = inst.histogram->Snapshot();
          uint64_t cumulative = 0;
          for (const HistogramSnapshot::Bucket& b : snap.buckets) {
            cumulative += b.count;
            out.append(name);
            out.append("_bucket");
            AppendLabels(&out, inst.labels, "le", std::to_string(b.upper));
            out.push_back(' ');
            out.append(std::to_string(cumulative));
            out.push_back('\n');
          }
          out.append(name);
          out.append("_bucket");
          AppendLabels(&out, inst.labels, "le", "+Inf");
          out.push_back(' ');
          out.append(std::to_string(snap.count));
          out.push_back('\n');
          out.append(name);
          out.append("_sum");
          AppendLabels(&out, inst.labels);
          out.push_back(' ');
          out.append(std::to_string(snap.sum));
          out.push_back('\n');
          out.append(name);
          out.append("_count");
          AppendLabels(&out, inst.labels);
          out.push_back(' ');
          out.append(std::to_string(snap.count));
          out.push_back('\n');
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace quickview::obs
