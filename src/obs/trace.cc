#include "obs/trace.h"

#include <algorithm>

namespace quickview::obs {

TraceSpan::TraceSpan(Trace* trace, std::string name, TraceSpan* parent,
                     int shard, uint64_t start_ns)
    : trace_(trace),
      name_(std::move(name)),
      parent_(parent),
      shard_(shard),
      start_ns_(start_ns) {}

void TraceSpan::Close() {
  const uint64_t now = trace_->NowNs();
  duration_ns_ = now > start_ns_ ? now - start_ns_ : 0;
  closed_ = true;
}

void TraceSpan::AddCounter(std::string_view name, uint64_t delta) {
  for (auto& [key, value] : counters_) {
    if (key == name) {
      value += delta;
      return;
    }
  }
  counters_.emplace_back(std::string(name), delta);
}

uint64_t TraceSpan::counter(std::string_view name) const {
  for (const auto& [key, value] : counters_) {
    if (key == name) return value;
  }
  return 0;
}

Trace::Trace(uint64_t id, std::string root_name)
    : epoch_(std::chrono::steady_clock::now()), id_(id) {
  root_ = StartSpan(std::move(root_name));
}

uint64_t Trace::NowNs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<
                                   std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
}

TraceSpan* Trace::StartSpan(std::string name, TraceSpan* parent, int shard) {
  const uint64_t start = NowNs();
  qv::MutexLock lock(mu_);
  if (parent == nullptr) parent = root_;  // null until the root itself
  spans_.emplace_back(TraceSpan(this, std::move(name), parent, shard, start));
  return &spans_.back();
}

std::vector<const TraceSpan*> Trace::spans() const {
  qv::MutexLock lock(mu_);
  std::vector<const TraceSpan*> out;
  out.reserve(spans_.size());
  for (const TraceSpan& span : spans_) out.push_back(&span);
  return out;
}

std::string Trace::Serialize() {
  if (root_ != nullptr && !root_->closed()) root_->Close();
  qv::MutexLock lock(mu_);
  // Children of one parent appear in creation order; creation order of
  // spans under different parents never affects the rendering, so the
  // racy cross-shard interleaving in `spans_` stays invisible.
  std::vector<const TraceSpan*> order;
  order.reserve(spans_.size());
  for (const TraceSpan& span : spans_) order.push_back(&span);

  std::string out = "trace " + std::to_string(id_) + "\n";
  // Depth-first render without recursion: walk each span's children.
  std::vector<std::pair<const TraceSpan*, int>> stack;  // (span, depth)
  auto push_children = [&](const TraceSpan* parent, int depth) {
    // Reverse creation order so the stack pops in creation order.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      if ((*it)->parent() == parent) stack.emplace_back(*it, depth);
    }
  };
  if (root_ != nullptr) stack.emplace_back(root_, 0);
  while (!stack.empty()) {
    const auto [span, depth] = stack.back();
    stack.pop_back();
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out.append(span->name());
    if (span->shard() >= 0) {
      out.append(" shard=");
      out.append(std::to_string(span->shard()));
    }
    out.append(" start=");
    out.append(std::to_string(span->start_ns() / 1000));
    out.append("us dur=");
    out.append(std::to_string(span->duration_ns() / 1000));
    out.append("us");
    for (const auto& [key, value] : span->counters()) {
      out.push_back(' ');
      out.append(key);
      out.push_back('=');
      out.append(std::to_string(value));
    }
    out.push_back('\n');
    push_children(span, depth + 1);
  }
  return out;
}

}  // namespace quickview::obs
