// SlowQueryLog: a bounded record of the K worst requests by latency.
// Every completed RPC at or above the threshold is offered; the log
// keeps the `capacity` slowest, so a burst of pathological queries can
// never wash out the single worst offender (the failure mode of a plain
// time-ordered ring). Entries carry the request's serialized span tree
// when it was traced, making "why was this slow" answerable after the
// fact from the Stats RPC or the server's shutdown report.
#ifndef QUICKVIEW_OBS_SLOW_QUERY_LOG_H_
#define QUICKVIEW_OBS_SLOW_QUERY_LOG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"

namespace quickview::obs {

class SlowQueryLog {
 public:
  struct Options {
    /// Requests faster than this are never recorded. 0 = consider all.
    uint64_t threshold_us = 0;
    /// Worst-K capacity; 0 disables the log entirely.
    size_t capacity = 8;
  };

  struct Entry {
    uint64_t latency_us = 0;
    uint64_t request_id = 0;
    /// Wire opcode of the request (raw value; 0 for non-RPC sources).
    uint8_t opcode = 0;
    /// Human-readable request summary ("search view=V keywords=a,b").
    std::string description;
    /// Serialized span tree; empty when the request was not traced.
    std::string trace;
  };

  explicit SlowQueryLog(Options options) : options_(options) {}
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Offers one finished request. Kept iff it clears the threshold and
  /// is among the `capacity` worst seen so far.
  void Record(Entry entry) QV_EXCLUDES(mu_);

  /// Entries ordered worst-first (ties broken by request id for a
  /// deterministic report).
  std::vector<Entry> Snapshot() const QV_EXCLUDES(mu_);

  /// Requests offered to Record (before threshold/capacity filtering).
  uint64_t considered() const QV_EXCLUDES(mu_);

  const Options& options() const { return options_; }

 private:
  const Options options_;
  mutable qv::Mutex mu_;
  std::vector<Entry> entries_ QV_GUARDED_BY(mu_);
  uint64_t considered_ QV_GUARDED_BY(mu_) = 0;
};

}  // namespace quickview::obs

#endif  // QUICKVIEW_OBS_SLOW_QUERY_LOG_H_
