// Extension from the paper's conclusion (§7): "an even more efficient
// strategy might be to avoid even producing the pruned view elements that
// do not make it to the top few results. This problem ... is non-trivial
// because of the presence of non-monotonic operators."
//
// For the monotone sub-class — selection-only views whose results are the
// selected base elements themselves (`for $x in fn:doc(...)...//tag[...]
// [where <leaf predicate>] return $x`) — the top-k answer is computable
// directly from the PDT's summarized statistics: each result's tf and
// byte length are the 'c' node's NodeStats, idf needs only match counts,
// and the query evaluator never runs. Views with joins, constructors or
// nesting are rejected with Unsupported and must use ViewSearchEngine
// (they can be non-monotonic, exactly as the paper warns).
#ifndef QUICKVIEW_ENGINE_RANKED_SELECTION_H_
#define QUICKVIEW_ENGINE_RANKED_SELECTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "storage/document_store.h"
#include "xml/dom.h"

namespace quickview::engine {

/// Ranked keyword search over a monotone selection view, skipping view
/// evaluation entirely. Produces exactly the hits (same scores, same
/// order) ViewSearchEngine::SearchView would. Returns Unsupported when
/// the view is outside the monotone sub-class.
Result<SearchResponse> RankedSelectionSearch(
    const xml::Database& database, const index::DatabaseIndexes& indexes,
    const storage::DocumentStore* store, const std::string& view_text,
    const std::vector<std::string>& keywords, const SearchOptions& options);

}  // namespace quickview::engine

#endif  // QUICKVIEW_ENGINE_RANKED_SELECTION_H_
