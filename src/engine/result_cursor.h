// ResultCursor: the pull-based result surface of the engine (paper
// §4.2.2.2 taken to its API conclusion). ViewSearchEngine::Open runs the
// cheap whole-stream stages once — evaluation over the PDTs, scoring,
// per-shard ranked heaps merged under one tournament frontier — and
// hands back a cursor; each FetchNext(n) pops the next n entries in
// global score order and materializes exactly those from the owning
// shard's document store. Materialization is the ONLY base-data access
// of the pipeline, so a hit that is never fetched costs zero store
// fetches — observable in stats().search.store_fetches globally and in
// stats().shards[i] per shard: fetching the global top 10 touches only
// the pages of the shards those 10 hits live on. This is what makes
// "10 more" pagination incremental at any shard count.
//
// Lifetime: the cursor pins every shard's PreparedQuery (PDTs) and
// evaluator result arena via shared_ptr, so it stays valid after the
// PreparedQueryCache evicts entries or the engine's caller moves on. The
// Databases, indexes and DocumentStores the engine was built over must
// still outlive the cursor (they are immutable, service-lifetime
// structures).
//
// Cancellation: the cursor co-owns the query's CancellationToken. It
// fires the token once the top_k budget is satisfied and again on
// destruction, so caller-side work cooperating on the same token stops
// when the cursor is done with it. (Shard tasks themselves finished
// inside Open — the barrier — so firing here never races engine work.)
//
// Error handling: a failed FetchNext returns the error and leaves the
// cursor in an unspecified (but destructible) state; discard it.
#ifndef QUICKVIEW_ENGINE_RESULT_CURSOR_H_
#define QUICKVIEW_ENGINE_RESULT_CURSOR_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "engine/engine_stats.h"
#include "engine/merged_ranked_stream.h"
#include "engine/view_search_engine.h"
#include "obs/trace.h"
#include "scoring/scorer.h"
#include "storage/document_store.h"
#include "xml/dom.h"

namespace quickview::engine {

class ResultCursor {
 public:
  ResultCursor(const ResultCursor&) = delete;
  ResultCursor& operator=(const ResultCursor&) = delete;
  ~ResultCursor();

  /// Returns the next (up to) `n` hits in descending score order,
  /// materializing each from its shard's document store as it is
  /// returned. Returns fewer than `n` — possibly zero — once the merged
  /// stream or the cursor's top_k budget is exhausted. Splitting one
  /// fetch into several smaller ones yields the identical hit sequence.
  Result<std::vector<SearchHit>> FetchNext(size_t n);

  /// True once every hit the cursor will ever yield has been fetched.
  bool Done() const { return pending() == 0; }

  /// Hits returned so far.
  size_t fetched() const { return fetched_; }

  /// Hits still fetchable: min(top_k budget left, candidates left).
  size_t pending() const {
    size_t budget = limit_ - fetched_;
    return std::min(budget, stream_.Size());
  }

  /// The unified stats answer. stats().search and stats().shards[i]
  /// counters for view/matching results, PDT work and view bytes are
  /// final at Open; store/page counters count only the hits fetched so
  /// far (the lazy-materialization guarantee). stats().timings is the
  /// Fig-14 wall-clock view (per-module MAX over shards), post_ms
  /// growing with every fetch.
  const EngineStats& stats() const { return stats_; }

  /// The prepared query of shard 0 — on an unsharded engine, THE
  /// prepared query this cursor executes. The cursor keeps every shard's
  /// prepared query alive.
  const PreparedQuery& prepared() const { return *slices_[0].prepared; }

  /// Number of executed shards behind this cursor (slot order ==
  /// executed-shard order: all shards, or just the hinted one).
  size_t shard_slices() const { return slices_.size(); }

  /// Shared ownership of slot `slot`'s prepared query — how the service
  /// layer caches PDTs the engine built on the fly during Open.
  std::shared_ptr<const PreparedQuery> SharedPrepared(size_t slot) const {
    return slices_[slot].prepared;
  }

  /// Pins `lease` for the cursor's lifetime — the same shared_ptr scheme
  /// that already pins the PreparedQueries and evaluator arenas, extended
  /// to caller-owned state. The service layer attaches the DocumentStore
  /// snapshots a live database published at Open time, so updates applied
  /// after Open can never invalidate what this cursor materializes from
  /// (the snapshot-isolation guarantee).
  void AddLease(std::shared_ptr<const void> lease) {
    leases_.push_back(std::move(lease));
  }

 private:
  friend class ViewSearchEngine;
  ResultCursor() = default;

  /// One shard's execution product. `candidates` is in shard view order;
  /// the merged stream's (shard, position) entries index into it.
  struct Slice {
    std::shared_ptr<const PreparedQuery> prepared;       // pins the PDTs
    std::shared_ptr<const xml::Document> arena;  // constructed nodes
    const storage::DocumentStore* store = nullptr;
    std::vector<scoring::ScoredResult> candidates;
    // This shard's trace span (null when tracing is off). Closed at Open;
    // FetchNext still accumulates materialization I/O into its counters
    // (post-close annotation is legal by the trace contract) so summing
    // a counter over the shard spans matches the cursor's EngineStats.
    obs::TraceSpan* span = nullptr;
  };

  std::vector<Slice> slices_;  // corpus order (== stats_.shards order)
  std::vector<std::shared_ptr<const void>> leases_;  // caller-pinned state
  MergedRankedStream stream_;
  std::shared_ptr<CancellationToken> cancel_;  // fired at budget / dtor
  size_t limit_ = 0;  // total hit budget (SearchOptions::top_k)
  size_t fetched_ = 0;
  EngineStats stats_;
  // Keeps the request's trace (and the spans Slice::span points into)
  // alive for the cursor's lifetime. One reusable "materialize" span is
  // created on the first fetch and re-closed after every fetch, so the
  // tree shape does not depend on how fetches were batched.
  std::shared_ptr<obs::Trace> trace_;
  obs::TraceSpan* materialize_span_ = nullptr;
};

/// Drains `cursor` into the batch response shape: every remaining hit,
/// plus the cursor's cumulative timings and stats (the legacy flat pair,
/// taken from EngineStats). On a fresh cursor this reproduces the
/// batch-pipeline output byte for byte at any shard count — it is the
/// compatibility path under Execute / SearchBatch and the deprecated
/// trio.
Result<SearchResponse> DrainToResponse(ResultCursor* cursor);

}  // namespace quickview::engine

#endif  // QUICKVIEW_ENGINE_RESULT_CURSOR_H_
