// ResultCursor: the pull-based result surface of the engine (paper
// §4.2.2.2 taken to its API conclusion). ViewSearchEngine::Open runs the
// cheap whole-stream stages once — evaluation over the PDTs, scoring,
// ranked-candidate heap — and hands back a cursor; each FetchNext(n) pops
// the next n candidates in score order and materializes exactly those
// from the document store. Materialization is the ONLY base-data access
// of the pipeline, so a hit that is never fetched costs zero store
// fetches — observable in stats().store_fetches, which grows with the
// cursor instead of being paid up front. This is what makes "10 more"
// pagination incremental: the ranked stream is computed once, and each
// page touches base data only for its own hits.
//
// Lifetime: the cursor pins the PreparedQuery (PDTs) via shared_ptr and
// the evaluator's result arena via shared_ptr, so it stays valid after
// the PreparedQueryCache evicts the entry or the engine's caller moves
// on. The Database, indexes and DocumentStore the engine was built over
// must still outlive the cursor (they are immutable, service-lifetime
// structures).
//
// Error handling: a failed FetchNext returns the error and leaves the
// cursor in an unspecified (but destructible) state; discard it.
#ifndef QUICKVIEW_ENGINE_RESULT_CURSOR_H_
#define QUICKVIEW_ENGINE_RESULT_CURSOR_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/result.h"
#include "engine/ranked_stream.h"
#include "engine/view_search_engine.h"
#include "scoring/scorer.h"
#include "storage/document_store.h"
#include "xml/dom.h"

namespace quickview::engine {

class ResultCursor {
 public:
  ResultCursor(const ResultCursor&) = delete;
  ResultCursor& operator=(const ResultCursor&) = delete;

  /// Returns the next (up to) `n` hits in descending score order,
  /// materializing each from the document store as it is returned.
  /// Returns fewer than `n` — possibly zero — once the ranked stream or
  /// the cursor's top_k budget is exhausted. Splitting one fetch into
  /// several smaller ones yields the identical hit sequence.
  Result<std::vector<SearchHit>> FetchNext(size_t n);

  /// True once every hit the cursor will ever yield has been fetched.
  bool Done() const { return pending() == 0; }

  /// Hits returned so far.
  size_t fetched() const { return fetched_; }

  /// Hits still fetchable: min(top_k budget left, candidates left).
  size_t pending() const {
    size_t budget = limit_ - fetched_;
    return std::min(budget, stream_.Size());
  }

  /// Cumulative module timings: qpt/pdt from the PreparedQuery, eval from
  /// Open, post growing with every fetch (scoring + materialization) —
  /// drained, they match the batch pipeline's Fig-14 breakdown.
  const ModuleTimings& timings() const { return timings_; }

  /// Cumulative stats. view_results / matching_results / view_bytes / pdt
  /// are final at Open; store_fetches / store_bytes count only the hits
  /// fetched so far (the lazy-materialization guarantee).
  const SearchStats& stats() const { return stats_; }

  /// The prepared query this cursor executes (the cursor keeps it alive).
  const PreparedQuery& prepared() const { return *prepared_; }

  /// Pins `lease` for the cursor's lifetime — the same shared_ptr scheme
  /// that already pins the PreparedQuery and the evaluator arena, extended
  /// to caller-owned state. The service layer attaches the DocumentStore
  /// snapshot a live database published at Open time, so updates applied
  /// after Open can never invalidate what this cursor materializes from
  /// (the snapshot-isolation guarantee).
  void AddLease(std::shared_ptr<const void> lease) {
    leases_.push_back(std::move(lease));
  }

 private:
  friend class ViewSearchEngine;
  ResultCursor() = default;

  std::shared_ptr<const PreparedQuery> prepared_;  // pins the PDTs
  std::shared_ptr<const xml::Document> result_arena_;  // constructed nodes
  std::vector<std::shared_ptr<const void>> leases_;  // caller-pinned state
  const storage::DocumentStore* store_ = nullptr;
  std::vector<scoring::ScoredResult> candidates_;  // view order, unsorted
  RankedStream stream_;  // positions into candidates_
  size_t limit_ = 0;     // total hit budget (SearchOptions::top_k)
  size_t fetched_ = 0;
  ModuleTimings timings_;
  SearchStats stats_;
};

/// Drains `cursor` into the batch response shape: every remaining hit,
/// plus the cursor's cumulative timings and stats. On a fresh cursor this
/// reproduces the pre-cursor ExecutePrepared output byte for byte — it is
/// the compatibility path under Search / SearchView / SearchBatch.
Result<SearchResponse> DrainToResponse(ResultCursor* cursor);

}  // namespace quickview::engine

#endif  // QUICKVIEW_ENGINE_RESULT_CURSOR_H_
