// The traditional query path of paper Fig 3 (solid lines): XQuery
// full-text / keyword search directly over the *base* documents, answered
// from the inverted-list indices. Results are the deepest elements whose
// subtree contains the keywords (XRank-style element granularity, the
// paper's [24]), ranked with the same element-level TF-IDF used for
// views. Included so quickview is a complete engine, not only the
// virtual-view path.
#ifndef QUICKVIEW_ENGINE_BASE_SEARCH_H_
#define QUICKVIEW_ENGINE_BASE_SEARCH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "index/index_builder.h"
#include "xml/dom.h"

namespace quickview::engine {

struct BaseSearchHit {
  std::string document;  // database document name
  xml::DeweyId id;       // deepest element containing the keywords
  std::vector<uint64_t> tf;
  uint64_t byte_length = 0;
  double score = 0;
  std::string xml;  // materialized element
};

struct BaseSearchOptions {
  size_t top_k = 10;
  bool conjunctive = true;
};

/// Keyword search over every document of `database`. Keywords are
/// expected lowercased. Hits are sorted by descending score, ties in
/// document order.
Result<std::vector<BaseSearchHit>> SearchBaseDocuments(
    const xml::Database& database, const index::DatabaseIndexes& indexes,
    const std::vector<std::string>& keywords,
    const BaseSearchOptions& options);

}  // namespace quickview::engine

#endif  // QUICKVIEW_ENGINE_BASE_SEARCH_H_
