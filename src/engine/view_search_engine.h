// The quickview public facade: ranked keyword search over virtual XML
// views, implementing the full architecture of paper Fig 3 —
//   parse -> QPT generation -> PDT generation (indices only)
//         -> unmodified evaluation over PDTs -> scoring -> top-k
//         -> materialization (the only base-data access).
//
// The pipeline is split into three stages so a service layer can cache
// the expensive middle stage across queries:
//   PlanQuery       parse + QPT generation + canonical plan signature
//                   (cost proportional to the query, never the data);
//   BuildPdts       PrepareLists + GeneratePdt per QPT (the data-
//                   dependent stage; its PreparedQuery output is
//                   immutable and shareable across threads);
//   Open            evaluation over the PDTs + scoring + ranked-candidate
//                   heap, returning a ResultCursor (per-query state only;
//                   const and safe to run concurrently against one
//                   PreparedQuery). Hits are materialized lazily, per
//                   ResultCursor::FetchNext call.
// ExecutePrepared = Open + drain; Search() composes the stages and
// preserves the original single-query behavior byte for byte.
#ifndef QUICKVIEW_ENGINE_VIEW_SEARCH_ENGINE_H_
#define QUICKVIEW_ENGINE_VIEW_SEARCH_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/index_builder.h"
#include "pdt/generate_pdt.h"
#include "storage/document_store.h"
#include "xml/dom.h"
#include "xquery/ast.h"

namespace quickview::engine {

struct SearchOptions {
  size_t top_k = 10;        // must be >= 1 (see ValidateSearchOptions)
  bool conjunctive = true;  // all keywords vs any keyword
};

/// API-boundary validation shared by every search entry point (engine and
/// service): InvalidArgument for top_k == 0 — a request for zero results
/// is a caller bug, not a query to run.
Status ValidateSearchOptions(const SearchOptions& options);

/// One ranked, fully materialized result.
struct SearchHit {
  double score = 0;
  std::vector<uint64_t> tf;  // per query keyword
  uint64_t byte_length = 0;
  std::string xml;  // serialized materialized result
};

/// Wall-clock per module, for the Fig 14 breakdown.
struct ModuleTimings {
  double qpt_ms = 0;   // parse + QPT generation
  double pdt_ms = 0;   // PrepareLists + GeneratePdt (or baseline analogue)
  double eval_ms = 0;  // query evaluation (incl. any view materialization)
  double post_ms = 0;  // scoring + top-k materialization

  double total_ms() const { return qpt_ms + pdt_ms + eval_ms + post_ms; }
};

struct SearchStats {
  size_t view_results = 0;      // |V(D)|
  size_t matching_results = 0;  // after keyword semantics
  pdt::PdtBuildStats pdt;       // aggregated over all QPTs
  uint64_t store_fetches = 0;   // base-data accesses
  uint64_t store_bytes = 0;
  /// Disk-backed execution only (zero over in-memory stores): node-record
  /// pages pulled from the packed file for this query's materialized hits,
  /// and buffer-pool hits those fetches scored. Grows lazily with the
  /// cursor, like store_fetches.
  uint64_t pages_read = 0;
  uint64_t buffer_hits = 0;
  /// Total bytes of the fully materialized view V(D) — what a
  /// materialize-first engine must produce; the Efficient engine's
  /// actual footprint is pdt.pdt_bytes + store_bytes instead.
  uint64_t view_bytes = 0;
};

struct SearchResponse {
  std::vector<SearchHit> hits;
  ModuleTimings timings;
  SearchStats stats;
};

/// A planned query: the parsed keyword query with its view rewritten over
/// PDT occurrence names, the generated QPTs, and a canonical signature of
/// (QPT structure, keywords, semantics) that identifies which PDTs the
/// plan needs — the cache key material of the service layer.
struct QueryPlan {
  xquery::KeywordQuery kq;
  std::vector<qpt::Qpt> qpts;
  std::string signature;
  double qpt_ms = 0;
};

/// A plan plus its generated PDTs. Immutable after BuildPdts returns;
/// any number of threads may ExecutePrepared against one instance.
struct PreparedQuery {
  QueryPlan plan;
  std::vector<std::shared_ptr<xml::Document>> pdts;
  pdt::PdtBuildStats pdt_stats;  // aggregated over all QPTs
  double pdt_ms = 0;
  /// Approximate resident footprint of the PDTs, for cache budgets.
  uint64_t memory_bytes = 0;
};

/// Canonical signature of the PDT inputs: QPT shapes (tags, axes,
/// annotations, predicates) plus keywords and conjunctive flag. Two
/// queries with equal signatures need byte-identical PDTs.
std::string PlanSignature(const std::vector<qpt::Qpt>& qpts,
                          const std::vector<std::string>& keywords,
                          bool conjunctive);

/// Renders the canonical Fig-2 keyword query for a view text and keyword
/// list (keywords are lowercased). Shared by SearchView and the service
/// layer so cache keys and executed queries cannot drift apart.
std::string ComposeKeywordQuery(const std::string& view_text,
                                const std::vector<std::string>& keywords,
                                bool conjunctive);

class ResultCursor;  // engine/result_cursor.h

class ViewSearchEngine {
 public:
  /// All three structures must outlive the engine. They are treated as
  /// immutable; the engine itself is stateless beyond these pointers, so
  /// one engine may serve queries from many threads at once. `indexes` is
  /// any IndexSource — the in-memory DatabaseIndexes or a packed on-disk
  /// database (pagestore::PackedDb). `database` may be nullptr when every
  /// queried document is rewritten over PDTs (the packed path, where base
  /// documents exist only as node-record pages).
  ViewSearchEngine(const xml::Database* database,
                   const index::IndexSource* indexes,
                   const storage::DocumentStore* store)
      : database_(database), indexes_(indexes), store_(store) {}

  /// Full Fig-2-style query: "let $view := ... for $v in $view where $v
  /// ftcontains('k1' & 'k2') return $v". A thin compatibility wrapper:
  /// plans, builds PDTs, opens a cursor and drains it to a batch
  /// response.
  Result<SearchResponse> Search(const std::string& query,
                                const SearchOptions& options) const;

  /// View text + keywords given separately (keywords are lowercased
  /// internally; the list must be non-empty). Same wrapper semantics as
  /// Search().
  Result<SearchResponse> SearchView(const std::string& view_text,
                                    const std::vector<std::string>& keywords,
                                    const SearchOptions& options) const;

  /// Stage 1: parse + QPT generation + signature.
  Result<QueryPlan> PlanQuery(const std::string& query) const;

  /// Stage 2: PDT generation for every QPT of the plan.
  Result<std::shared_ptr<const PreparedQuery>> BuildPdts(
      QueryPlan plan) const;

  /// Stage 3, cursor form: evaluates the plan over its PDTs, scores every
  /// view result, and returns a cursor over the ranked stream. No hit is
  /// materialized (no base data is touched) until FetchNext asks for it.
  /// The cursor yields at most `options.top_k` hits in total and keeps
  /// the PreparedQuery alive for its own lifetime, so it survives cache
  /// eviction on the caller's side. `options.conjunctive` is overridden
  /// by the query's own connective, as in Search().
  Result<std::unique_ptr<ResultCursor>> Open(
      std::shared_ptr<const PreparedQuery> prepared,
      const SearchOptions& options) const;

  /// Stage 3, batch form: Open + drain. Fills the response's qpt/pdt
  /// timings and PDT stats from `prepared` (the cost of building what was
  /// executed; a caching caller may have paid it on an earlier query).
  Result<SearchResponse> ExecutePrepared(
      std::shared_ptr<const PreparedQuery> prepared,
      const SearchOptions& options) const;

 private:
  const xml::Database* database_;
  const index::IndexSource* indexes_;
  const storage::DocumentStore* store_;
};

}  // namespace quickview::engine

#endif  // QUICKVIEW_ENGINE_VIEW_SEARCH_ENGINE_H_
