// The quickview public facade: ranked keyword search over virtual XML
// views, implementing the full architecture of paper Fig 3 —
//   parse -> QPT generation -> PDT generation (indices only)
//         -> unmodified evaluation over PDTs -> scoring -> top-k
//         -> materialization (the only base-data access).
#ifndef QUICKVIEW_ENGINE_VIEW_SEARCH_ENGINE_H_
#define QUICKVIEW_ENGINE_VIEW_SEARCH_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/index_builder.h"
#include "pdt/generate_pdt.h"
#include "storage/document_store.h"
#include "xml/dom.h"

namespace quickview::engine {

struct SearchOptions {
  size_t top_k = 10;
  bool conjunctive = true;  // all keywords vs any keyword
};

/// One ranked, fully materialized result.
struct SearchHit {
  double score = 0;
  std::vector<uint64_t> tf;  // per query keyword
  uint64_t byte_length = 0;
  std::string xml;  // serialized materialized result
};

/// Wall-clock per module, for the Fig 14 breakdown.
struct ModuleTimings {
  double qpt_ms = 0;   // parse + QPT generation
  double pdt_ms = 0;   // PrepareLists + GeneratePdt (or baseline analogue)
  double eval_ms = 0;  // query evaluation (incl. any view materialization)
  double post_ms = 0;  // scoring + top-k materialization

  double total_ms() const { return qpt_ms + pdt_ms + eval_ms + post_ms; }
};

struct SearchStats {
  size_t view_results = 0;      // |V(D)|
  size_t matching_results = 0;  // after keyword semantics
  pdt::PdtBuildStats pdt;       // aggregated over all QPTs
  uint64_t store_fetches = 0;   // base-data accesses
  uint64_t store_bytes = 0;
  /// Total bytes of the fully materialized view V(D) — what a
  /// materialize-first engine must produce; the Efficient engine's
  /// actual footprint is pdt.pdt_bytes + store_bytes instead.
  uint64_t view_bytes = 0;
};

struct SearchResponse {
  std::vector<SearchHit> hits;
  ModuleTimings timings;
  SearchStats stats;
};

class ViewSearchEngine {
 public:
  /// All three structures must outlive the engine.
  ViewSearchEngine(const xml::Database* database,
                   const index::DatabaseIndexes* indexes,
                   storage::DocumentStore* store)
      : database_(database), indexes_(indexes), store_(store) {}

  /// Full Fig-2-style query: "let $view := ... for $v in $view where $v
  /// ftcontains('k1' & 'k2') return $v".
  Result<SearchResponse> Search(const std::string& query,
                                const SearchOptions& options) const;

  /// View text + keywords given separately (keywords are lowercased
  /// internally).
  Result<SearchResponse> SearchView(const std::string& view_text,
                                    const std::vector<std::string>& keywords,
                                    const SearchOptions& options) const;

 private:
  const xml::Database* database_;
  const index::DatabaseIndexes* indexes_;
  storage::DocumentStore* store_;
};

}  // namespace quickview::engine

#endif  // QUICKVIEW_ENGINE_VIEW_SEARCH_ENGINE_H_
