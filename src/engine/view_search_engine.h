// The quickview public facade: ranked keyword search over virtual XML
// views, implementing the full architecture of paper Fig 3 —
//   parse -> QPT generation -> PDT generation (indices only)
//         -> unmodified evaluation over PDTs -> scoring -> top-k
//         -> materialization (the only base-data access).
//
// One engine serves one corpus, which may be a single (database, indexes,
// store) triple or an ordered list of shards of one logical corpus. The
// unified entry point is Open(SearchRequest): it validates once, plans
// once, fans PDT generation + evaluation + statistics collection out per
// shard (on the engine's ThreadPool when it has one), folds the integer
// keyword statistics into ONE global idf, and returns a ResultCursor
// whose MergedRankedStream pops hits in exactly the order the unsharded
// engine would produce — sharding is an execution strategy, never a
// semantic: responses are byte-identical at any shard count.
//
// The pipeline stays split into cacheable stages:
//   PlanQuery       parse + QPT generation + canonical plan signature
//                   (cost proportional to the query, never the data);
//   BuildPdts       PrepareLists + GeneratePdt per QPT against ONE
//                   shard's indexes (the data-dependent stage; its
//                   PreparedQuery output is immutable and shareable);
//   Open            evaluation + scoring + ranked merge, returning a
//                   ResultCursor. Hits are materialized lazily, per
//                   ResultCursor::FetchNext call, shard by shard.
// The historical Search / SearchView / ExecutePrepared trio survives as
// thin [[deprecated]] wrappers with byte-identical behavior.
#ifndef QUICKVIEW_ENGINE_VIEW_SEARCH_ENGINE_H_
#define QUICKVIEW_ENGINE_VIEW_SEARCH_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/engine_stats.h"
#include "engine/search_request.h"
#include "index/index_builder.h"
#include "pdt/generate_pdt.h"
#include "storage/document_store.h"
#include "xml/dom.h"
#include "xquery/ast.h"

namespace quickview {
class ThreadPool;  // common/thread_pool.h
}  // namespace quickview

namespace quickview::engine {

/// One ranked, fully materialized result.
struct SearchHit {
  double score = 0;
  std::vector<uint64_t> tf;  // per query keyword
  uint64_t byte_length = 0;
  std::string xml;  // serialized materialized result
};

struct SearchResponse {
  std::vector<SearchHit> hits;
  ModuleTimings timings;
  SearchStats stats;
};

/// A planned query: the parsed keyword query with its view rewritten over
/// PDT occurrence names, the generated QPTs, and a canonical signature of
/// (QPT structure, keywords, semantics) that identifies which PDTs the
/// plan needs — the cache key material of the service layer.
struct QueryPlan {
  xquery::KeywordQuery kq;
  std::vector<qpt::Qpt> qpts;
  std::string signature;
  double qpt_ms = 0;
};

/// A plan plus its generated PDTs — for ONE shard (an unsharded corpus
/// is the one-shard case). Immutable after BuildPdts returns; any number
/// of threads may open cursors against one instance.
struct PreparedQuery {
  QueryPlan plan;
  std::vector<std::shared_ptr<xml::Document>> pdts;
  pdt::PdtBuildStats pdt_stats;  // aggregated over all QPTs
  double pdt_ms = 0;
  /// Approximate resident footprint of the PDTs, for cache budgets.
  uint64_t memory_bytes = 0;
};

/// Canonical signature of the PDT inputs: QPT shapes (tags, axes,
/// annotations, predicates) plus keywords and conjunctive flag. Two
/// queries with equal signatures need byte-identical PDTs (per shard).
std::string PlanSignature(const std::vector<qpt::Qpt>& qpts,
                          const std::vector<std::string>& keywords,
                          bool conjunctive);

/// Renders the canonical Fig-2 keyword query for a view text and keyword
/// list (keywords are lowercased). Shared by the request path and the
/// service layer so cache keys and executed queries cannot drift apart.
std::string ComposeKeywordQuery(const std::string& view_text,
                                const std::vector<std::string>& keywords,
                                bool conjunctive);

/// One shard of the corpus: its own database, indexes and store, all
/// outliving the engine. `database` may be nullptr when every queried
/// document is rewritten over PDTs (the packed path, where base
/// documents exist only as node-record pages). Shards must be listed in
/// corpus order — the ordered contiguous partition is what makes the
/// merged ranked order equal the unsharded order.
struct ShardContext {
  const xml::Database* database = nullptr;
  const index::IndexSource* indexes = nullptr;
  const storage::DocumentStore* store = nullptr;
};

class ResultCursor;  // engine/result_cursor.h

class ViewSearchEngine {
 public:
  /// Unsharded corpus: one (database, indexes, store) triple, all
  /// outliving the engine and treated as immutable. The engine itself is
  /// stateless beyond these pointers, so one engine may serve queries
  /// from many threads at once. `indexes` is any IndexSource — the
  /// in-memory DatabaseIndexes or a packed on-disk database
  /// (pagestore::PackedDb).
  ViewSearchEngine(const xml::Database* database,
                   const index::IndexSource* indexes,
                   const storage::DocumentStore* store)
      : shards_{ShardContext{database, indexes, store}} {}

  /// Sharded corpus, in corpus order. `pool` (may be nullptr: shards run
  /// sequentially on the calling thread) executes per-shard work; it is
  /// shared infrastructure and must outlive the engine. Every shard's
  /// structures must outlive the engine and any cursor opened from it.
  explicit ViewSearchEngine(std::vector<ShardContext> shards,
                            ThreadPool* pool = nullptr);

  /// THE search entry point. Validates the request once, plans, builds
  /// (or reuses) per-shard PDTs, evaluates and scores every shard —
  /// concurrently when the engine has a pool — and returns a cursor over
  /// the merged ranked stream. No hit is materialized (no base data is
  /// touched) until FetchNext asks for it. Open is a barrier: when it
  /// returns, stats()/pending() are final (modulo lazily-growing fetch
  /// counters) and no shard work is running. On cancellation, deadline
  /// expiry, or a shard failure, every sibling shard task is stopped via
  /// the request's token before Open returns the typed error
  /// (Cancelled / DeadlineExceeded / the first shard's error, annotated
  /// with its shard number).
  Result<std::unique_ptr<ResultCursor>> Open(const SearchRequest& request) const;

  /// Open with caller-provided per-shard PreparedQueries (the service
  /// layer's cache hits). `prepared` must have exactly one entry per
  /// EXECUTED shard — all of them, or just the hinted one — each built
  /// by BuildPdts against that shard (null entries are built on the
  /// fly). Entries must all share one plan signature matching the
  /// request.
  Result<std::unique_ptr<ResultCursor>> Open(
      const SearchRequest& request,
      std::vector<std::shared_ptr<const PreparedQuery>> prepared) const;

  /// Open + drain, for batch callers.
  Result<SearchResponse> Execute(const SearchRequest& request) const;

  /// Stage 1: parse + QPT generation + signature. Shard-independent.
  Result<QueryPlan> PlanQuery(const std::string& query) const;

  /// Stage 2: PDT generation for every QPT of the plan, against shard
  /// `shard`'s indexes (0 = the only shard of an unsharded engine).
  Result<std::shared_ptr<const PreparedQuery>> BuildPdts(QueryPlan plan,
                                                         int shard = 0) const;

  /// Stage 3, single-shard cursor form: evaluates the plan over its PDTs,
  /// scores every view result, and returns a cursor over the ranked
  /// stream. Only valid on a one-shard engine (sharded engines go
  /// through Open(request, prepared) so idf spans the corpus). The
  /// cursor yields at most `options.top_k` hits in total and keeps the
  /// PreparedQuery alive for its own lifetime, so it survives cache
  /// eviction on the caller's side. `options.conjunctive` is overridden
  /// by the query's own connective.
  Result<std::unique_ptr<ResultCursor>> Open(
      std::shared_ptr<const PreparedQuery> prepared,
      const SearchOptions& options) const;

  /// Compatibility wrapper for the full Fig-2-style query: plans, builds
  /// PDTs, opens and drains. Byte-identical to Execute() with
  /// SearchRequest{.query = query, .options = options}.
  [[deprecated("build a SearchRequest and call Execute(request)")]]
  Result<SearchResponse> Search(const std::string& query,
                                const SearchOptions& options) const;

  /// Compatibility wrapper for view text + keywords. Byte-identical to
  /// Execute() with SearchRequest{.view = view_text, .keywords =
  /// keywords, .options = options}.
  [[deprecated("build a SearchRequest and call Execute(request)")]]
  Result<SearchResponse> SearchView(const std::string& view_text,
                                    const std::vector<std::string>& keywords,
                                    const SearchOptions& options) const;

  /// Compatibility wrapper: Open(prepared, options) + drain.
  [[deprecated(
      "call Open(request, prepared) and drain, or Execute(request)")]]
  Result<SearchResponse> ExecutePrepared(
      std::shared_ptr<const PreparedQuery> prepared,
      const SearchOptions& options) const;

  int shard_count() const { return static_cast<int>(shards_.size()); }

 private:
  struct ShardEval;  // one shard's evaluation product (defined in .cc)

  Result<std::unique_ptr<ResultCursor>> OpenImpl(
      const SearchRequest& request,
      const std::vector<std::shared_ptr<const PreparedQuery>>& prepared)
      const;
  Result<SearchResponse> ExecuteImpl(const SearchRequest& request) const;
  Result<SearchResponse> ExecutePreparedImpl(
      std::shared_ptr<const PreparedQuery> prepared,
      const SearchOptions& options) const;
  Result<std::shared_ptr<const PreparedQuery>> BuildPdtsImpl(
      QueryPlan plan, int shard, const CancellationToken* cancel) const;
  Result<ShardEval> EvaluateShard(
      size_t shard, std::shared_ptr<const PreparedQuery> prepared,
      const CancellationToken* cancel) const;
  Result<std::unique_ptr<ResultCursor>> FinalizeCursor(
      std::vector<ShardEval> evals, const std::vector<size_t>& shard_ids,
      size_t top_k, std::shared_ptr<CancellationToken> token,
      std::shared_ptr<obs::Trace> trace,
      std::vector<obs::TraceSpan*> shard_spans) const;

  std::vector<ShardContext> shards_;  // corpus order; size >= 1
  ThreadPool* pool_ = nullptr;        // per-shard execution; may be null
};

}  // namespace quickview::engine

#endif  // QUICKVIEW_ENGINE_VIEW_SEARCH_ENGINE_H_
