#include "engine/view_search_engine.h"

#include <chrono>

#include "common/strings.h"
#include "qpt/generate_qpt.h"
#include "scoring/materializer.h"
#include "scoring/scorer.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace quickview::engine {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Variable-length components are length-prefixed so the signature is
// injective: no keyword or tag content (delimiters included) can make
// two different plans collide on one cache key.
void AppendSized(const std::string& text, std::string* out) {
  out->append(std::to_string(text.size()));
  out->push_back(':');
  out->append(text);
}

void AppendQptSignature(const qpt::Qpt& qpt, std::string* out) {
  AppendSized(qpt.source_doc, out);
  for (const qpt::QptNode& node : qpt.nodes) {
    out->push_back('|');
    out->append(std::to_string(node.parent));
    out->push_back(node.parent_descendant ? 'd' : 'c');
    out->push_back(node.parent_mandatory ? 'm' : 'o');
    AppendSized(node.tag, out);
    if (node.v_ann) out->push_back('v');
    if (node.c_ann) out->push_back('c');
    for (const qpt::QptPredicate& pred : node.preds) {
      out->push_back('[');
      out->append(std::to_string(static_cast<int>(pred.op)));
      out->push_back(':');
      AppendSized(pred.literal, out);
      out->push_back(']');
    }
  }
}

}  // namespace

std::string PlanSignature(const std::vector<qpt::Qpt>& qpts,
                          const std::vector<std::string>& keywords,
                          bool conjunctive) {
  std::string signature;
  for (const qpt::Qpt& qpt : qpts) {
    AppendQptSignature(qpt, &signature);
    signature.push_back('\x1e');
  }
  signature.push_back(conjunctive ? '&' : '!');
  for (const std::string& keyword : keywords) {
    signature.push_back('\x1f');
    AppendSized(keyword, &signature);
  }
  return signature;
}

std::string ComposeKeywordQuery(const std::string& view_text,
                                const std::vector<std::string>& keywords,
                                bool conjunctive) {
  std::string query = "let $view := " + view_text + "\nfor $qv in $view\n";
  query += "where $qv ftcontains(";
  for (size_t i = 0; i < keywords.size(); ++i) {
    if (i > 0) query += conjunctive ? " & " : " | ";
    query += "'" + AsciiToLower(keywords[i]) + "'";
  }
  query += ")\nreturn $qv";
  return query;
}

Result<QueryPlan> ViewSearchEngine::PlanQuery(const std::string& query) const {
  Clock::time_point start = Clock::now();
  QueryPlan plan;
  QV_ASSIGN_OR_RETURN(plan.kq, xquery::ParseKeywordQuery(query));
  // QPT generation rewrites doc names in kq.view to the PDT occurrence
  // names; after this the plan's view only makes sense over the PDTs.
  QV_ASSIGN_OR_RETURN(plan.qpts, qpt::GenerateQpts(&plan.kq.view));
  plan.signature =
      PlanSignature(plan.qpts, plan.kq.keywords, plan.kq.conjunctive);
  plan.qpt_ms = MsSince(start);
  return plan;
}

Result<std::shared_ptr<const PreparedQuery>> ViewSearchEngine::BuildPdts(
    QueryPlan plan) const {
  Clock::time_point start = Clock::now();
  auto prepared = std::make_shared<PreparedQuery>();
  prepared->plan = std::move(plan);
  prepared->pdts.reserve(prepared->plan.qpts.size());
  for (const qpt::Qpt& q : prepared->plan.qpts) {
    const index::DocumentIndexes* doc_indexes = indexes_->Get(q.source_doc);
    if (doc_indexes == nullptr) {
      return Status::NotFound("no indexes for document '" + q.source_doc +
                              "'");
    }
    pdt::PdtBuildStats build_stats;
    QV_ASSIGN_OR_RETURN(
        std::shared_ptr<xml::Document> pdt,
        pdt::GeneratePdt(q, *doc_indexes, prepared->plan.kq.keywords,
                         &build_stats));
    prepared->pdt_stats.ids_processed += build_stats.ids_processed;
    prepared->pdt_stats.nodes_emitted += build_stats.nodes_emitted;
    prepared->pdt_stats.peak_ct_nodes += build_stats.peak_ct_nodes;
    prepared->pdt_stats.index_probes += build_stats.index_probes;
    prepared->pdt_stats.pdt_bytes += build_stats.pdt_bytes;
    prepared->memory_bytes +=
        build_stats.pdt_bytes + pdt->size() * sizeof(xml::Node);
    prepared->pdts.push_back(std::move(pdt));
  }
  prepared->pdt_ms = MsSince(start);
  return std::shared_ptr<const PreparedQuery>(std::move(prepared));
}

Result<SearchResponse> ViewSearchEngine::ExecutePrepared(
    const PreparedQuery& prepared, const SearchOptions& options) const {
  const QueryPlan& plan = prepared.plan;
  SearchOptions effective = options;
  effective.conjunctive = plan.kq.conjunctive;

  SearchResponse response;
  response.timings.qpt_ms = plan.qpt_ms;
  response.timings.pdt_ms = prepared.pdt_ms;
  response.stats.pdt = prepared.pdt_stats;

  // --- Evaluate the rewritten query over the PDTs ---
  Clock::time_point start = Clock::now();
  xquery::Evaluator evaluator(database_);
  for (size_t i = 0; i < plan.qpts.size(); ++i) {
    evaluator.OverrideDocument(plan.qpts[i].occurrence_name,
                               prepared.pdts[i].get());
  }
  QV_ASSIGN_OR_RETURN(xquery::Sequence view_results,
                      evaluator.Evaluate(plan.kq.view));
  response.timings.eval_ms = MsSince(start);

  // --- Score, select top-k, materialize ---
  start = Clock::now();
  scoring::ScoringOutcome outcome = scoring::ScoreResults(
      view_results, plan.kq.keywords, effective.conjunctive);
  std::vector<scoring::ScoredResult>& scored = outcome.ranked;
  response.stats.view_results = view_results.size();
  response.stats.matching_results = scored.size();
  response.stats.view_bytes = outcome.view_bytes;
  scoring::TakeTopK(&scored, effective.top_k);

  storage::DocumentStore::Stats fetches;
  for (const scoring::ScoredResult& r : scored) {
    SearchHit hit;
    hit.score = r.score;
    hit.tf = r.tf;
    hit.byte_length = r.byte_length;
    QV_ASSIGN_OR_RETURN(hit.xml,
                        scoring::MaterializeToXml(r.result, store_, &fetches));
    response.hits.push_back(std::move(hit));
  }
  response.stats.store_fetches = fetches.fetch_calls;
  response.stats.store_bytes = fetches.bytes_fetched;
  response.timings.post_ms = MsSince(start);
  return response;
}

Result<SearchResponse> ViewSearchEngine::Search(
    const std::string& query, const SearchOptions& options) const {
  QV_ASSIGN_OR_RETURN(QueryPlan plan, PlanQuery(query));
  QV_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> prepared,
                      BuildPdts(std::move(plan)));
  return ExecutePrepared(*prepared, options);
}

Result<SearchResponse> ViewSearchEngine::SearchView(
    const std::string& view_text, const std::vector<std::string>& keywords,
    const SearchOptions& options) const {
  return Search(ComposeKeywordQuery(view_text, keywords, options.conjunctive),
                options);
}

}  // namespace quickview::engine
