#include "engine/view_search_engine.h"

#include <chrono>

#include "common/strings.h"
#include "qpt/generate_qpt.h"
#include "scoring/materializer.h"
#include "scoring/scorer.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace quickview::engine {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

Result<SearchResponse> ViewSearchEngine::Search(
    const std::string& query, const SearchOptions& options) const {
  QV_ASSIGN_OR_RETURN(xquery::KeywordQuery kq,
                      xquery::ParseKeywordQuery(query));
  SearchOptions effective = options;
  effective.conjunctive = kq.conjunctive;
  // Re-serialize is unnecessary: run the already-parsed view through the
  // pipeline below by temporarily taking ownership.
  SearchResponse response;
  Clock::time_point start = Clock::now();

  // --- QPT generation (rewrites doc names in kq.view) ---
  QV_ASSIGN_OR_RETURN(std::vector<qpt::Qpt> qpts,
                      qpt::GenerateQpts(&kq.view));
  response.timings.qpt_ms = MsSince(start);

  // --- PDT generation: indices only ---
  start = Clock::now();
  std::vector<std::shared_ptr<xml::Document>> pdts;
  pdts.reserve(qpts.size());
  for (const qpt::Qpt& q : qpts) {
    const index::DocumentIndexes* doc_indexes = indexes_->Get(q.source_doc);
    if (doc_indexes == nullptr) {
      return Status::NotFound("no indexes for document '" + q.source_doc +
                              "'");
    }
    pdt::PdtBuildStats build_stats;
    QV_ASSIGN_OR_RETURN(
        std::shared_ptr<xml::Document> pdt,
        pdt::GeneratePdt(q, *doc_indexes, kq.keywords, &build_stats));
    response.stats.pdt.ids_processed += build_stats.ids_processed;
    response.stats.pdt.nodes_emitted += build_stats.nodes_emitted;
    response.stats.pdt.peak_ct_nodes += build_stats.peak_ct_nodes;
    response.stats.pdt.index_probes += build_stats.index_probes;
    response.stats.pdt.pdt_bytes += build_stats.pdt_bytes;
    pdts.push_back(std::move(pdt));
  }
  response.timings.pdt_ms = MsSince(start);

  // --- Evaluate the rewritten query over the PDTs ---
  start = Clock::now();
  xquery::Evaluator evaluator(database_);
  for (size_t i = 0; i < qpts.size(); ++i) {
    evaluator.OverrideDocument(qpts[i].occurrence_name, pdts[i].get());
  }
  QV_ASSIGN_OR_RETURN(xquery::Sequence view_results,
                      evaluator.Evaluate(kq.view));
  response.timings.eval_ms = MsSince(start);

  // --- Score, select top-k, materialize ---
  start = Clock::now();
  scoring::ScoringOutcome outcome = scoring::ScoreResults(
      view_results, kq.keywords, effective.conjunctive);
  std::vector<scoring::ScoredResult>& scored = outcome.ranked;
  response.stats.view_results = view_results.size();
  response.stats.matching_results = scored.size();
  response.stats.view_bytes = outcome.view_bytes;
  scoring::TakeTopK(&scored, effective.top_k);

  uint64_t fetches_before = store_->stats().fetch_calls;
  uint64_t bytes_before = store_->stats().bytes_fetched;
  for (const scoring::ScoredResult& r : scored) {
    SearchHit hit;
    hit.score = r.score;
    hit.tf = r.tf;
    hit.byte_length = r.byte_length;
    QV_ASSIGN_OR_RETURN(hit.xml,
                        scoring::MaterializeToXml(r.result, store_));
    response.hits.push_back(std::move(hit));
  }
  response.stats.store_fetches = store_->stats().fetch_calls - fetches_before;
  response.stats.store_bytes = store_->stats().bytes_fetched - bytes_before;
  response.timings.post_ms = MsSince(start);
  return response;
}

Result<SearchResponse> ViewSearchEngine::SearchView(
    const std::string& view_text, const std::vector<std::string>& keywords,
    const SearchOptions& options) const {
  // Assemble the canonical Fig-2 form and reuse Search().
  std::string query = "let $view := " + view_text + "\nfor $qv in $view\n";
  query += "where $qv ftcontains(";
  for (size_t i = 0; i < keywords.size(); ++i) {
    if (i > 0) query += options.conjunctive ? " & " : " | ";
    query += "'" + AsciiToLower(keywords[i]) + "'";
  }
  query += ")\nreturn $qv";
  return Search(query, options);
}

}  // namespace quickview::engine
