#include "engine/view_search_engine.h"

#include <chrono>
#include <utility>

#include "common/strings.h"
#include "engine/result_cursor.h"
#include "qpt/generate_qpt.h"
#include "scoring/scorer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace quickview::engine {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Variable-length components are length-prefixed so the signature is
// injective: no keyword or tag content (delimiters included) can make
// two different plans collide on one cache key.
void AppendSized(const std::string& text, std::string* out) {
  out->append(std::to_string(text.size()));
  out->push_back(':');
  out->append(text);
}

void AppendQptSignature(const qpt::Qpt& qpt, std::string* out) {
  AppendSized(qpt.source_doc, out);
  for (const qpt::QptNode& node : qpt.nodes) {
    out->push_back('|');
    out->append(std::to_string(node.parent));
    out->push_back(node.parent_descendant ? 'd' : 'c');
    out->push_back(node.parent_mandatory ? 'm' : 'o');
    AppendSized(node.tag, out);
    if (node.v_ann) out->push_back('v');
    if (node.c_ann) out->push_back('c');
    for (const qpt::QptPredicate& pred : node.preds) {
      out->push_back('[');
      out->append(std::to_string(static_cast<int>(pred.op)));
      out->push_back(':');
      AppendSized(pred.literal, out);
      out->push_back(']');
    }
  }
}

}  // namespace

Status ValidateSearchOptions(const SearchOptions& options) {
  if (options.top_k == 0) {
    return Status::InvalidArgument(
        "top_k must be at least 1 (a zero-result search is a caller bug)");
  }
  return Status::OK();
}

std::string PlanSignature(const std::vector<qpt::Qpt>& qpts,
                          const std::vector<std::string>& keywords,
                          bool conjunctive) {
  std::string signature;
  for (const qpt::Qpt& qpt : qpts) {
    AppendQptSignature(qpt, &signature);
    signature.push_back('\x1e');
  }
  signature.push_back(conjunctive ? '&' : '!');
  for (const std::string& keyword : keywords) {
    signature.push_back('\x1f');
    AppendSized(keyword, &signature);
  }
  return signature;
}

std::string ComposeKeywordQuery(const std::string& view_text,
                                const std::vector<std::string>& keywords,
                                bool conjunctive) {
  std::string query = "let $view := " + view_text + "\nfor $qv in $view\n";
  query += "where $qv ftcontains(";
  for (size_t i = 0; i < keywords.size(); ++i) {
    if (i > 0) query += conjunctive ? " & " : " | ";
    query += "'" + AsciiToLower(keywords[i]) + "'";
  }
  query += ")\nreturn $qv";
  return query;
}

Result<QueryPlan> ViewSearchEngine::PlanQuery(const std::string& query) const {
  Clock::time_point start = Clock::now();
  QueryPlan plan;
  QUICKVIEW_ASSIGN_OR_RETURN(plan.kq, xquery::ParseKeywordQuery(query));
  // The grammar admits ftcontains() as a trivially-true filter, but a
  // keyword search without keywords has no scores, no idf and no ranking
  // — reject it here, where every engine and service entry point passes.
  if (plan.kq.keywords.empty()) {
    return Status::InvalidArgument(
        "keyword query has an empty keyword list: ftcontains() needs at "
        "least one keyword to rank by");
  }
  // QPT generation rewrites doc names in kq.view to the PDT occurrence
  // names; after this the plan's view only makes sense over the PDTs.
  QUICKVIEW_ASSIGN_OR_RETURN(plan.qpts, qpt::GenerateQpts(&plan.kq.view));
  plan.signature =
      PlanSignature(plan.qpts, plan.kq.keywords, plan.kq.conjunctive);
  plan.qpt_ms = MsSince(start);
  return plan;
}

Result<std::shared_ptr<const PreparedQuery>> ViewSearchEngine::BuildPdts(
    QueryPlan plan) const {
  Clock::time_point start = Clock::now();
  auto prepared = std::make_shared<PreparedQuery>();
  prepared->plan = std::move(plan);
  prepared->pdts.reserve(prepared->plan.qpts.size());
  for (const qpt::Qpt& q : prepared->plan.qpts) {
    std::optional<index::DocumentIndexView> doc_indexes =
        indexes_->GetView(q.source_doc);
    if (!doc_indexes.has_value()) {
      return Status::NotFound("no indexes for document '" + q.source_doc +
                              "'");
    }
    pdt::PdtBuildStats build_stats;
    QUICKVIEW_ASSIGN_OR_RETURN(
        std::shared_ptr<xml::Document> pdt,
        pdt::GeneratePdt(q, *doc_indexes, prepared->plan.kq.keywords,
                         &build_stats));
    prepared->pdt_stats.ids_processed += build_stats.ids_processed;
    prepared->pdt_stats.nodes_emitted += build_stats.nodes_emitted;
    prepared->pdt_stats.peak_ct_nodes += build_stats.peak_ct_nodes;
    prepared->pdt_stats.index_probes += build_stats.index_probes;
    prepared->pdt_stats.pdt_bytes += build_stats.pdt_bytes;
    prepared->memory_bytes +=
        build_stats.pdt_bytes + pdt->size() * sizeof(xml::Node);
    prepared->pdts.push_back(std::move(pdt));
  }
  prepared->pdt_ms = MsSince(start);
  return std::shared_ptr<const PreparedQuery>(std::move(prepared));
}

Result<std::unique_ptr<ResultCursor>> ViewSearchEngine::Open(
    std::shared_ptr<const PreparedQuery> prepared,
    const SearchOptions& options) const {
  if (prepared == nullptr) {
    return Status::InvalidArgument("Open requires a prepared query");
  }
  QUICKVIEW_RETURN_IF_ERROR(ValidateSearchOptions(options));

  auto cursor = std::unique_ptr<ResultCursor>(new ResultCursor());
  cursor->prepared_ = std::move(prepared);
  cursor->store_ = store_;
  cursor->limit_ = options.top_k;
  const QueryPlan& plan = cursor->prepared_->plan;
  cursor->timings_.qpt_ms = plan.qpt_ms;
  cursor->timings_.pdt_ms = cursor->prepared_->pdt_ms;
  cursor->stats_.pdt = cursor->prepared_->pdt_stats;

  // --- Evaluate the rewritten query over the PDTs ---
  Clock::time_point start = Clock::now();
  xquery::Evaluator evaluator(database_);
  for (size_t i = 0; i < plan.qpts.size(); ++i) {
    evaluator.OverrideDocument(plan.qpts[i].occurrence_name,
                               cursor->prepared_->pdts[i].get());
  }
  QUICKVIEW_ASSIGN_OR_RETURN(xquery::Sequence view_results,
                             evaluator.Evaluate(plan.kq.view));
  // Constructed elements live in the evaluator's arena; the candidates
  // reference it, so the cursor takes shared ownership.
  cursor->result_arena_ = evaluator.result_doc_shared();
  cursor->timings_.eval_ms = MsSince(start);

  // --- Score everything, rank nothing: candidates go into the heap and
  // leave it (already materialization-free) only when fetched ---
  start = Clock::now();
  scoring::ScoringOutcome outcome = scoring::ScoreCandidates(
      view_results, plan.kq.keywords, plan.kq.conjunctive);
  cursor->stats_.view_results = view_results.size();
  cursor->stats_.matching_results = outcome.ranked.size();
  cursor->stats_.view_bytes = outcome.view_bytes;
  cursor->candidates_ = std::move(outcome.ranked);
  cursor->stream_.Reserve(cursor->candidates_.size());
  for (size_t i = 0; i < cursor->candidates_.size(); ++i) {
    cursor->stream_.Push(cursor->candidates_[i].score, i);
  }
  cursor->timings_.post_ms += MsSince(start);
  return cursor;
}

Result<SearchResponse> ViewSearchEngine::ExecutePrepared(
    std::shared_ptr<const PreparedQuery> prepared,
    const SearchOptions& options) const {
  QUICKVIEW_ASSIGN_OR_RETURN(std::unique_ptr<ResultCursor> cursor,
                             Open(std::move(prepared), options));
  return DrainToResponse(cursor.get());
}

Result<SearchResponse> ViewSearchEngine::Search(
    const std::string& query, const SearchOptions& options) const {
  QUICKVIEW_ASSIGN_OR_RETURN(QueryPlan plan, PlanQuery(query));
  QUICKVIEW_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> prepared,
                             BuildPdts(std::move(plan)));
  return ExecutePrepared(std::move(prepared), options);
}

Result<SearchResponse> ViewSearchEngine::SearchView(
    const std::string& view_text, const std::vector<std::string>& keywords,
    const SearchOptions& options) const {
  if (keywords.empty()) {
    return Status::InvalidArgument(
        "SearchView requires a non-empty keyword list");
  }
  return Search(ComposeKeywordQuery(view_text, keywords, options.conjunctive),
                options);
}

}  // namespace quickview::engine
