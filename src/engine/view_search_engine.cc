#include "engine/view_search_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>
#include <utility>

#include "common/strings.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "engine/result_cursor.h"
#include "qpt/generate_qpt.h"
#include "scoring/scorer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace quickview::engine {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Variable-length components are length-prefixed so the signature is
// injective: no keyword or tag content (delimiters included) can make
// two different plans collide on one cache key.
void AppendSized(const std::string& text, std::string* out) {
  out->append(std::to_string(text.size()));
  out->push_back(':');
  out->append(text);
}

void AppendQptSignature(const qpt::Qpt& qpt, std::string* out) {
  AppendSized(qpt.source_doc, out);
  for (const qpt::QptNode& node : qpt.nodes) {
    out->push_back('|');
    out->append(std::to_string(node.parent));
    out->push_back(node.parent_descendant ? 'd' : 'c');
    out->push_back(node.parent_mandatory ? 'm' : 'o');
    AppendSized(node.tag, out);
    if (node.v_ann) out->push_back('v');
    if (node.c_ann) out->push_back('c');
    for (const qpt::QptPredicate& pred : node.preds) {
      out->push_back('[');
      out->append(std::to_string(static_cast<int>(pred.op)));
      out->push_back(':');
      AppendSized(pred.literal, out);
      out->push_back(']');
    }
  }
}

// Fixed-slot completion barrier for the per-shard fan-out (the PX-style
// coordinator's result channel): each shard task fills its slot exactly
// once; the coordinator waits for all slots, HELPING the pool drain its
// queue meanwhile — the coordinator often IS a pool task (SearchBatch),
// and parking it while its own subtasks sit queued behind it would
// deadlock a saturated pool.
template <typename T>
class Gather {
 public:
  explicit Gather(size_t n) : slots_(n) {}

  void Set(size_t i, T value) {
    qv::MutexLock lock(mu_);
    slots_[i].emplace(std::move(value));
    ++done_;
    // Notify while still holding the lock: a waiter that observes
    // completion may destroy this object the instant the lock frees.
    cv_.NotifyAll();
  }

  void Wait(ThreadPool* pool) {
    if (pool != nullptr) {
      for (;;) {
        {
          qv::MutexLock lock(mu_);
          if (done_ == slots_.size()) return;
        }
        // Queue empty means every unfinished slot's task is already
        // running on some worker; safe to park on the condvar below.
        if (!pool->RunOneQueued()) break;
      }
    }
    qv::MutexLock lock(mu_);
    while (done_ < slots_.size()) cv_.Wait(lock);
  }

  /// Only after Wait returned.
  T Take(size_t i) {
    qv::MutexLock lock(mu_);
    return std::move(*slots_[i]);
  }

 private:
  qv::Mutex mu_;
  qv::CondVar cv_;
  std::vector<std::optional<T>> slots_ QV_GUARDED_BY(mu_);
  size_t done_ QV_GUARDED_BY(mu_) = 0;
};

}  // namespace

struct ViewSearchEngine::ShardEval {
  std::shared_ptr<const PreparedQuery> prepared;
  std::shared_ptr<const xml::Document> arena;  // evaluator-constructed nodes
  scoring::CandidateSet set;
  double eval_ms = 0;
  double collect_ms = 0;
};

ViewSearchEngine::ViewSearchEngine(std::vector<ShardContext> shards,
                                   ThreadPool* pool)
    : shards_(std::move(shards)), pool_(pool) {
  assert(!shards_.empty());
}

std::string PlanSignature(const std::vector<qpt::Qpt>& qpts,
                          const std::vector<std::string>& keywords,
                          bool conjunctive) {
  std::string signature;
  for (const qpt::Qpt& qpt : qpts) {
    AppendQptSignature(qpt, &signature);
    signature.push_back('\x1e');
  }
  signature.push_back(conjunctive ? '&' : '!');
  for (const std::string& keyword : keywords) {
    signature.push_back('\x1f');
    AppendSized(keyword, &signature);
  }
  return signature;
}

std::string ComposeKeywordQuery(const std::string& view_text,
                                const std::vector<std::string>& keywords,
                                bool conjunctive) {
  std::string query = "let $view := " + view_text + "\nfor $qv in $view\n";
  query += "where $qv ftcontains(";
  for (size_t i = 0; i < keywords.size(); ++i) {
    if (i > 0) query += conjunctive ? " & " : " | ";
    query += "'" + AsciiToLower(keywords[i]) + "'";
  }
  query += ")\nreturn $qv";
  return query;
}

Result<QueryPlan> ViewSearchEngine::PlanQuery(const std::string& query) const {
  Clock::time_point start = Clock::now();
  QueryPlan plan;
  QUICKVIEW_ASSIGN_OR_RETURN(plan.kq, xquery::ParseKeywordQuery(query));
  // The grammar admits ftcontains() as a trivially-true filter, but a
  // keyword search without keywords has no scores, no idf and no ranking
  // — reject it here, where every engine and service entry point passes.
  if (plan.kq.keywords.empty()) {
    return Status::InvalidArgument(
        "keyword query has an empty keyword list: ftcontains() needs at "
        "least one keyword to rank by");
  }
  // QPT generation rewrites doc names in kq.view to the PDT occurrence
  // names; after this the plan's view only makes sense over the PDTs.
  QUICKVIEW_ASSIGN_OR_RETURN(plan.qpts, qpt::GenerateQpts(&plan.kq.view));
  plan.signature =
      PlanSignature(plan.qpts, plan.kq.keywords, plan.kq.conjunctive);
  plan.qpt_ms = MsSince(start);
  return plan;
}

Result<std::shared_ptr<const PreparedQuery>> ViewSearchEngine::BuildPdts(
    QueryPlan plan, int shard) const {
  return BuildPdtsImpl(std::move(plan), shard, /*cancel=*/nullptr);
}

Result<std::shared_ptr<const PreparedQuery>> ViewSearchEngine::BuildPdtsImpl(
    QueryPlan plan, int shard, const CancellationToken* cancel) const {
  if (shard < 0 || shard >= shard_count()) {
    return Status::InvalidArgument(
        "BuildPdts shard " + std::to_string(shard) +
        " out of range: engine has " + std::to_string(shard_count()) +
        " shard(s)");
  }
  const index::IndexSource* indexes =
      shards_[static_cast<size_t>(shard)].indexes;
  Clock::time_point start = Clock::now();
  auto prepared = std::make_shared<PreparedQuery>();
  prepared->plan = std::move(plan);
  prepared->pdts.reserve(prepared->plan.qpts.size());
  for (const qpt::Qpt& q : prepared->plan.qpts) {
    if (cancel != nullptr && cancel->Fired()) return cancel->ToStatus();
    std::optional<index::DocumentIndexView> doc_indexes =
        indexes->GetView(q.source_doc);
    if (!doc_indexes.has_value()) {
      return Status::NotFound("no indexes for document '" + q.source_doc +
                              "'");
    }
    pdt::PdtBuildStats build_stats;
    QUICKVIEW_ASSIGN_OR_RETURN(
        std::shared_ptr<xml::Document> pdt,
        pdt::GeneratePdt(q, *doc_indexes, prepared->plan.kq.keywords,
                         &build_stats));
    prepared->pdt_stats.ids_processed += build_stats.ids_processed;
    prepared->pdt_stats.nodes_emitted += build_stats.nodes_emitted;
    prepared->pdt_stats.peak_ct_nodes += build_stats.peak_ct_nodes;
    prepared->pdt_stats.index_probes += build_stats.index_probes;
    prepared->pdt_stats.pdt_bytes += build_stats.pdt_bytes;
    prepared->memory_bytes +=
        build_stats.pdt_bytes + pdt->size() * sizeof(xml::Node);
    prepared->pdts.push_back(std::move(pdt));
  }
  prepared->pdt_ms = MsSince(start);
  return std::shared_ptr<const PreparedQuery>(std::move(prepared));
}

Result<ViewSearchEngine::ShardEval> ViewSearchEngine::EvaluateShard(
    size_t shard, std::shared_ptr<const PreparedQuery> prepared,
    const CancellationToken* cancel) const {
  ShardEval eval;
  eval.prepared = std::move(prepared);
  const QueryPlan& plan = eval.prepared->plan;

  // --- Evaluate the rewritten query over this shard's PDTs ---
  Clock::time_point start = Clock::now();
  xquery::Evaluator evaluator(shards_[shard].database);
  for (size_t i = 0; i < plan.qpts.size(); ++i) {
    evaluator.OverrideDocument(plan.qpts[i].occurrence_name,
                               eval.prepared->pdts[i].get());
  }
  QUICKVIEW_ASSIGN_OR_RETURN(xquery::Sequence view_results,
                             evaluator.Evaluate(plan.kq.view));
  // Constructed elements live in the evaluator's arena; the candidates
  // reference it, so the eval (and later the cursor) takes shared
  // ownership.
  eval.arena = evaluator.result_doc_shared();
  eval.eval_ms = MsSince(start);

  // --- Collect raw keyword statistics (phase 1 of the phased scorer;
  // idf needs the whole corpus, so scoring waits for every shard) ---
  start = Clock::now();
  QUICKVIEW_ASSIGN_OR_RETURN(
      eval.set,
      scoring::CollectCandidates(view_results, plan.kq.keywords, cancel));
  eval.collect_ms = MsSince(start);
  return eval;
}

Result<std::unique_ptr<ResultCursor>> ViewSearchEngine::FinalizeCursor(
    std::vector<ShardEval> evals, const std::vector<size_t>& shard_ids,
    size_t top_k, std::shared_ptr<CancellationToken> token,
    std::shared_ptr<obs::Trace> trace,
    std::vector<obs::TraceSpan*> shard_spans) const {
  Clock::time_point start = Clock::now();
  obs::SpanScope merge_span(trace.get(), "merge");
  auto cursor = std::unique_ptr<ResultCursor>(new ResultCursor());
  cursor->cancel_ = std::move(token);
  cursor->limit_ = top_k;
  cursor->trace_ = std::move(trace);
  shard_spans.resize(evals.size(), nullptr);

  // The plan is identical across shards (same text, deterministic
  // planner); read query-level facts from the first one.
  const QueryPlan& plan = evals[0].prepared->plan;

  // --- Global idf: integer counts summed across shards, divided once —
  // bit-identical to scoring the concatenated view in a single pass ---
  uint64_t total_candidates = 0;
  std::vector<uint64_t> df(plan.kq.keywords.size(), 0);
  double collect_ms_max = 0;
  for (const ShardEval& eval : evals) {
    total_candidates += eval.set.candidates.size();
    scoring::AccumulateDf(eval.set, &df);
    collect_ms_max = std::max(collect_ms_max, eval.collect_ms);
  }
  const std::vector<double> idf = scoring::ComputeIdf(total_candidates, df);
  merge_span.AddCounter("candidates", total_candidates);
  merge_span.AddCounter("streams", evals.size());

  EngineStats& stats = cursor->stats_;
  const CancellationToken* cancel =
      cursor->cancel_ == nullptr ? nullptr : cursor->cancel_.get();
  for (size_t p = 0; p < evals.size(); ++p) {
    ShardEval& eval = evals[p];
    QUICKVIEW_ASSIGN_OR_RETURN(
        std::vector<scoring::ScoredResult> kept,
        scoring::FilterAndScore(std::move(eval.set.candidates), idf,
                                plan.kq.conjunctive, cancel));

    ShardStats shard_stats;
    shard_stats.shard = static_cast<int>(shard_ids[p]);
    shard_stats.view_results = eval.set.sequence_size;
    shard_stats.matching_results = kept.size();
    shard_stats.pdt_ms = eval.prepared->pdt_ms;
    shard_stats.eval_ms = eval.eval_ms;
    stats.shards.push_back(shard_stats);
    // The shard span absorbs the shard's pipeline counters; later,
    // FetchNext attributes materialization I/O back to it too, so a
    // counter summed over the shard spans always equals the
    // corresponding stats().search total.
    if (shard_spans[p] != nullptr) {
      shard_spans[p]->AddCounter("view_results", eval.set.sequence_size);
      shard_spans[p]->AddCounter("matching_results", kept.size());
      shard_spans[p]->AddCounter("pdt_bytes",
                                 eval.prepared->pdt_stats.pdt_bytes);
      shard_spans[p]->AddCounter("view_bytes", eval.set.view_bytes);
    }

    stats.search.view_results += eval.set.sequence_size;
    stats.search.matching_results += kept.size();
    stats.search.view_bytes += eval.set.view_bytes;
    const pdt::PdtBuildStats& pdt_stats = eval.prepared->pdt_stats;
    stats.search.pdt.ids_processed += pdt_stats.ids_processed;
    stats.search.pdt.nodes_emitted += pdt_stats.nodes_emitted;
    stats.search.pdt.peak_ct_nodes += pdt_stats.peak_ct_nodes;
    stats.search.pdt.index_probes += pdt_stats.index_probes;
    stats.search.pdt.pdt_bytes += pdt_stats.pdt_bytes;
    // Fig-14 wall clock: parallel stages report the slowest shard.
    stats.timings.qpt_ms =
        std::max(stats.timings.qpt_ms, eval.prepared->plan.qpt_ms);
    stats.timings.pdt_ms =
        std::max(stats.timings.pdt_ms, eval.prepared->pdt_ms);
    stats.timings.eval_ms = std::max(stats.timings.eval_ms, eval.eval_ms);

    // Per-shard lazily-heapified stream; the merged frontier pops across
    // them in global (score desc, shard asc, position asc) order.
    RankedStream stream;
    stream.Reserve(kept.size());
    for (size_t i = 0; i < kept.size(); ++i) stream.Push(kept[i].score, i);
    cursor->stream_.AddShard(std::move(stream));

    ResultCursor::Slice slice;
    slice.prepared = std::move(eval.prepared);
    slice.arena = std::move(eval.arena);
    slice.store = shards_[shard_ids[p]].store;
    slice.candidates = std::move(kept);
    slice.span = shard_spans[p];
    cursor->slices_.push_back(std::move(slice));
  }
  merge_span.AddCounter("matching_results", stats.search.matching_results);
  stats.timings.post_ms += collect_ms_max + MsSince(start);
  return cursor;
}

Result<std::unique_ptr<ResultCursor>> ViewSearchEngine::Open(
    const SearchRequest& request) const {
  return OpenImpl(request, {});
}

Result<std::unique_ptr<ResultCursor>> ViewSearchEngine::Open(
    const SearchRequest& request,
    std::vector<std::shared_ptr<const PreparedQuery>> prepared) const {
  return OpenImpl(request, prepared);
}

Result<std::unique_ptr<ResultCursor>> ViewSearchEngine::OpenImpl(
    const SearchRequest& request,
    const std::vector<std::shared_ptr<const PreparedQuery>>& prepared)
    const {
  QV_RETURN_IF_ERROR(request.Validate());
  if (request.shard >= shard_count()) {
    return Status::InvalidArgument(
        "shard hint " + std::to_string(request.shard) +
        " out of range: engine has " + std::to_string(shard_count()) +
        " shard(s)");
  }
  std::vector<size_t> selected;
  if (request.shard >= 0) {
    selected.push_back(static_cast<size_t>(request.shard));
  } else {
    for (size_t i = 0; i < shards_.size(); ++i) selected.push_back(i);
  }
  if (!prepared.empty() && prepared.size() != selected.size()) {
    return Status::InvalidArgument(
        "prepared-query vector must have one entry per executed shard (" +
        std::to_string(selected.size()) + "), got " +
        std::to_string(prepared.size()));
  }

  std::shared_ptr<CancellationToken> token = request.cancel;
  if (token == nullptr) token = std::make_shared<CancellationToken>();
  if (request.deadline.has_value()) {
    token->SetDeadline(Clock::now() + *request.deadline);
  }

  const std::string query_text =
      !request.query.empty()
          ? request.query
          : ComposeKeywordQuery(request.view, request.keywords,
                                request.options.conjunctive);

  // --- Fan out: per-shard plan/PDT/eval/collect tasks ---
  const size_t n = selected.size();
  // Shard spans are pre-created here, in shard order, on the
  // coordinator: sibling order under the root is then deterministic no
  // matter how the shard tasks interleave, and a span's start time
  // includes its task's queue wait (fan-out skew is visible in the
  // flame view). Child spans are created inside the owning task —
  // StartSpan is the one thread-safe trace operation, by design.
  obs::Trace* const trace = request.trace.get();
  std::vector<obs::TraceSpan*> shard_spans(n, nullptr);
  if (trace != nullptr) {
    for (size_t slot = 0; slot < n; ++slot) {
      shard_spans[slot] = trace->StartSpan(
          "shard", nullptr, static_cast<int>(selected[slot]));
    }
  }
  Gather<Result<ShardEval>> gather(n);
  auto run_shard = [&](size_t slot) -> Result<ShardEval> {
    const size_t shard = selected[slot];
    obs::TraceSpan* const shard_span = shard_spans[slot];
    if (token->Fired()) return token->ToStatus();
    std::shared_ptr<const PreparedQuery> pq =
        slot < prepared.size() ? prepared[slot] : nullptr;
    if (pq == nullptr) {
      // Parsing is query-proportional and deterministic, so each shard
      // re-plans from the same text instead of sharing one move-only
      // plan: every PreparedQuery stays self-contained for the caches.
      QueryPlan plan;
      {
        obs::SpanScope plan_span(trace, "plan", shard_span,
                                 static_cast<int>(shard));
        QUICKVIEW_ASSIGN_OR_RETURN(plan, PlanQuery(query_text));
        plan_span.AddCounter("keywords", plan.kq.keywords.size());
        plan_span.AddCounter("qpts", plan.qpts.size());
      }
      obs::SpanScope build_span(trace, "build_pdts", shard_span,
                                static_cast<int>(shard));
      QUICKVIEW_ASSIGN_OR_RETURN(
          pq, BuildPdtsImpl(std::move(plan), static_cast<int>(shard),
                            token.get()));
      build_span.AddCounter("ids_processed", pq->pdt_stats.ids_processed);
      build_span.AddCounter("nodes_emitted", pq->pdt_stats.nodes_emitted);
      build_span.AddCounter("index_probes", pq->pdt_stats.index_probes);
      build_span.AddCounter("pdt_bytes", pq->pdt_stats.pdt_bytes);
    }
    obs::SpanScope eval_span(trace, "evaluate", shard_span,
                             static_cast<int>(shard));
    Result<ShardEval> eval = EvaluateShard(shard, std::move(pq), token.get());
    if (eval.ok()) {
      eval_span.AddCounter("view_results", eval.value().set.sequence_size);
      eval_span.AddCounter("candidates", eval.value().set.candidates.size());
    }
    return eval;
  };
  auto run_into_slot = [&](size_t slot) {
    Result<ShardEval> result = run_shard(slot);
    if (shard_spans[slot] != nullptr) shard_spans[slot]->Close();
    if (!result.ok() && result.status().code() != StatusCode::kCancelled &&
        result.status().code() != StatusCode::kDeadlineExceeded) {
      token->Cancel();  // fail fast: stop the sibling shards
    }
    gather.Set(slot, std::move(result));
  };
  const bool parallel = pool_ != nullptr && n > 1;
  for (size_t slot = 0; slot < n; ++slot) {
    if (parallel) {
      pool_->Submit([&run_into_slot, slot] { run_into_slot(slot); });
    } else {
      run_into_slot(slot);
    }
  }
  // The barrier. After this no shard task is queued or running.
  gather.Wait(parallel ? pool_ : nullptr);

  // --- Fold per-shard outcomes into one typed status: the first REAL
  // shard error wins (annotated with its shard); Cancelled /
  // DeadlineExceeded only surface when nothing harder caused them ---
  std::vector<Result<ShardEval>> results;
  results.reserve(n);
  for (size_t slot = 0; slot < n; ++slot) {
    results.push_back(gather.Take(slot));
  }
  for (size_t slot = 0; slot < n; ++slot) {
    const Status& status = results[slot].status();
    if (status.ok() || status.code() == StatusCode::kCancelled ||
        status.code() == StatusCode::kDeadlineExceeded) {
      continue;
    }
    if (shards_.size() > 1) {
      return Status(status.code(),
                    "shard " + std::to_string(selected[slot]) + ": " +
                        status.message());
    }
    return status;
  }
  for (size_t slot = 0; slot < n; ++slot) {
    if (!results[slot].ok()) return results[slot].status();
  }

  std::vector<ShardEval> evals;
  evals.reserve(n);
  for (size_t slot = 0; slot < n; ++slot) {
    evals.push_back(std::move(results[slot]).value());
  }
  return FinalizeCursor(std::move(evals), selected, request.options.top_k,
                        std::move(token), request.trace,
                        std::move(shard_spans));
}

Result<std::unique_ptr<ResultCursor>> ViewSearchEngine::Open(
    std::shared_ptr<const PreparedQuery> prepared,
    const SearchOptions& options) const {
  if (prepared == nullptr) {
    return Status::InvalidArgument("Open requires a prepared query");
  }
  QV_RETURN_IF_ERROR(ValidateSearchOptions(options));
  if (shards_.size() > 1) {
    return Status::InvalidArgument(
        "single-PreparedQuery Open is only valid on an unsharded engine; "
        "use Open(SearchRequest, per-shard prepared queries)");
  }
  QUICKVIEW_ASSIGN_OR_RETURN(
      ShardEval eval, EvaluateShard(0, std::move(prepared), nullptr));
  std::vector<ShardEval> evals;
  evals.push_back(std::move(eval));
  return FinalizeCursor(std::move(evals), {0}, options.top_k, nullptr, nullptr,
                        {});
}

Result<SearchResponse> ViewSearchEngine::Execute(
    const SearchRequest& request) const {
  return ExecuteImpl(request);
}

Result<SearchResponse> ViewSearchEngine::ExecuteImpl(
    const SearchRequest& request) const {
  QUICKVIEW_ASSIGN_OR_RETURN(std::unique_ptr<ResultCursor> cursor,
                             OpenImpl(request, {}));
  return DrainToResponse(cursor.get());
}

Result<SearchResponse> ViewSearchEngine::ExecutePreparedImpl(
    std::shared_ptr<const PreparedQuery> prepared,
    const SearchOptions& options) const {
  QUICKVIEW_ASSIGN_OR_RETURN(std::unique_ptr<ResultCursor> cursor,
                             Open(std::move(prepared), options));
  return DrainToResponse(cursor.get());
}

Result<SearchResponse> ViewSearchEngine::ExecutePrepared(
    std::shared_ptr<const PreparedQuery> prepared,
    const SearchOptions& options) const {
  return ExecutePreparedImpl(std::move(prepared), options);
}

Result<SearchResponse> ViewSearchEngine::Search(
    const std::string& query, const SearchOptions& options) const {
  SearchRequest request;
  request.query = query;
  request.options = options;
  return ExecuteImpl(request);
}

Result<SearchResponse> ViewSearchEngine::SearchView(
    const std::string& view_text, const std::vector<std::string>& keywords,
    const SearchOptions& options) const {
  if (keywords.empty()) {
    return Status::InvalidArgument(
        "SearchView requires a non-empty keyword list");
  }
  SearchRequest request;
  request.view = view_text;
  request.keywords = keywords;
  request.options = options;
  return ExecuteImpl(request);
}

}  // namespace quickview::engine
