// RankedStream: the incremental ranked-selection core shared by the
// ResultCursor, RankedSelectionSearch and SearchBaseDocuments. Candidates
// are pushed unsorted as (score, position) pairs and popped in descending
// score order, ties broken by ascending position — exactly the total
// order the batch pipeline's sort produced, so draining a stream is
// byte-identical to sorting. Popping k of n candidates costs
// O(n + k log n) instead of the O(n log n) full sort, and a caller that
// stops early never pays for the tail.
#ifndef QUICKVIEW_ENGINE_RANKED_STREAM_H_
#define QUICKVIEW_ENGINE_RANKED_STREAM_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace quickview::engine {

class RankedStream {
 public:
  /// Highest score first; equal scores yield the lower position first
  /// (the stable tie-break every ranked path in the engine uses).
  struct Entry {
    double score = 0;
    size_t position = 0;
  };

  void Reserve(size_t n) { heap_.reserve(n); }

  /// O(1) amortized: entries accumulate unordered; the heap is built
  /// once, lazily, on the first Pop after a Push.
  void Push(double score, size_t position) {
    heap_.push_back(Entry{score, position});
    heapified_ = false;
  }

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  /// Removes and returns the best remaining entry. Undefined on an empty
  /// stream (check Empty() first).
  Entry Pop() {
    assert(!heap_.empty());
    if (!heapified_) {
      std::make_heap(heap_.begin(), heap_.end(), After);
      heapified_ = true;
    }
    std::pop_heap(heap_.begin(), heap_.end(), After);
    Entry top = heap_.back();
    heap_.pop_back();
    return top;
  }

 private:
  /// Max-heap "less than": a ranks after b.
  static bool After(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.position > b.position;
  }

  std::vector<Entry> heap_;
  bool heapified_ = false;
};

}  // namespace quickview::engine

#endif  // QUICKVIEW_ENGINE_RANKED_STREAM_H_
