// MergedRankedStream: the k-way merge over per-shard RankedStreams that
// makes sharded execution stream like the single-shard engine. Each shard
// scores its own candidates and parks them in its own lazily-heapified
// RankedStream; this class holds a small tournament heap over the shard
// HEADS only, so Pop() is O(log n_shard) shard-head comparisons plus one
// O(log n_candidates) pop inside the winning shard. Nothing beyond the
// current head of each shard is ever ordered — the merge frontier is as
// lazy as the per-shard streams underneath it, which is what preserves
// the "fetch 10, pay for 10" guarantee across shards.
//
// Order contract: highest score first; ties break by (shard asc,
// position asc). With the ordered contiguous corpus partition the engine
// uses, shard-then-position order IS global view order, so draining a
// merged stream reproduces the unsharded engine's total order exactly.
#ifndef QUICKVIEW_ENGINE_MERGED_RANKED_STREAM_H_
#define QUICKVIEW_ENGINE_MERGED_RANKED_STREAM_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "engine/ranked_stream.h"

namespace quickview::engine {

class MergedRankedStream {
 public:
  struct Entry {
    double score = 0;
    size_t shard = 0;
    size_t position = 0;  // within that shard's candidate vector
  };

  /// Adds the next shard's stream; shards are numbered in call order and
  /// the numbering is the tie-break, so add them in corpus order. All
  /// shards must be added before the first Pop.
  void AddShard(RankedStream stream) {
    size_t shard = shards_.size();
    shards_.push_back(std::move(stream));
    if (!shards_.back().Empty()) {
      RankedStream::Entry head = shards_.back().Pop();
      heads_.push_back(Entry{head.score, shard, head.position});
      std::push_heap(heads_.begin(), heads_.end(), After);
    }
  }

  bool Empty() const { return heads_.empty(); }

  /// Entries not yet popped, across all shards.
  size_t Size() const {
    size_t total = heads_.size();
    for (const RankedStream& s : shards_) total += s.Size();
    return total;
  }

  /// Removes and returns the globally best remaining entry, then refills
  /// the winner shard's seat in the tournament. Undefined when Empty().
  Entry Pop() {
    assert(!heads_.empty());
    std::pop_heap(heads_.begin(), heads_.end(), After);
    Entry best = heads_.back();
    heads_.pop_back();
    RankedStream& source = shards_[best.shard];
    if (!source.Empty()) {
      RankedStream::Entry head = source.Pop();
      heads_.push_back(Entry{head.score, best.shard, head.position});
      std::push_heap(heads_.begin(), heads_.end(), After);
    }
    return best;
  }

 private:
  /// Max-heap "less than": a ranks after b.
  static bool After(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score < b.score;
    if (a.shard != b.shard) return a.shard > b.shard;
    return a.position > b.position;
  }

  std::vector<RankedStream> shards_;  // per-shard tails (heads removed)
  std::vector<Entry> heads_;          // tournament heap, one seat per shard
};

}  // namespace quickview::engine

#endif  // QUICKVIEW_ENGINE_MERGED_RANKED_STREAM_H_
