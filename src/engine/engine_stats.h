// The unified stats surface of the engine. Earlier revisions grew three
// parallel vocabularies — ModuleTimings (Fig 14 wall-clock), SearchStats
// (pipeline counters), and buffer-pool counters surfaced ad hoc by the
// service layer. EngineStats nests all of them plus the per-shard
// breakdown sharded execution adds, and is what ResultCursor::stats()
// and QueryService::stats() return. The legacy structs survive as the
// nested members (and inside SearchResponse), so batch-response shapes
// are unchanged.
#ifndef QUICKVIEW_ENGINE_ENGINE_STATS_H_
#define QUICKVIEW_ENGINE_ENGINE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pdt/generate_pdt.h"

namespace quickview::engine {

/// Wall-clock per module, for the Fig 14 breakdown. In a sharded run the
/// per-module numbers are the MAX over shards (the wall-clock view of
/// parallel stages); per-shard wall time is in ShardStats.
struct ModuleTimings {
  double qpt_ms = 0;   // parse + QPT generation
  double pdt_ms = 0;   // PrepareLists + GeneratePdt (or baseline analogue)
  double eval_ms = 0;  // query evaluation (incl. any view materialization)
  double post_ms = 0;  // scoring + top-k materialization

  double total_ms() const { return qpt_ms + pdt_ms + eval_ms + post_ms; }
};

/// Pipeline counters, summed over shards in a sharded run.
struct SearchStats {  // lint:allow(adhoc-stats) per-request value type returned with results
  size_t view_results = 0;      // |V(D)|
  size_t matching_results = 0;  // after keyword semantics
  pdt::PdtBuildStats pdt;       // aggregated over all QPTs (and shards)
  uint64_t store_fetches = 0;   // base-data accesses
  uint64_t store_bytes = 0;
  /// Disk-backed execution only (zero over in-memory stores): node-record
  /// pages pulled from the packed file for this query's materialized hits,
  /// and buffer-pool hits those fetches scored. Grows lazily with the
  /// cursor, like store_fetches.
  uint64_t pages_read = 0;
  uint64_t buffer_hits = 0;
  /// Total bytes of the fully materialized view V(D) — what a
  /// materialize-first engine must produce; the Efficient engine's
  /// actual footprint is pdt.pdt_bytes + store_bytes instead.
  uint64_t view_bytes = 0;
};

/// One shard's slice of the query: final pipeline counters at Open,
/// store/page counters growing with the cursor as hits from this shard
/// are materialized. The lazy-materialization guarantee is therefore
/// observable PER SHARD: fetching the global top 10 touches only the
/// pages of the shards those 10 hits live on.
struct ShardStats {  // lint:allow(adhoc-stats) per-request value type returned with results
  int shard = 0;
  size_t view_results = 0;
  size_t matching_results = 0;
  uint64_t store_fetches = 0;
  uint64_t store_bytes = 0;
  uint64_t pages_read = 0;
  uint64_t buffer_hits = 0;
  double pdt_ms = 0;
  double eval_ms = 0;
  /// True when this shard's work was stopped by the cancellation token
  /// rather than completed (the query as a whole then failed Cancelled /
  /// DeadlineExceeded, or another shard failed first).
  bool cancelled = false;
};

/// Buffer-pool counters in a dependency-neutral shape (the engine layer
/// does not link pagestore); the service layer maps its pools' stats in.
struct BufferCounters {  // lint:allow(adhoc-stats) per-request I/O attribution, feeds trace spans
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t frames_in_use = 0;
  uint64_t frame_capacity = 0;
};

/// The one nested stats answer. `shards` has one entry per executed
/// shard (a single entry on an unsharded engine); `buffer` is zero
/// unless a service/CLI layer with buffer pools filled it.
struct EngineStats {  // lint:allow(adhoc-stats) per-request value type returned with results
  SearchStats search;
  ModuleTimings timings;
  std::vector<ShardStats> shards;
  BufferCounters buffer;
};

}  // namespace quickview::engine

#endif  // QUICKVIEW_ENGINE_ENGINE_STATS_H_
