#include "engine/result_cursor.h"

#include <chrono>
#include <utility>

#include "scoring/materializer.h"

namespace quickview::engine {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

Result<std::vector<SearchHit>> ResultCursor::FetchNext(size_t n) {
  Clock::time_point start = Clock::now();
  std::vector<SearchHit> page;
  size_t want = std::min(n, pending());
  page.reserve(want);
  while (page.size() < want) {
    RankedStream::Entry best = stream_.Pop();
    const scoring::ScoredResult& candidate = candidates_[best.position];
    SearchHit hit;
    hit.score = candidate.score;
    hit.tf = candidate.tf;
    hit.byte_length = candidate.byte_length;
    // The fetch: the pipeline's only base-data access, accounted per hit.
    storage::DocumentStore::Stats fetches;
    QUICKVIEW_ASSIGN_OR_RETURN(
        hit.xml, scoring::MaterializeToXml(candidate.result, store_,
                                           &fetches));
    stats_.store_fetches += fetches.fetch_calls;
    stats_.store_bytes += fetches.bytes_fetched;
    stats_.pages_read += fetches.pages_read;
    stats_.buffer_hits += fetches.buffer_hits;
    page.push_back(std::move(hit));
    ++fetched_;
  }
  timings_.post_ms += MsSince(start);
  return page;
}

Result<SearchResponse> DrainToResponse(ResultCursor* cursor) {
  SearchResponse response;
  QUICKVIEW_ASSIGN_OR_RETURN(response.hits,
                             cursor->FetchNext(cursor->pending()));
  response.timings = cursor->timings();
  response.stats = cursor->stats();
  return response;
}

}  // namespace quickview::engine
