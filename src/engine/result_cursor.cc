#include "engine/result_cursor.h"

#include <chrono>
#include <utility>

#include "scoring/materializer.h"

namespace quickview::engine {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

ResultCursor::~ResultCursor() {
  // Release the token for any caller-side work still watching it. Shard
  // tasks completed inside Open (the barrier), so this never races
  // engine work.
  if (cancel_ != nullptr) cancel_->Cancel();
}

Result<std::vector<SearchHit>> ResultCursor::FetchNext(size_t n) {
  Clock::time_point start = Clock::now();
  if (trace_ != nullptr && materialize_span_ == nullptr) {
    materialize_span_ = trace_->StartSpan("materialize");
  }
  std::vector<SearchHit> page;
  size_t want = std::min(n, pending());
  page.reserve(want);
  while (page.size() < want) {
    MergedRankedStream::Entry best = stream_.Pop();
    Slice& slice = slices_[best.shard];
    const scoring::ScoredResult& candidate = slice.candidates[best.position];
    SearchHit hit;
    hit.score = candidate.score;
    hit.tf = candidate.tf;
    hit.byte_length = candidate.byte_length;
    // The fetch: the pipeline's only base-data access, accounted per hit
    // against BOTH the global counters and the owning shard's.
    storage::DocumentStore::Stats fetches;
    QUICKVIEW_ASSIGN_OR_RETURN(
        hit.xml,
        scoring::MaterializeToXml(candidate.result, slice.store, &fetches));
    stats_.search.store_fetches += fetches.fetch_calls;
    stats_.search.store_bytes += fetches.bytes_fetched;
    stats_.search.pages_read += fetches.pages_read;
    stats_.search.buffer_hits += fetches.buffer_hits;
    if (best.shard < stats_.shards.size()) {
      ShardStats& shard = stats_.shards[best.shard];
      shard.store_fetches += fetches.fetch_calls;
      shard.store_bytes += fetches.bytes_fetched;
      shard.pages_read += fetches.pages_read;
      shard.buffer_hits += fetches.buffer_hits;
    }
    // Attribute the fetch I/O back to the owning shard's span so the
    // span counters stay equal to the per-shard EngineStats.
    if (slice.span != nullptr) {
      slice.span->AddCounter("store_fetches", fetches.fetch_calls);
      slice.span->AddCounter("store_bytes", fetches.bytes_fetched);
      slice.span->AddCounter("pages_read", fetches.pages_read);
      slice.span->AddCounter("buffer_hits", fetches.buffer_hits);
    }
    if (materialize_span_ != nullptr) {
      materialize_span_->AddCounter("hits", 1);
      materialize_span_->AddCounter("store_fetches", fetches.fetch_calls);
      materialize_span_->AddCounter("store_bytes", fetches.bytes_fetched);
      materialize_span_->AddCounter("pages_read", fetches.pages_read);
      materialize_span_->AddCounter("buffer_hits", fetches.buffer_hits);
    }
    page.push_back(std::move(hit));
    ++fetched_;
  }
  stats_.timings.post_ms += MsSince(start);
  // Re-close after every fetch (last close wins): the span's duration
  // spans first-fetch start to last-fetch end once fetching stops.
  if (materialize_span_ != nullptr) materialize_span_->Close();
  // Budget satisfied: release the token so cooperating work (and any
  // caller watching it) stops — the cursor will never ask for more.
  if (fetched_ >= limit_ && cancel_ != nullptr) cancel_->Cancel();
  return page;
}

Result<SearchResponse> DrainToResponse(ResultCursor* cursor) {
  SearchResponse response;
  QUICKVIEW_ASSIGN_OR_RETURN(response.hits,
                             cursor->FetchNext(cursor->pending()));
  response.timings = cursor->stats().timings;
  response.stats = cursor->stats().search;
  return response;
}

}  // namespace quickview::engine
