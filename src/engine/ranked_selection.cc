#include "engine/ranked_selection.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/strings.h"
#include "engine/ranked_stream.h"
#include "pdt/generate_pdt.h"
#include "qpt/generate_qpt.h"
#include "scoring/materializer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace quickview::engine {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// The monotone shape: one FLWOR, one `for` clause over a doc-rooted
/// path, `return $var`. Predicates/where become QPT leaf predicates; any
/// value join (a 'v' node without predicates) breaks monotonicity.
Status CheckMonotoneShape(const xquery::Query& query,
                          const std::vector<qpt::Qpt>& qpts) {
  if (query.body->kind != xquery::ExprKind::kFlwor) {
    return Status::Unsupported("not a FLWOR selection view");
  }
  const auto& flwor = static_cast<const xquery::FlworExpr&>(*query.body);
  if (flwor.clauses.size() != 1 || flwor.clauses[0].is_let) {
    return Status::Unsupported("selection views have exactly one for");
  }
  if (flwor.ret->kind != xquery::ExprKind::kVar) {
    return Status::Unsupported(
        "selection views return the bound element itself");
  }
  if (qpts.size() != 1) {
    return Status::Unsupported("selection views touch one document");
  }
  int content_nodes = 0;
  for (const qpt::QptNode& node : qpts[0].nodes) {
    if (node.c_ann) ++content_nodes;
    if (node.v_ann && node.preds.empty()) {
      return Status::Unsupported("value joins are non-monotonic");
    }
  }
  if (content_nodes != 1) {
    return Status::Unsupported("selection views output one element kind");
  }
  return Status::OK();
}

}  // namespace

Result<SearchResponse> RankedSelectionSearch(
    const xml::Database& /*database*/, const index::DatabaseIndexes& indexes,
    const storage::DocumentStore* store, const std::string& view_text,
    const std::vector<std::string>& keywords,
    const SearchOptions& options) {
  QUICKVIEW_RETURN_IF_ERROR(ValidateSearchOptions(options));
  if (keywords.empty()) {
    return Status::InvalidArgument(
        "ranked selection requires a non-empty keyword list");
  }
  SearchResponse response;
  Clock::time_point start = Clock::now();
  QUICKVIEW_ASSIGN_OR_RETURN(xquery::Query query,
                             xquery::ParseQuery(view_text));
  QUICKVIEW_ASSIGN_OR_RETURN(std::vector<qpt::Qpt> qpts,
                             qpt::GenerateQpts(&query));
  QUICKVIEW_RETURN_IF_ERROR(CheckMonotoneShape(query, qpts));
  std::vector<std::string> lower;
  for (const std::string& keyword : keywords) {
    lower.push_back(AsciiToLower(keyword));
  }
  response.timings.qpt_ms = MsSince(start);

  start = Clock::now();
  const index::DocumentIndexes* doc_indexes =
      indexes.Get(qpts[0].source_doc);
  if (doc_indexes == nullptr) {
    return Status::NotFound("no indexes for document '" +
                            qpts[0].source_doc + "'");
  }
  pdt::PdtBuildStats build_stats;
  QUICKVIEW_ASSIGN_OR_RETURN(
      std::shared_ptr<xml::Document> pdt,
      pdt::GeneratePdt(qpts[0], *doc_indexes, lower, &build_stats));
  response.stats.pdt = build_stats;
  response.timings.pdt_ms = MsSince(start);

  // No evaluation phase at all: results are the 'c' nodes of the PDT, in
  // document order, with their summarized statistics.
  start = Clock::now();
  struct Candidate {
    xml::NodeIndex node;
    std::vector<uint64_t> tf;
    uint64_t byte_length;
  };
  std::vector<Candidate> matching;
  std::vector<uint64_t> df(lower.size(), 0);
  size_t view_results = 0;
  for (xml::NodeIndex i = 0; i < pdt->size(); ++i) {
    const xml::Node& node = pdt->node(i);
    if (!node.stats.has_value() || !node.stats->content_pruned) continue;
    ++view_results;
    Candidate candidate;
    candidate.node = i;
    candidate.byte_length = node.stats->byte_length;
    bool matches = options.conjunctive;
    for (size_t k = 0; k < lower.size(); ++k) {
      uint64_t tf = node.stats->term_tf[k];
      candidate.tf.push_back(tf);
      if (tf > 0) ++df[k];
      if (options.conjunctive) {
        if (tf == 0) matches = false;
      } else if (tf > 0) {
        matches = true;
      }
    }
    response.stats.view_bytes += candidate.byte_length;
    if (matches) matching.push_back(std::move(candidate));
  }
  response.stats.view_results = view_results;
  response.stats.matching_results = matching.size();

  std::vector<double> idf(lower.size(), 0);
  for (size_t k = 0; k < lower.size(); ++k) {
    idf[k] = df[k] == 0
                 ? 0.0
                 : static_cast<double>(view_results) /
                       static_cast<double>(df[k]);
  }
  // Incremental ranked selection over the shared top-k core: only the
  // popped (returned) candidates are ever materialized.
  RankedStream stream;
  stream.Reserve(matching.size());
  for (size_t i = 0; i < matching.size(); ++i) {
    double raw = 0;
    for (size_t k = 0; k < lower.size(); ++k) {
      raw += static_cast<double>(matching[i].tf[k]) * idf[k];
    }
    stream.Push(
        raw / std::sqrt(static_cast<double>(matching[i].byte_length) + 1.0),
        i);
  }

  storage::DocumentStore::Stats fetches;
  size_t take = std::min(options.top_k, stream.Size());
  for (size_t n = 0; n < take; ++n) {
    RankedStream::Entry best = stream.Pop();
    const Candidate& candidate = matching[best.position];
    SearchHit hit;
    hit.score = best.score;
    hit.tf = candidate.tf;
    hit.byte_length = candidate.byte_length;
    QUICKVIEW_ASSIGN_OR_RETURN(
        hit.xml,
        scoring::MaterializeToXml(
            xquery::NodeHandle{pdt.get(), candidate.node}, store,
            &fetches));
    response.hits.push_back(std::move(hit));
  }
  response.stats.store_fetches = fetches.fetch_calls;
  response.stats.store_bytes = fetches.bytes_fetched;
  response.timings.post_ms = MsSince(start);
  return response;
}

}  // namespace quickview::engine
