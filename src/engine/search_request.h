// SearchRequest: the one request object behind the unified search entry
// point ViewSearchEngine::Open(request) (and QueryService::OpenSearch).
// It subsumes the old Search / SearchView / ExecutePrepared trio: a
// request carries either a full Fig-2 keyword query or a view plus
// keyword list, the ranking options, an optional shard routing hint, an
// optional deadline, and an optional caller-owned cancellation token.
// Validation lives in ONE place — Validate(), called once at Open — so
// the per-entry-point drift the old trio accumulated (top_k checked in
// one place, empty keywords in another) cannot recur.
#ifndef QUICKVIEW_ENGINE_SEARCH_REQUEST_H_
#define QUICKVIEW_ENGINE_SEARCH_REQUEST_H_

#include <chrono>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "obs/trace.h"

namespace quickview::engine {

struct SearchOptions {
  size_t top_k = 10;        // must be >= 1 (see SearchRequest::Validate)
  bool conjunctive = true;  // all keywords vs any keyword
};

/// API-boundary validation shared by every search entry point (engine and
/// service): InvalidArgument for top_k == 0 — a request for zero results
/// is a caller bug, not a query to run.
Status ValidateSearchOptions(const SearchOptions& options);

struct SearchRequest {
  /// Exactly one of `query` / `view` must be set. `query` is a full
  /// Fig-2 keyword query ("let $view := ... ftcontains(...)"); `view` is
  /// the view half alone — the view TEXT at the engine boundary, a
  /// registered view NAME at the service boundary — combined with
  /// `keywords` (lowercased internally; must be non-empty in this form;
  /// the connective comes from options.conjunctive).
  std::string query;
  std::string view;
  std::vector<std::string> keywords;

  SearchOptions options;

  /// Shard routing hint: -1 (default) searches every shard; i >= 0
  /// restricts execution to shard i — for callers that co-located a
  /// tenant onto one shard and want to skip the others. A restricted
  /// search ranks against that shard's view alone (idf over the shard,
  /// not the corpus), so it is a different query, not a cheaper spelling
  /// of the global one.
  int shard = -1;

  /// Wall-clock budget measured from Open. When it expires, in-flight
  /// shard work unwinds and the query fails DeadlineExceeded.
  std::optional<std::chrono::milliseconds> deadline;

  /// Caller-owned cancellation token, shared with every shard task this
  /// request spawns. Cancel() from any thread stops the query (Open
  /// returns Cancelled); the cursor also fires it once the top_k budget
  /// is satisfied and on destruction, so cooperating caller-side work
  /// can stop too. Left null, the engine makes a private token (needed
  /// for deadline / fail-fast propagation).
  std::shared_ptr<CancellationToken> cancel;

  /// Optional per-request trace (null = tracing off, the default, with
  /// near-zero cost on the search path). When set, Open records one
  /// span per shard task (plan/build_pdts/evaluate children), a merge
  /// span, and the cursor adds a materialize span whose per-shard I/O
  /// counters are attributed back to the shard spans — so summing a
  /// counter over the shard spans always matches the cursor's
  /// EngineStats. The cursor co-owns the trace; serialize it only after
  /// the request (and any fetching) is quiescent.
  std::shared_ptr<obs::Trace> trace;

  /// The single validation boundary: exactly-one-of query/view, top_k
  /// >= 1, non-empty keywords in view form. Typed InvalidArgument on
  /// each violation. Shard-hint range is checked at Open, where the
  /// shard count is known.
  Status Validate() const;
};

}  // namespace quickview::engine

#endif  // QUICKVIEW_ENGINE_SEARCH_REQUEST_H_
