#include "engine/search_request.h"

namespace quickview::engine {

Status ValidateSearchOptions(const SearchOptions& options) {
  if (options.top_k == 0) {
    return Status::InvalidArgument(
        "top_k must be at least 1 (a zero-result search is a caller bug)");
  }
  return Status::OK();
}

Status SearchRequest::Validate() const {
  if (query.empty() && view.empty()) {
    return Status::InvalidArgument(
        "SearchRequest needs a query or a view: set exactly one");
  }
  if (!query.empty() && !view.empty()) {
    return Status::InvalidArgument(
        "SearchRequest has both a query and a view: set exactly one");
  }
  if (!query.empty() && !keywords.empty()) {
    return Status::InvalidArgument(
        "keywords accompany the view form; a full query embeds its own "
        "ftcontains list");
  }
  if (!view.empty() && keywords.empty()) {
    return Status::InvalidArgument(
        "view-form SearchRequest requires a non-empty keyword list");
  }
  QV_RETURN_IF_ERROR(ValidateSearchOptions(options));
  if (shard < -1) {
    return Status::InvalidArgument(
        "shard hint must be -1 (all shards) or a shard number");
  }
  return Status::OK();
}

}  // namespace quickview::engine
