#include "engine/base_search.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "engine/ranked_stream.h"
#include "pdt/prepare_lists.h"
#include "xml/serializer.h"

namespace quickview::engine {

namespace {

/// Candidate answer elements for one document: every ancestor-or-self of
/// a posting of any query keyword.
std::set<xml::DeweyId> CollectCandidates(
    const std::vector<pdt::InvList>& lists) {
  std::set<xml::DeweyId> out;
  for (const pdt::InvList& list : lists) {
    for (const index::Posting& posting : list.postings) {
      for (size_t depth = 1; depth <= posting.id.depth(); ++depth) {
        out.insert(posting.id.Prefix(depth));
      }
    }
  }
  return out;
}

}  // namespace

Result<std::vector<BaseSearchHit>> SearchBaseDocuments(
    const xml::Database& database, const index::DatabaseIndexes& indexes,
    const std::vector<std::string>& keywords,
    const BaseSearchOptions& options) {
  if (keywords.empty()) {
    return Status::InvalidArgument("base search requires keywords");
  }
  if (options.top_k == 0) {
    return Status::InvalidArgument(
        "top_k must be at least 1 (a zero-result search is a caller bug)");
  }
  std::vector<BaseSearchHit> qualifying;
  for (const auto& [name, doc] : database.documents()) {
    const index::DocumentIndexes* doc_indexes = indexes.Get(name);
    if (doc_indexes == nullptr) {
      return Status::NotFound("no indexes for document '" + name + "'");
    }
    std::vector<pdt::InvList> lists;
    for (const std::string& keyword : keywords) {
      pdt::InvList list;
      list.term = keyword;
      list.postings = doc_indexes->inverted_index.Lookup(keyword);
      list.BuildPrefix();
      lists.push_back(std::move(list));
    }
    // Elements whose subtree satisfies the keyword semantics.
    std::vector<BaseSearchHit> matching;
    for (const xml::DeweyId& id : CollectCandidates(lists)) {
      BaseSearchHit hit;
      hit.document = name;
      hit.id = id;
      bool matches = options.conjunctive;
      for (const pdt::InvList& list : lists) {
        uint64_t tf = list.SubtreeTf(id);
        hit.tf.push_back(tf);
        if (options.conjunctive) {
          if (tf == 0) matches = false;
        } else if (tf > 0) {
          matches = true;
        }
      }
      if (matches) matching.push_back(std::move(hit));
    }
    // Keep the deepest matches: drop any element with a matching proper
    // descendant (XRank answer granularity). Matching ids are sorted; a
    // descendant follows its ancestor, so one backward scan suffices.
    for (size_t i = 0; i < matching.size(); ++i) {
      bool has_deeper = i + 1 < matching.size() &&
                        matching[i].id.IsAncestorOf(matching[i + 1].id);
      if (!has_deeper) qualifying.push_back(std::move(matching[i]));
    }
  }

  // Score with the shared TF-IDF shape: idf over qualifying elements.
  const double total = static_cast<double>(qualifying.size());
  std::vector<double> idf(keywords.size(), 0);
  for (size_t k = 0; k < keywords.size(); ++k) {
    uint64_t df = 0;
    for (const BaseSearchHit& hit : qualifying) {
      if (hit.tf[k] > 0) ++df;
    }
    idf[k] = df == 0 ? 0.0 : total / static_cast<double>(df);
  }
  // Incremental ranked selection over the shared top-k core; only the
  // popped hits are serialized.
  RankedStream stream;
  stream.Reserve(qualifying.size());
  for (size_t i = 0; i < qualifying.size(); ++i) {
    BaseSearchHit& hit = qualifying[i];
    const xml::Document* doc = database.GetDocument(hit.document);
    xml::NodeIndex node = doc->FindByDewey(hit.id);
    hit.byte_length = xml::SubtreeByteLength(*doc, node);
    double raw = 0;
    for (size_t k = 0; k < keywords.size(); ++k) {
      raw += static_cast<double>(hit.tf[k]) * idf[k];
    }
    hit.score = raw / std::sqrt(static_cast<double>(hit.byte_length) + 1.0);
    stream.Push(hit.score, i);
  }
  std::vector<BaseSearchHit> top;
  size_t take = std::min(options.top_k, stream.Size());
  top.reserve(take);
  for (size_t n = 0; n < take; ++n) {
    BaseSearchHit hit = std::move(qualifying[stream.Pop().position]);
    // Materialize only the returned hits.
    const xml::Document* doc = database.GetDocument(hit.document);
    hit.xml = xml::Serialize(*doc, doc->FindByDewey(hit.id));
    top.push_back(std::move(hit));
  }
  return top;
}

}  // namespace quickview::engine
