#include "qpt/generate_qpt.h"

#include <map>
#include <string>

namespace quickview::qpt {

using xquery::ComparisonExpr;
using xquery::DocExpr;
using xquery::ElementCtorExpr;
using xquery::Expr;
using xquery::ExprKind;
using xquery::FlworClause;
using xquery::FlworExpr;
using xquery::FunctionCallExpr;
using xquery::FunctionDecl;
using xquery::IfExpr;
using xquery::LiteralExpr;
using xquery::PathExpr;
using xquery::SequenceExpr;
using xquery::VarExpr;

namespace {

/// Where an expression's value "lives" in the QPT forest: a node of some
/// QPT, or opaque (constructed content / atomic values), which cannot be
/// navigated into.
struct Binding {
  int qpt = -1;   // index into qpts_, -1 = opaque
  int node = -1;  // index into Qpt::nodes
  /// Constructor-nesting depth at which the binding was introduced. A
  /// path's first step out of a binding that crosses a constructor
  /// boundary creates an *optional* edge (Appendix B, Fig 24 lines 46-48:
  /// var-rooted twigs inside RetExpr constructors/sequences get optional
  /// root edges) — the parent may appear in the view without the child.
  int ctor_depth = 0;

  bool opaque() const { return qpt < 0; }
};

class QptBuilder {
 public:
  Result<std::vector<Qpt>> Build(xquery::Query* query) {
    query_ = query;
    std::map<std::string, Binding> env;
    QV_RETURN_IF_ERROR(ProcessOutput(query->body.get(), env, 0));
    return std::move(qpts_);
  }

 private:
  using Env = std::map<std::string, Binding>;

  /// Processes an expression whose result contributes to the view output.
  Status ProcessOutput(Expr* e, Env& env, int depth) {
    switch (e->kind) {
      case ExprKind::kLiteral:
        return Status::OK();
      case ExprKind::kDoc:
      case ExprKind::kVar:
      case ExprKind::kContext:
      case ExprKind::kPath: {
        QV_ASSIGN_OR_RETURN(Binding leaf, ResolvePath(e, env, depth));
        if (!leaf.opaque()) qpts_[leaf.qpt].nodes[leaf.node].c_ann = true;
        return Status::OK();
      }
      case ExprKind::kComparison:
        return ProcessCondition(e, env, depth);
      case ExprKind::kFlwor:
        return ProcessFlwor(static_cast<FlworExpr*>(e), env, depth);
      case ExprKind::kElementCtor: {
        auto* ctor = static_cast<ElementCtorExpr*>(e);
        for (xquery::ExprPtr& child : ctor->children) {
          Env child_env = env;
          QV_RETURN_IF_ERROR(ProcessOutput(child.get(), child_env, depth + 1));
        }
        return Status::OK();
      }
      case ExprKind::kSequence: {
        auto* seq = static_cast<SequenceExpr*>(e);
        for (xquery::ExprPtr& item : seq->items) {
          Env item_env = env;
          QV_RETURN_IF_ERROR(ProcessOutput(item.get(), item_env, depth + 1));
        }
        return Status::OK();
      }
      case ExprKind::kIf: {
        auto* cond = static_cast<IfExpr*>(e);
        QV_RETURN_IF_ERROR(ProcessCondition(cond->cond.get(), env, depth));
        Env then_env = env;
        QV_RETURN_IF_ERROR(
            ProcessOutput(cond->then_branch.get(), then_env, depth));
        Env else_env = env;
        return ProcessOutput(cond->else_branch.get(), else_env, depth);
      }
      case ExprKind::kFunctionCall:
        return ProcessFunctionCall(static_cast<FunctionCallExpr*>(e), env,
                                   depth, /*condition=*/false);
    }
    return Status::Internal("unhandled expression in QPT generation");
  }

  /// Processes an expression used only as a truth test (where clauses,
  /// path predicates, if conditions). Content annotations are never set
  /// here (Appendix B: where-clause QPT nodes get C-AnnMap = false).
  Status ProcessCondition(Expr* e, Env& env, int depth) {
    switch (e->kind) {
      case ExprKind::kLiteral:
        return Status::OK();
      case ExprKind::kDoc:
      case ExprKind::kVar:
      case ExprKind::kContext:
      case ExprKind::kPath: {
        // Existence test: structural requirement only.
        return ResolvePath(e, env, depth).status();
      }
      case ExprKind::kComparison: {
        auto* cmp = static_cast<ComparisonExpr*>(e);
        bool left_path = IsPathLike(*cmp->left);
        bool right_path = IsPathLike(*cmp->right);
        if (left_path && right_path) {
          // Value join: both leaves' values are needed at evaluation time.
          QV_ASSIGN_OR_RETURN(Binding l, ResolvePath(cmp->left.get(), env,
                                                     depth));
          QV_ASSIGN_OR_RETURN(Binding r, ResolvePath(cmp->right.get(), env,
                                                     depth));
          if (!l.opaque()) qpts_[l.qpt].nodes[l.node].v_ann = true;
          if (!r.opaque()) qpts_[r.qpt].nodes[r.node].v_ann = true;
          return Status::OK();
        }
        if (left_path || right_path) {
          // Leaf-value predicate: attach to the path's leaf, in its own
          // QPT node (never merged with other same-tag uses, so a
          // predicate twig and an output twig stay distinct).
          Expr* path_side = left_path ? cmp->left.get() : cmp->right.get();
          Expr* lit_side = left_path ? cmp->right.get() : cmp->left.get();
          if (lit_side->kind != ExprKind::kLiteral) {
            return Status::Unsupported(
                "predicates must compare a path with a literal or a path");
          }
          QV_ASSIGN_OR_RETURN(
              Binding leaf,
              ResolvePathForPredicate(path_side, env, depth));
          const auto* lit = static_cast<const LiteralExpr*>(lit_side);
          if (!leaf.opaque()) {
            QptPredicate pred;
            // Normalize direction: predicate is (leaf value) OP literal.
            pred.op = left_path ? static_cast<ComparisonExpr*>(e)->op
                                : Flip(static_cast<ComparisonExpr*>(e)->op);
            pred.literal = lit->text;
            pred.is_number = lit->is_number;
            pred.number = lit->number;
            QptNode& node = qpts_[leaf.qpt].nodes[leaf.node];
            node.preds.push_back(std::move(pred));
            // The evaluator re-checks the predicate over the PDT, so the
            // leaf value must be materialized (paper Fig 6(b) carries
            // year values).
            node.v_ann = true;
          }
          return Status::OK();
        }
        return Status::OK();  // literal-vs-literal: no structure
      }
      case ExprKind::kFlwor:
      case ExprKind::kElementCtor:
      case ExprKind::kSequence:
        return Status::Unsupported(
            "FLWOR/constructor expressions are not allowed in conditions");
      case ExprKind::kIf: {
        auto* cond = static_cast<IfExpr*>(e);
        QV_RETURN_IF_ERROR(ProcessCondition(cond->cond.get(), env, depth));
        QV_RETURN_IF_ERROR(
            ProcessCondition(cond->then_branch.get(), env, depth));
        return ProcessCondition(cond->else_branch.get(), env, depth);
      }
      case ExprKind::kFunctionCall:
        return ProcessFunctionCall(static_cast<FunctionCallExpr*>(e), env,
                                   depth, /*condition=*/true);
    }
    return Status::Internal("unhandled condition in QPT generation");
  }

  Status ProcessFlwor(FlworExpr* flwor, Env& env, int depth) {
    Env scope = env;
    for (FlworClause& clause : flwor->clauses) {
      if (IsPathLike(*clause.expr)) {
        // A `for` over an empty path yields no iterations, so its edges
        // gate output (mandatory). A `let` always yields exactly one
        // binding — an empty path must not prune the outer element, so
        // its first step out of an existing binding is optional
        // (resolved at depth+1, the constructor-crossing rule).
        QV_ASSIGN_OR_RETURN(
            Binding leaf,
            ResolvePath(clause.expr.get(), scope,
                        clause.is_let ? depth + 1 : depth));
        leaf.ctor_depth = depth;
        scope[clause.var] = leaf;
      } else {
        // Bound to constructed/derived content: process it as output (it
        // may be returned) and mark the variable opaque.
        QV_RETURN_IF_ERROR(ProcessOutput(clause.expr.get(), scope, depth));
        scope[clause.var] = Binding{};
      }
    }
    if (flwor->where != nullptr) {
      QV_RETURN_IF_ERROR(ProcessCondition(flwor->where.get(), scope, depth));
    }
    // `return $v` outputs the bound element itself: content annotation
    // goes on the binding's node (Appendix B Fig 24 lines 22-23).
    if (flwor->ret->kind == ExprKind::kVar) {
      const auto* var = static_cast<const VarExpr*>(flwor->ret.get());
      auto it = scope.find(var->name);
      if (it == scope.end()) {
        return Status::EvalError("unbound variable $" + var->name);
      }
      if (!it->second.opaque()) {
        qpts_[it->second.qpt].nodes[it->second.node].c_ann = true;
      }
      return Status::OK();
    }
    return ProcessOutput(flwor->ret.get(), scope, depth);
  }

  Status ProcessFunctionCall(FunctionCallExpr* call, Env& env, int depth,
                             bool condition) {
    const FunctionDecl* decl = query_->FindFunction(call->name);
    if (decl == nullptr) {
      return Status::EvalError("unknown function " + call->name);
    }
    if (decl->params.size() != call->args.size()) {
      return Status::EvalError("function " + call->name +
                               ": wrong argument count");
    }
    if (++call_depth_ > 16) {
      --call_depth_;
      return Status::Unsupported("recursive functions are not supported");
    }
    Env body_env;  // functions see only their parameters
    for (size_t i = 0; i < call->args.size(); ++i) {
      QV_ASSIGN_OR_RETURN(Binding arg,
                          ResolvePath(call->args[i].get(), env, depth));
      arg.ctor_depth = depth;
      body_env[decl->params[i]] = arg;
    }
    Status status = condition
                        ? ProcessCondition(decl->body.get(), body_env, depth)
                        : ProcessOutput(decl->body.get(), body_env, depth);
    --call_depth_;
    return status;
  }

  static bool IsPathLike(const Expr& e) {
    return e.kind == ExprKind::kDoc || e.kind == ExprKind::kVar ||
           e.kind == ExprKind::kContext || e.kind == ExprKind::kPath;
  }

  static xquery::CompOp Flip(xquery::CompOp op) {
    switch (op) {
      case xquery::CompOp::kEq:
        return xquery::CompOp::kEq;
      case xquery::CompOp::kLt:
        return xquery::CompOp::kGt;
      case xquery::CompOp::kGt:
        return xquery::CompOp::kLt;
    }
    return op;
  }

  /// Resolves a path-like expression to the QPT node of its final step,
  /// creating QPT structure as needed.
  Result<Binding> ResolvePath(Expr* e, Env& env, int depth) {
    return ResolvePathImpl(e, env, depth, /*fresh_leaf=*/false);
  }

  /// As ResolvePath, but the final step always gets a fresh QPT node so
  /// that a predicate can be attached without affecting other uses of the
  /// same (tag, axis) step.
  Result<Binding> ResolvePathForPredicate(Expr* e, Env& env, int depth) {
    return ResolvePathImpl(e, env, depth, /*fresh_leaf=*/true);
  }

  Result<Binding> ResolvePathImpl(Expr* e, Env& env, int depth,
                                  bool fresh_leaf) {
    switch (e->kind) {
      case ExprKind::kDoc: {
        auto* doc = static_cast<DocExpr*>(e);
        Binding binding;
        binding.qpt = static_cast<int>(qpts_.size());
        binding.node = 0;
        binding.ctor_depth = depth;
        Qpt qpt;
        qpt.source_doc = doc->name;
        qpt.occurrence_name =
            doc->name + "#" + std::to_string(++occurrence_counter_);
        qpt.nodes.push_back(QptNode{});  // virtual document root
        qpts_.push_back(std::move(qpt));
        doc->name = qpts_.back().occurrence_name;  // query rewrite
        return binding;
      }
      case ExprKind::kVar: {
        const auto* var = static_cast<const VarExpr*>(e);
        auto it = env.find(var->name);
        if (it == env.end()) {
          return Status::EvalError("unbound variable $" + var->name);
        }
        return it->second;
      }
      case ExprKind::kContext: {
        auto it = env.find(".");
        if (it == env.end()) {
          return Status::EvalError("no context item in QPT generation");
        }
        return it->second;
      }
      case ExprKind::kPath: {
        auto* path = static_cast<PathExpr*>(e);
        QV_ASSIGN_OR_RETURN(
            Binding current,
            ResolvePathImpl(path->source.get(), env, depth, false));
        if (current.opaque()) {
          if (path->steps.empty() && path->predicates.empty()) return current;
          return Status::Unsupported(
              "cannot navigate into constructed content");
        }
        // Predicates on the source itself: $x[PredExpr].
        for (xquery::ExprPtr& pred : path->predicates) {
          Env pred_env = env;
          pred_env["."] = current;
          QV_RETURN_IF_ERROR(ProcessCondition(pred.get(), pred_env, depth));
        }
        for (size_t i = 0; i < path->steps.size(); ++i) {
          xquery::PathStepAst& step = path->steps[i];
          // A step out of a binding introduced outside the current
          // constructor nesting is optional: the bound element appears in
          // the view regardless of this child's existence.
          bool mandatory = !(i == 0 && depth > current.ctor_depth);
          bool last = i + 1 == path->steps.size();
          // A predicate-bearing step gets its own QPT node so the
          // predicate's mandatory twig never constrains other uses of the
          // same (tag, axis) step.
          bool want_fresh =
              !step.predicates.empty() || (fresh_leaf && last);
          current.node = AddStep(current.qpt, current.node, step.tag,
                                 step.descendant, mandatory, want_fresh);
          for (xquery::ExprPtr& pred : step.predicates) {
            Env pred_env = env;
            // The predicate is evaluated per element of this step: its
            // twig is anchored here, at the current nesting depth.
            Binding context = current;
            context.ctor_depth = depth;
            pred_env["."] = context;
            QV_RETURN_IF_ERROR(
                ProcessCondition(pred.get(), pred_env, depth));
          }
        }
        return current;
      }
      default:
        return Status::Unsupported("expression is not a path");
    }
  }

  /// Adds (or reuses) the child step (tag, axis) under `parent`. Reuse
  /// only merges predicate-free nodes; `fresh` forces a new node.
  int AddStep(int qpt_index, int parent, const std::string& tag,
              bool descendant, bool mandatory, bool fresh) {
    Qpt& qpt = qpts_[qpt_index];
    if (!fresh) {
      for (int child : qpt.nodes[parent].children) {
        QptNode& node = qpt.nodes[child];
        if (node.tag == tag && node.parent_descendant == descendant &&
            node.preds.empty() && !node.no_merge) {
          // A mandatory use wins: if any use requires the child for the
          // parent to produce output, pruning parents without it is safe.
          node.parent_mandatory = node.parent_mandatory || mandatory;
          return child;
        }
      }
    }
    int node = qpt.AddNode(parent, tag, descendant, mandatory);
    qpt.nodes[node].no_merge = fresh;
    return node;
  }

  std::vector<Qpt> qpts_;
  const xquery::Query* query_ = nullptr;
  int occurrence_counter_ = 0;
  int call_depth_ = 0;
};

}  // namespace

Result<std::vector<Qpt>> GenerateQpts(xquery::Query* query) {
  return QptBuilder().Build(query);
}

}  // namespace quickview::qpt
