// QPT Generation Module (paper §3.3, Appendix B): analyzes a view query
// and produces one QPT per fn:doc() occurrence, identifying exactly the
// base-data structure, values ('v') and content ('c') the keyword query
// needs. Also rewrites each fn:doc() name to a unique occurrence name so
// the same (unmodified) evaluator can later be pointed at per-occurrence
// PDTs.
#ifndef QUICKVIEW_QPT_GENERATE_QPT_H_
#define QUICKVIEW_QPT_GENERATE_QPT_H_

#include <vector>

#include "common/result.h"
#include "qpt/qpt.h"
#include "xquery/ast.h"

namespace quickview::qpt {

/// Generates the QPTs for `query`'s body. Mutates the query: every
/// DocExpr name becomes its occurrence name (Qpt::occurrence_name), which
/// is how the "rewritten query goes over PDTs instead of the base data"
/// (§3.1). Returns Unsupported for views outside the Appendix A subset
/// (e.g. navigation into constructed elements).
Result<std::vector<Qpt>> GenerateQpts(xquery::Query* query);

}  // namespace quickview::qpt

#endif  // QUICKVIEW_QPT_GENERATE_QPT_H_
