// Query Pattern Trees (paper §3.3): a generalization of GTPs that
// identifies the precise parts of the base data required to compute the
// keyword-search results over a view. Nodes carry tag names, leaf-value
// predicates and the two annotations:
//   'v' — the node's value is required during view evaluation (join keys,
//         predicate operands);
//   'c' — the node's content is propagated to the view output (required
//         only during result materialization, summarized by tf/byte-length
//         statistics inside PDTs).
// Edges are parent/child ('/') or ancestor/descendant ('//'), and either
// mandatory ('m': the parent is irrelevant without such a child) or
// optional ('o': the parent may appear in the view without it).
#ifndef QUICKVIEW_QPT_QPT_H_
#define QUICKVIEW_QPT_QPT_H_

#include <string>
#include <vector>

#include "index/path_index.h"
#include "xquery/ast.h"

namespace quickview::qpt {

/// A leaf-value predicate such as [. > 1995].
struct QptPredicate {
  xquery::CompOp op = xquery::CompOp::kEq;
  std::string literal;
  bool is_number = false;
  double number = 0;

  /// True iff an element with atomic value `value` satisfies the predicate
  /// (numeric comparison when both sides are numeric, as the evaluator).
  bool Matches(const std::string& value) const;

  bool operator==(const QptPredicate&) const = default;
};

struct QptNode {
  std::string tag;
  std::vector<QptPredicate> preds;
  bool v_ann = false;
  bool c_ann = false;
  /// Created for one specific use (predicate anchor); other uses of the
  /// same (tag, axis) step must not merge into it.
  bool no_merge = false;

  int parent = -1;                 // -1 for the virtual document root
  bool parent_descendant = false;  // incoming edge axis is '//'
  bool parent_mandatory = true;    // incoming edge annotation is 'm'
  std::vector<int> children;       // indices into Qpt::nodes
};

/// One query pattern tree, associated with one fn:doc() occurrence in the
/// view. nodes[0] is the virtual document root (empty tag), standing for
/// the document node itself.
struct Qpt {
  std::string occurrence_name;  // unique name the rewritten query uses
  std::string source_doc;       // the original document name

  std::vector<QptNode> nodes;

  /// Adds a child node; returns its index.
  int AddNode(int parent, std::string tag, bool descendant, bool mandatory);

  /// Root-anchored path pattern for a node (virtual root excluded).
  index::PathPattern PatternFor(int node) const;

  /// Indices of the mandatory children of `node`.
  std::vector<int> MandatoryChildren(int node) const;

  /// True iff `node` has at least one mandatory child edge.
  bool HasMandatoryChild(int node) const;

  /// Multi-line debug rendering (tests).
  std::string ToString() const;
};

}  // namespace quickview::qpt

#endif  // QUICKVIEW_QPT_QPT_H_
