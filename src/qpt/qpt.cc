#include "qpt/qpt.h"

#include "common/strings.h"

namespace quickview::qpt {

bool QptPredicate::Matches(const std::string& value) const {
  double value_number = 0;
  if (is_number && ParseDouble(value, &value_number)) {
    switch (op) {
      case xquery::CompOp::kEq:
        return value_number == number;
      case xquery::CompOp::kLt:
        return value_number < number;
      case xquery::CompOp::kGt:
        return value_number > number;
    }
  }
  switch (op) {
    case xquery::CompOp::kEq:
      return value == literal;
    case xquery::CompOp::kLt:
      return value < literal;
    case xquery::CompOp::kGt:
      return value > literal;
  }
  return false;
}

int Qpt::AddNode(int parent, std::string tag, bool descendant,
                 bool mandatory) {
  QptNode node;
  node.tag = std::move(tag);
  node.parent = parent;
  node.parent_descendant = descendant;
  node.parent_mandatory = mandatory;
  int index = static_cast<int>(nodes.size());
  nodes.push_back(std::move(node));
  if (parent >= 0) nodes[parent].children.push_back(index);
  return index;
}

index::PathPattern Qpt::PatternFor(int node) const {
  std::vector<int> chain;
  for (int current = node; current > 0; current = nodes[current].parent) {
    chain.push_back(current);
  }
  index::PathPattern pattern;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    pattern.push_back(index::PathStep{nodes[*it].parent_descendant,
                                      nodes[*it].tag});
  }
  return pattern;
}

std::vector<int> Qpt::MandatoryChildren(int node) const {
  std::vector<int> out;
  for (int child : nodes[node].children) {
    if (nodes[child].parent_mandatory) out.push_back(child);
  }
  return out;
}

bool Qpt::HasMandatoryChild(int node) const {
  for (int child : nodes[node].children) {
    if (nodes[child].parent_mandatory) return true;
  }
  return false;
}

namespace {

void Render(const Qpt& qpt, int node, int indent, std::string* out) {
  const QptNode& n = qpt.nodes[node];
  out->append(indent, ' ');
  if (node == 0) {
    *out += "doc(" + qpt.source_doc + ")";
  } else {
    *out += n.parent_descendant ? "//" : "/";
    *out += n.tag;
    if (!n.parent_mandatory) *out += " (o)";
    for (const QptPredicate& pred : n.preds) {
      *out += " [. ";
      *out += pred.op == xquery::CompOp::kEq   ? "="
              : pred.op == xquery::CompOp::kLt ? "<"
                                               : ">";
      *out += " " + pred.literal + "]";
    }
    if (n.v_ann) *out += " v";
    if (n.c_ann) *out += " c";
  }
  *out += "\n";
  for (int child : n.children) Render(qpt, child, indent + 2, out);
}

}  // namespace

std::string Qpt::ToString() const {
  std::string out;
  if (!nodes.empty()) Render(*this, 0, 0, &out);
  return out;
}

}  // namespace quickview::qpt
