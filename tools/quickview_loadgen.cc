// quickview load generator: closed-loop multi-connection client for a
// running quickview_server.
//
//   quickview_loadgen --port P [--host H] [--connections N] [--requests N]
//       [--qps N] [--paged-every N] [--page N] [--deadline-ms N] [--top N]
//       [--any] [--view NAME] [--keywords k1,k2[;k3,k4;...]] [--trace]
//
// Prints throughput, the latency percentile ladder, and the typed error
// split, then issues one final Stats RPC so smoke tests can assert on
// server-side counters without a second tool. --trace follows up with
// one traced Search per keyword set and prints the server's span-tree
// breakdown (plan / build_pdts / evaluate per shard, merge,
// materialize) flame-style.
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "server/client.h"
#include "server/load_driver.h"
#include "server/protocol.h"

namespace {

using namespace quickview;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: quickview_loadgen --port P [--host H] [--connections N]\n"
      "    [--requests N] [--qps N] [--paged-every N] [--page N]\n"
      "    [--deadline-ms N] [--top N] [--any] [--view NAME]\n"
      "    [--keywords k1,k2[;k3,k4;...]] [--trace]\n");
  return 2;
}

/// Strict non-negative integer parse; false on junk or overflow.
bool ParseCount(const char* text, long long max_value, long long* out) {
  if (text == nullptr || *text == '\0') return false;
  long long value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    value = value * 10 + (*p - '0');
    if (value > max_value) return false;
  }
  *out = value;
  return true;
}

bool ParseFlags(int argc, char** argv, server::LoadOptions* options,
                bool* trace) {
  bool have_port = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    long long value = 0;
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return false;
      options->host = v;
    } else if (arg == "--port") {
      if (!ParseCount(next(), 65535, &value) || value == 0) return false;
      options->port = static_cast<uint16_t>(value);
      have_port = true;
    } else if (arg == "--connections") {
      if (!ParseCount(next(), 4096, &value) || value == 0) return false;
      options->connections = static_cast<int>(value);
    } else if (arg == "--requests") {
      if (!ParseCount(next(), 1 << 24, &value) || value == 0) return false;
      options->requests_per_connection = static_cast<int>(value);
    } else if (arg == "--qps") {
      if (!ParseCount(next(), 1 << 24, &value)) return false;
      options->target_qps = static_cast<double>(value);
    } else if (arg == "--paged-every") {
      if (!ParseCount(next(), 1 << 24, &value)) return false;
      options->paged_every = static_cast<int>(value);
    } else if (arg == "--page") {
      if (!ParseCount(next(), 1 << 20, &value) || value == 0) return false;
      options->page_size = static_cast<uint32_t>(value);
    } else if (arg == "--deadline-ms") {
      if (!ParseCount(next(), 1 << 30, &value)) return false;
      options->deadline_ms = static_cast<uint64_t>(value);
    } else if (arg == "--top") {
      if (!ParseCount(next(), 1 << 20, &value) || value == 0) return false;
      options->top_k = static_cast<uint32_t>(value);
    } else if (arg == "--trace") {
      *trace = true;
    } else if (arg == "--any") {
      options->conjunctive = false;
    } else if (arg == "--all") {
      options->conjunctive = true;
    } else if (arg == "--view") {
      const char* v = next();
      if (v == nullptr) return false;
      options->view = v;
    } else if (arg == "--keywords") {
      // Semicolon-separated keyword sets, comma-separated keywords.
      const char* v = next();
      if (v == nullptr) return false;
      for (std::string_view set : SplitString(v, ';')) {
        std::vector<std::string> keywords;
        for (std::string_view piece : SplitString(set, ',')) {
          if (!piece.empty()) keywords.push_back(AsciiToLower(piece));
        }
        if (!keywords.empty()) {
          options->keyword_sets.push_back(std::move(keywords));
        }
      }
    } else {
      return false;
    }
  }
  return have_port;
}

}  // namespace

int main(int argc, char** argv) {
  server::LoadOptions options;
  bool trace = false;
  if (!ParseFlags(argc, argv, &options, &trace)) return Usage();

  auto report = server::RunLoadDriver(options);
  if (!report.ok()) return Fail(report.status());

  std::printf(
      "loadgen: %llu requests over %d connections in %.1f ms (%.0f q/s)\n",
      static_cast<unsigned long long>(report->attempted), options.connections,
      report->wall_ms, report->achieved_qps);
  std::printf(
      "  ok %llu, shed %llu, deadline %llu, other %llu, transport %llu; "
      "%llu hits\n",
      static_cast<unsigned long long>(report->ok),
      static_cast<unsigned long long>(report->shed),
      static_cast<unsigned long long>(report->deadline_exceeded),
      static_cast<unsigned long long>(report->other_errors),
      static_cast<unsigned long long>(report->transport_errors),
      static_cast<unsigned long long>(report->hits_fetched));
  std::printf(
      "  latency p50 %lluus  p90 %lluus  p99 %lluus  max-bucket %lluus\n",
      static_cast<unsigned long long>(report->latency->ValueAtQuantile(0.50)),
      static_cast<unsigned long long>(report->latency->ValueAtQuantile(0.90)),
      static_cast<unsigned long long>(report->latency->ValueAtQuantile(0.99)),
      static_cast<unsigned long long>(report->latency->ValueAtQuantile(1.0)));

  // Server-side picture, for the smoke test's assertions.
  server::Client client;
  Status connected = client.Connect(options.host, options.port);
  if (!connected.ok()) return Fail(connected);
  auto stats = client.Stats();
  if (!stats.ok()) return Fail(stats.status());
  std::printf(
      "server stats: admitted %llu shed %llu deadline-rejected %llu "
      "open-cursors %llu protocol-errors %llu queries %llu\n",
      static_cast<unsigned long long>(stats->admitted),
      static_cast<unsigned long long>(stats->shed),
      static_cast<unsigned long long>(stats->deadline_rejected),
      static_cast<unsigned long long>(stats->open_cursors),
      static_cast<unsigned long long>(stats->protocol_errors),
      static_cast<unsigned long long>(stats->queries));

  if (trace) {
    // One traced request per keyword set: the server's span tree is the
    // flame-style "where did the time go" answer for this workload.
    std::vector<std::vector<std::string>> sets = options.keyword_sets;
    if (sets.empty()) sets.push_back({"xml", "search"});
    for (const std::vector<std::string>& keywords : sets) {
      server::SearchRpcRequest request;
      request.view = options.view;
      request.keywords = keywords;
      request.top_k = options.top_k;
      request.conjunctive = options.conjunctive;
      std::string span_tree;
      auto traced = client.Search(request, &span_tree);
      if (!traced.ok()) return Fail(traced.status());
      std::string label;
      for (const std::string& keyword : keywords) {
        if (!label.empty()) label += ',';
        label += keyword;
      }
      std::printf("trace breakdown [%s]:\n%s", label.c_str(),
                  span_tree.c_str());
    }
  }
  return 0;
}
