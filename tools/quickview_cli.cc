// quickview command-line interface.
//
//   quickview_cli index <xml-file>... --out <db-dir>
//       Parse the XML files, build path + inverted indices, persist both.
//   quickview_cli search <db-dir> --view <file> --keywords k1,k2 [--top N]
//       [--any]
//       Ranked keyword search over the virtual view (conjunctive by
//       default; --any = disjunctive).
//   quickview_cli basesearch <db-dir> --keywords k1,k2 [--top N] [--any]
//       Keyword search directly over the base documents.
//   quickview_cli demo
//       Generate the paper's books/reviews example and run its Fig 2
//       query end to end.
//   quickview_cli pack <db-dir> <file.qvpack>   (or: pack --demo <file>)
//       Pack a persisted database directory (or the built-in demo
//       corpus) plus its indices into a single paged .qvpack file:
//       node-record pages, B-tree-node pages and posting runs that
//       serve/page read lazily through a buffer pool.
//       With --shards N (output <file.qvset>) the corpus is partitioned
//       into N shards — one .qvpack each plus a .qvset manifest —
//       co-locating joined subtrees by --colocate <tag> (e.g. isbn).
//   quickview_cli serve <db-dir>|<db.qvpack>|<db.qvset> --view <file>
//       [--threads N]
//       [--top N] [--any] [--repeat R] [--page N] [--frames N]
//       [--shards N] [--colocate tag] [--demo-view] [--deadline-ms N]
//       [--trace]
//       (--deadline-ms bounds each query's wall clock; expiry fails the
//       query DeadlineExceeded through the engine's cancellation token)
//       (--trace runs every query under an obs::Trace and prints each
//       span-tree breakdown — plan/build_pdts/evaluate per shard, merge,
//       materialize — after the result line)
//       (or: quickview_cli serve --demo)
//       Batch mode: read one keyword query per stdin line (comma-
//       separated keywords), execute the whole batch concurrently on a
//       QueryService thread pool with PDT caching, print ranked matches
//       plus throughput and cache statistics. With --page N each query
//       instead streams its hits through a ResultCursor in pages of N,
//       printing per-page store-fetch counts. Over a .qvpack file the
//       corpus stays on disk: queries pull only the pages they touch
//       (--frames bounds the buffer pool; a storage/buffer-pool stats
//       block prints at the end). Over a .qvset shard set — or with
//       --shards N over an in-memory corpus — every query fans out
//       across the shards and merges lazily; responses are
//       byte-identical to the unsharded run.
//   quickview_cli page [<db.qvpack>] [--keywords k1,k2] [--page N]
//       [--top N] [--any] [--frames N] [--demo-view]
//       Cursor-lifecycle demo on the built-in corpus (or over a packed
//       db): Open -> FetchNext page by page, showing that store fetches
//       (the only base-data access) accrue per page instead of up
//       front — with a packed db, so do page reads.
//   quickview_cli append <db.qvpack> <name> <xml-file>
//       Append an inserted (or replaced) document to the pack's delta
//       side log; the next open overlays it over the packed corpus.
//   quickview_cli tombstone <db.qvpack> <name>
//       Append a deletion record for <name> to the delta side log.
//   quickview_cli compact <in.qvpack> <out.qvpack>
//       Fold <in>'s delta log into a fresh pack: byte-identical to
//       packing the surviving corpus directly, with no side log.
//   quickview_cli wal-dump <log>
//       Print every committed record of a write-ahead log (a pack's
//       .delta side log or a server --wal file): sequence number, type
//       (insert/tombstone), document name and payload size — plus
//       whether recovery dropped a torn tail. Read-only: the log file
//       is not modified, even when torn.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "engine/base_search.h"
#include "engine/result_cursor.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "pagestore/delta_log.h"
#include "pagestore/pack.h"
#include "pagestore/packed_db.h"
#include "pagestore/shard_pack.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "storage/document_store.h"
#include "storage/persistence.h"
#include "storage/shard_set.h"
#include "workload/bookrev_generator.h"
#include "xml/parser.h"

namespace {

using namespace quickview;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  quickview_cli index <xml-file>... --out <db-dir>\n"
               "  quickview_cli search <db-dir> --view <file> "
               "--keywords k1,k2 [--top N] [--any]\n"
               "  quickview_cli basesearch <db-dir> --keywords k1,k2 "
               "[--top N] [--any]\n"
               "  quickview_cli demo\n"
               "  quickview_cli pack <db-dir>|--demo <file.qvpack>\n"
               "  quickview_cli pack <db-dir>|--demo <file.qvset> "
               "--shards N [--colocate tag]\n"
               "  quickview_cli serve <db-dir>|<db.qvpack>|<db.qvset>|--demo "
               "--view <file>|--demo-view [--threads N] [--top N] [--any] "
               "[--repeat R] [--page N] [--frames N] [--shards N] "
               "[--colocate tag] [--deadline-ms N] [--trace]\n"
               "    (keyword queries on stdin, one comma-separated "
               "list per line)\n"
               "  quickview_cli page [<db.qvpack>|<db.qvset>] "
               "[--keywords k1,k2] [--page N] [--top N] [--any] [--frames N] "
               "[--shards N] [--demo-view] [--deadline-ms N]\n"
               "  quickview_cli append <db.qvpack> <name> <xml-file>\n"
               "  quickview_cli tombstone <db.qvpack> <name>\n"
               "  quickview_cli compact <in.qvpack> <out.qvpack>\n"
               "  quickview_cli wal-dump <log>\n");
  return 2;
}

struct Flags {
  std::vector<std::string> positional;
  std::string out;
  std::string view;
  std::vector<std::string> keywords;
  size_t top_k = 10;
  bool any = false;
  bool demo = false;
  int threads = 0;  // 0 = hardware concurrency
  int repeat = 1;   // serve: replicate the stdin batch N times
  size_t page = 0;  // cursor page size; 0 = whole-batch responses
  size_t frames = 256;     // buffer-pool frame budget for .qvpack mode
  long long deadline_ms = 0;  // per-query deadline; 0 = none
  bool demo_view = false;  // use the built-in books/reviews view text
  int shards = 0;          // 0 = unsharded; N >= 1 partitions the corpus
  std::string colocate;    // join-key tag for shard co-location
  bool trace = false;      // serve: print per-query span-tree breakdowns
};

/// Strict non-negative integer parse; false on junk or overflow (flag
/// values must not crash the process via std::stoi exceptions).
bool ParseCount(const char* text, long long max_value, long long* out) {
  if (text == nullptr || *text == '\0') return false;
  long long value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    value = value * 10 + (*p - '0');
    if (value > max_value) return false;
  }
  *out = value;
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->out = v;
    } else if (arg == "--view") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->view = v;
    } else if (arg == "--keywords") {
      const char* v = next();
      if (v == nullptr) return false;
      for (std::string_view piece : SplitString(v, ',')) {
        if (!piece.empty()) {
          flags->keywords.push_back(AsciiToLower(piece));
        }
      }
    } else if (arg == "--top") {
      const char* v = next();
      long long value = 0;
      if (!ParseCount(v, 1000000, &value)) return false;
      flags->top_k = static_cast<size_t>(value);
    } else if (arg == "--any") {
      flags->any = true;
    } else if (arg == "--demo") {
      flags->demo = true;
    } else if (arg == "--threads") {
      const char* v = next();
      long long value = 0;
      if (!ParseCount(v, 4096, &value)) return false;
      flags->threads = static_cast<int>(value);
    } else if (arg == "--repeat") {
      const char* v = next();
      long long value = 0;
      if (!ParseCount(v, 1000000, &value)) return false;
      flags->repeat = std::max(1, static_cast<int>(value));
    } else if (arg == "--page") {
      const char* v = next();
      long long value = 0;
      if (!ParseCount(v, 1000000, &value)) return false;
      flags->page = static_cast<size_t>(value);
    } else if (arg == "--frames") {
      const char* v = next();
      long long value = 0;
      if (!ParseCount(v, 1 << 24, &value) || value == 0) return false;
      flags->frames = static_cast<size_t>(value);
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!ParseCount(v, 1 << 30, &flags->deadline_ms)) return false;
    } else if (arg == "--trace") {
      flags->trace = true;
    } else if (arg == "--demo-view") {
      flags->demo_view = true;
    } else if (arg == "--shards") {
      const char* v = next();
      long long value = 0;
      if (!ParseCount(v, 4096, &value) || value == 0) return false;
      flags->shards = static_cast<int>(value);
    } else if (arg == "--colocate") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->colocate = v;
    } else {
      flags->positional.push_back(std::move(arg));
    }
  }
  return true;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

std::string BaseName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int CmdIndex(const Flags& flags) {
  if (flags.positional.empty() || flags.out.empty()) return Usage();
  xml::Database db;
  for (const std::string& file : flags.positional) {
    auto content = ReadFile(file);
    if (!content.ok()) return Fail(content.status());
    auto doc = xml::ParseXml(*content, db.NextRootComponent());
    if (!doc.ok()) return Fail(doc.status());
    db.AddDocument(BaseName(file), *doc);
    std::printf("loaded %s (%zu elements)\n", file.c_str(), (*doc)->size());
  }
  auto indexes = index::BuildDatabaseIndexes(db);
  Status s = storage::SaveDatabase(db, flags.out);
  if (s.ok()) s = storage::SaveIndexes(db, *indexes, flags.out);
  if (!s.ok()) return Fail(s);
  std::printf("database + indices written to %s\n", flags.out.c_str());
  return 0;
}

int CmdSearch(const Flags& flags) {
  if (flags.positional.size() != 1 || flags.view.empty() ||
      flags.keywords.empty()) {
    return Usage();
  }
  auto db = storage::LoadDatabase(flags.positional[0]);
  if (!db.ok()) return Fail(db.status());
  auto indexes = storage::LoadIndexes(**db, flags.positional[0]);
  std::unique_ptr<index::DatabaseIndexes> built;
  if (!indexes.ok()) {
    std::printf("no serialized indices, rebuilding...\n");
    built = index::BuildDatabaseIndexes(**db);
  }
  index::DatabaseIndexes* idx = indexes.ok() ? indexes->get() : built.get();
  auto view_text = ReadFile(flags.view);
  if (!view_text.ok()) return Fail(view_text.status());
  storage::DocumentStore store(**db);
  engine::ViewSearchEngine engine(db->get(), idx, &store);
  engine::SearchRequest request;
  request.view = *view_text;
  request.keywords = flags.keywords;
  request.options.top_k = flags.top_k;
  request.options.conjunctive = !flags.any;
  auto response = engine.Execute(request);
  if (!response.ok()) return Fail(response.status());
  std::printf("%zu of %zu view results match; module times "
              "qpt=%.2fms pdt=%.2fms eval=%.2fms post=%.2fms\n",
              response->stats.matching_results,
              response->stats.view_results, response->timings.qpt_ms,
              response->timings.pdt_ms, response->timings.eval_ms,
              response->timings.post_ms);
  for (size_t i = 0; i < response->hits.size(); ++i) {
    std::printf("#%zu score=%.4f\n%s\n", i + 1, response->hits[i].score,
                response->hits[i].xml.c_str());
  }
  return 0;
}

int CmdBaseSearch(const Flags& flags) {
  if (flags.positional.size() != 1 || flags.keywords.empty()) {
    return Usage();
  }
  auto db = storage::LoadDatabase(flags.positional[0]);
  if (!db.ok()) return Fail(db.status());
  auto indexes = storage::LoadIndexes(**db, flags.positional[0]);
  std::unique_ptr<index::DatabaseIndexes> built;
  if (!indexes.ok()) built = index::BuildDatabaseIndexes(**db);
  index::DatabaseIndexes* idx = indexes.ok() ? indexes->get() : built.get();
  engine::BaseSearchOptions options;
  options.top_k = flags.top_k;
  options.conjunctive = !flags.any;
  auto hits = engine::SearchBaseDocuments(**db, *idx, flags.keywords,
                                          options);
  if (!hits.ok()) return Fail(hits.status());
  for (size_t i = 0; i < hits->size(); ++i) {
    std::printf("#%zu score=%.4f %s %s\n%s\n", i + 1, (*hits)[i].score,
                (*hits)[i].document.c_str(),
                (*hits)[i].id.ToString().c_str(), (*hits)[i].xml.c_str());
  }
  return 0;
}

int CmdDemo() {
  auto db = workload::GenerateBookRevDatabase(workload::BookRevOptions{});
  auto indexes = index::BuildDatabaseIndexes(*db);
  storage::DocumentStore store(*db);
  engine::ViewSearchEngine engine(db.get(), indexes.get(), &store);
  std::printf("query:\n%s\n\n", workload::BookRevKeywordQuery().c_str());
  engine::SearchRequest request;
  request.query = workload::BookRevKeywordQuery();
  auto response = engine.Execute(request);
  if (!response.ok()) return Fail(response.status());
  for (size_t i = 0; i < response->hits.size() && i < 3; ++i) {
    std::printf("#%zu score=%.4f\n%s\n\n", i + 1, response->hits[i].score,
                response->hits[i].xml.c_str());
  }
  return 0;
}

/// True for paths that name a packed single-file database.
bool IsPackedPath(const std::string& path) {
  constexpr std::string_view kSuffix = ".qvpack";
  return path.size() > kSuffix.size() &&
         path.compare(path.size() - kSuffix.size(), kSuffix.size(),
                      kSuffix) == 0;
}

/// True for paths that name a sharded pack-set manifest.
bool IsShardSetPath(const std::string& path) {
  constexpr std::string_view kSuffix = ".qvset";
  return path.size() > kSuffix.size() &&
         path.compare(path.size() - kSuffix.size(), kSuffix.size(),
                      kSuffix) == 0;
}

/// The corpus a serve/page run executes over: in-memory structures, or a
/// packed .qvpack file whose pages are pulled on demand through a
/// bounded buffer pool.
struct Backend {
  std::shared_ptr<xml::Database> db;                // in-memory mode
  std::unique_ptr<index::DatabaseIndexes> indexes;  // in-memory mode
  std::shared_ptr<pagestore::PackedDb> packed;      // packed mode
  std::unique_ptr<storage::DocumentStore> store;
  /// Sharded mode: a .qvset shard set, or an in-memory partition made
  /// with --shards N. Queries fan out per shard and merge lazily.
  std::unique_ptr<storage::ShardSet> shards;

  const xml::Database* database() const { return db.get(); }
  const index::IndexSource* index_source() const {
    if (packed != nullptr) {
      return static_cast<const index::IndexSource*>(packed.get());
    }
    return static_cast<const index::IndexSource*>(indexes.get());
  }

  /// Shard execution contexts in corpus order (one per shard).
  std::vector<engine::ShardContext> ShardContexts() const {
    std::vector<engine::ShardContext> contexts;
    contexts.reserve(shards->size());
    for (size_t i = 0; i < shards->size(); ++i) {
      const storage::Shard& shard = shards->shard(i);
      contexts.push_back(engine::ShardContext{
          shard.database.get(), shard.index_source(), shard.store.get()});
    }
    return contexts;
  }
};

/// `source` is a db directory, a .qvpack path, or empty with
/// flags.demo for the built-in corpus.
Result<Backend> OpenBackend(const Flags& flags, const std::string& source) {
  Backend backend;
  if (!flags.demo && IsShardSetPath(source)) {
    QUICKVIEW_ASSIGN_OR_RETURN(
        storage::ShardSet set,
        storage::ShardSet::OpenPacked(source, flags.frames));
    backend.shards = std::make_unique<storage::ShardSet>(std::move(set));
    std::printf("opened %s: %zu shards, %zu-frame pool total\n",
                source.c_str(), backend.shards->size(), flags.frames);
    return backend;
  }
  if (flags.demo) {
    backend.db = workload::GenerateBookRevDatabase(workload::BookRevOptions{});
    backend.indexes = index::BuildDatabaseIndexes(*backend.db);
  } else if (IsPackedPath(source)) {
    pagestore::BufferPoolOptions pool;
    pool.frames = flags.frames;
    QUICKVIEW_ASSIGN_OR_RETURN(backend.packed,
                               pagestore::PackedDb::Open(source, pool));
    backend.store =
        std::make_unique<storage::DocumentStore>(backend.packed);
    std::printf("opened %s: %u pages, %zu documents, %zu-frame pool\n",
                source.c_str(), backend.packed->file().page_count(),
                backend.packed->document_names().size(), flags.frames);
    const pagestore::PackedDb::DeltaStats& delta =
        backend.packed->delta_stats();
    if (delta.inserts + delta.tombstones != 0) {
      std::printf(
          "delta log: %llu inserts, %llu tombstones applied "
          "(%zu overlay documents, %zu packed documents masked)\n",
          static_cast<unsigned long long>(delta.inserts),
          static_cast<unsigned long long>(delta.tombstones),
          delta.overlay_documents, delta.masked_base_documents);
    }
    return backend;
  } else {
    QUICKVIEW_ASSIGN_OR_RETURN(backend.db, storage::LoadDatabase(source));
    auto persisted = storage::LoadIndexes(*backend.db, source);
    if (persisted.ok()) {
      backend.indexes = std::move(*persisted);
    } else {
      std::printf("no serialized indices, rebuilding...\n");
      backend.indexes = index::BuildDatabaseIndexes(*backend.db);
    }
  }
  backend.store = std::make_unique<storage::DocumentStore>(*backend.db);
  // --shards N over an in-memory corpus: partition it into N
  // self-contained shards (the unsharded structures stay around for
  // side-by-side comparison output).
  if (flags.shards > 0) {
    storage::ShardingSpec spec;
    spec.shards = flags.shards;
    spec.colocate_tag = flags.colocate;
    QUICKVIEW_ASSIGN_OR_RETURN(storage::ShardSet set,
                               storage::ShardSet::Partition(*backend.db, spec));
    backend.shards = std::make_unique<storage::ShardSet>(std::move(set));
    std::string colocated =
        flags.colocate.empty() ? std::string()
                               : " (colocated by <" + flags.colocate + ">)";
    std::printf("partitioned corpus into %d shards%s\n", flags.shards,
                colocated.c_str());
  }
  return backend;
}

/// The end-of-run stats block (serve and page): per-store fetch totals,
/// and — for packed databases — the buffer-pool picture. This is what
/// bench and CI artifacts eyeball instead of a debugger.
void PrintStorageStats(const Backend& backend) {
  if (backend.shards != nullptr) {
    for (size_t i = 0; i < backend.shards->size(); ++i) {
      storage::DocumentStore::Stats s = backend.shards->shard(i).store->stats();
      std::printf(
          "shard %zu storage: %llu fetches, %llu bytes, %llu pages read, "
          "%llu buffer hits\n",
          i, static_cast<unsigned long long>(s.fetch_calls),
          static_cast<unsigned long long>(s.bytes_fetched),
          static_cast<unsigned long long>(s.pages_read),
          static_cast<unsigned long long>(s.buffer_hits));
    }
  }
  if (backend.store != nullptr) {
    storage::DocumentStore::Stats store_stats = backend.store->stats();
    std::printf(
        "storage: %llu fetches, %llu bytes, %llu pages read, "
        "%llu buffer hits\n",
        static_cast<unsigned long long>(store_stats.fetch_calls),
        static_cast<unsigned long long>(store_stats.bytes_fetched),
        static_cast<unsigned long long>(store_stats.pages_read),
        static_cast<unsigned long long>(store_stats.buffer_hits));
  }
  if (backend.packed != nullptr) {
    pagestore::BufferPoolStats pool = backend.packed->pool().stats();
    std::printf(
        "buffer pool: %llu hits, %llu misses, %llu evictions, "
        "%llu bytes read, %llu frames resident (budget %zu)\n",
        static_cast<unsigned long long>(pool.hits),
        static_cast<unsigned long long>(pool.misses),
        static_cast<unsigned long long>(pool.evictions),
        static_cast<unsigned long long>(pool.bytes_read),
        static_cast<unsigned long long>(pool.frames_in_use),
        backend.packed->pool().frame_budget());
  }
}

int CmdPack(const Flags& flags) {
  // pack --demo <out.qvpack>  |  pack <db-dir> <out.qvpack>
  // pack ... <out.qvset> --shards N [--colocate tag]
  size_t expected = flags.demo ? 1 : 2;
  if (flags.positional.size() != expected) return Usage();
  const std::string& out = flags.positional.back();
  const bool sharded = flags.shards > 0 || IsShardSetPath(out);
  if (sharded && !IsShardSetPath(out)) {
    std::fprintf(stderr, "pack --shards: output must end in .qvset\n");
    return 2;
  }
  if (!sharded && !IsPackedPath(out)) {
    std::fprintf(stderr, "pack: output must end in .qvpack\n");
    return 2;
  }
  std::string source = flags.demo ? std::string() : flags.positional[0];
  if (IsPackedPath(source) || IsShardSetPath(source)) {
    std::fprintf(stderr,
                 "pack: input must be a database directory (or --demo), "
                 "not an already-packed file\n");
    return 2;
  }

  // Keep OpenBackend from partitioning in memory — the sharded pack
  // path partitions itself on the way to disk.
  Flags backend_flags = flags;
  backend_flags.shards = 0;
  auto backend = OpenBackend(backend_flags, source);
  if (!backend.ok()) return Fail(backend.status());

  if (sharded) {
    storage::ShardingSpec spec;
    spec.shards = std::max(1, flags.shards);
    spec.colocate_tag = flags.colocate;
    Status packed = pagestore::PackShardedDb(*backend->db, spec, out);
    if (!packed.ok()) return Fail(packed);
    std::printf("packed %zu documents into %d shards under %s:\n",
                backend->db->documents().size(), spec.shards,
                pagestore::ShardManifestPath(out).c_str());
    for (int i = 0; i < spec.shards; ++i) {
      auto reopened =
          pagestore::PagedFile::Open(pagestore::ShardPackPath(out, i));
      if (!reopened.ok()) return Fail(reopened.status());
      std::printf("  shard %d: %s, %u pages\n", i,
                  pagestore::ShardPackPath(out, i).c_str(),
                  (*reopened)->page_count());
    }
    return 0;
  }

  Status packed =
      pagestore::PackDatabase(*backend->db, *backend->indexes, out);
  if (!packed.ok()) return Fail(packed);
  auto reopened = pagestore::PagedFile::Open(out);
  if (!reopened.ok()) return Fail(reopened.status());
  std::printf(
      "packed %zu documents into %s: %u pages of %u bytes (%llu total)\n",
      backend->db->documents().size(), out.c_str(),
      (*reopened)->page_count(),
      pagestore::kPageSize,
      static_cast<unsigned long long>((*reopened)->page_count()) *
          pagestore::kPageSize);
  return 0;
}

int CmdAppend(const Flags& flags) {
  if (flags.positional.size() != 3) return Usage();
  const std::string& pack = flags.positional[0];
  const std::string& name = flags.positional[1];
  if (!IsPackedPath(pack)) {
    std::fprintf(stderr, "append: first argument must be a .qvpack file\n");
    return 2;
  }
  auto xml_text = ReadFile(flags.positional[2]);
  if (!xml_text.ok()) return Fail(xml_text.status());
  Status appended = pagestore::PackAppend(pack, name, *xml_text);
  if (!appended.ok()) return Fail(appended);
  std::printf("appended '%s' (%zu bytes) to %s\n", name.c_str(),
              xml_text->size(), pagestore::DeltaLogPath(pack).c_str());
  return 0;
}

int CmdTombstone(const Flags& flags) {
  if (flags.positional.size() != 2) return Usage();
  const std::string& pack = flags.positional[0];
  const std::string& name = flags.positional[1];
  if (!IsPackedPath(pack)) {
    std::fprintf(stderr,
                 "tombstone: first argument must be a .qvpack file\n");
    return 2;
  }
  Status buried = pagestore::PackTombstone(pack, name);
  if (!buried.ok()) return Fail(buried);
  std::printf("tombstoned '%s' in %s\n", name.c_str(),
              pagestore::DeltaLogPath(pack).c_str());
  return 0;
}

int CmdWalDump(const Flags& flags) {
  if (flags.positional.size() != 1) return Usage();
  const std::string& log = flags.positional[0];
  auto replay = pagestore::ReplayWal(log);
  if (!replay.ok()) return Fail(replay.status());
  uint64_t seq = 0;
  for (const std::string& payload : replay->payloads) {
    ++seq;
    auto record = pagestore::DecodeDeltaPayload(payload);
    if (!record.ok()) {
      // Not a delta-shaped payload; still committed and checksummed.
      std::printf("%6llu  raw        %zu bytes\n",
                  static_cast<unsigned long long>(seq), payload.size());
      continue;
    }
    std::printf("%6llu  %-9s  %-24s %zu bytes\n",
                static_cast<unsigned long long>(seq),
                record->tombstone ? "tombstone" : "insert",
                record->name.c_str(), record->xml.size());
  }
  std::printf("%zu committed records (last seq %llu)\n",
              replay->payloads.size(),
              static_cast<unsigned long long>(replay->last_seq));
  if (replay->tail_truncated) {
    std::printf("torn tail: %llu trailing bytes are not part of any "
                "committed record (a reopen for writing truncates them)\n",
                static_cast<unsigned long long>(replay->dropped_bytes));
  }
  return 0;
}

int CmdCompact(const Flags& flags) {
  if (flags.positional.size() != 2) return Usage();
  const std::string& in = flags.positional[0];
  const std::string& out = flags.positional[1];
  if (!IsPackedPath(in) || !IsPackedPath(out)) {
    std::fprintf(stderr, "compact: both arguments must be .qvpack files\n");
    return 2;
  }
  Status compacted = pagestore::CompactPack(in, out);
  if (!compacted.ok()) return Fail(compacted);
  auto reopened = pagestore::PagedFile::Open(out);
  if (!reopened.ok()) return Fail(reopened.status());
  std::printf("compacted %s -> %s: %u pages of %u bytes\n", in.c_str(),
              out.c_str(), (*reopened)->page_count(), pagestore::kPageSize);
  return 0;
}

int CmdServe(const Flags& flags) {
  if (!flags.demo && flags.positional.size() != 1) return Usage();
  if (!flags.demo && flags.view.empty() && !flags.demo_view) return Usage();

  auto backend = OpenBackend(
      flags, flags.positional.empty() ? std::string() : flags.positional[0]);
  if (!backend.ok()) return Fail(backend.status());
  std::string view_text;
  if (!flags.view.empty()) {
    auto view_file = ReadFile(flags.view);
    if (!view_file.ok()) return Fail(view_file.status());
    view_text = std::move(*view_file);
  } else {
    view_text = workload::BookRevView();
  }

  service::QueryServiceOptions options;
  options.threads = flags.threads;
  std::unique_ptr<service::QueryService> query_service;
  if (backend->shards != nullptr) {
    query_service = std::make_unique<service::QueryService>(
        backend->shards.get(), options);
  } else {
    query_service = std::make_unique<service::QueryService>(
        backend->database(), backend->index_source(), backend->store.get(),
        options);
    if (backend->packed != nullptr) {
      query_service->AttachBufferPool(&backend->packed->pool());
    }
  }
  Status registered = query_service->RegisterView("default", view_text);
  if (!registered.ok()) return Fail(registered);

  // One query per stdin line: comma-separated keywords.
  std::vector<service::BatchQuery> batch;
  std::string line;
  while (std::getline(std::cin, line)) {
    service::BatchQuery query;
    query.view = "default";
    for (std::string_view piece : SplitString(line, ',')) {
      if (!piece.empty()) query.keywords.push_back(AsciiToLower(piece));
    }
    if (query.keywords.empty()) continue;
    query.options.top_k = flags.top_k;
    query.options.conjunctive = !flags.any;
    if (flags.deadline_ms > 0) {
      query.deadline = std::chrono::milliseconds(flags.deadline_ms);
    }
    batch.push_back(std::move(query));
  }
  if (batch.empty()) {
    std::fprintf(stderr, "serve: no queries on stdin\n");
    return 2;
  }

  // Cursor mode: stream each query's hits through a ResultCursor in
  // pages of --page on the calling thread. Store fetches accrue per
  // page — unfetched pages never touch base data — while repeated plan
  // signatures still hit the PDT cache.
  if (flags.page > 0) {
    if (flags.threads != 0 || flags.repeat != 1) {
      std::fprintf(stderr,
                   "serve --page: streaming serially on the calling "
                   "thread; --threads/--repeat are ignored\n");
    }
    int failures = 0;
    uint64_t trace_id = 0;
    for (service::BatchQuery& query : batch) {
      const std::string joined = JoinStrings(query.keywords, ",");
      if (flags.trace) {
        query.trace = std::make_shared<obs::Trace>(++trace_id);
      }
      auto cursor = query_service->OpenSearch(query);
      if (!cursor.ok()) {
        ++failures;
        std::printf("[%s] error: %s\n", joined.c_str(),
                    cursor.status().ToString().c_str());
        continue;
      }
      size_t page_no = 0;
      while (!(*cursor)->Done()) {
        auto page = (*cursor)->FetchNext(flags.page);
        if (!page.ok()) {
          ++failures;
          std::printf("[%s] error: %s\n", joined.c_str(),
                      page.status().ToString().c_str());
          break;
        }
        ++page_no;
        std::printf(
            "[%s] page %zu: %zu hits, top score %.4f, "
            "%llu store fetches so far\n",
            joined.c_str(), page_no, page->size(),
            page->empty() ? 0.0 : (*page)[0].score,
            static_cast<unsigned long long>(
                (*cursor)->stats().search.store_fetches));
      }
      const engine::SearchStats& s = (*cursor)->stats().search;
      std::printf(
          "[%s] done: fetched %zu of %zu matches in %zu pages, "
          "%llu store fetches\n",
          joined.c_str(), (*cursor)->fetched(), s.matching_results,
          page_no, static_cast<unsigned long long>(s.store_fetches));
      if (query.trace != nullptr) {
        std::printf("%s", query.trace->Serialize().c_str());
      }
    }
    service::QueryService::Stats stats = query_service->stats();
    std::printf("streamed %zu queries; cache hits %llu misses %llu\n",
                batch.size(),
                static_cast<unsigned long long>(stats.cache.hits),
                static_cast<unsigned long long>(stats.cache.misses));
    PrintStorageStats(*backend);
    return failures == 0 ? 0 : 1;
  }

  const size_t unique_queries = batch.size();
  batch.reserve(unique_queries * static_cast<size_t>(flags.repeat));
  for (int r = 1; r < flags.repeat; ++r) {
    for (size_t i = 0; i < unique_queries; ++i) batch.push_back(batch[i]);
  }
  if (flags.trace) {
    // Traces are per-entry, AFTER replication — repeated copies of one
    // query must not interleave their spans into a shared tree.
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].trace = std::make_shared<obs::Trace>(i + 1);
    }
  }

  auto start = std::chrono::steady_clock::now();
  auto responses = query_service->SearchBatch(batch);
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  int failures = 0;
  for (size_t i = 0; i < unique_queries; ++i) {
    const std::string joined = JoinStrings(batch[i].keywords, ",");
    if (!responses[i].ok()) {
      ++failures;
      std::printf("[%s] error: %s\n", joined.c_str(),
                  responses[i].status().ToString().c_str());
      continue;
    }
    const engine::SearchResponse& r = *responses[i];
    std::printf("[%s] %zu/%zu results, top score %.4f\n", joined.c_str(),
                r.stats.matching_results, r.stats.view_results,
                r.hits.empty() ? 0.0 : r.hits[0].score);
    if (batch[i].trace != nullptr) {
      std::printf("%s", batch[i].trace->Serialize().c_str());
    }
  }
  for (size_t i = unique_queries; i < responses.size(); ++i) {
    if (!responses[i].ok()) ++failures;
  }
  service::QueryService::Stats stats = query_service->stats();
  std::printf(
      "served %zu queries on %d threads in %.1f ms (%.0f q/s); "
      "cache hits %llu misses %llu\n",
      responses.size(), query_service->threads(), wall_ms,
      wall_ms > 0 ? 1000.0 * static_cast<double>(responses.size()) / wall_ms
                  : 0.0,
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.misses));
  PrintStorageStats(*backend);
  return failures == 0 ? 0 : 1;
}

/// Cursor-lifecycle walkthrough on the built-in books/reviews corpus or
/// a packed database: Open once, FetchNext page by page, and print the
/// store-fetch (and, when packed, page-read) counters after every page —
/// the visible form of the lazy-materialization guarantee (hits never
/// fetched never touch base data; with a packed db, never touch disk).
int CmdPage(const Flags& flags) {
  if (flags.positional.size() > 1) return Usage();
  Flags backend_flags = flags;
  backend_flags.demo = flags.positional.empty();
  auto backend = OpenBackend(
      backend_flags,
      flags.positional.empty() ? std::string() : flags.positional[0]);
  if (!backend.ok()) return Fail(backend.status());
  std::string view_text;
  if (!flags.view.empty()) {
    auto view_file = ReadFile(flags.view);
    if (!view_file.ok()) return Fail(view_file.status());
    view_text = std::move(*view_file);
  } else {
    view_text = workload::BookRevView();
  }
  // One unified entry point at any shard count: a sharded backend fans
  // the request out per shard, an unsharded one is the one-shard case.
  std::vector<engine::ShardContext> contexts;
  if (backend->shards != nullptr) {
    contexts = backend->ShardContexts();
  } else {
    contexts.push_back(engine::ShardContext{backend->database(),
                                            backend->index_source(),
                                            backend->store.get()});
  }
  engine::ViewSearchEngine engine(std::move(contexts), /*pool=*/nullptr);

  std::vector<std::string> keywords = flags.keywords;
  if (keywords.empty()) keywords = {"xml", "search"};
  const size_t page_size = flags.page > 0 ? flags.page : 3;

  engine::SearchRequest request;
  request.view = view_text;
  request.keywords = keywords;
  request.options.top_k = flags.top_k;
  request.options.conjunctive = !flags.any;
  if (flags.deadline_ms > 0) {
    request.deadline = std::chrono::milliseconds(flags.deadline_ms);
  }
  auto cursor = engine.Open(request);
  if (!cursor.ok()) return Fail(cursor.status());

  std::printf(
      "cursor open: %zu matches ranked, %zu materialized, "
      "%llu store fetches\n",
      (*cursor)->stats().search.matching_results, (*cursor)->fetched(),
      static_cast<unsigned long long>(
          (*cursor)->stats().search.store_fetches));
  size_t page_no = 0;
  while (!(*cursor)->Done()) {
    auto page = (*cursor)->FetchNext(page_size);
    if (!page.ok()) return Fail(page.status());
    ++page_no;
    std::printf("-- page %zu --\n", page_no);
    const size_t first_rank = (*cursor)->fetched() - page->size() + 1;
    for (size_t i = 0; i < page->size(); ++i) {
      std::printf("#%zu score=%.4f\n", first_rank + i, (*page)[i].score);
    }
    std::printf("   %llu store fetches so far (%llu bytes)\n",
                static_cast<unsigned long long>(
                    (*cursor)->stats().search.store_fetches),
                static_cast<unsigned long long>(
                    (*cursor)->stats().search.store_bytes));
    if (backend->packed != nullptr ||
        (backend->shards != nullptr && backend->shards->paged())) {
      std::printf("   %llu pages read so far (%llu buffer hits)\n",
                  static_cast<unsigned long long>(
                      (*cursor)->stats().search.pages_read),
                  static_cast<unsigned long long>(
                      (*cursor)->stats().search.buffer_hits));
    }
  }
  std::printf("cursor drained: %zu hits in %zu pages\n",
              (*cursor)->fetched(), page_no);
  PrintStorageStats(*backend);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage();
  std::string command = argv[1];
  if (command == "index") return CmdIndex(flags);
  if (command == "search") return CmdSearch(flags);
  if (command == "basesearch") return CmdBaseSearch(flags);
  if (command == "demo") return CmdDemo();
  if (command == "pack") return CmdPack(flags);
  if (command == "append") return CmdAppend(flags);
  if (command == "tombstone") return CmdTombstone(flags);
  if (command == "compact") return CmdCompact(flags);
  if (command == "wal-dump") return CmdWalDump(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "page") return CmdPage(flags);
  return Usage();
}
