// quickview command-line interface.
//
//   quickview_cli index <xml-file>... --out <db-dir>
//       Parse the XML files, build path + inverted indices, persist both.
//   quickview_cli search <db-dir> --view <file> --keywords k1,k2 [--top N]
//       [--any]
//       Ranked keyword search over the virtual view (conjunctive by
//       default; --any = disjunctive).
//   quickview_cli basesearch <db-dir> --keywords k1,k2 [--top N] [--any]
//       Keyword search directly over the base documents.
//   quickview_cli demo
//       Generate the paper's books/reviews example and run its Fig 2
//       query end to end.
//   quickview_cli serve <db-dir> --view <file> [--threads N] [--top N]
//       [--any] [--repeat R] [--page N]   (or: quickview_cli serve --demo)
//       Batch mode: read one keyword query per stdin line (comma-
//       separated keywords), execute the whole batch concurrently on a
//       QueryService thread pool with PDT caching, print ranked matches
//       plus throughput and cache statistics. With --page N each query
//       instead streams its hits through a ResultCursor in pages of N,
//       printing per-page store-fetch counts.
//   quickview_cli page [--keywords k1,k2] [--page N] [--top N] [--any]
//       Cursor-lifecycle demo on the built-in corpus: Open -> FetchNext
//       page by page, showing that store fetches (the only base-data
//       access) accrue per page instead of up front.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "engine/base_search.h"
#include "engine/result_cursor.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "service/query_service.h"
#include "storage/document_store.h"
#include "storage/persistence.h"
#include "workload/bookrev_generator.h"
#include "xml/parser.h"

namespace {

using namespace quickview;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  quickview_cli index <xml-file>... --out <db-dir>\n"
               "  quickview_cli search <db-dir> --view <file> "
               "--keywords k1,k2 [--top N] [--any]\n"
               "  quickview_cli basesearch <db-dir> --keywords k1,k2 "
               "[--top N] [--any]\n"
               "  quickview_cli demo\n"
               "  quickview_cli serve <db-dir>|--demo --view <file> "
               "[--threads N] [--top N] [--any] [--repeat R] [--page N]\n"
               "    (keyword queries on stdin, one comma-separated "
               "list per line)\n"
               "  quickview_cli page [--keywords k1,k2] [--page N] "
               "[--top N] [--any]\n");
  return 2;
}

struct Flags {
  std::vector<std::string> positional;
  std::string out;
  std::string view;
  std::vector<std::string> keywords;
  size_t top_k = 10;
  bool any = false;
  bool demo = false;
  int threads = 0;  // 0 = hardware concurrency
  int repeat = 1;   // serve: replicate the stdin batch N times
  size_t page = 0;  // cursor page size; 0 = whole-batch responses
};

/// Strict non-negative integer parse; false on junk or overflow (flag
/// values must not crash the process via std::stoi exceptions).
bool ParseCount(const char* text, long long max_value, long long* out) {
  if (text == nullptr || *text == '\0') return false;
  long long value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    value = value * 10 + (*p - '0');
    if (value > max_value) return false;
  }
  *out = value;
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->out = v;
    } else if (arg == "--view") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->view = v;
    } else if (arg == "--keywords") {
      const char* v = next();
      if (v == nullptr) return false;
      for (std::string_view piece : SplitString(v, ',')) {
        if (!piece.empty()) {
          flags->keywords.push_back(AsciiToLower(piece));
        }
      }
    } else if (arg == "--top") {
      const char* v = next();
      long long value = 0;
      if (!ParseCount(v, 1000000, &value)) return false;
      flags->top_k = static_cast<size_t>(value);
    } else if (arg == "--any") {
      flags->any = true;
    } else if (arg == "--demo") {
      flags->demo = true;
    } else if (arg == "--threads") {
      const char* v = next();
      long long value = 0;
      if (!ParseCount(v, 4096, &value)) return false;
      flags->threads = static_cast<int>(value);
    } else if (arg == "--repeat") {
      const char* v = next();
      long long value = 0;
      if (!ParseCount(v, 1000000, &value)) return false;
      flags->repeat = std::max(1, static_cast<int>(value));
    } else if (arg == "--page") {
      const char* v = next();
      long long value = 0;
      if (!ParseCount(v, 1000000, &value)) return false;
      flags->page = static_cast<size_t>(value);
    } else {
      flags->positional.push_back(std::move(arg));
    }
  }
  return true;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

std::string BaseName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int CmdIndex(const Flags& flags) {
  if (flags.positional.empty() || flags.out.empty()) return Usage();
  xml::Database db;
  for (const std::string& file : flags.positional) {
    auto content = ReadFile(file);
    if (!content.ok()) return Fail(content.status());
    auto doc = xml::ParseXml(*content, db.NextRootComponent());
    if (!doc.ok()) return Fail(doc.status());
    db.AddDocument(BaseName(file), *doc);
    std::printf("loaded %s (%zu elements)\n", file.c_str(), (*doc)->size());
  }
  auto indexes = index::BuildDatabaseIndexes(db);
  Status s = storage::SaveDatabase(db, flags.out);
  if (s.ok()) s = storage::SaveIndexes(db, *indexes, flags.out);
  if (!s.ok()) return Fail(s);
  std::printf("database + indices written to %s\n", flags.out.c_str());
  return 0;
}

int CmdSearch(const Flags& flags) {
  if (flags.positional.size() != 1 || flags.view.empty() ||
      flags.keywords.empty()) {
    return Usage();
  }
  auto db = storage::LoadDatabase(flags.positional[0]);
  if (!db.ok()) return Fail(db.status());
  auto indexes = storage::LoadIndexes(**db, flags.positional[0]);
  std::unique_ptr<index::DatabaseIndexes> built;
  if (!indexes.ok()) {
    std::printf("no serialized indices, rebuilding...\n");
    built = index::BuildDatabaseIndexes(**db);
  }
  index::DatabaseIndexes* idx = indexes.ok() ? indexes->get() : built.get();
  auto view_text = ReadFile(flags.view);
  if (!view_text.ok()) return Fail(view_text.status());
  storage::DocumentStore store(**db);
  engine::ViewSearchEngine engine(db->get(), idx, &store);
  engine::SearchOptions options;
  options.top_k = flags.top_k;
  options.conjunctive = !flags.any;
  auto response = engine.SearchView(*view_text, flags.keywords, options);
  if (!response.ok()) return Fail(response.status());
  std::printf("%zu of %zu view results match; module times "
              "qpt=%.2fms pdt=%.2fms eval=%.2fms post=%.2fms\n",
              response->stats.matching_results,
              response->stats.view_results, response->timings.qpt_ms,
              response->timings.pdt_ms, response->timings.eval_ms,
              response->timings.post_ms);
  for (size_t i = 0; i < response->hits.size(); ++i) {
    std::printf("#%zu score=%.4f\n%s\n", i + 1, response->hits[i].score,
                response->hits[i].xml.c_str());
  }
  return 0;
}

int CmdBaseSearch(const Flags& flags) {
  if (flags.positional.size() != 1 || flags.keywords.empty()) {
    return Usage();
  }
  auto db = storage::LoadDatabase(flags.positional[0]);
  if (!db.ok()) return Fail(db.status());
  auto indexes = storage::LoadIndexes(**db, flags.positional[0]);
  std::unique_ptr<index::DatabaseIndexes> built;
  if (!indexes.ok()) built = index::BuildDatabaseIndexes(**db);
  index::DatabaseIndexes* idx = indexes.ok() ? indexes->get() : built.get();
  engine::BaseSearchOptions options;
  options.top_k = flags.top_k;
  options.conjunctive = !flags.any;
  auto hits = engine::SearchBaseDocuments(**db, *idx, flags.keywords,
                                          options);
  if (!hits.ok()) return Fail(hits.status());
  for (size_t i = 0; i < hits->size(); ++i) {
    std::printf("#%zu score=%.4f %s %s\n%s\n", i + 1, (*hits)[i].score,
                (*hits)[i].document.c_str(),
                (*hits)[i].id.ToString().c_str(), (*hits)[i].xml.c_str());
  }
  return 0;
}

int CmdDemo() {
  auto db = workload::GenerateBookRevDatabase(workload::BookRevOptions{});
  auto indexes = index::BuildDatabaseIndexes(*db);
  storage::DocumentStore store(*db);
  engine::ViewSearchEngine engine(db.get(), indexes.get(), &store);
  std::printf("query:\n%s\n\n", workload::BookRevKeywordQuery().c_str());
  auto response = engine.Search(workload::BookRevKeywordQuery(),
                                engine::SearchOptions{});
  if (!response.ok()) return Fail(response.status());
  for (size_t i = 0; i < response->hits.size() && i < 3; ++i) {
    std::printf("#%zu score=%.4f\n%s\n\n", i + 1, response->hits[i].score,
                response->hits[i].xml.c_str());
  }
  return 0;
}

int CmdServe(const Flags& flags) {
  if (!flags.demo && flags.positional.size() != 1) return Usage();
  if (!flags.demo && flags.view.empty()) return Usage();

  // Corpus: either a persisted database directory or the built-in
  // books/reviews demo corpus.
  std::shared_ptr<xml::Database> db;
  std::unique_ptr<index::DatabaseIndexes> indexes;
  std::string view_text;
  if (flags.demo) {
    db = workload::GenerateBookRevDatabase(workload::BookRevOptions{});
    indexes = index::BuildDatabaseIndexes(*db);
    view_text = workload::BookRevView();
  } else {
    auto loaded = storage::LoadDatabase(flags.positional[0]);
    if (!loaded.ok()) return Fail(loaded.status());
    db = std::move(*loaded);
    auto persisted = storage::LoadIndexes(*db, flags.positional[0]);
    if (persisted.ok()) {
      indexes = std::move(*persisted);
    } else {
      std::printf("no serialized indices, rebuilding...\n");
      indexes = index::BuildDatabaseIndexes(*db);
    }
  }
  if (!flags.view.empty()) {
    auto view_file = ReadFile(flags.view);
    if (!view_file.ok()) return Fail(view_file.status());
    view_text = std::move(*view_file);
  }

  storage::DocumentStore store(*db);
  service::QueryServiceOptions options;
  options.threads = flags.threads;
  service::QueryService query_service(db.get(), indexes.get(), &store,
                                      options);
  Status registered = query_service.RegisterView("default", view_text);
  if (!registered.ok()) return Fail(registered);

  // One query per stdin line: comma-separated keywords.
  std::vector<service::BatchQuery> batch;
  std::string line;
  while (std::getline(std::cin, line)) {
    service::BatchQuery query;
    query.view = "default";
    for (std::string_view piece : SplitString(line, ',')) {
      if (!piece.empty()) query.keywords.push_back(AsciiToLower(piece));
    }
    if (query.keywords.empty()) continue;
    query.options.top_k = flags.top_k;
    query.options.conjunctive = !flags.any;
    batch.push_back(std::move(query));
  }
  if (batch.empty()) {
    std::fprintf(stderr, "serve: no queries on stdin\n");
    return 2;
  }

  // Cursor mode: stream each query's hits through a ResultCursor in
  // pages of --page on the calling thread. Store fetches accrue per
  // page — unfetched pages never touch base data — while repeated plan
  // signatures still hit the PDT cache.
  if (flags.page > 0) {
    if (flags.threads != 0 || flags.repeat != 1) {
      std::fprintf(stderr,
                   "serve --page: streaming serially on the calling "
                   "thread; --threads/--repeat are ignored\n");
    }
    int failures = 0;
    for (const service::BatchQuery& query : batch) {
      const std::string joined = JoinStrings(query.keywords, ",");
      auto cursor = query_service.OpenSearch(query);
      if (!cursor.ok()) {
        ++failures;
        std::printf("[%s] error: %s\n", joined.c_str(),
                    cursor.status().ToString().c_str());
        continue;
      }
      size_t page_no = 0;
      while (!(*cursor)->Done()) {
        auto page = (*cursor)->FetchNext(flags.page);
        if (!page.ok()) {
          ++failures;
          std::printf("[%s] error: %s\n", joined.c_str(),
                      page.status().ToString().c_str());
          break;
        }
        ++page_no;
        std::printf(
            "[%s] page %zu: %zu hits, top score %.4f, "
            "%llu store fetches so far\n",
            joined.c_str(), page_no, page->size(),
            page->empty() ? 0.0 : (*page)[0].score,
            static_cast<unsigned long long>(
                (*cursor)->stats().store_fetches));
      }
      const engine::SearchStats& s = (*cursor)->stats();
      std::printf(
          "[%s] done: fetched %zu of %zu matches in %zu pages, "
          "%llu store fetches\n",
          joined.c_str(), (*cursor)->fetched(), s.matching_results,
          page_no, static_cast<unsigned long long>(s.store_fetches));
    }
    service::QueryService::Stats stats = query_service.stats();
    std::printf("streamed %zu queries; cache hits %llu misses %llu\n",
                batch.size(),
                static_cast<unsigned long long>(stats.cache.hits),
                static_cast<unsigned long long>(stats.cache.misses));
    return failures == 0 ? 0 : 1;
  }

  const size_t unique_queries = batch.size();
  batch.reserve(unique_queries * static_cast<size_t>(flags.repeat));
  for (int r = 1; r < flags.repeat; ++r) {
    for (size_t i = 0; i < unique_queries; ++i) batch.push_back(batch[i]);
  }

  auto start = std::chrono::steady_clock::now();
  auto responses = query_service.SearchBatch(batch);
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  int failures = 0;
  for (size_t i = 0; i < unique_queries; ++i) {
    const std::string joined = JoinStrings(batch[i].keywords, ",");
    if (!responses[i].ok()) {
      ++failures;
      std::printf("[%s] error: %s\n", joined.c_str(),
                  responses[i].status().ToString().c_str());
      continue;
    }
    const engine::SearchResponse& r = *responses[i];
    std::printf("[%s] %zu/%zu results, top score %.4f\n", joined.c_str(),
                r.stats.matching_results, r.stats.view_results,
                r.hits.empty() ? 0.0 : r.hits[0].score);
  }
  for (size_t i = unique_queries; i < responses.size(); ++i) {
    if (!responses[i].ok()) ++failures;
  }
  service::QueryService::Stats stats = query_service.stats();
  std::printf(
      "served %zu queries on %d threads in %.1f ms (%.0f q/s); "
      "cache hits %llu misses %llu\n",
      responses.size(), query_service.threads(), wall_ms,
      wall_ms > 0 ? 1000.0 * static_cast<double>(responses.size()) / wall_ms
                  : 0.0,
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.misses));
  return failures == 0 ? 0 : 1;
}

/// Cursor-lifecycle walkthrough on the built-in books/reviews corpus:
/// Open once, FetchNext page by page, and print the store-fetch counter
/// after every page — the visible form of the lazy-materialization
/// guarantee (hits never fetched never touch base data).
int CmdPage(const Flags& flags) {
  auto db = workload::GenerateBookRevDatabase(workload::BookRevOptions{});
  auto indexes = index::BuildDatabaseIndexes(*db);
  storage::DocumentStore store(*db);
  engine::ViewSearchEngine engine(db.get(), indexes.get(), &store);

  std::vector<std::string> keywords = flags.keywords;
  if (keywords.empty()) keywords = {"xml", "search"};
  const size_t page_size = flags.page > 0 ? flags.page : 3;
  engine::SearchOptions options;
  options.top_k = flags.top_k;
  options.conjunctive = !flags.any;

  auto plan = engine.PlanQuery(engine::ComposeKeywordQuery(
      workload::BookRevView(), keywords, options.conjunctive));
  if (!plan.ok()) return Fail(plan.status());
  auto prepared = engine.BuildPdts(std::move(*plan));
  if (!prepared.ok()) return Fail(prepared.status());
  auto cursor = engine.Open(*prepared, options);
  if (!cursor.ok()) return Fail(cursor.status());

  std::printf(
      "cursor open: %zu matches ranked, %zu materialized, "
      "%llu store fetches\n",
      (*cursor)->stats().matching_results, (*cursor)->fetched(),
      static_cast<unsigned long long>((*cursor)->stats().store_fetches));
  size_t page_no = 0;
  while (!(*cursor)->Done()) {
    auto page = (*cursor)->FetchNext(page_size);
    if (!page.ok()) return Fail(page.status());
    ++page_no;
    std::printf("-- page %zu --\n", page_no);
    const size_t first_rank = (*cursor)->fetched() - page->size() + 1;
    for (size_t i = 0; i < page->size(); ++i) {
      std::printf("#%zu score=%.4f\n", first_rank + i, (*page)[i].score);
    }
    std::printf("   %llu store fetches so far (%llu bytes)\n",
                static_cast<unsigned long long>(
                    (*cursor)->stats().store_fetches),
                static_cast<unsigned long long>(
                    (*cursor)->stats().store_bytes));
  }
  std::printf("cursor drained: %zu hits in %zu pages\n",
              (*cursor)->fetched(), page_no);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage();
  std::string command = argv[1];
  if (command == "index") return CmdIndex(flags);
  if (command == "search") return CmdSearch(flags);
  if (command == "basesearch") return CmdBaseSearch(flags);
  if (command == "demo") return CmdDemo();
  if (command == "serve") return CmdServe(flags);
  if (command == "page") return CmdPage(flags);
  return Usage();
}
