#!/usr/bin/env python3
"""quickview project lint — rules clang cannot express, run in the CI
`analyze` leg next to -Wthread-safety and clang-tidy (and locally via
`python3 tools/lint.py` or the `project_lint` ctest).

Rules
-----
bare-sync       std::mutex / std::shared_mutex / std::lock_guard /
                std::unique_lock / std::shared_lock / std::scoped_lock /
                std::condition_variable (and their <mutex>-family
                includes) are forbidden everywhere except
                src/common/sync.h. Every lock in the tree must be a
                qv:: primitive so the clang thread-safety analysis sees
                it; a bare std::mutex is invisible to the analysis and
                punches a hole in the lock-discipline proof.

unchecked-value Calling .value() on a variable declared as Result<T>
                without a visible .ok() / .status() check between the
                declaration and the use (same enclosing function).
                Result::value() on an error is undefined behavior in
                Release builds (assert compiles away). Propagating
                macros (QUICKVIEW_ASSIGN_OR_RETURN etc.) never expose
                the Result, so they are naturally clean. Limitation:
                the rule keys on a visible `Result<...> ident`
                declaration — `auto` declarations and chained
                temporaries are not matched (kept conservative to stay
                false-positive-free on e.g. BTree::Iterator::value()).

raw-durability  fsync / fdatasync / pwrite outside src/pagestore/. All
                durability syscalls belong to the storage engine; a
                stray fsync elsewhere bypasses the WAL's write/flush
                protocol and its group-commit batching.

wal-durability  The inverse guard: src/pagestore/wal.cc must CONTAIN a
                real durability syscall. The original delta-log bug was
                an append path that only flushed userspace buffers —
                "durable" in name only. raw-durability permits the
                syscall in the log module; this rule requires it, so
                the pair pins fdatasync to exactly the commit path.

adhoc-stats     A new `struct FooStats` / `struct FooCounters`
                declaration under src/ outside src/obs/. Process-wide
                telemetry belongs in obs::MetricsRegistry instruments
                (Counter / Gauge / Histogram) so it appears in the
                Prometheus text exposition and the Stats RPC instead of
                growing another hand-rolled snapshot struct. Genuine
                per-request value types (EngineStats and friends, wire
                structs, baseline measurement records) carry a waiver
                naming why they are data, not telemetry.

raw-socket      socket / bind / listen / accept / connect / recv / send
                (and friends) outside src/server/. All network I/O goes
                through the framed protocol in src/server/ — Server on
                the accept side, Client/LoadDriver on the dial side — so
                every byte on the wire is checksummed, deadline-scoped,
                and counted by the serving stats. A stray socket() in a
                tool or test bypasses admission control and the
                observability stack.

Suppressions: append `// lint:allow(<rule>)` to the offending line with
a justifying comment; the README documents the policy.

Exit status: 0 clean, 1 findings, 2 usage error. `--selftest` runs the
rules against embedded good/bad snippets and fails if any rule has gone
blunt — proof the gate bites, mirroring tests/negative/ for the
compiler-enforced gates.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories scanned by default (relative to repo root).
DEFAULT_ROOTS = ["src", "tools", "tests", "bench", "examples"]

# The one file allowed to name std primitives.
SYNC_H = os.path.join("src", "common", "sync.h")

BARE_SYNC_TYPES = (
    r"std::(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b"
    r"|std::condition_variable(?:_any)?\b"
)
BARE_SYNC_INCLUDES = r'#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>'

DURABILITY_CALL = r"(?:::)?\b(?:fsync|fdatasync|pwrite)\s*\("

SOCKET_CALL = (
    r"(?:::)?\b(?:socket|bind|listen|accept4?|connect|recv|send|sendto|"
    r"recvfrom|setsockopt|getsockopt|getsockname|shutdown|"
    r"epoll_create1?|epoll_ctl|epoll_wait)\s*\(")

ADHOC_STATS = re.compile(r"^\s*struct\s+\w*(?:Stats|Counters)\b")

RESULT_DECL = re.compile(r"\bResult<.*>\s+(\w+)\s*(?:=|\{|\(|;)")
VALUE_USE = re.compile(r"(?:std::move\s*\(\s*)?\b(\w+)\s*\)?\s*\.\s*value\s*\(\s*\)")

ALLOW = re.compile(r"//\s*lint:allow\((?P<rules>[a-z\-, ]+)\)")


def strip_comments_and_strings(lines):
    """Returns lines with comments and string/char literal *contents*
    blanked (structure and line count preserved), plus the raw lines (for
    suppression comments)."""
    out = []
    in_block = False
    string_re = re.compile(
        r'"(?:\\.|[^"\\])*"'     # string literal
        r"|'(?:\\.|[^'\\])'"     # char literal
    )
    for line in lines:
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        # Blank string/char literal contents first so // inside a string
        # does not look like a comment.
        line = string_re.sub(lambda m: '"' + " " * (len(m.group(0)) - 2) + '"',
                             line)
        # Trailing block comments on one line.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        cut = line.find("//")
        if cut >= 0:
            line = line[:cut]
        out.append(line)
    return out


def allowed(raw_line, rule):
    m = ALLOW.search(raw_line)
    if not m:
        return False
    rules = {r.strip() for r in m.group("rules").split(",")}
    return rule in rules


def is_function_boundary(line):
    """Heuristic start-of-window for the unchecked-value scope walk: a
    column-0 `}` (end of previous function) or a column-0 line opening a
    brace (function/namespace head in the project style)."""
    return bool(re.match(r"^\}", line)) or bool(re.match(r"^\S.*\{\s*$", line))


def check_file(rel_path, raw_lines, findings):
    code = strip_comments_and_strings(raw_lines)
    norm = rel_path.replace(os.sep, "/")

    # --- bare-sync --------------------------------------------------------
    if norm != SYNC_H.replace(os.sep, "/"):
        for i, line in enumerate(code):
            if re.search(BARE_SYNC_TYPES, line) or re.search(
                    BARE_SYNC_INCLUDES, line):
                if not allowed(raw_lines[i], "bare-sync"):
                    findings.append(
                        (rel_path, i + 1, "bare-sync",
                         "bare std synchronization primitive; use the "
                         "annotated qv:: wrappers from common/sync.h"))

    # --- raw-durability ---------------------------------------------------
    if not norm.startswith("src/pagestore/"):
        for i, line in enumerate(code):
            if re.search(DURABILITY_CALL, line):
                if not allowed(raw_lines[i], "raw-durability"):
                    findings.append(
                        (rel_path, i + 1, "raw-durability",
                         "durability syscall outside src/pagestore/; all "
                         "fsync/pwrite belong to the storage engine"))

    # --- wal-durability ---------------------------------------------------
    if norm == "src/pagestore/wal.cc":
        if not any(re.search(DURABILITY_CALL, line) for line in code):
            findings.append(
                (rel_path, 1, "wal-durability",
                 "the WAL commit path contains no fsync/fdatasync; an "
                 "append that only flushes userspace buffers is not "
                 "durable"))

    # --- adhoc-stats ------------------------------------------------------
    if norm.startswith("src/") and not norm.startswith("src/obs/"):
        for i, line in enumerate(code):
            if ADHOC_STATS.match(line):
                if not allowed(raw_lines[i], "adhoc-stats"):
                    findings.append(
                        (rel_path, i + 1, "adhoc-stats",
                         "ad-hoc stats struct; register obs:: Counter/"
                         "Gauge/Histogram instruments instead (waive "
                         "per-request value types with a justification)"))

    # --- raw-socket -------------------------------------------------------
    if not norm.startswith("src/server/"):
        for i, line in enumerate(code):
            if re.search(SOCKET_CALL, line):
                if not allowed(raw_lines[i], "raw-socket"):
                    findings.append(
                        (rel_path, i + 1, "raw-socket",
                         "socket syscall outside src/server/; all network "
                         "I/O goes through the framed Server/Client stack"))

    # --- unchecked-value --------------------------------------------------
    for i, line in enumerate(code):
        for use in VALUE_USE.finditer(line):
            ident = use.group(1)
            # Walk back to the enclosing-function boundary collecting the
            # window; stop early once we see the declaration.
            declared = False
            checked = False
            window = range(i, -1, -1)
            check_re = re.compile(
                r"\b%s\s*(?:\.|->)\s*(?:ok|status)\s*\(" % re.escape(ident))
            decl_re = re.compile(r"\bResult<.*>\s+%s\b" % re.escape(ident))
            for j in window:
                if j != i and is_function_boundary(code[j]):
                    break
                if check_re.search(code[j]):
                    checked = True
                    break
                if decl_re.search(code[j]):
                    declared = True
                    break
            if declared and not checked:
                if not allowed(raw_lines[i], "unchecked-value"):
                    findings.append(
                        (rel_path, i + 1, "unchecked-value",
                         "Result<T>::value() on '%s' without a visible "
                         ".ok()/.status() check in the same scope" % ident))


def iter_files(roots):
    for root in roots:
        base = os.path.join(REPO_ROOT, root)
        if os.path.isfile(base):
            yield os.path.relpath(base, REPO_ROOT)
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith((".cc", ".h")):
                    yield os.path.relpath(os.path.join(dirpath, name),
                                          REPO_ROOT)


def run(roots):
    findings = []
    for rel in iter_files(roots):
        with open(os.path.join(REPO_ROOT, rel), encoding="utf-8") as f:
            raw = f.read().splitlines()
        check_file(rel, raw, findings)
    for path, line, rule, msg in findings:
        print("%s:%d: [%s] %s" % (path, line, rule, msg))
    return 1 if findings else 0


# ---------------------------------------------------------------------------
# Self-test: every rule must flag its bad snippet and pass its good one.
# ---------------------------------------------------------------------------
SELFTEST_CASES = [
    ("bare-sync", "src/foo/bar.h", "std::mutex mu_;", True),
    ("bare-sync", "src/foo/bar.cc",
     "std::lock_guard<std::mutex> lock(mu_);", True),
    ("bare-sync", "src/foo/bar.cc", "#include <mutex>", True),
    ("bare-sync", "src/common/sync.h", "std::mutex mu_;", False),
    ("bare-sync", "src/foo/bar.h", "qv::Mutex mu_;", False),
    ("bare-sync", "src/foo/bar.h", "// talks about std::mutex only", False),
    ("bare-sync", "src/foo/bar.h",
     "std::mutex raw_;  // lint:allow(bare-sync) interop with libfoo", False),
    ("raw-durability", "src/storage/x.cc", "  ::fsync(fd);", True),
    ("raw-durability", "tools/x.cc", "  pwrite(fd, buf, n, off);", True),
    ("raw-durability", "src/pagestore/paged_file.cc", "  ::fsync(fd_);",
     False),
    ("raw-durability", "src/storage/x.cc", '  Log("about fsync()");', False),
    # The two halves of the WAL durability pin: the log module may (and
    # must) call fdatasync; a flush-only wal.cc is the original bug.
    ("raw-durability", "src/pagestore/wal.cc", "  ::fdatasync(fd_);", False),
    ("wal-durability", "src/pagestore/wal.cc",
     "Status Wal::WriteAndSync() {\n  ::fdatasync(fd_);\n}", False),
    ("wal-durability", "src/pagestore/wal.cc",
     "Status Wal::WriteAndSync() {\n  out_.flush();\n}", True),
    # A syscall that only appears in a comment does not count.
    ("wal-durability", "src/pagestore/wal.cc",
     "// calls fdatasync eventually\nStatus F() {\n  out_.flush();\n}",
     True),
    # Other files are not required to sync.
    ("wal-durability", "src/pagestore/pack.cc",
     "Status F() {\n  out_.flush();\n}", False),
    ("raw-socket", "tools/x.cc",
     "  int fd = socket(AF_INET, SOCK_STREAM, 0);", True),
    ("raw-socket", "tests/x_test.cc", "  ::connect(fd, addr, len);", True),
    ("raw-socket", "src/service/x.cc", "  recv(fd, buf, n, 0);", True),
    ("raw-socket", "src/server/server.cc",
     "  int fd = ::socket(AF_INET, SOCK_STREAM, 0);", False),
    ("raw-socket", "src/server/client.cc", "  ::send(fd_, p, n, 0);", False),
    # Method calls and project wrappers stay clean: the pattern requires a
    # bare C identifier, not a qualified member.
    ("raw-socket", "tools/x.cc", "  client.Connect(host, port);", False),
    ("raw-socket", "tools/x.cc", '  Log("about socket()");', False),
    ("raw-socket", "src/storage/x.cc",
     "  ::shutdown(fd, SHUT_RDWR);  // lint:allow(raw-socket) interop",
     False),
    ("adhoc-stats", "src/foo/bar.h", "struct FooStats {", True),
    ("adhoc-stats", "src/foo/bar.h", "  struct Stats {", True),
    ("adhoc-stats", "src/foo/bar.cc", "struct IoCounters {", True),
    # The registry's own instruments live in src/obs/.
    ("adhoc-stats", "src/obs/metrics.h", "struct FooStats {", False),
    # Tools/tests/bench report their own run-local numbers freely.
    ("adhoc-stats", "tools/x.cc", "struct RunStats {", False),
    # Suffix must be a whole word: Statistics / StatsResponse-style
    # uses inside a name do not match.
    ("adhoc-stats", "src/foo/bar.h", "struct Statistics {", False),
    ("adhoc-stats", "src/foo/bar.h", "struct StatsResponseView {", False),
    ("adhoc-stats", "src/foo/bar.h",
     "struct FooStats {  // lint:allow(adhoc-stats) per-request values",
     False),
    ("unchecked-value", "src/foo/bar.cc",
     "void F() {\n  Result<int> r = G();\n  Use(r.value());\n}", True),
    ("unchecked-value", "src/foo/bar.cc",
     "void F() {\n  Result<int> r = G();\n  if (!r.ok()) return;\n"
     "  Use(r.value());\n}", False),
    ("unchecked-value", "src/foo/bar.cc",
     "void F() {\n  Result<int> r = G();\n  ASSERT_TRUE(r.ok());\n"
     "  Use(std::move(r).value());\n}", False),
    # Unrelated .value() receivers (no Result declaration) stay clean.
    ("unchecked-value", "src/foo/bar.cc",
     "void F() {\n  for (auto it = t.Begin(); it.Valid(); it.Next())\n"
     "    Use(it.value());\n}", False),
    # A check belonging to the PREVIOUS function must not leak in.
    ("unchecked-value", "src/foo/bar.cc",
     "void E() {\n  Result<int> r = G();\n  if (!r.ok()) return;\n}\n"
     "void F() {\n  Result<int> r = G();\n  Use(r.value());\n}", True),
]


def selftest():
    failures = 0
    for rule, path, snippet, should_flag in SELFTEST_CASES:
        findings = []
        check_file(path, snippet.splitlines(), findings)
        flagged = any(f[2] == rule for f in findings)
        if flagged != should_flag:
            failures += 1
            print("SELFTEST FAIL [%s] %s: expected %s, got %s\n  %r" %
                  (rule, path, "flag" if should_flag else "clean",
                   "flag" if flagged else "clean", snippet))
    if failures:
        print("%d selftest case(s) failed" % failures)
        return 1
    print("selftest: %d cases OK" % len(SELFTEST_CASES))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories relative to the repo "
                             "root (default: %s)" % " ".join(DEFAULT_ROOTS))
    parser.add_argument("--selftest", action="store_true",
                        help="run the embedded rule self-test and exit")
    args = parser.parse_args()
    if args.selftest:
        return selftest()
    return run(args.paths or DEFAULT_ROOTS)


if __name__ == "__main__":
    sys.exit(main())
