// quickview network server: the framed binary protocol of
// server/protocol.h over TCP, fronting a QueryService.
//
//   quickview_server [<db-dir>|<db.qvpack>|<db.qvset>] [--demo]
//       [--host H] [--port P] [--port-file F]
//       [--threads N] [--workers N] [--admission-limit N] [--max-conns N]
//       [--frames N] [--shards N] [--colocate tag] [--live] [--wal <path>]
//       [--view <file>] [--trace-all] [--slow-threshold-us N] [--slow-log N]
//
// With no source (or --demo) it serves the built-in books/reviews
// corpus. --live wraps an in-memory corpus in a LiveDatabase so Insert/
// Remove RPCs mutate it; the static backends answer those with
// InvalidArgument. The view registered under the name "default" is the
// built-in books/reviews view unless --view names a file.
//
// --wal <path> (requires --live) makes mutations durable: committed
// records in an existing log at <path> are replayed over the base corpus
// at startup (a torn tail is truncated), and every Insert/Remove RPC is
// group-committed (fdatasync) to the log before it is acknowledged, so
// a crash or restart never loses an acked mutation.
//
// --port 0 (the default) binds an ephemeral port; --port-file writes
// "<port>\n" once listening, which is how the smoke test and local
// scripts find the server. SIGINT/SIGTERM shut down cleanly: stop
// accepting, close connections, drain workers, then print final stats
// (per-opcode latency/shed/deadline table + slow-query log) and dump
// the full Prometheus exposition of the metrics registry.
//
// --trace-all traces every request server-side so slow-query-log
// entries carry span trees; --slow-threshold-us / --slow-log tune what
// the log considers and how many worst requests it keeps.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "index/index_builder.h"
#include "pagestore/packed_db.h"
#include "server/server.h"
#include "service/query_service.h"
#include "storage/document_store.h"
#include "storage/live_database.h"
#include "storage/persistence.h"
#include "storage/shard_set.h"
#include "workload/bookrev_generator.h"

namespace {

using namespace quickview;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: quickview_server [<db-dir>|<db.qvpack>|<db.qvset>] [--demo]\n"
      "    [--host H] [--port P] [--port-file F] [--threads N] [--workers N]\n"
      "    [--admission-limit N] [--max-conns N] [--frames N] [--shards N]\n"
      "    [--colocate tag] [--live] [--wal <path>] [--view <file>] "
      "[--trace-all]\n"
      "    [--slow-threshold-us N] [--slow-log N]\n");
  return 2;
}

struct Flags {
  std::vector<std::string> positional;
  std::string host = "127.0.0.1";
  long long port = 0;
  std::string port_file;
  std::string view;
  bool demo = false;
  bool live = false;
  std::string wal;  // durable commit log; requires --live
  int threads = 0;  // QueryService pool; 0 = hardware concurrency
  int workers = 0;  // server RPC pool; 0 = hardware concurrency
  long long admission_limit = 128;
  long long max_conns = 64;
  size_t frames = 256;
  int shards = 0;
  std::string colocate;
  bool trace_all = false;
  long long slow_threshold_us = 0;
  long long slow_log = 8;
};

/// Strict non-negative integer parse; false on junk or overflow.
bool ParseCount(const char* text, long long max_value, long long* out) {
  if (text == nullptr || *text == '\0') return false;
  long long value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    value = value * 10 + (*p - '0');
    if (value > max_value) return false;
  }
  *out = value;
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->host = v;
    } else if (arg == "--port") {
      if (!ParseCount(next(), 65535, &flags->port)) return false;
    } else if (arg == "--port-file") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->port_file = v;
    } else if (arg == "--view") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->view = v;
    } else if (arg == "--demo") {
      flags->demo = true;
    } else if (arg == "--live") {
      flags->live = true;
    } else if (arg == "--wal") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->wal = v;
    } else if (arg == "--threads") {
      long long value = 0;
      if (!ParseCount(next(), 4096, &value)) return false;
      flags->threads = static_cast<int>(value);
    } else if (arg == "--workers") {
      long long value = 0;
      if (!ParseCount(next(), 4096, &value)) return false;
      flags->workers = static_cast<int>(value);
    } else if (arg == "--admission-limit") {
      if (!ParseCount(next(), 1 << 20, &flags->admission_limit) ||
          flags->admission_limit == 0) {
        return false;
      }
    } else if (arg == "--max-conns") {
      if (!ParseCount(next(), 1 << 20, &flags->max_conns) ||
          flags->max_conns == 0) {
        return false;
      }
    } else if (arg == "--frames") {
      long long value = 0;
      if (!ParseCount(next(), 1 << 24, &value) || value == 0) return false;
      flags->frames = static_cast<size_t>(value);
    } else if (arg == "--shards") {
      long long value = 0;
      if (!ParseCount(next(), 4096, &value) || value == 0) return false;
      flags->shards = static_cast<int>(value);
    } else if (arg == "--colocate") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->colocate = v;
    } else if (arg == "--trace-all") {
      flags->trace_all = true;
    } else if (arg == "--slow-threshold-us") {
      if (!ParseCount(next(), 1LL << 40, &flags->slow_threshold_us)) {
        return false;
      }
    } else if (arg == "--slow-log") {
      if (!ParseCount(next(), 1 << 20, &flags->slow_log)) return false;
    } else {
      flags->positional.push_back(std::move(arg));
    }
  }
  return true;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

bool HasSuffix(const std::string& path, std::string_view suffix) {
  return path.size() > suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Everything the QueryService points into; must outlive the server.
struct Backend {
  std::shared_ptr<xml::Database> db;
  std::unique_ptr<index::DatabaseIndexes> indexes;
  std::shared_ptr<pagestore::PackedDb> packed;
  std::unique_ptr<storage::DocumentStore> store;
  std::unique_ptr<storage::ShardSet> shards;
  std::unique_ptr<storage::LiveDatabase> live;
  std::unique_ptr<service::QueryService> service;
};

Result<Backend> OpenBackend(const Flags& flags) {
  Backend backend;
  const std::string source =
      flags.positional.empty() ? std::string() : flags.positional[0];
  service::QueryServiceOptions options;
  options.threads = flags.threads;
  if (!flags.wal.empty() && !flags.live) {
    return Status::InvalidArgument("--wal requires --live");
  }

  if (!source.empty() && HasSuffix(source, ".qvset")) {
    if (flags.live) {
      return Status::InvalidArgument("--live needs an in-memory corpus");
    }
    QUICKVIEW_ASSIGN_OR_RETURN(
        storage::ShardSet set,
        storage::ShardSet::OpenPacked(source, flags.frames));
    backend.shards = std::make_unique<storage::ShardSet>(std::move(set));
    std::printf("opened %s: %zu shards\n", source.c_str(),
                backend.shards->size());
    backend.service = std::make_unique<service::QueryService>(
        backend.shards.get(), options);
    return backend;
  }
  if (!source.empty() && HasSuffix(source, ".qvpack")) {
    if (flags.live) {
      return Status::InvalidArgument("--live needs an in-memory corpus");
    }
    pagestore::BufferPoolOptions pool;
    pool.frames = flags.frames;
    QUICKVIEW_ASSIGN_OR_RETURN(backend.packed,
                               pagestore::PackedDb::Open(source, pool));
    backend.store = std::make_unique<storage::DocumentStore>(backend.packed);
    std::printf("opened %s: %u pages, %zu documents\n", source.c_str(),
                backend.packed->file().page_count(),
                backend.packed->document_names().size());
    backend.service = std::make_unique<service::QueryService>(
        nullptr, backend.packed.get(), backend.store.get(), options);
    backend.service->AttachBufferPool(&backend.packed->pool());
    return backend;
  }

  // In-memory corpus: built-in demo, or a persisted database directory.
  if (source.empty() || flags.demo) {
    backend.db = workload::GenerateBookRevDatabase(workload::BookRevOptions{});
  } else {
    QUICKVIEW_ASSIGN_OR_RETURN(backend.db, storage::LoadDatabase(source));
  }

  if (flags.live) {
    backend.live = std::make_unique<storage::LiveDatabase>(backend.db);
    if (!flags.wal.empty()) {
      QUICKVIEW_RETURN_IF_ERROR(backend.live->OpenWal(flags.wal));
      const pagestore::WalReplay& replay = backend.live->wal()->replay();
      std::printf("wal %s: replayed %zu committed records%s\n",
                  flags.wal.c_str(), replay.payloads.size(),
                  replay.tail_truncated ? " (torn tail truncated)" : "");
    }
    std::printf("live corpus: %zu documents (Insert/Remove enabled%s)\n",
                backend.db->documents().size(),
                flags.wal.empty() ? "" : ", durable");
    backend.service = std::make_unique<service::QueryService>(
        backend.live.get(), options);
    return backend;
  }
  if (flags.shards > 0) {
    storage::ShardingSpec spec;
    spec.shards = flags.shards;
    spec.colocate_tag = flags.colocate;
    QUICKVIEW_ASSIGN_OR_RETURN(storage::ShardSet set,
                               storage::ShardSet::Partition(*backend.db, spec));
    backend.shards = std::make_unique<storage::ShardSet>(std::move(set));
    std::printf("partitioned corpus into %d shards\n", flags.shards);
    backend.service = std::make_unique<service::QueryService>(
        backend.shards.get(), options);
    return backend;
  }
  backend.indexes = index::BuildDatabaseIndexes(*backend.db);
  backend.store = std::make_unique<storage::DocumentStore>(*backend.db);
  backend.service = std::make_unique<service::QueryService>(
      backend.db.get(), backend.indexes.get(), backend.store.get(), options);
  return backend;
}

void PrintFinalStats(const server::StatsResponse& stats) {
  std::printf(
      "final stats: %llu admitted, %llu shed, %llu deadline-rejected, "
      "%llu protocol errors\n",
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.deadline_rejected),
      static_cast<unsigned long long>(stats.protocol_errors));
  std::printf(
      "connections: %llu accepted, %llu rejected; frames %llu in / %llu out\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.connections_rejected),
      static_cast<unsigned long long>(stats.frames_received),
      static_cast<unsigned long long>(stats.frames_sent));
  for (uint8_t op = server::kMinOpcode; op <= server::kMaxOpcode; ++op) {
    const server::OpcodeLatency& l = stats.latency[op];
    if (l.count == 0 && l.shed == 0 && l.deadline_rejected == 0) continue;
    std::printf(
        "  %-12s %8llu calls  p50 %lluus  p90 %lluus  p99 %lluus  "
        "shed %llu  deadline-rejected %llu\n",
        server::OpcodeName(static_cast<server::Opcode>(op)),
        static_cast<unsigned long long>(l.count),
        static_cast<unsigned long long>(l.p50_us),
        static_cast<unsigned long long>(l.p90_us),
        static_cast<unsigned long long>(l.p99_us),
        static_cast<unsigned long long>(l.shed),
        static_cast<unsigned long long>(l.deadline_rejected));
  }
  std::printf("service: %llu queries, cache hits %llu misses %llu\n",
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses));
  if (!stats.slow_queries.empty()) {
    std::printf("slow queries (worst first):\n");
    for (const server::SlowQueryEntry& entry : stats.slow_queries) {
      std::printf("  %8lluus  id=%llu  %s  %s\n",
                  static_cast<unsigned long long>(entry.latency_us),
                  static_cast<unsigned long long>(entry.request_id),
                  server::OpcodeName(static_cast<server::Opcode>(entry.opcode)),
                  entry.description.c_str());
      if (!entry.trace.empty()) {
        std::printf("%s", entry.trace.c_str());
      }
    }
  }
}

int Run(const Flags& flags) {
  // Block the shutdown signals before any thread spawns, so every thread
  // inherits the mask and sigwait below is the one consumer.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  if (pthread_sigmask(SIG_BLOCK, &mask, nullptr) != 0) {
    return Fail(Status::Internal("pthread_sigmask failed"));
  }

  auto backend = OpenBackend(flags);
  if (!backend.ok()) return Fail(backend.status());

  std::string view_text;
  if (!flags.view.empty()) {
    auto view_file = ReadFile(flags.view);
    if (!view_file.ok()) return Fail(view_file.status());
    view_text = std::move(*view_file);
  } else {
    view_text = workload::BookRevView();
  }
  Status registered = backend->service->RegisterView("default", view_text);
  if (!registered.ok()) return Fail(registered);

  server::ServerOptions options;
  options.host = flags.host;
  options.port = static_cast<uint16_t>(flags.port);
  options.worker_threads = flags.workers;
  options.admission_queue_limit = static_cast<size_t>(flags.admission_limit);
  options.max_connections = static_cast<size_t>(flags.max_conns);
  options.trace_all = flags.trace_all;
  options.slow_query_threshold_us =
      static_cast<uint64_t>(flags.slow_threshold_us);
  options.slow_query_capacity = static_cast<size_t>(flags.slow_log);
  server::Server server(backend->service.get(), options);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);

  std::printf("listening on %s:%u\n", flags.host.c_str(), server.port());
  std::fflush(stdout);
  if (!flags.port_file.empty()) {
    std::ofstream out(flags.port_file, std::ios::trunc);
    out << server.port() << "\n";
    if (!out) {
      server.Stop();
      return Fail(Status::Internal("cannot write " + flags.port_file));
    }
  }

  int signal_number = 0;
  if (sigwait(&mask, &signal_number) != 0) {
    server.Stop();
    return Fail(Status::Internal("sigwait failed"));
  }
  std::printf("caught signal %d, shutting down\n", signal_number);
  server.Stop();
  PrintFinalStats(server.SnapshotStats());
  // The same bytes `kStats format=text` serves — scrapeable post-mortem.
  std::printf("metrics exposition:\n%s", server.MetricsText().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage();
  if (flags.positional.size() > 1) return Usage();
  return Run(flags);
}
