// Enterprise-search scenario (paper §1): employees with different
// permission levels search *only their* view of the corpus. Permissions
// are view definitions — a clearance level selects which journals an
// employee may see — so keyword search never leaks content outside the
// searcher's view, and results are still ranked with exact view-level
// TF-IDF.
#include <cstdio>
#include <string>

#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "storage/document_store.h"
#include "workload/inex_generator.h"

namespace {

/// Clearance is a year cutoff: lower levels only see recent documents.
/// The per-level view keeps the journal folder structure and prunes
/// articles the level may not read.
std::string ClearanceView(int min_year) {
  return "for $j in fn:doc(inex.xml)/books//journal\n"
         "return <folder><jt>{$j/title}</jt>,\n"
         "  {for $art in $j//article[./year > " +
         std::to_string(min_year) +
         "]\n"
         "   return <doc>{$art/title}, {$art/fm}</doc>}\n"
         "</folder>";
}

}  // namespace

int main() {
  using namespace quickview;

  workload::InexOptions gen;
  gen.target_bytes = 512 * 1024;
  auto db = workload::GenerateInexDatabase(gen);
  auto indexes = index::BuildDatabaseIndexes(*db);
  storage::DocumentStore store(*db);
  engine::ViewSearchEngine engine(db.get(), indexes.get(), &store);

  struct Level {
    const char* name;
    int min_year;
  };
  const Level levels[] = {{"intern (recent docs only)", 2002},
                          {"engineer", 1996},
                          {"principal (full archive)", 0}};

  for (const Level& level : levels) {
    engine::SearchRequest request;
    request.view = ClearanceView(level.min_year);
    request.keywords = {"ieee", "computing"};
    request.options.top_k = 2;
    auto response = engine.Execute(request);
    if (!response.ok()) {
      std::fprintf(stderr, "%s: %s\n", level.name,
                   response.status().ToString().c_str());
      return 1;
    }
    std::printf("%-28s sees %4zu matching folders (%.2fms)\n", level.name,
                response->stats.matching_results,
                response->timings.total_ms());
    if (!response->hits.empty()) {
      std::printf("    top hit score=%.4f  %.70s...\n",
                  response->hits[0].score, response->hits[0].xml.c_str());
    }
  }
  std::printf("\nSame corpus, three views, zero per-level materialization."
              "\n");
  return 0;
}
