// Personalized-views scenario (paper §1, "Personalized Views"): one shared
// publication corpus, per-user virtual views (publications of the authors
// each user follows, with a per-user year cutoff). Nothing is materialized
// per user — each keyword search runs against that user's virtual view.
#include <cstdio>

#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "storage/document_store.h"
#include "workload/inex_generator.h"

namespace {

/// A per-user virtual view: articles of one author group, nested under
/// the authors the user follows.
std::string UserView(const std::string& group, int min_year) {
  return "for $a in fn:doc(authors.xml)/authors//author[./group = '" +
         group +
         "']\n"
         "return <feed><aname>{$a/name}</aname>,\n"
         "  {for $art in fn:doc(inex.xml)/books//article[./year > " +
         std::to_string(min_year) +
         "]\n"
         "   where $art/fm/au = $a/name\n"
         "   return <pub>{$art/title}, {$art/bdy}</pub>}\n"
         "</feed>";
}

struct User {
  const char* name;
  const char* group;
  int min_year;
  std::vector<std::string> interests;
};

}  // namespace

int main() {
  using namespace quickview;

  workload::InexOptions gen;
  gen.target_bytes = 1 << 20;
  auto db = workload::GenerateInexDatabase(gen);
  auto indexes = index::BuildDatabaseIndexes(*db);
  storage::DocumentStore store(*db);
  engine::ViewSearchEngine engine(db.get(), indexes.get(), &store);

  const User users[] = {
      {"alice", "group0", 1995, {"ieee", "control"}},
      {"bob", "group3", 2000, {"computing", "thomas"}},
      {"carol", "group5", 1990, {"moore"}},
  };

  for (const User& user : users) {
    engine::SearchRequest request;
    request.view = UserView(user.group, user.min_year);
    request.keywords = user.interests;
    request.options.top_k = 3;
    auto response = engine.Execute(request);
    if (!response.ok()) {
      std::fprintf(stderr, "%s: %s\n", user.name,
                   response.status().ToString().c_str());
      return 1;
    }
    std::printf("user %-6s (follows %s, year>%d): %zu matching feeds, "
                "answered in %.2fms with %llu base-data fetches\n",
                user.name, user.group, user.min_year,
                response->stats.matching_results,
                response->timings.total_ms(),
                static_cast<unsigned long long>(
                    response->stats.store_fetches));
    for (const engine::SearchHit& hit : response->hits) {
      std::printf("   score=%.4f  %.80s...\n", hit.score, hit.xml.c_str());
    }
  }
  return 0;
}
