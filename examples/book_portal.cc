// Information-integration scenario (paper §1, "Information Integration"):
// an aggregator exposes a virtual view joining a book service with a
// review service, compares the Efficient engine against the
// materialize-everything Baseline on the same queries, and verifies the
// ranked results agree (Theorem 4.1 live).
#include <cstdio>

#include "baseline/naive_engine.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "storage/document_store.h"
#include "workload/bookrev_generator.h"

int main() {
  using namespace quickview;

  workload::BookRevOptions gen;
  gen.num_books = 400;
  gen.max_reviews_per_book = 5;
  auto db = workload::GenerateBookRevDatabase(gen);
  auto indexes = index::BuildDatabaseIndexes(*db);
  storage::DocumentStore store(*db);

  engine::ViewSearchEngine efficient(db.get(), indexes.get(), &store);
  baseline::NaiveEngine naive(db.get());

  const std::string view = workload::BookRevView();
  const std::vector<std::vector<std::string>> queries = {
      {"xml", "search"}, {"database", "index"}, {"web", "read"}};

  for (const auto& keywords : queries) {
    engine::SearchOptions options;
    options.top_k = 3;
    engine::SearchRequest request;
    request.view = view;
    request.keywords = keywords;
    request.options = options;
    auto eff = efficient.Execute(request);
    auto base = naive.SearchView(view, keywords, options);
    if (!eff.ok() || !base.ok()) {
      std::fprintf(stderr, "error: %s / %s\n",
                   eff.status().ToString().c_str(),
                   base.status().ToString().c_str());
      return 1;
    }
    std::string label;
    for (const std::string& k : keywords) label += k + " ";
    std::printf("query [%s]  matches=%zu  efficient=%.2fms  baseline=%.2fms"
                "  speedup=%.1fx\n",
                label.c_str(), eff->stats.matching_results,
                eff->timings.total_ms(), base->timings.total_ms(),
                base->timings.total_ms() / eff->timings.total_ms());
    bool agree = eff->hits.size() == base->hits.size();
    for (size_t i = 0; agree && i < eff->hits.size(); ++i) {
      agree = eff->hits[i].xml == base->hits[i].xml &&
              eff->hits[i].score == base->hits[i].score;
    }
    std::printf("  top-%zu identical to materialized view: %s\n",
                eff->hits.size(), agree ? "yes" : "NO (bug!)");
    if (!eff->hits.empty()) {
      std::printf("  best (score %.4f): %.90s...\n", eff->hits[0].score,
                  eff->hits[0].xml.c_str());
    }
  }
  return 0;
}
