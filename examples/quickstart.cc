// Quickstart: the paper's running example end to end.
//  1. Load two XML documents (books + reviews) into a Database.
//  2. Build path + inverted-list indices.
//  3. Define a *virtual* view nesting review contents under books.
//  4. Run a ranked keyword query over the view — only the top results
//     are ever materialized.
#include <cstdio>

#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "storage/document_store.h"
#include "xml/parser.h"

namespace {

constexpr char kBooksXml[] = R"(<books>
  <book><isbn>111-11-1111</isbn><title>XML Web Services</title>
        <publisher>Prentice Hall</publisher><year>2004</year></book>
  <book><isbn>222-22-2222</isbn><title>Artificial Intelligence</title>
        <publisher>Prentice Hall</publisher><year>2002</year></book>
  <book><isbn>333-33-3333</isbn><title>Relational Databases</title>
        <publisher>Morgan Kaufmann</publisher><year>1988</year></book>
</books>)";

constexpr char kReviewsXml[] = R"(<reviews>
  <review><isbn>111-11-1111</isbn><rate>Excellent</rate>
          <content>all about search over xml data</content>
          <reviewer>John</reviewer></review>
  <review><isbn>111-11-1111</isbn><rate>Good</rate>
          <content>easy to read</content><reviewer>Alex</reviewer></review>
  <review><isbn>222-22-2222</isbn><rate>Good</rate>
          <content>classic planning and search textbook</content>
          <reviewer>Mary</reviewer></review>
</reviews>)";

// The view of paper Fig 2: books after 1995 with their reviews' contents.
constexpr char kView[] = R"(for $book in fn:doc(books.xml)/books//book
where $book/year > 1995
return <bookrevs>
  <book> {$book/title} </book>,
  {for $rev in fn:doc(reviews.xml)/reviews//review
   where $rev/isbn = $book/isbn
   return $rev/content}
</bookrevs>)";

}  // namespace

int main() {
  using namespace quickview;

  // 1. Load base documents.
  xml::Database db;
  auto books = xml::ParseXml(kBooksXml, db.NextRootComponent());
  if (!books.ok()) {
    std::fprintf(stderr, "books: %s\n", books.status().ToString().c_str());
    return 1;
  }
  db.AddDocument("books.xml", *books);
  auto reviews = xml::ParseXml(kReviewsXml, db.NextRootComponent());
  if (!reviews.ok()) {
    std::fprintf(stderr, "reviews: %s\n",
                 reviews.status().ToString().c_str());
    return 1;
  }
  db.AddDocument("reviews.xml", *reviews);

  // 2. Build indices once, at load time.
  auto indexes = index::BuildDatabaseIndexes(db);
  storage::DocumentStore store(db);

  // 3-4. Ranked keyword search over the virtual view, through the one
  // unified entry point: a SearchRequest names the view, keywords and
  // ranking options.
  engine::ViewSearchEngine engine(&db, indexes.get(), &store);
  engine::SearchRequest request;
  request.view = kView;
  request.keywords = {"xml", "search"};
  request.options.top_k = 5;
  auto response = engine.Execute(request);
  if (!response.ok()) {
    std::fprintf(stderr, "search: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }

  std::printf("keyword query {'xml','search'}: %zu of %zu view results "
              "match\n\n",
              response->stats.matching_results,
              response->stats.view_results);
  for (size_t i = 0; i < response->hits.size(); ++i) {
    const engine::SearchHit& hit = response->hits[i];
    std::printf("#%zu  score=%.4f  tf(xml)=%llu tf(search)=%llu\n%s\n\n",
                i + 1, hit.score,
                static_cast<unsigned long long>(hit.tf[0]),
                static_cast<unsigned long long>(hit.tf[1]),
                hit.xml.c_str());
  }
  std::printf("base-data accesses: %llu (materialization of top-%zu only)\n",
              static_cast<unsigned long long>(response->stats.store_fetches),
              response->hits.size());
  std::printf("module times: qpt=%.2fms pdt=%.2fms eval=%.2fms post=%.2fms\n",
              response->timings.qpt_ms, response->timings.pdt_ms,
              response->timings.eval_ms, response->timings.post_ms);
  return 0;
}
