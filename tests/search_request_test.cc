// SearchRequest::Validate is THE validation boundary: one negative test
// per rule, plus proof that both entry forms pass. Entry points carry
// their own checks only for what Validate cannot know (shard range at
// Open, registered-view lookup at the service).
#include "engine/search_request.h"

#include <gtest/gtest.h>

namespace quickview::engine {
namespace {

SearchRequest ViewForm() {
  SearchRequest request;
  request.view = "for $b in fn:doc(books.xml)//book return $b";
  request.keywords = {"xml"};
  return request;
}

SearchRequest QueryForm() {
  SearchRequest request;
  request.query =
      "let $view := for $b in fn:doc(books.xml)//book return $b\n"
      "for $qv in $view\nwhere $qv ftcontains('xml')\nreturn $qv";
  return request;
}

TEST(SearchRequestTest, BothFormsValidate) {
  EXPECT_TRUE(ViewForm().Validate().ok());
  EXPECT_TRUE(QueryForm().Validate().ok());
}

TEST(SearchRequestTest, NeitherQueryNorViewIsInvalid) {
  SearchRequest request;
  request.keywords = {"xml"};
  Status status = request.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SearchRequestTest, BothQueryAndViewIsInvalid) {
  SearchRequest request = ViewForm();
  request.query = QueryForm().query;
  Status status = request.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SearchRequestTest, QueryFormRejectsKeywordList) {
  SearchRequest request = QueryForm();
  request.keywords = {"xml"};
  Status status = request.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SearchRequestTest, ViewFormRequiresKeywords) {
  SearchRequest request = ViewForm();
  request.keywords.clear();
  Status status = request.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SearchRequestTest, TopKZeroIsInvalidInBothForms) {
  SearchRequest view_form = ViewForm();
  view_form.options.top_k = 0;
  EXPECT_EQ(view_form.Validate().code(), StatusCode::kInvalidArgument);

  SearchRequest query_form = QueryForm();
  query_form.options.top_k = 0;
  EXPECT_EQ(query_form.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SearchRequestTest, ShardHintBelowMinusOneIsInvalid) {
  SearchRequest request = ViewForm();
  request.shard = -2;
  EXPECT_EQ(request.Validate().code(), StatusCode::kInvalidArgument);
  request.shard = -1;
  EXPECT_TRUE(request.Validate().ok());
  request.shard = 7;  // range is checked at Open, where the count is known
  EXPECT_TRUE(request.Validate().ok());
}

}  // namespace
}  // namespace quickview::engine
