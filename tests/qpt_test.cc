#include "qpt/generate_qpt.h"

#include <gtest/gtest.h>

#include "workload/bookrev_generator.h"
#include "xquery/parser.h"

namespace quickview::qpt {
namespace {

/// Finds the child of `parent` with the given tag; -1 if absent.
int FindChild(const Qpt& qpt, int parent, const std::string& tag) {
  for (int child : qpt.nodes[parent].children) {
    if (qpt.nodes[child].tag == tag) return child;
  }
  return -1;
}

TEST(GenerateQptTest, PaperFig2ViewProducesFig6Qpts) {
  auto query = xquery::ParseQuery(workload::BookRevView());
  ASSERT_TRUE(query.ok()) << query.status();
  auto qpts = GenerateQpts(&*query);
  ASSERT_TRUE(qpts.ok()) << qpts.status();
  ASSERT_EQ(qpts->size(), 2u);

  // --- Book QPT (paper Fig 6(a), left) ---
  const Qpt& book_qpt = (*qpts)[0];
  EXPECT_EQ(book_qpt.source_doc, "books.xml");
  int books = FindChild(book_qpt, 0, "books");
  ASSERT_GE(books, 0);
  EXPECT_FALSE(book_qpt.nodes[books].parent_descendant);
  EXPECT_TRUE(book_qpt.nodes[books].parent_mandatory);
  int book = FindChild(book_qpt, books, "book");
  ASSERT_GE(book, 0);
  EXPECT_TRUE(book_qpt.nodes[book].parent_descendant);  // '//'

  // year: mandatory edge with the > 1995 predicate (where clause).
  int year = FindChild(book_qpt, book, "year");
  ASSERT_GE(year, 0);
  EXPECT_TRUE(book_qpt.nodes[year].parent_mandatory);
  ASSERT_EQ(book_qpt.nodes[year].preds.size(), 1u);
  EXPECT_EQ(book_qpt.nodes[year].preds[0].op, xquery::CompOp::kGt);
  EXPECT_EQ(book_qpt.nodes[year].preds[0].number, 1995);

  // title: optional edge (inside the constructor), content-annotated.
  int title = FindChild(book_qpt, book, "title");
  ASSERT_GE(title, 0);
  EXPECT_FALSE(book_qpt.nodes[title].parent_mandatory);
  EXPECT_TRUE(book_qpt.nodes[title].c_ann);
  EXPECT_FALSE(book_qpt.nodes[title].v_ann);

  // isbn: optional edge (used by the nested FLWOR's join), value-annotated
  // ("a book can be present in the view result even if it does not have an
  // isbn number").
  int isbn = FindChild(book_qpt, book, "isbn");
  ASSERT_GE(isbn, 0);
  EXPECT_FALSE(book_qpt.nodes[isbn].parent_mandatory);
  EXPECT_TRUE(book_qpt.nodes[isbn].v_ann);
  EXPECT_FALSE(book_qpt.nodes[isbn].c_ann);

  // --- Review QPT (paper Fig 6(a), right) ---
  const Qpt& review_qpt = (*qpts)[1];
  EXPECT_EQ(review_qpt.source_doc, "reviews.xml");
  int reviews = FindChild(review_qpt, 0, "reviews");
  int review = FindChild(review_qpt, reviews, "review");
  ASSERT_GE(review, 0);
  // isbn: mandatory ("a review is of no relevance to query execution
  // unless it has an isbn number").
  int risbn = FindChild(review_qpt, review, "isbn");
  ASSERT_GE(risbn, 0);
  EXPECT_TRUE(review_qpt.nodes[risbn].parent_mandatory);
  EXPECT_TRUE(review_qpt.nodes[risbn].v_ann);
  int content = FindChild(review_qpt, review, "content");
  ASSERT_GE(content, 0);
  EXPECT_TRUE(review_qpt.nodes[content].c_ann);
}

TEST(GenerateQptTest, RewritesDocNamesToOccurrenceNames) {
  auto query = xquery::ParseQuery("fn:doc(books.xml)//title");
  ASSERT_TRUE(query.ok());
  auto qpts = GenerateQpts(&*query);
  ASSERT_TRUE(qpts.ok()) << qpts.status();
  ASSERT_EQ(qpts->size(), 1u);
  EXPECT_EQ((*qpts)[0].source_doc, "books.xml");
  EXPECT_NE((*qpts)[0].occurrence_name, "books.xml");
  // The AST now references the occurrence name.
  EXPECT_NE(xquery::ExprToString(*query->body).find(
                (*qpts)[0].occurrence_name),
            std::string::npos);
}

TEST(GenerateQptTest, MultipleOccurrencesOfSameDocument) {
  auto query = xquery::ParseQuery(
      "for $a in fn:doc(d.xml)//a return "
      "<r>{for $b in fn:doc(d.xml)//b where $b/k = $a/k return $b}</r>");
  ASSERT_TRUE(query.ok());
  auto qpts = GenerateQpts(&*query);
  ASSERT_TRUE(qpts.ok()) << qpts.status();
  ASSERT_EQ(qpts->size(), 2u);
  EXPECT_EQ((*qpts)[0].source_doc, "d.xml");
  EXPECT_EQ((*qpts)[1].source_doc, "d.xml");
  EXPECT_NE((*qpts)[0].occurrence_name, (*qpts)[1].occurrence_name);
}

TEST(GenerateQptTest, PlainPathReturnKeepsMandatoryEdge) {
  // `return $b/title` (no constructor): a book without title contributes
  // nothing, so pruning books without titles is sound and the edge is
  // mandatory — in contrast to `return <r>{$b/title}</r>`.
  auto query = xquery::ParseQuery(
      "for $b in fn:doc(d.xml)//book return $b/title");
  ASSERT_TRUE(query.ok());
  auto qpts = GenerateQpts(&*query);
  ASSERT_TRUE(qpts.ok());
  const Qpt& qpt = (*qpts)[0];
  int book = FindChild(qpt, 0, "book");
  int title = FindChild(qpt, book, "title");
  ASSERT_GE(title, 0);
  EXPECT_TRUE(qpt.nodes[title].parent_mandatory);
  EXPECT_TRUE(qpt.nodes[title].c_ann);
}

TEST(GenerateQptTest, ReturnVariableAnnotatesBindingNode) {
  auto query = xquery::ParseQuery(
      "for $b in fn:doc(d.xml)//book[./year > 1995] return $b");
  ASSERT_TRUE(query.ok());
  auto qpts = GenerateQpts(&*query);
  ASSERT_TRUE(qpts.ok());
  const Qpt& qpt = (*qpts)[0];
  int book = FindChild(qpt, 0, "book");
  ASSERT_GE(book, 0);
  EXPECT_TRUE(qpt.nodes[book].c_ann);
  // The predicate twig hangs off book with a value annotation.
  int year = FindChild(qpt, book, "year");
  ASSERT_GE(year, 0);
  EXPECT_EQ(qpt.nodes[year].preds.size(), 1u);
  EXPECT_TRUE(qpt.nodes[year].v_ann);
}

TEST(GenerateQptTest, PredicateAndOutputUsesStaySeparateNodes) {
  // year is both filtered on and output: two distinct QPT nodes with the
  // same tag (repeating-tag case handled by CTQNodeSet machinery).
  auto query = xquery::ParseQuery(
      "for $b in fn:doc(d.xml)//book where $b/year > 1995 "
      "return <r>{$b/year}</r>");
  ASSERT_TRUE(query.ok());
  auto qpts = GenerateQpts(&*query);
  ASSERT_TRUE(qpts.ok());
  const Qpt& qpt = (*qpts)[0];
  int book = FindChild(qpt, 0, "book");
  int with_pred = -1;
  int with_content = -1;
  for (int child : qpt.nodes[book].children) {
    if (qpt.nodes[child].tag != "year") continue;
    if (!qpt.nodes[child].preds.empty()) with_pred = child;
    if (qpt.nodes[child].c_ann) with_content = child;
  }
  ASSERT_GE(with_pred, 0);
  ASSERT_GE(with_content, 0);
  EXPECT_NE(with_pred, with_content);
}

TEST(GenerateQptTest, SharedJoinPathMergesIntoOneNode) {
  auto query = xquery::ParseQuery(
      "for $a in fn:doc(x.xml)//a for $b in fn:doc(y.xml)//b "
      "where $a/k = $b/k return <r>{$a/k}</r>");
  ASSERT_TRUE(query.ok());
  auto qpts = GenerateQpts(&*query);
  ASSERT_TRUE(qpts.ok());
  const Qpt& a_qpt = (*qpts)[0];
  int a = FindChild(a_qpt, 0, "a");
  // $a/k used as join key and as output: one node, both annotations.
  int count = 0;
  for (int child : a_qpt.nodes[a].children) {
    if (a_qpt.nodes[child].tag == "k") ++count;
  }
  EXPECT_EQ(count, 1);
  int k = FindChild(a_qpt, a, "k");
  EXPECT_TRUE(a_qpt.nodes[k].v_ann);
  EXPECT_TRUE(a_qpt.nodes[k].c_ann);
}

TEST(GenerateQptTest, UnsupportedNavigationIntoConstructedContent) {
  auto query = xquery::ParseQuery(
      "for $x in <a><b>t</b></a> return $x/b");
  ASSERT_TRUE(query.ok()) << query.status();
  auto qpts = GenerateQpts(&*query);
  EXPECT_FALSE(qpts.ok());
  EXPECT_EQ(qpts.status().code(), StatusCode::kUnsupported);
}

TEST(QptPredicateTest, NumericAndStringMatching) {
  QptPredicate gt{xquery::CompOp::kGt, "1995", true, 1995};
  EXPECT_TRUE(gt.Matches("1996"));
  EXPECT_FALSE(gt.Matches("1995"));
  // Non-numeric values fall back to string comparison — exactly the
  // evaluator's general-comparison rule, which parity requires.
  EXPECT_TRUE(gt.Matches("not-a-number"));   // "n..." > "1995" as strings
  EXPECT_FALSE(gt.Matches("0-not-number"));  // "0..." < "1995" as strings
  QptPredicate eq{xquery::CompOp::kEq, "Jane", false, 0};
  EXPECT_TRUE(eq.Matches("Jane"));
  EXPECT_FALSE(eq.Matches("John"));
}

TEST(QptTest, PatternForWalksToRoot) {
  Qpt qpt;
  qpt.nodes.push_back(QptNode{});
  int books = qpt.AddNode(0, "books", false, true);
  int book = qpt.AddNode(books, "book", true, true);
  int isbn = qpt.AddNode(book, "isbn", false, true);
  index::PathPattern pattern = qpt.PatternFor(isbn);
  ASSERT_EQ(pattern.size(), 3u);
  EXPECT_EQ(pattern[0].tag, "books");
  EXPECT_TRUE(pattern[1].descendant);
  EXPECT_EQ(pattern[2].tag, "isbn");
  EXPECT_EQ(index::PatternToString(pattern), "/books//book/isbn");
}

}  // namespace
}  // namespace quickview::qpt
