// The evaluator's hash-join fast path must be semantically invisible:
// results identical to the naive nested-loop evaluation for every join it
// accelerates. These tests pin the tricky equality semantics (numeric
// keys, multi-valued keys, shadowing) that a hash table can get wrong.
#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace quickview::xquery {
namespace {

class HashJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Numeric keys spelled differently ("07" vs "7"), multi-valued keys
    // (two k children), and plain string keys.
    auto left = xml::ParseXml(
        "<ls>"
        "<l><k>7</k><n>seven</n></l>"
        "<l><k>0042</k><n>answer</n></l>"
        "<l><k>alpha</k><n>a</n></l>"
        "<l><k>x</k><k>y</k><n>multi</n></l>"
        "<l><n>keyless</n></l>"
        "</ls>",
        1);
    auto right = xml::ParseXml(
        "<rs>"
        "<r><k>07</k><v>r-seven</v></r>"
        "<r><k>42</k><v>r-answer</v></r>"
        "<r><k>beta</k><v>r-beta</v></r>"
        "<r><k>y</k><v>r-y</v></r>"
        "<r><k>7.0</k><v>r-seven-float</v></r>"
        "</rs>",
        2);
    ASSERT_TRUE(left.ok() && right.ok());
    db_.AddDocument("l.xml", *left);
    db_.AddDocument("r.xml", *right);
  }

  std::vector<std::string> Run(const std::string& query_text) {
    auto query = ParseQuery(query_text);
    EXPECT_TRUE(query.ok()) << query.status();
    Evaluator evaluator(&db_);
    auto result = evaluator.Evaluate(*query);
    EXPECT_TRUE(result.ok()) << result.status();
    std::vector<std::string> out;
    if (!result.ok()) return out;
    for (const Item& item : *result) {
      const NodeHandle* h = std::get_if<NodeHandle>(&item);
      out.push_back(h != nullptr
                        ? xml::Serialize(*h->doc, h->effective_index())
                        : AtomicValue(item));
    }
    return out;
  }

  xml::Database db_;
};

TEST_F(HashJoinTest, NumericKeysMatchAcrossSpellings) {
  // "7" joins "07" and "7.0"; "0042" joins "42" — numeric equality, just
  // like the general-comparison operator.
  auto out = Run(
      "for $l in fn:doc(l.xml)//l for $r in fn:doc(r.xml)//r "
      "where $r/k = $l/k return $r/v");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], "<v>r-seven</v>");
  EXPECT_EQ(out[1], "<v>r-seven-float</v>");  // both match l[k=7]
  EXPECT_EQ(out[2], "<v>r-answer</v>");
  EXPECT_EQ(out[3], "<v>r-y</v>");
}

TEST_F(HashJoinTest, ProbeSideSwapped) {
  auto out = Run(
      "for $l in fn:doc(l.xml)//l for $r in fn:doc(r.xml)//r "
      "where $l/k = $r/k return $r/v");
  EXPECT_EQ(out.size(), 4u);
}

TEST_F(HashJoinTest, MultiValuedKeysAreExistential) {
  // l[multi] has keys {x, y}; r[k=y] matches via the second key, once.
  auto out = Run(
      "for $l in fn:doc(l.xml)//l[./n = 'multi'] "
      "for $r in fn:doc(r.xml)//r where $r/k = $l/k return $r/v");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "<v>r-y</v>");
}

TEST_F(HashJoinTest, KeylessItemsNeverMatch) {
  auto out = Run(
      "for $l in fn:doc(l.xml)//l[./n = 'keyless'] "
      "for $r in fn:doc(r.xml)//r where $r/k = $l/k return $r/v");
  EXPECT_TRUE(out.empty());
}

TEST_F(HashJoinTest, InnerSequenceOrderPreserved) {
  // Matches must come back in the inner sequence's document order even
  // when probe values hit the hash map out of order.
  auto out = Run(
      "for $l in fn:doc(l.xml)//l[./k = '7'] "
      "for $r in fn:doc(r.xml)//r where $r/k = $l/k return $r/v");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "<v>r-seven</v>");       // doc position 1
  EXPECT_EQ(out[1], "<v>r-seven-float</v>");  // doc position 5
}

TEST_F(HashJoinTest, AgreesWithNestedLoopOnEveryPair) {
  // Force the nested-loop path with a '<' comparison (never hash-joined),
  // then compare against the equivalent '=' query evaluated twice with
  // operands flipped. All three must agree on the match count.
  auto eq = Run(
      "for $l in fn:doc(l.xml)//l for $r in fn:doc(r.xml)//r "
      "where $r/k = $l/k return <m>{$l/n}{$r/v}</m>");
  // Nested-loop equivalent: binding the document through a let-variable
  // makes the inner clause environment-dependent, so the hash-join shape
  // check rejects it and the plain path runs.
  auto nested = Run(
      "let $rd in fn:doc(r.xml) "
      "for $l in fn:doc(l.xml)//l for $r in $rd//r "
      "where $r/k = $l/k return <m>{$l/n}{$r/v}</m>");
  EXPECT_EQ(eq, nested);
  EXPECT_EQ(eq.size(), 4u);
}

TEST_F(HashJoinTest, JoinInsideOuterLoopReusesIndex) {
  // The inner join runs once per outer binding; the join index must be
  // built once and reused, and results stay correct.
  auto out = Run(
      "for $outer in fn:doc(l.xml)/ls "
      "return <g>{for $l in fn:doc(l.xml)//l for $r in fn:doc(r.xml)//r "
      "where $r/k = $l/k return $r/v}</g>");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0],
            "<g><v>r-seven</v><v>r-seven-float</v><v>r-answer</v>"
            "<v>r-y</v></g>");
}

}  // namespace
}  // namespace quickview::xquery
